(* Tests for the basic-blocks teaching language: semantics, the Table 1
   transformation templates, and the Figure 4/5 walkthrough. *)

let value = Alcotest.testable Bb_lang.Syntax.pp_value Bb_lang.Syntax.equal_value

let run_ok p input =
  match Bb_lang.Interp.run p input with
  | Ok out -> out
  | Error msg -> Alcotest.failf "run failed: %s" msg

(* ------------------------------------------------------------------ *)
(* Interpreter *)

let test_original_prints_6 () =
  let out = run_ok Bb_lang.Figures.original Bb_lang.Figures.input in
  Alcotest.(check (list value)) "prints 6" [ Bb_lang.Syntax.Int 6 ] out

let test_undefined_variable_reads_zero () =
  let p =
    {
      Bb_lang.Syntax.entry = "a";
      blocks =
        [ { Bb_lang.Syntax.name = "a"; instrs = [ Bb_lang.Syntax.Print (Bb_lang.Syntax.Var "nope") ]; term = Bb_lang.Syntax.Halt } ];
    }
  in
  Alcotest.(check (list value)) "zero" [ Bb_lang.Syntax.Int 0 ] (run_ok p [])

let test_infinite_loop_not_well_defined () =
  let p =
    {
      Bb_lang.Syntax.entry = "a";
      blocks = [ { Bb_lang.Syntax.name = "a"; instrs = []; term = Bb_lang.Syntax.Goto "a" } ];
    }
  in
  Alcotest.(check bool) "ill-defined" false (Bb_lang.Interp.well_defined p [])

let test_cond_goto_branches () =
  let mk cond =
    {
      Bb_lang.Syntax.entry = "a";
      blocks =
        [
          {
            Bb_lang.Syntax.name = "a";
            instrs = [ Bb_lang.Syntax.Assign ("c", Bb_lang.Syntax.Bool_lit cond) ];
            term = Bb_lang.Syntax.Cond_goto ("c", "t", "f");
          };
          { Bb_lang.Syntax.name = "t"; instrs = [ Bb_lang.Syntax.Print (Bb_lang.Syntax.Int_lit 1) ]; term = Bb_lang.Syntax.Halt };
          { Bb_lang.Syntax.name = "f"; instrs = [ Bb_lang.Syntax.Print (Bb_lang.Syntax.Int_lit 2) ]; term = Bb_lang.Syntax.Halt };
        ];
    }
  in
  Alcotest.(check (list value)) "true branch" [ Bb_lang.Syntax.Int 1 ] (run_ok (mk true) []);
  Alcotest.(check (list value)) "false branch" [ Bb_lang.Syntax.Int 2 ] (run_ok (mk false) [])

(* ------------------------------------------------------------------ *)
(* Transformations: each Figure 4 step preserves the output *)

let test_each_step_preserves_semantics () =
  let ctx = Bb_lang.Figures.initial_context () in
  let semantics (c : Bb_lang.Transform.context) =
    Bb_lang.Interp.run c.Bb_lang.Transform.program c.Bb_lang.Transform.input
  in
  match
    Bb_lang.Transform.Apply.check_preserves ~semantics ~equal:( = ) ctx
      Bb_lang.Figures.sequence
  with
  | Ok () -> ()
  | Error i -> Alcotest.failf "transformation %d changed the semantics" (i + 1)

let test_all_preconditions_hold_in_order () =
  let ctx = Bb_lang.Figures.initial_context () in
  let _, steps = Bb_lang.Transform.Apply.sequence ctx Bb_lang.Figures.sequence in
  Alcotest.(check (list bool)) "all applied" [ true; true; true; true; true ]
    (List.map (fun s -> s.Bb_lang.Transform.Apply.applied) steps)

let test_skipping_enabler_disables_dependents () =
  (* applying [T1; T3; T4; T5] must apply only T1 and T4 (section 2.1) *)
  let ctx = Bb_lang.Figures.initial_context () in
  let seq = Bb_lang.Figures.[ t1; t3; t4; t5 ] in
  let _, steps = Bb_lang.Transform.Apply.sequence ctx seq in
  Alcotest.(check (list bool)) "T3, T5 skipped" [ true; false; true; false ]
    (List.map (fun s -> s.Bb_lang.Transform.Apply.applied) steps)

let test_split_block_effect () =
  let ctx = Bb_lang.Figures.initial_context () in
  let ctx = Bb_lang.Transform.Apply.sequence_ctx ctx [ Bb_lang.Figures.t1 ] in
  let p = ctx.Bb_lang.Transform.program in
  Alcotest.(check int) "two blocks" 2 (List.length p.Bb_lang.Syntax.blocks);
  match Bb_lang.Syntax.find_block p "a" with
  | Some a ->
      Alcotest.(check int) "one instruction left in a" 1 (List.length a.Bb_lang.Syntax.instrs);
      Alcotest.(check bool) "a branches to b" true (a.Bb_lang.Syntax.term = Bb_lang.Syntax.Goto "b")
  | None -> Alcotest.fail "block a missing"

let test_add_dead_block_records_fact () =
  let ctx = Bb_lang.Figures.initial_context () in
  let ctx =
    Bb_lang.Transform.Apply.sequence_ctx ctx Bb_lang.Figures.[ t1; t2 ]
  in
  Alcotest.(check bool) "fact recorded" true
    (Bb_lang.Transform.String_set.mem "c" ctx.Bb_lang.Transform.dead_blocks)

let test_add_store_requires_dead_fact () =
  let ctx = Bb_lang.Figures.initial_context () in
  (* T3 without T2: precondition must fail *)
  let ctx1 = Bb_lang.Transform.Apply.sequence_ctx ctx [ Bb_lang.Figures.t1 ] in
  Alcotest.(check bool) "T3 blocked without the fact" false
    (Bb_lang.Transform.precondition ctx1 Bb_lang.Figures.t3)

let test_change_rhs_requires_equality () =
  let ctx = Bb_lang.Figures.initial_context () in
  let ctx = Bb_lang.Transform.Apply.sequence_ctx ctx Bb_lang.Figures.[ t1; t2 ] in
  (* u := true at a[1]; i = Int 1, not true, so ChangeRHS(a,1,i) must fail *)
  Alcotest.(check bool) "wrong input variable rejected" false
    (Bb_lang.Transform.precondition ctx (Bb_lang.Transform.Change_rhs ("a", 1, "i")));
  Alcotest.(check bool) "k accepted" true
    (Bb_lang.Transform.precondition ctx Bb_lang.Figures.t5)

let test_fresh_name_collision_rejected () =
  let ctx = Bb_lang.Figures.initial_context () in
  (* "s" is an existing variable: not fresh *)
  Alcotest.(check bool) "existing name not fresh" false
    (Bb_lang.Transform.precondition ctx (Bb_lang.Transform.Split_block ("a", 1, "s")))

(* ------------------------------------------------------------------ *)
(* The Figure 5 walkthrough: buggy compiler + reducer *)

let exhibits seq =
  let ctx =
    Bb_lang.Transform.Apply.sequence_ctx (Bb_lang.Figures.initial_context ()) seq
  in
  Bb_lang.Compiler.exhibits_bug ~impl:Bb_lang.Compiler.run_buggy ctx

let test_full_sequence_triggers_bug () =
  Alcotest.(check bool) "T1..T5 triggers" true (exhibits Bb_lang.Figures.sequence)

let test_original_does_not_trigger () =
  Alcotest.(check bool) "empty sequence fine" false (exhibits [])

let test_correct_compiler_never_caught () =
  let ctx =
    Bb_lang.Transform.Apply.sequence_ctx
      (Bb_lang.Figures.initial_context ())
      Bb_lang.Figures.sequence
  in
  Alcotest.(check bool) "correct impl agrees" false
    (Bb_lang.Compiler.exhibits_bug ~impl:Bb_lang.Compiler.run_correct ctx)

let test_reduction_finds_figure5_sequence () =
  let reduced, _ = Tbct.Reducer.reduce ~is_interesting:exhibits Bb_lang.Figures.sequence in
  Alcotest.(check (list string)) "minimized = [T1; T2; T5]"
    (List.map Bb_lang.Transform.type_id Bb_lang.Figures.minimized)
    (List.map Bb_lang.Transform.type_id reduced);
  Alcotest.(check bool) "exact transformations" true
    (reduced = Bb_lang.Figures.minimized)

let test_minimized_intermediate_programs () =
  (* Figure 5: P0..P2 do not trigger, P3 does *)
  let prefixes = [ []; [ Bb_lang.Figures.t1 ]; Bb_lang.Figures.[ t1; t2 ]; Bb_lang.Figures.minimized ] in
  let results = List.map exhibits prefixes in
  Alcotest.(check (list bool)) "ticks and cross" [ false; false; false; true ] results

(* ------------------------------------------------------------------ *)
(* Randomized: transformations never change semantics *)

let random_transformation rng ctx =
  let p = ctx.Bb_lang.Transform.program in
  let blocks = Bb_lang.Syntax.block_names p in
  let vars = Bb_lang.Syntax.variables p in
  let fresh prefix = Printf.sprintf "%s%d" prefix (Tbct.Rng.int rng 100000) in
  let b = Tbct.Rng.choose rng blocks in
  let block = Option.get (Bb_lang.Syntax.find_block p b) in
  let o = Tbct.Rng.int rng (List.length block.Bb_lang.Syntax.instrs + 1) in
  match Tbct.Rng.int rng 5 with
  | 0 -> Bb_lang.Transform.Split_block (b, o, fresh "blk")
  | 1 -> Bb_lang.Transform.Add_dead_block (b, fresh "dead", fresh "guard")
  | 2 -> Bb_lang.Transform.Add_load (b, o, fresh "v", Tbct.Rng.choose rng ("s" :: vars))
  | 3 ->
      let v = match vars with [] -> "s" | _ -> Tbct.Rng.choose rng vars in
      Bb_lang.Transform.Add_store (b, o, v, v)
  | _ -> Bb_lang.Transform.Change_rhs (b, o, Tbct.Rng.choose rng [ "i"; "j"; "k" ])

let prop_random_sequences_preserve_semantics =
  QCheck.Test.make ~name:"random transformation sequences preserve output" ~count:100
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Tbct.Rng.make seed in
      let ctx0 = Bb_lang.Figures.initial_context () in
      let expected = Bb_lang.Interp.run Bb_lang.Figures.original Bb_lang.Figures.input in
      let rec go ctx n =
        if n = 0 then true
        else begin
          let t = random_transformation rng ctx in
          let ctx =
            if Bb_lang.Transform.precondition ctx t then Bb_lang.Transform.apply ctx t
            else ctx
          in
          let actual =
            Bb_lang.Interp.run ctx.Bb_lang.Transform.program ctx.Bb_lang.Transform.input
          in
          actual = expected && go ctx (n - 1)
        end
      in
      go ctx0 30)

(* ------------------------------------------------------------------ *)
(* The bb_lang fuzzer *)

let test_bb_fuzzer_preserves_output () =
  let ctx0 = Bb_lang.Figures.initial_context () in
  let expected = Bb_lang.Interp.run Bb_lang.Figures.original Bb_lang.Figures.input in
  for seed = 1 to 20 do
    let r = Bb_lang.Fuzzer.run ~seed ctx0 in
    let actual =
      Bb_lang.Interp.run r.Bb_lang.Fuzzer.final.Bb_lang.Transform.program
        r.Bb_lang.Fuzzer.final.Bb_lang.Transform.input
    in
    if actual <> expected then Alcotest.failf "seed %d changed the output" seed
  done

let test_bb_fuzzer_replay () =
  let ctx0 = Bb_lang.Figures.initial_context () in
  for seed = 1 to 10 do
    let r = Bb_lang.Fuzzer.run ~seed ctx0 in
    let replayed =
      Bb_lang.Transform.Apply.sequence_ctx ctx0 r.Bb_lang.Fuzzer.transformations
    in
    if
      not
        (Bb_lang.Syntax.equal_program
           replayed.Bb_lang.Transform.program
           r.Bb_lang.Fuzzer.final.Bb_lang.Transform.program)
    then Alcotest.failf "seed %d: replay diverged" seed
  done

let test_bb_fuzzer_emits () =
  let ctx0 = Bb_lang.Figures.initial_context () in
  let r = Bb_lang.Fuzzer.run ~seed:5 ctx0 in
  Alcotest.(check bool) "applied several" true
    (List.length r.Bb_lang.Fuzzer.transformations >= 5)

(* ------------------------------------------------------------------ *)
(* The section 2.1 "weekend of fuzzing" walkthrough: two distinct bugs,
   many reduced tests, Figure 6 picks one representative per bug. *)

let weekend_dedup () =
  let ctx0 = Bb_lang.Figures.initial_context () in
  let impls =
    [ ("lowering", Bb_lang.Compiler.run_buggy);
      ("scheduler", Bb_lang.Compiler.run_buggy_scheduler) ]
  in
  (* fuzz many seeds; for each bug-triggering variant, reduce it and record
     the minimized transformation-type set with its ground-truth bug *)
  let reduced_tests = ref [] in
  for seed = 1 to 120 do
    let r = Bb_lang.Fuzzer.run ~seed ctx0 in
    List.iter
      (fun (bug_name, impl) ->
        let exhibits seq =
          let ctx = Bb_lang.Transform.Apply.sequence_ctx ctx0 seq in
          Bb_lang.Compiler.exhibits_bug ~impl ctx
        in
        if exhibits r.Bb_lang.Fuzzer.transformations then begin
          let kept, _ =
            Tbct.Reducer.reduce ~is_interesting:exhibits r.Bb_lang.Fuzzer.transformations
          in
          reduced_tests := (bug_name, kept) :: !reduced_tests
        end)
      impls
  done;
  !reduced_tests

let test_weekend_dedup () =
  let tests = weekend_dedup () in
  let bugs_present =
    List.sort_uniq compare (List.map fst tests)
  in
  (* both bugs must actually be triggered by the fuzzer at this scale *)
  Alcotest.(check (list string)) "both bugs found" [ "lowering"; "scheduler" ] bugs_present;
  (* Figure 6 over the reduced transformation-type sets *)
  let config =
    {
      Tbct.Dedup.types_of =
        (fun (_, kept) ->
          List.fold_left
            (fun acc t -> Tbct.Dedup.String_set.add (Bb_lang.Transform.type_id t) acc)
            Tbct.Dedup.String_set.empty kept);
      Tbct.Dedup.ignored = Tbct.Dedup.String_set.empty;
    }
  in
  let selected = Tbct.Dedup.select config tests in
  Alcotest.(check bool) "selection is small" true
    (List.length selected <= 4 && List.length selected >= 1);
  Alcotest.(check bool) "pairwise disjoint" true
    (Tbct.Dedup.pairwise_disjoint config selected);
  (* the selected tests cover at least one of the two distinct bugs, and the
     duplicate rate stays low (at most one duplicate pair here) *)
  let distinct = List.sort_uniq compare (List.map fst selected) in
  Alcotest.(check bool) "low duplicate rate" true
    (List.length selected - List.length distinct <= 1)

(* ------------------------------------------------------------------ *)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "bb_lang"
    [
      ( "interp",
        [
          Alcotest.test_case "Figure 4 original prints 6" `Quick test_original_prints_6;
          Alcotest.test_case "undefined variable reads zero" `Quick
            test_undefined_variable_reads_zero;
          Alcotest.test_case "infinite loop not well-defined" `Quick
            test_infinite_loop_not_well_defined;
          Alcotest.test_case "conditional branches" `Quick test_cond_goto_branches;
        ] );
      ( "transform",
        [
          Alcotest.test_case "each Figure 4 step preserves output" `Quick
            test_each_step_preserves_semantics;
          Alcotest.test_case "all preconditions hold in order" `Quick
            test_all_preconditions_hold_in_order;
          Alcotest.test_case "skipping an enabler disables dependents" `Quick
            test_skipping_enabler_disables_dependents;
          Alcotest.test_case "SplitBlock effect" `Quick test_split_block_effect;
          Alcotest.test_case "AddDeadBlock records the fact" `Quick
            test_add_dead_block_records_fact;
          Alcotest.test_case "AddStore requires the dead fact" `Quick
            test_add_store_requires_dead_fact;
          Alcotest.test_case "ChangeRHS requires guaranteed equality" `Quick
            test_change_rhs_requires_equality;
          Alcotest.test_case "fresh-name collisions rejected" `Quick
            test_fresh_name_collision_rejected;
        ]
        @ qcheck [ prop_random_sequences_preserve_semantics ] );
      ( "fuzzer",
        [
          Alcotest.test_case "preserves output" `Quick test_bb_fuzzer_preserves_output;
          Alcotest.test_case "replay reproduces" `Quick test_bb_fuzzer_replay;
          Alcotest.test_case "emits transformations" `Quick test_bb_fuzzer_emits;
          Alcotest.test_case "weekend-of-fuzzing dedup (section 2.1)" `Slow
            test_weekend_dedup;
        ] );
      ( "figure5",
        [
          Alcotest.test_case "full sequence triggers the bug" `Quick
            test_full_sequence_triggers_bug;
          Alcotest.test_case "original does not trigger" `Quick test_original_does_not_trigger;
          Alcotest.test_case "correct compiler never caught" `Quick
            test_correct_compiler_never_caught;
          Alcotest.test_case "reduction finds [T1; T2; T5]" `Quick
            test_reduction_finds_figure5_sequence;
          Alcotest.test_case "intermediate programs P0..P3" `Quick
            test_minimized_intermediate_programs;
        ] );
    ]
