(* Tests for the IR substrate: builder, validator, interpreter, dominance,
   disassembler/assembler round trips, and generator properties. *)

open Spirv_ir

let check_valid name m =
  match Validate.check m with
  | Ok () -> ()
  | Error (e :: _) -> Alcotest.failf "%s: %s" name (Validate.error_to_string e)
  | Error [] -> Alcotest.failf "%s: invalid with no errors?" name

(* A minimal module: main stores vec4(x/8, y/8, u, 1) to the output. *)
let simple_module () =
  let b = Builder.create () in
  let void_t = Builder.void_ty b in
  let frag = Builder.frag_coord b in
  let out = Builder.output_color b in
  let u = Builder.uniform b ~pointee:(Builder.float_ty b) ~name:"u" in
  let fb, main, _ = Builder.begin_function b ~name:"main" ~ret:void_t ~params:[] in
  let l = Builder.new_label fb in
  Builder.start_block fb l;
  let fc = Builder.load fb frag in
  let x = Builder.extract fb fc [ 0 ] in
  let y = Builder.extract fb fc [ 1 ] in
  let eighth = Builder.cfloat b 0.125 in
  let r = Builder.fmul fb x eighth in
  let g = Builder.fmul fb y eighth in
  let uv = Builder.load fb u in
  let one = Builder.cfloat b 1.0 in
  let color = Builder.composite fb ~ty:(Builder.vec4f b) [ r; g; uv; one ] in
  Builder.store fb out color;
  Builder.ret fb;
  ignore (Builder.end_function fb);
  Builder.finish b ~entry:main

let simple_input = Input.make ~width:4 ~height:4 [ ("u", Value.VFloat 0.5) ]

(* ------------------------------------------------------------------ *)
(* Builder + validator *)

let test_simple_module_valid () = check_valid "simple module" (simple_module ())

let test_validator_rejects_bad_entry () =
  let m = simple_module () in
  let m = { m with Module_ir.entry = 9999 } in
  Alcotest.(check bool) "invalid entry" false (Validate.is_valid m)

let test_validator_rejects_duplicate_ids () =
  let m = simple_module () in
  let m =
    { m with Module_ir.constants = m.Module_ir.constants @ m.Module_ir.constants }
  in
  Alcotest.(check bool) "duplicate constants" false (Validate.is_valid m)

let test_validator_rejects_use_before_def () =
  (* build main where an instruction uses an id defined later in the block *)
  let b = Builder.create () in
  let void_t = Builder.void_ty b in
  let out = Builder.output_color b in
  let fb, main, _ = Builder.begin_function b ~name:"main" ~ret:void_t ~params:[] in
  let l = Builder.new_label fb in
  Builder.start_block fb l;
  let one = Builder.cfloat b 1.0 in
  let v = Builder.fadd fb one one in
  let w = Builder.fadd fb v one in
  let color = Builder.composite fb ~ty:(Builder.vec4f b) [ v; w; one; one ] in
  Builder.store fb out color;
  Builder.ret fb;
  ignore (Builder.end_function fb);
  let m = Builder.finish b ~entry:main in
  check_valid "in-order module" m;
  (* now swap the two adds so that [w] uses [v] before its definition *)
  let swap_adds (f : Func.t) =
    let blocks =
      List.map
        (fun (blk : Block.t) ->
          match blk.Block.instrs with
          | i1 :: i2 :: rest when not (Instr.is_phi i1) ->
              { blk with Block.instrs = (i2 :: i1 :: rest) }
          | _ -> blk)
        f.Func.blocks
    in
    { f with Func.blocks = blocks }
  in
  let m_bad =
    { m with Module_ir.functions = List.map swap_adds m.Module_ir.functions }
  in
  Alcotest.(check bool) "use before def rejected" false (Validate.is_valid m_bad)

let test_validator_rejects_type_mismatch () =
  let b = Builder.create () in
  let void_t = Builder.void_ty b in
  let out = Builder.output_color b in
  let fb, main, _ = Builder.begin_function b ~name:"main" ~ret:void_t ~params:[] in
  let l = Builder.new_label fb in
  Builder.start_block fb l;
  let i1 = Builder.cint b 1 in
  (* manually emit a float add over ints *)
  let bad = Builder.instr fb ~ty:(Builder.int_ty b) (Instr.Binop (Instr.FAdd, i1, i1)) in
  ignore bad;
  let one = Builder.cfloat b 1.0 in
  let color = Builder.composite fb ~ty:(Builder.vec4f b) [ one; one; one; one ] in
  Builder.store fb out color;
  Builder.ret fb;
  ignore (Builder.end_function fb);
  let m = Builder.finish b ~entry:main in
  Alcotest.(check bool) "FAdd on ints rejected" false (Validate.is_valid m)

let test_validator_rejects_store_to_uniform () =
  let b = Builder.create () in
  let void_t = Builder.void_ty b in
  let out = Builder.output_color b in
  let u = Builder.uniform b ~pointee:(Builder.float_ty b) ~name:"u" in
  let fb, main, _ = Builder.begin_function b ~name:"main" ~ret:void_t ~params:[] in
  let l = Builder.new_label fb in
  Builder.start_block fb l;
  let one = Builder.cfloat b 1.0 in
  Builder.store fb u one;
  let color = Builder.composite fb ~ty:(Builder.vec4f b) [ one; one; one; one ] in
  Builder.store fb out color;
  Builder.ret fb;
  ignore (Builder.end_function fb);
  let m = Builder.finish b ~entry:main in
  Alcotest.(check bool) "store to uniform rejected" false (Validate.is_valid m)

let test_validator_rejects_recursion () =
  let b = Builder.create () in
  let void_t = Builder.void_ty b in
  let float_t = Builder.float_ty b in
  let out = Builder.output_color b in
  (* f calls itself *)
  let fb, f_id, _ = Builder.begin_function b ~name:"f" ~ret:float_t ~params:[] in
  let l = Builder.new_label fb in
  Builder.start_block fb l;
  let r = Builder.call fb f_id [] in
  Builder.ret_value fb r;
  ignore (Builder.end_function fb);
  let fb, main, _ = Builder.begin_function b ~name:"main" ~ret:void_t ~params:[] in
  let l = Builder.new_label fb in
  Builder.start_block fb l;
  let one = Builder.cfloat b 1.0 in
  let color = Builder.composite fb ~ty:(Builder.vec4f b) [ one; one; one; one ] in
  Builder.store fb out color;
  Builder.ret fb;
  ignore (Builder.end_function fb);
  let m = Builder.finish b ~entry:main in
  Alcotest.(check bool) "recursion rejected" false (Validate.is_valid m)

(* ------------------------------------------------------------------ *)
(* Interpreter *)

let test_render_simple () =
  let m = simple_module () in
  match Interp.render m simple_input with
  | Error t -> Alcotest.failf "render failed: %s" (Interp.trap_to_string t)
  | Ok img -> (
      match Image.get img ~x:2 ~y:1 with
      | Image.Color (Value.VComposite [| Value.VFloat r; Value.VFloat g; Value.VFloat u; Value.VFloat a |]) ->
          Alcotest.(check (float 1e-12)) "r = (2+0.5)/8" 0.3125 r;
          Alcotest.(check (float 1e-12)) "g = (1+0.5)/8" 0.1875 g;
          Alcotest.(check (float 1e-12)) "u uniform" 0.5 u;
          Alcotest.(check (float 1e-12)) "alpha" 1.0 a
      | _ -> Alcotest.fail "unexpected pixel shape")

let test_render_missing_uniform () =
  let m = simple_module () in
  match Interp.render m (Input.make ~width:2 ~height:2 []) with
  | Error (Interp.Missing_uniform "u") -> ()
  | Error t -> Alcotest.failf "wrong trap: %s" (Interp.trap_to_string t)
  | Ok _ -> Alcotest.fail "expected a trap"

let test_render_deterministic () =
  let m = simple_module () in
  match (Interp.render m simple_input, Interp.render m simple_input) with
  | Ok a, Ok b -> Alcotest.(check bool) "same image" true (Image.equal a b)
  | _ -> Alcotest.fail "render failed"

(* a module with an infinite loop must hit the step limit *)
let test_step_limit () =
  let b = Builder.create () in
  let void_t = Builder.void_ty b in
  let out = Builder.output_color b in
  ignore out;
  let fb, main, _ = Builder.begin_function b ~name:"main" ~ret:void_t ~params:[] in
  let l0 = Builder.new_label fb in
  let l1 = Builder.new_label fb in
  Builder.start_block fb l0;
  Builder.branch fb l1;
  Builder.start_block fb l1;
  Builder.branch fb l1;
  ignore (Builder.end_function fb);
  let m = Builder.finish b ~entry:main in
  (* note: branch-to-self from l1 is a loop; validator accepts it (l1
     dominates itself) *)
  match Interp.render ~step_limit:1000 m (Input.make ~width:1 ~height:1 []) with
  | Error Interp.Step_limit_exceeded -> ()
  | Error t -> Alcotest.failf "wrong trap: %s" (Interp.trap_to_string t)
  | Ok _ -> Alcotest.fail "expected step-limit trap"

let test_kill_pixel () =
  let b = Builder.create () in
  let void_t = Builder.void_ty b in
  let frag = Builder.frag_coord b in
  let out = Builder.output_color b in
  let fb, main, _ = Builder.begin_function b ~name:"main" ~ret:void_t ~params:[] in
  let l0 = Builder.new_label fb in
  let l_kill = Builder.new_label fb in
  let l_color = Builder.new_label fb in
  Builder.start_block fb l0;
  let fc = Builder.load fb frag in
  let x = Builder.extract fb fc [ 0 ] in
  let half = Builder.cfloat b 2.0 in
  let c = Builder.flt fb x half in
  Builder.branch_cond fb c l_kill l_color;
  Builder.start_block fb l_kill;
  Builder.kill fb;
  Builder.start_block fb l_color;
  let one = Builder.cfloat b 1.0 in
  let color = Builder.composite fb ~ty:(Builder.vec4f b) [ one; one; one; one ] in
  Builder.store fb out color;
  Builder.ret fb;
  ignore (Builder.end_function fb);
  let m = Builder.finish b ~entry:main in
  check_valid "kill module" m;
  match Interp.render m (Input.make ~width:4 ~height:1 []) with
  | Error t -> Alcotest.failf "render failed: %s" (Interp.trap_to_string t)
  | Ok img ->
      (* x = 0.5, 1.5 are < 2.0 -> killed; x = 2.5, 3.5 -> white *)
      Alcotest.(check bool) "pixel 0 killed" true (Image.get img ~x:0 ~y:0 = Image.Killed);
      Alcotest.(check bool) "pixel 1 killed" true (Image.get img ~x:1 ~y:0 = Image.Killed);
      Alcotest.(check bool) "pixel 2 colored" true (Image.get img ~x:2 ~y:0 <> Image.Killed);
      Alcotest.(check bool) "pixel 3 colored" true (Image.get img ~x:3 ~y:0 <> Image.Killed)

(* loop: sum 0..4 via phi, check function result *)
let test_loop_phi_function () =
  let b = Builder.create () in
  let int_t = Builder.int_ty b in
  let void_t = Builder.void_ty b in
  let out = Builder.output_color b in
  (* fn sum(n) = 0+1+...+(n-1) *)
  let fb, sum_id, params = Builder.begin_function b ~name:"sum" ~ret:int_t ~params:[ int_t ] in
  let n = List.hd params in
  let zero = Builder.cint b 0 in
  let one = Builder.cint b 1 in
  let l0 = Builder.new_label fb in
  let header = Builder.new_label fb in
  let body = Builder.new_label fb in
  let exit = Builder.new_label fb in
  Builder.start_block fb l0;
  Builder.branch fb header;
  Builder.start_block fb header;
  let i = Builder.phi fb ~ty:int_t [ (zero, l0); (0, body) ] in
  let acc = Builder.phi fb ~ty:int_t [ (zero, l0); (0, body) ] in
  let c = Builder.slt fb i n in
  Builder.branch_cond fb c body exit;
  Builder.start_block fb body;
  let acc' = Builder.iadd fb acc i in
  let i' = Builder.iadd fb i one in
  Builder.patch_phi fb ~phi:i ~pred:body ~value:i';
  Builder.patch_phi fb ~phi:acc ~pred:body ~value:acc';
  Builder.branch fb header;
  Builder.start_block fb exit;
  Builder.ret_value fb acc;
  ignore (Builder.end_function fb);
  (* main: required for a well-formed module *)
  let fb, main, _ = Builder.begin_function b ~name:"main" ~ret:void_t ~params:[] in
  let l = Builder.new_label fb in
  Builder.start_block fb l;
  let one_f = Builder.cfloat b 1.0 in
  let color = Builder.composite fb ~ty:(Builder.vec4f b) [ one_f; one_f; one_f; one_f ] in
  Builder.store fb out color;
  Builder.ret fb;
  ignore (Builder.end_function fb);
  let m = Builder.finish b ~entry:main in
  check_valid "loop module" m;
  match Interp.run_function m ~fn:sum_id ~args:[ Value.VInt 5l ] with
  | Ok (Some (Value.VInt r)) -> Alcotest.(check int32) "sum 0..4" 10l r
  | Ok _ -> Alcotest.fail "unexpected result shape"
  | Error t -> Alcotest.failf "trap: %s" (Interp.trap_to_string t)

let test_division_by_zero_is_total () =
  let b = Builder.create () in
  let int_t = Builder.int_ty b in
  let void_t = Builder.void_ty b in
  let out = Builder.output_color b in
  let fb, div_id, params = Builder.begin_function b ~name:"divz" ~ret:int_t ~params:[ int_t ] in
  let n = List.hd params in
  let zero = Builder.cint b 0 in
  let l = Builder.new_label fb in
  Builder.start_block fb l;
  let q = Builder.sdiv fb n zero in
  Builder.ret_value fb q;
  ignore (Builder.end_function fb);
  let fb, main, _ = Builder.begin_function b ~name:"main" ~ret:void_t ~params:[] in
  let l = Builder.new_label fb in
  Builder.start_block fb l;
  let one_f = Builder.cfloat b 1.0 in
  let color = Builder.composite fb ~ty:(Builder.vec4f b) [ one_f; one_f; one_f; one_f ] in
  Builder.store fb out color;
  Builder.ret fb;
  ignore (Builder.end_function fb);
  let m = Builder.finish b ~entry:main in
  match Interp.run_function m ~fn:div_id ~args:[ Value.VInt 17l ] with
  | Ok (Some (Value.VInt r)) -> Alcotest.(check int32) "17/0 = 0" 0l r
  | _ -> Alcotest.fail "division by zero must be total"

(* ------------------------------------------------------------------ *)
(* Dominance *)

(* diamond: a -> {b, c} -> d *)
let diamond_func () =
  let b = Builder.create () in
  let void_t = Builder.void_ty b in
  let out = Builder.output_color b in
  let fb, main, _ = Builder.begin_function b ~name:"main" ~ret:void_t ~params:[] in
  let la = Builder.new_label fb in
  let lb = Builder.new_label fb in
  let lc = Builder.new_label fb in
  let ld = Builder.new_label fb in
  let t = Builder.cbool b true in
  Builder.start_block fb la;
  Builder.branch_cond fb t lb lc;
  Builder.start_block fb lb;
  Builder.branch fb ld;
  Builder.start_block fb lc;
  Builder.branch fb ld;
  Builder.start_block fb ld;
  let one = Builder.cfloat b 1.0 in
  let color = Builder.composite fb ~ty:(Builder.vec4f b) [ one; one; one; one ] in
  Builder.store fb out color;
  Builder.ret fb;
  ignore (Builder.end_function fb);
  let m = Builder.finish b ~entry:main in
  (m, Module_ir.entry_function m, (la, lb, lc, ld))

let test_dominance_diamond () =
  let _, f, (la, lb, lc, ld) = diamond_func () in
  let dom = Dominance.compute (Cfg.of_func f) in
  Alcotest.(check bool) "a dom b" true (Dominance.dominates dom la lb);
  Alcotest.(check bool) "a dom d" true (Dominance.dominates dom la ld);
  Alcotest.(check bool) "b not dom d" false (Dominance.dominates dom lb ld);
  Alcotest.(check bool) "c not dom d" false (Dominance.dominates dom lc ld);
  Alcotest.(check bool) "reflexive" true (Dominance.dominates dom lb lb);
  Alcotest.(check (option int)) "idom d = a" (Some la) (Dominance.idom dom ld);
  Alcotest.(check (option int)) "idom b = a" (Some la) (Dominance.idom dom lb)

let test_cfg_preds_succs () =
  let _, f, (la, lb, lc, ld) = diamond_func () in
  let cfg = Cfg.of_func f in
  Alcotest.(check (list int)) "succs a" [ lb; lc ] (Cfg.successors cfg la);
  Alcotest.(check (list int)) "preds d" [ lb; lc ]
    (List.sort compare (Cfg.predecessors cfg ld));
  Alcotest.(check (list int)) "preds a" [] (Cfg.predecessors cfg la)

let test_unreachable_block_not_reachable () =
  let _, f, _ = diamond_func () in
  let cfg = Cfg.of_func f in
  Alcotest.(check int) "all four reachable" 4 (List.length (Cfg.reachable_labels cfg))

(* loop: entry -> header <-> body, header -> exit *)
let loop_func () =
  let b = Builder.create () in
  let void_t = Builder.void_ty b in
  let out = Builder.output_color b in
  let fb, main, _ = Builder.begin_function b ~name:"main" ~ret:void_t ~params:[] in
  let l0 = Builder.new_label fb in
  let header = Builder.new_label fb in
  let body = Builder.new_label fb in
  let exit = Builder.new_label fb in
  let zero = Builder.cint b 0 in
  let limit = Builder.cint b 3 in
  let one_i = Builder.cint b 1 in
  Builder.start_block fb l0;
  Builder.branch fb header;
  Builder.start_block fb header;
  let i = Builder.phi fb ~ty:(Builder.int_ty b) [ (zero, l0); (0, body) ] in
  let c = Builder.slt fb i limit in
  Builder.branch_cond fb c body exit;
  Builder.start_block fb body;
  let i' = Builder.iadd fb i one_i in
  Builder.patch_phi fb ~phi:i ~pred:body ~value:i';
  Builder.branch fb header;
  Builder.start_block fb exit;
  let one = Builder.cfloat b 1.0 in
  let color = Builder.composite fb ~ty:(Builder.vec4f b) [ one; one; one; one ] in
  Builder.store fb out color;
  Builder.ret fb;
  ignore (Builder.end_function fb);
  let m = Builder.finish b ~entry:main in
  (m, Module_ir.entry_function m, (l0, header, body, exit))

let test_dominance_loop () =
  let m, f, (l0, header, body, exit) = loop_func () in
  check_valid "loop module" m;
  let dom = Dominance.compute (Cfg.of_func f) in
  (* the header dominates the body and the exit; the body dominates nothing
     else (the back edge does not make it dominate the header) *)
  Alcotest.(check bool) "header dom body" true (Dominance.dominates dom header body);
  Alcotest.(check bool) "header dom exit" true (Dominance.dominates dom header exit);
  Alcotest.(check bool) "body not dom header" false
    (Dominance.strictly_dominates dom body header);
  Alcotest.(check bool) "body not dom exit" false (Dominance.dominates dom body exit);
  Alcotest.(check (option int)) "idom body = header" (Some header) (Dominance.idom dom body);
  Alcotest.(check (option int)) "idom exit = header" (Some header) (Dominance.idom dom exit);
  Alcotest.(check (option int)) "idom header = entry" (Some l0) (Dominance.idom dom header);
  Alcotest.(check (option int)) "entry has no idom" None (Dominance.idom dom l0)

let test_dominance_unreachable_block () =
  let m, f, _ = diamond_func () in
  ignore m;
  (* graft an unreachable block onto the function *)
  let orphan =
    { Block.label = 99999; Block.instrs = []; Block.terminator = Block.Return }
  in
  let f = { f with Func.blocks = f.Func.blocks @ [ orphan ] } in
  let cfg = Cfg.of_func f in
  let dom = Dominance.compute cfg in
  Alcotest.(check bool) "orphan unreachable" false (Cfg.is_reachable cfg 99999);
  Alcotest.(check bool) "nothing dominates the orphan" false
    (Dominance.dominates dom (Func.entry_block f).Block.label 99999);
  Alcotest.(check bool) "the orphan dominates nothing" false
    (Dominance.dominates dom 99999 (Func.entry_block f).Block.label);
  Alcotest.(check (option int)) "no idom" None (Dominance.idom dom 99999)

(* ------------------------------------------------------------------ *)
(* substitute_nth_use properties *)

let prop_substitute_nth_use =
  (* over a few representative shapes: substitution hits exactly the
     requested operand slot and nothing else *)
  let shapes =
    [
      Instr.make ~result:100 ~ty:1 (Instr.Binop (Instr.IAdd, 10, 11));
      Instr.make ~result:100 ~ty:1 (Instr.Select (10, 11, 12));
      Instr.make ~result:100 ~ty:1 (Instr.CompositeConstruct [ 10; 11; 12; 13 ]);
      Instr.make_void (Instr.Store (10, 11));
      Instr.make ~result:100 ~ty:1 (Instr.AccessChain (10, [ 11; 12 ]));
      Instr.make ~result:100 ~ty:1 (Instr.FunctionCall (9, [ 10; 11 ]));
      Instr.make ~result:100 ~ty:1 (Instr.Phi [ (10, 20); (11, 21) ]);
    ]
  in
  QCheck.Test.make ~name:"substitute_nth_use hits exactly one slot" ~count:200
    QCheck.(pair (int_bound (List.length shapes - 1)) (int_bound 12))
    (fun (which, n) ->
      let i = List.nth shapes which in
      let uses = Instr.used_ids i in
      match Instr.substitute_nth_use ~n ~new_id:777 i with
      | None ->
          (* out of range, a φ label slot, or a call callee slot *)
          n >= List.length uses
          || (match i.Instr.op with
             | Instr.Phi _ -> n mod 2 = 1
             | Instr.FunctionCall _ -> n = 0
             | _ -> false)
      | Some i' ->
          let uses' = Instr.used_ids i' in
          List.length uses = List.length uses'
          && List.for_all2
               (fun k (u, u') -> if k = n then u' = 777 else u = u')
               (List.init (List.length uses) Fun.id)
               (List.combine uses uses'))

(* ------------------------------------------------------------------ *)
(* Disasm / Asm round trip *)

let test_roundtrip_simple () =
  let m = simple_module () in
  let text = Disasm.to_string m in
  let m' = Asm.of_string text in
  Alcotest.(check bool) "round trip equal" true (Module_ir.equal m m')

let test_roundtrip_generated () =
  let rng = Tbct.Rng.make 12345 in
  for _ = 1 to 20 do
    let m = Generator.generate rng in
    let text = Disasm.to_string m in
    let m' = Asm.of_string text in
    if not (Module_ir.equal m m') then begin
      print_string text;
      Alcotest.fail "generated module did not round trip"
    end
  done

let test_asm_rejects_garbage () =
  match Asm.of_string_result "this is not assembly" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted"

let test_asm_rejects_unterminated_function () =
  let m = simple_module () in
  let text = Disasm.to_string m in
  (* drop the final OpFunctionEnd *)
  let lines = String.split_on_char '\n' text in
  let truncated =
    List.filter (fun l -> not (String.equal l "OpFunctionEnd")) lines
  in
  match Asm.of_string_result (String.concat "\n" truncated) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unterminated function accepted"

let test_diff_empty_on_equal () =
  let m = simple_module () in
  let removed, added = Disasm.diff m m in
  Alcotest.(check int) "no removals" 0 (List.length removed);
  Alcotest.(check int) "no additions" 0 (List.length added)

(* ------------------------------------------------------------------ *)
(* Generator properties *)

let prop_generated_valid =
  QCheck.Test.make ~name:"generated modules validate" ~count:50
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let m = Generator.generate (Tbct.Rng.make seed) in
      Validate.is_valid m)

let prop_generated_well_defined =
  QCheck.Test.make ~name:"generated modules are well-defined on the default input"
    ~count:50
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let m = Generator.generate (Tbct.Rng.make seed) in
      Interp.well_defined m Generator.default_input)

let prop_render_deterministic =
  QCheck.Test.make ~name:"rendering is deterministic" ~count:20
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let m = Generator.generate (Tbct.Rng.make seed) in
      match (Interp.render m Generator.default_input, Interp.render m Generator.default_input) with
      | Ok a, Ok b -> Image.equal a b
      | _ -> false)

let prop_roundtrip =
  QCheck.Test.make ~name:"disasm/asm round trip" ~count:50
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let m = Generator.generate (Tbct.Rng.make seed) in
      Module_ir.equal m (Asm.of_string (Disasm.to_string m)))

(* ------------------------------------------------------------------ *)
(* Input parsing *)

let test_input_parsing () =
  match Input.of_string "width=4, height=2, u=0.5, n=3, flag=true, v=(1.0; 2.0)" with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok input ->
      Alcotest.(check int) "width" 4 input.Input.width;
      Alcotest.(check int) "height" 2 input.Input.height;
      Alcotest.(check bool) "u" true
        (Input.find_uniform input "u" = Some (Value.VFloat 0.5));
      Alcotest.(check bool) "n" true
        (Input.find_uniform input "n" = Some (Value.VInt 3l));
      Alcotest.(check bool) "flag" true
        (Input.find_uniform input "flag" = Some (Value.VBool true));
      Alcotest.(check bool) "vec" true
        (match Input.find_uniform input "v" with
        | Some (Value.VComposite [| Value.VFloat 1.0; Value.VFloat 2.0 |]) -> true
        | _ -> false)

let test_input_parsing_newlines_and_comments () =
  match Input.of_string "# grid\nwidth=2\n\nu=1.5" with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok input ->
      Alcotest.(check int) "width" 2 input.Input.width;
      Alcotest.(check bool) "u" true
        (Input.find_uniform input "u" = Some (Value.VFloat 1.5))

let test_input_parsing_errors () =
  (match Input.of_string "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing = accepted");
  (match Input.of_string "u=notavalue" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad value accepted");
  match Input.of_string "width=-3" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative width accepted"

(* ------------------------------------------------------------------ *)
(* Value / ops *)

let test_value_update_extract () =
  let v = Value.VComposite [| Value.VInt 1l; Value.VComposite [| Value.VInt 2l; Value.VInt 3l |] |] in
  let v' = Value.update_at_path v [ 1; 0 ] (Value.VInt 9l) in
  Alcotest.(check bool) "updated" true
    (Value.equal (Value.extract_at_path v' [ 1; 0 ]) (Value.VInt 9l));
  Alcotest.(check bool) "other leaf untouched" true
    (Value.equal (Value.extract_at_path v' [ 1; 1 ]) (Value.VInt 3l));
  Alcotest.(check bool) "original immutable" true
    (Value.equal (Value.extract_at_path v [ 1; 0 ]) (Value.VInt 2l))

let test_ops_vector_componentwise () =
  let vec a b = Value.VComposite [| Value.VFloat a; Value.VFloat b |] in
  let r = Ops.eval_binop Instr.FAdd (vec 1.0 2.0) (vec 10.0 20.0) in
  Alcotest.(check bool) "componentwise add" true (Value.equal r (vec 11.0 22.0))

let test_ops_nan_sanitized () =
  let r = Ops.eval_binop Instr.FDiv (Value.VFloat 0.0) (Value.VFloat 0.0) in
  Alcotest.(check bool) "0/0 = 0" true (Value.equal r (Value.VFloat 0.0));
  let big = Value.VFloat 1e308 in
  let r2 = Ops.eval_binop Instr.FMul big big in
  Alcotest.(check bool) "overflow sanitized" true (Value.equal r2 (Value.VFloat 0.0))

let test_ops_convert_clamps () =
  let r = Ops.eval_unop Instr.ConvertFToS (Value.VFloat 1e300) in
  Alcotest.(check bool) "clamped to max_int32" true (Value.equal r (Value.VInt Int32.max_int))

(* ------------------------------------------------------------------ *)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "spirv_ir"
    [
      ( "validate",
        [
          Alcotest.test_case "simple module valid" `Quick test_simple_module_valid;
          Alcotest.test_case "bad entry rejected" `Quick test_validator_rejects_bad_entry;
          Alcotest.test_case "duplicate ids rejected" `Quick test_validator_rejects_duplicate_ids;
          Alcotest.test_case "use before def rejected" `Quick test_validator_rejects_use_before_def;
          Alcotest.test_case "type mismatch rejected" `Quick test_validator_rejects_type_mismatch;
          Alcotest.test_case "store to uniform rejected" `Quick
            test_validator_rejects_store_to_uniform;
          Alcotest.test_case "recursion rejected" `Quick test_validator_rejects_recursion;
        ] );
      ( "interp",
        [
          Alcotest.test_case "render simple" `Quick test_render_simple;
          Alcotest.test_case "missing uniform traps" `Quick test_render_missing_uniform;
          Alcotest.test_case "render deterministic" `Quick test_render_deterministic;
          Alcotest.test_case "step limit" `Quick test_step_limit;
          Alcotest.test_case "kill leaves pixel unwritten" `Quick test_kill_pixel;
          Alcotest.test_case "loop with phis" `Quick test_loop_phi_function;
          Alcotest.test_case "division by zero total" `Quick test_division_by_zero_is_total;
        ] );
      ( "dominance",
        [
          Alcotest.test_case "diamond" `Quick test_dominance_diamond;
          Alcotest.test_case "cfg preds/succs" `Quick test_cfg_preds_succs;
          Alcotest.test_case "reachability" `Quick test_unreachable_block_not_reachable;
          Alcotest.test_case "loop dominators" `Quick test_dominance_loop;
          Alcotest.test_case "unreachable orphan block" `Quick
            test_dominance_unreachable_block;
        ]
        @ qcheck [ prop_substitute_nth_use ] );
      ( "asm",
        [
          Alcotest.test_case "round trip simple" `Quick test_roundtrip_simple;
          Alcotest.test_case "round trip generated" `Quick test_roundtrip_generated;
          Alcotest.test_case "rejects garbage" `Quick test_asm_rejects_garbage;
          Alcotest.test_case "rejects unterminated function" `Quick
            test_asm_rejects_unterminated_function;
          Alcotest.test_case "diff empty on equal" `Quick test_diff_empty_on_equal;
        ] );
      ( "input",
        [
          Alcotest.test_case "parsing" `Quick test_input_parsing;
          Alcotest.test_case "newlines and comments" `Quick
            test_input_parsing_newlines_and_comments;
          Alcotest.test_case "errors" `Quick test_input_parsing_errors;
        ] );
      ( "values",
        [
          Alcotest.test_case "update/extract paths" `Quick test_value_update_extract;
          Alcotest.test_case "vector componentwise" `Quick test_ops_vector_componentwise;
          Alcotest.test_case "nan sanitized" `Quick test_ops_nan_sanitized;
          Alcotest.test_case "convert clamps" `Quick test_ops_convert_clamps;
        ] );
      ( "generator",
        qcheck
          [
            prop_generated_valid;
            prop_generated_well_defined;
            prop_render_deterministic;
            prop_roundtrip;
          ] );
    ]
