(* Aggregate-type coverage: matrices, structs, arrays and access chains
   through the builder, validator and interpreter. *)

open Spirv_ir

let wrap_main build =
  let b = Builder.create () in
  let void_t = Builder.void_ty b in
  let out = Builder.output_color b in
  let fb, main, _ = Builder.begin_function b ~name:"main" ~ret:void_t ~params:[] in
  let l = Builder.new_label fb in
  Builder.start_block fb l;
  let r = build b fb in
  let one = Builder.cfloat b 1.0 in
  let color = Builder.composite fb ~ty:(Builder.vec4f b) [ r; one; one; one ] in
  Builder.store fb out color;
  Builder.ret fb;
  ignore (Builder.end_function fb);
  Builder.finish b ~entry:main

let red_of m =
  (match Validate.check m with
  | Ok () -> ()
  | Error (e :: _) -> Alcotest.failf "invalid: %s" (Validate.error_to_string e)
  | Error [] -> Alcotest.fail "invalid");
  match Interp.render m (Input.make ~width:1 ~height:1 []) with
  | Ok img -> (
      match Image.get img ~x:0 ~y:0 with
      | Image.Color (Value.VComposite [| Value.VFloat r; _; _; _ |]) -> r
      | _ -> Alcotest.fail "pixel shape")
  | Error t -> Alcotest.failf "trap: %s" (Interp.trap_to_string t)

let test_matrix_construct_extract () =
  let m =
    wrap_main (fun b fb ->
        (* a 2x2 matrix of columns (1,2) and (3,4); extract m[1][0] = 3 *)
        let col_ty = Builder.vec2f b in
        let mat_ty = Builder.matrix_ty b ~column:col_ty ~count:2 in
        let c0 =
          Builder.composite fb ~ty:col_ty [ Builder.cfloat b 1.0; Builder.cfloat b 2.0 ]
        in
        let c1 =
          Builder.composite fb ~ty:col_ty [ Builder.cfloat b 3.0; Builder.cfloat b 4.0 ]
        in
        let mat = Builder.composite fb ~ty:mat_ty [ c0; c1 ] in
        Builder.extract fb mat [ 1; 0 ])
  in
  Alcotest.(check (float 1e-9)) "m[1][0]" 3.0 (red_of m)

let test_matrix_constant () =
  let m =
    wrap_main (fun b fb ->
        let col_ty = Builder.vec2f b in
        let mat_ty = Builder.matrix_ty b ~column:col_ty ~count:2 in
        let c0 = Builder.ccomposite b ~ty:col_ty [ Builder.cfloat b 0.5; Builder.cfloat b 0.25 ] in
        let c1 = Builder.ccomposite b ~ty:col_ty [ Builder.cfloat b 0.125; Builder.cfloat b 0.0625 ] in
        let mat = Builder.ccomposite b ~ty:mat_ty [ c0; c1 ] in
        Builder.extract fb mat [ 0; 1 ])
  in
  Alcotest.(check (float 1e-9)) "constant matrix element" 0.25 (red_of m)

let test_struct_members () =
  let m =
    wrap_main (fun b fb ->
        let float_t = Builder.float_ty b in
        let int_t = Builder.int_ty b in
        let st = Builder.struct_ty b [ float_t; int_t; float_t ] in
        let s =
          Builder.composite fb ~ty:st
            [ Builder.cfloat b 0.125; Builder.cint b 7; Builder.cfloat b 0.625 ]
        in
        Builder.extract fb s [ 2 ])
  in
  Alcotest.(check (float 1e-9)) "third member" 0.625 (red_of m)

let test_array_access_chain () =
  let m =
    wrap_main (fun b fb ->
        let float_t = Builder.float_ty b in
        let arr_t = Builder.array_ty b ~elem:float_t ~len:4 in
        let var = Builder.local_var fb ~pointee:arr_t in
        (* store 0.25 at index 2 through an access chain, then read it back *)
        let idx = Builder.cint b 2 in
        let slot = Builder.access_chain fb var [ idx ] in
        Builder.store fb slot (Builder.cfloat b 0.25);
        let slot2 = Builder.access_chain fb var [ idx ] in
        Builder.load fb slot2)
  in
  Alcotest.(check (float 1e-9)) "arr[2]" 0.25 (red_of m)

let test_access_chain_out_of_range_clamps () =
  (* dynamic index out of range clamps rather than trapping *)
  let m =
    wrap_main (fun b fb ->
        let float_t = Builder.float_ty b in
        let arr_t = Builder.array_ty b ~elem:float_t ~len:2 in
        let var = Builder.local_var fb ~pointee:arr_t in
        let slot_last = Builder.access_chain fb var [ Builder.cint b 1 ] in
        Builder.store fb slot_last (Builder.cfloat b 0.875);
        (* index 9 clamps to the last element *)
        let oob = Builder.access_chain fb var [ Builder.cint b 9 ] in
        Builder.load fb oob)
  in
  Alcotest.(check (float 1e-9)) "clamped read" 0.875 (red_of m)

let test_nested_struct_of_vec () =
  let m =
    wrap_main (fun b fb ->
        let v2 = Builder.vec2f b in
        let st = Builder.struct_ty b [ v2; Builder.float_ty b ] in
        let inner =
          Builder.composite fb ~ty:v2 [ Builder.cfloat b 0.1; Builder.cfloat b 0.9 ]
        in
        let s = Builder.composite fb ~ty:st [ inner; Builder.cfloat b 0.5 ] in
        Builder.extract fb s [ 0; 1 ])
  in
  Alcotest.(check (float 1e-9)) "s.v.y" 0.9 (red_of m)

let test_composite_insert () =
  let m =
    wrap_main (fun b fb ->
        let v2 = Builder.vec2f b in
        let orig =
          Builder.composite fb ~ty:v2 [ Builder.cfloat b 0.0; Builder.cfloat b 0.5 ]
        in
        let updated =
          Builder.instr fb ~ty:v2
            (Instr.CompositeInsert (Builder.cfloat b 0.75, orig, [ 0 ]))
        in
        Builder.extract fb updated [ 0 ])
  in
  Alcotest.(check (float 1e-9)) "inserted" 0.75 (red_of m)

let test_vector_componentwise_arithmetic () =
  let m =
    wrap_main (fun b fb ->
        let v2 = Builder.vec2f b in
        let a = Builder.composite fb ~ty:v2 [ Builder.cfloat b 0.25; Builder.cfloat b 0.5 ] in
        let c = Builder.fadd fb a a in
        Builder.extract fb c [ 1 ])
  in
  Alcotest.(check (float 1e-9)) "vec add" 1.0 (red_of m)

let test_matrix_roundtrips_assembler () =
  let m =
    wrap_main (fun b fb ->
        let col_ty = Builder.vec2f b in
        let mat_ty = Builder.matrix_ty b ~column:col_ty ~count:2 in
        let c0 = Builder.composite fb ~ty:col_ty [ Builder.cfloat b 1.0; Builder.cfloat b 2.0 ] in
        let mat = Builder.composite fb ~ty:mat_ty [ c0; c0 ] in
        Builder.extract fb mat [ 0; 0 ])
  in
  let m' = Asm.of_string (Disasm.to_string m) in
  Alcotest.(check bool) "round trip" true (Module_ir.equal m m')

let () =
  Alcotest.run "aggregates"
    [
      ( "aggregates",
        [
          Alcotest.test_case "matrix construct/extract" `Quick test_matrix_construct_extract;
          Alcotest.test_case "matrix constants" `Quick test_matrix_constant;
          Alcotest.test_case "struct members" `Quick test_struct_members;
          Alcotest.test_case "array access chains" `Quick test_array_access_chain;
          Alcotest.test_case "out-of-range indices clamp" `Quick
            test_access_chain_out_of_range_clamps;
          Alcotest.test_case "nested struct of vec" `Quick test_nested_struct_of_vec;
          Alcotest.test_case "composite insert" `Quick test_composite_insert;
          Alcotest.test_case "vector componentwise arithmetic" `Quick
            test_vector_componentwise_arithmetic;
          Alcotest.test_case "matrices round-trip the assembler" `Quick
            test_matrix_roundtrips_assembler;
        ] );
    ]
