(* Tests for the MiniGLSL baseline: type checker, lowering, source fuzzer
   and hand-crafted reducer. *)

open Spirv_ir

let default_input = Corpus.default_input

let render_exn name m input =
  match Interp.render m input with
  | Ok img -> img
  | Error t -> Alcotest.failf "%s: render failed: %s" name (Interp.trap_to_string t)

(* ------------------------------------------------------------------ *)
(* Typechecker *)

let test_corpus_typechecks () =
  List.iter
    (fun (name, p) ->
      match Glsl_like.Typecheck.check p with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" name e)
    Corpus.donors

let check_rejects name p =
  match Glsl_like.Typecheck.check p with
  | Ok () -> Alcotest.failf "%s should be rejected" name
  | Error _ -> ()

let test_rejects_unbound_variable () =
  check_rejects "unbound"
    (Corpus.Dsl.program [ Corpus.Dsl.color (Corpus.Dsl.v "nope") (Corpus.Dsl.fl 0.0) (Corpus.Dsl.fl 0.0) ])

let test_rejects_type_mismatch () =
  check_rejects "bool + int"
    (Corpus.Dsl.program
       [
         Corpus.Dsl.dfloat "x" (Corpus.Dsl.add (Corpus.Dsl.bl true) (Corpus.Dsl.il 1));
         Corpus.Dsl.color (Corpus.Dsl.fl 0.0) (Corpus.Dsl.fl 0.0) (Corpus.Dsl.fl 0.0);
       ])

let test_rejects_return_in_main () =
  check_rejects "return in main" (Corpus.Dsl.program [ Corpus.Dsl.ret (Corpus.Dsl.fl 1.0) ])

let test_rejects_missing_return () =
  check_rejects "missing return"
    (Corpus.Dsl.program
       ~functions:
         [ Corpus.Dsl.fn "f" [ (Glsl_like.Ast.TFloat, "x") ] ~ret:Glsl_like.Ast.TFloat
             [ Corpus.Dsl.dfloat "y" (Corpus.Dsl.v "x") ] ]
       [ Corpus.Dsl.color (Corpus.Dsl.fl 0.0) (Corpus.Dsl.fl 0.0) (Corpus.Dsl.fl 0.0) ])

let test_rejects_statements_after_discard () =
  check_rejects "stmts after discard"
    (Corpus.Dsl.program
       [ Glsl_like.Ast.Discard; Corpus.Dsl.color (Corpus.Dsl.fl 0.0) (Corpus.Dsl.fl 0.0) (Corpus.Dsl.fl 0.0) ])

(* ------------------------------------------------------------------ *)
(* Lowering *)

let test_lowered_corpus_valid () =
  List.iter
    (fun (name, m) ->
      match Validate.check m with
      | Ok () -> ()
      | Error (e :: _) -> Alcotest.failf "%s: %s" name (Validate.error_to_string e)
      | Error [] -> Alcotest.failf "%s invalid" name)
    (Lazy.force Corpus.lowered_donors)

let test_lowered_corpus_well_defined () =
  List.iter
    (fun (name, m) -> ignore (render_exn name m default_input))
    (Lazy.force Corpus.lowered_donors)

let test_lowering_semantics_spot_check () =
  (* checkerboard: pixel (0,0) has parity 0 -> white; (1,0) parity 1 -> black *)
  let _, m =
    List.find (fun (n, _) -> String.equal n "checkerboard") (Lazy.force Corpus.lowered_references)
  in
  let img = render_exn "checkerboard" m default_input in
  let red_of = function
    | Image.Color (Value.VComposite [| Value.VFloat r; _; _; _ |]) -> r
    | _ -> Alcotest.fail "pixel shape"
  in
  Alcotest.(check (float 1e-9)) "white" 1.0 (red_of (Image.get img ~x:0 ~y:0));
  Alcotest.(check (float 1e-9)) "black" 0.0 (red_of (Image.get img ~x:1 ~y:0))

let test_discard_lowers_to_kill () =
  let p =
    Corpus.Dsl.program
      [
        Corpus.Dsl.if_
          (Corpus.Dsl.lt (Corpus.Dsl.v "gl_x") (Corpus.Dsl.fl 4.0))
          [ Glsl_like.Ast.Discard ] [];
        Corpus.Dsl.color (Corpus.Dsl.fl 1.0) (Corpus.Dsl.fl 1.0) (Corpus.Dsl.fl 1.0);
      ]
  in
  (match Glsl_like.Typecheck.check p with
  | Ok () -> ()
  | Error e -> Alcotest.failf "typecheck: %s" e);
  let m = Glsl_like.Lower.lower p in
  let img = render_exn "discard" m (Input.make ~width:8 ~height:1 []) in
  Alcotest.(check bool) "left killed" true (Image.get img ~x:0 ~y:0 = Image.Killed);
  Alcotest.(check bool) "right drawn" true (Image.get img ~x:7 ~y:0 <> Image.Killed)

let test_matrix_lowering_semantics () =
  (* shear matrix [[1, .25],[.5, 1]] applied to (1, 2): columns are
     (1,.25) and (.5,1), so m*v = (1*1 + .5*2, .25*1 + 1*2) = (2, 2.25) *)
  let p =
    Corpus.Dsl.program
      [
        Corpus.Dsl.decl (Glsl_like.Ast.TMat 2) "m"
          (Corpus.Dsl.mat
             [ Corpus.Dsl.vec [ Corpus.Dsl.fl 1.0; Corpus.Dsl.fl 0.25 ];
               Corpus.Dsl.vec [ Corpus.Dsl.fl 0.5; Corpus.Dsl.fl 1.0 ] ]);
        Corpus.Dsl.decl (Glsl_like.Ast.TVec 2) "p"
          (Corpus.Dsl.vec [ Corpus.Dsl.fl 1.0; Corpus.Dsl.fl 2.0 ]);
        Corpus.Dsl.decl (Glsl_like.Ast.TVec 2) "q"
          (Corpus.Dsl.matvec (Corpus.Dsl.v "m") (Corpus.Dsl.v "p"));
        Corpus.Dsl.color
          (Corpus.Dsl.comp (Corpus.Dsl.v "q") 0)
          (Corpus.Dsl.comp (Corpus.Dsl.v "q") 1)
          (Corpus.Dsl.comp (Corpus.Dsl.col (Corpus.Dsl.v "m") 1) 0);
      ]
  in
  (match Glsl_like.Typecheck.check p with
  | Ok () -> ()
  | Error e -> Alcotest.failf "typecheck: %s" e);
  let m = Glsl_like.Lower.lower p in
  match Interp.render m (Input.make ~width:1 ~height:1 []) with
  | Error t -> Alcotest.failf "trap: %s" (Interp.trap_to_string t)
  | Ok img -> (
      match Image.get img ~x:0 ~y:0 with
      | Image.Color (Value.VComposite [| Value.VFloat r; Value.VFloat g; Value.VFloat b; _ |]) ->
          Alcotest.(check (float 1e-9)) "(m*p).x" 2.0 r;
          Alcotest.(check (float 1e-9)) "(m*p).y" 2.25 g;
          Alcotest.(check (float 1e-9)) "m[1][0]" 0.5 b
      | _ -> Alcotest.fail "pixel shape")

let test_matrix_type_errors () =
  let reject name p =
    match Glsl_like.Typecheck.check p with
    | Ok () -> Alcotest.failf "%s should be rejected" name
    | Error _ -> ()
  in
  reject "mat of wrong-size columns"
    (Corpus.Dsl.program
       [
         Corpus.Dsl.decl (Glsl_like.Ast.TMat 2) "m"
           (Corpus.Dsl.mat
              [ Corpus.Dsl.vec [ Corpus.Dsl.fl 1.0; Corpus.Dsl.fl 0.0; Corpus.Dsl.fl 0.0 ];
                Corpus.Dsl.vec [ Corpus.Dsl.fl 0.0; Corpus.Dsl.fl 1.0; Corpus.Dsl.fl 0.0 ] ]);
         Corpus.Dsl.color (Corpus.Dsl.fl 0.0) (Corpus.Dsl.fl 0.0) (Corpus.Dsl.fl 0.0);
       ]);
  reject "mat_vec dimension mismatch"
    (Corpus.Dsl.program
       [
         Corpus.Dsl.decl (Glsl_like.Ast.TMat 2) "m"
           (Corpus.Dsl.mat
              [ Corpus.Dsl.vec [ Corpus.Dsl.fl 1.0; Corpus.Dsl.fl 0.0 ];
                Corpus.Dsl.vec [ Corpus.Dsl.fl 0.0; Corpus.Dsl.fl 1.0 ] ]);
         Corpus.Dsl.decl (Glsl_like.Ast.TVec 3) "p"
           (Corpus.Dsl.vec [ Corpus.Dsl.fl 1.0; Corpus.Dsl.fl 2.0; Corpus.Dsl.fl 3.0 ]);
         Corpus.Dsl.decl (Glsl_like.Ast.TVec 2) "q"
           (Corpus.Dsl.matvec (Corpus.Dsl.v "m") (Corpus.Dsl.v "p"));
         Corpus.Dsl.color (Corpus.Dsl.fl 0.0) (Corpus.Dsl.fl 0.0) (Corpus.Dsl.fl 0.0);
       ]);
  reject "column index out of range"
    (Corpus.Dsl.program
       [
         Corpus.Dsl.decl (Glsl_like.Ast.TMat 2) "m"
           (Corpus.Dsl.mat
              [ Corpus.Dsl.vec [ Corpus.Dsl.fl 1.0; Corpus.Dsl.fl 0.0 ];
                Corpus.Dsl.vec [ Corpus.Dsl.fl 0.0; Corpus.Dsl.fl 1.0 ] ]);
         Corpus.Dsl.dfloat "x" (Corpus.Dsl.comp (Corpus.Dsl.col (Corpus.Dsl.v "m") 5) 0);
         Corpus.Dsl.color (Corpus.Dsl.fl 0.0) (Corpus.Dsl.fl 0.0) (Corpus.Dsl.fl 0.0);
       ])

(* ------------------------------------------------------------------ *)
(* Source fuzzer *)

let fuzz_all_references seed =
  List.filter_map
    (fun (name, p) ->
      let r = Glsl_like.Source_fuzzer.fuzz ~seed p in
      if r.Glsl_like.Source_fuzzer.applied = 0 then None
      else Some (name, p, r.Glsl_like.Source_fuzzer.program))
    Corpus.references

let test_fuzzed_programs_typecheck () =
  List.iter
    (fun (name, _, fuzzed) ->
      match Glsl_like.Typecheck.check fuzzed with
      | Ok () -> ()
      | Error e -> Alcotest.failf "fuzzed %s: %s" name e)
    (fuzz_all_references 7)

let test_fuzzed_programs_preserve_semantics () =
  List.iter
    (fun (name, original, fuzzed) ->
      let m0 = Glsl_like.Lower.lower original in
      let m1 = Glsl_like.Lower.lower fuzzed in
      let i0 = render_exn name m0 default_input in
      let i1 = render_exn (name ^ " fuzzed") m1 default_input in
      if not (Image.equal i0 i1) then
        Alcotest.failf "source fuzzing changed the image of %s" name)
    (fuzz_all_references 11)

let test_fuzzing_is_deterministic () =
  let p = snd (List.hd Corpus.references) in
  let a = (Glsl_like.Source_fuzzer.fuzz ~seed:3 p).Glsl_like.Source_fuzzer.program in
  let b = (Glsl_like.Source_fuzzer.fuzz ~seed:3 p).Glsl_like.Source_fuzzer.program in
  Alcotest.(check bool) "deterministic" true (Glsl_like.Ast.equal_program a b)

let test_strip_all_markers_recovers_original () =
  List.iter
    (fun (name, original, fuzzed) ->
      let stripped = Glsl_like.Ast.strip_all_markers fuzzed in
      if not (Glsl_like.Ast.equal_program stripped original) then
        Alcotest.failf "stripping markers of %s does not recover the original" name)
    (fuzz_all_references 13)

(* ------------------------------------------------------------------ *)
(* Pretty-printer *)

let test_pp_renders_corpus () =
  List.iter
    (fun (name, p) ->
      let text = Glsl_like.Pp.program_to_string p in
      if String.length text < 40 then Alcotest.failf "%s prints too little" name;
      (* main must be present *)
      (try ignore (Str.search_forward (Str.regexp_string "void main()") text 0)
       with Not_found -> Alcotest.failf "%s lacks main" name))
    Corpus.references

let test_pp_markers_visible () =
  let _, _, fuzzed =
    match fuzz_all_references 19 with
    | x :: _ -> x
    | [] -> Alcotest.fail "no fuzzed programs"
  in
  let text = Glsl_like.Pp.program_to_string fuzzed in
  let has re = try ignore (Str.search_forward (Str.regexp re) text 0); true with Not_found -> false in
  Alcotest.(check bool) "some marker comment present" true
    (has "/\\*\\(id\\|wrap\\|loop\\|injected\\):[0-9]+\\*/")

let test_pp_diff_empty_on_equal () =
  let p = snd (List.hd Corpus.references) in
  let removed, added = Glsl_like.Pp.diff p p in
  Alcotest.(check int) "no removals" 0 (List.length removed);
  Alcotest.(check int) "no additions" 0 (List.length added)

let test_pp_diff_localizes_change () =
  let p = snd (List.hd Corpus.references) in
  let fuzzed = (Glsl_like.Source_fuzzer.fuzz ~seed:19 p).Glsl_like.Source_fuzzer.program in
  if Glsl_like.Ast.program_markers fuzzed = [] then ()
  else begin
    let removed, added = Glsl_like.Pp.diff p fuzzed in
    Alcotest.(check bool) "diff is non-empty" true (removed <> [] || added <> [])
  end

(* ------------------------------------------------------------------ *)
(* Hand-crafted reducer *)

let test_reducer_reverts_all_when_uninteresting () =
  (* interestingness that ignores the program: everything reverts *)
  let _, p, fuzzed =
    match fuzz_all_references 17 with
    | x :: _ -> x
    | [] -> Alcotest.fail "no fuzzed programs"
  in
  let reduced, stats =
    Glsl_like.Source_reducer.reduce ~is_interesting:(fun _ -> true) fuzzed
  in
  Alcotest.(check int) "no markers kept" 0 stats.Glsl_like.Source_reducer.kept_markers;
  Alcotest.(check bool) "recovered original" true (Glsl_like.Ast.equal_program reduced p)

let test_reducer_keeps_needed_marker () =
  (* interestingness: the lowered module contains an OpKill -- only the
     dead-code injections carrying a discard matter *)
  let has_kill p =
    let m = Glsl_like.Lower.lower p in
    List.exists
      (fun (f : Func.t) ->
        List.exists (fun (b : Block.t) -> b.Block.terminator = Block.Kill) f.Func.blocks)
      m.Module_ir.functions
  in
  let candidates =
    List.concat_map
      (fun seed ->
        List.filter_map
          (fun (_, _, fuzzed) -> if has_kill fuzzed then Some fuzzed else None)
          (fuzz_all_references seed))
      [ 1; 2; 3; 4; 5 ]
  in
  match candidates with
  | [] -> Alcotest.fail "no fuzzed program acquired a discard"
  | fuzzed :: _ ->
      let reduced, stats = Glsl_like.Source_reducer.reduce ~is_interesting:has_kill fuzzed in
      Alcotest.(check bool) "still interesting" true (has_kill reduced);
      Alcotest.(check bool) "some markers reverted" true
        (stats.Glsl_like.Source_reducer.kept_markers
        <= stats.Glsl_like.Source_reducer.initial_markers);
      (* 1-minimality at source level *)
      List.iter
        (fun m ->
          Alcotest.(check bool) "reverting any kept marker breaks it" false
            (has_kill (Glsl_like.Ast.revert_program m reduced)))
        (Glsl_like.Ast.program_markers reduced)

let () =
  Alcotest.run "glsl_like"
    [
      ( "typecheck",
        [
          Alcotest.test_case "corpus typechecks" `Quick test_corpus_typechecks;
          Alcotest.test_case "rejects unbound variable" `Quick test_rejects_unbound_variable;
          Alcotest.test_case "rejects type mismatch" `Quick test_rejects_type_mismatch;
          Alcotest.test_case "rejects return in main" `Quick test_rejects_return_in_main;
          Alcotest.test_case "rejects missing return" `Quick test_rejects_missing_return;
          Alcotest.test_case "rejects stmts after discard" `Quick
            test_rejects_statements_after_discard;
        ] );
      ( "lower",
        [
          Alcotest.test_case "corpus lowers to valid modules" `Quick test_lowered_corpus_valid;
          Alcotest.test_case "corpus renders" `Quick test_lowered_corpus_well_defined;
          Alcotest.test_case "checkerboard spot check" `Quick test_lowering_semantics_spot_check;
          Alcotest.test_case "discard lowers to OpKill" `Quick test_discard_lowers_to_kill;
          Alcotest.test_case "matrix lowering semantics" `Quick test_matrix_lowering_semantics;
          Alcotest.test_case "matrix type errors" `Quick test_matrix_type_errors;
        ] );
      ( "source_fuzzer",
        [
          Alcotest.test_case "fuzzed programs typecheck" `Quick test_fuzzed_programs_typecheck;
          Alcotest.test_case "fuzzing preserves semantics" `Quick
            test_fuzzed_programs_preserve_semantics;
          Alcotest.test_case "fuzzing is deterministic" `Quick test_fuzzing_is_deterministic;
          Alcotest.test_case "stripping markers recovers the original" `Quick
            test_strip_all_markers_recovers_original;
        ] );
      ( "pp",
        [
          Alcotest.test_case "renders the corpus" `Quick test_pp_renders_corpus;
          Alcotest.test_case "markers visible" `Quick test_pp_markers_visible;
          Alcotest.test_case "diff empty on equal" `Quick test_pp_diff_empty_on_equal;
          Alcotest.test_case "diff localizes changes" `Quick test_pp_diff_localizes_change;
        ] );
      ( "source_reducer",
        [
          Alcotest.test_case "reverts everything when uninteresting" `Quick
            test_reducer_reverts_all_when_uninteresting;
          Alcotest.test_case "keeps the needed marker (1-minimal)" `Quick
            test_reducer_keeps_needed_marker;
        ] );
    ]
