(* Assembler/disassembler details: exact float round trips, error line
   numbers, hand-written listings, and pointer-parameter calls through the
   full build-print-parse-execute cycle. *)

open Spirv_ir

(* ------------------------------------------------------------------ *)
(* Floats *)

let prop_float_roundtrip =
  QCheck.Test.make ~name:"hex-float constants round trip exactly" ~count:500
    QCheck.float (fun f ->
      let f = if Float.is_nan f then 0.0 else f in
      let b = Builder.create () in
      let out = Builder.output_color b in
      ignore out;
      let c = Builder.cfloat b f in
      ignore c;
      let fb, main, _ =
        Builder.begin_function b ~name:"main" ~ret:(Builder.void_ty b) ~params:[]
      in
      let l = Builder.new_label fb in
      Builder.start_block fb l;
      Builder.ret fb;
      ignore (Builder.end_function fb);
      let m = Builder.finish b ~entry:main in
      Module_ir.equal m (Asm.of_string (Disasm.to_string m)))

let test_special_floats () =
  List.iter
    (fun f ->
      let printed = Disasm.string_of_float_exact f in
      match float_of_string_opt printed with
      | Some f' ->
          Alcotest.(check bool)
            (Printf.sprintf "%s round trips" printed)
            true
            (Int64.equal (Int64.bits_of_float f) (Int64.bits_of_float f'))
      | None -> Alcotest.failf "cannot parse %s" printed)
    [ 0.0; -0.0; 1.0; -1.5; 0.1; 1e-300; 1e300; Float.min_float; Float.max_float ]

(* ------------------------------------------------------------------ *)
(* Errors carry line numbers *)

let expect_error_on_line text line =
  match Asm.of_string text with
  | _ -> Alcotest.fail "expected a parse error"
  | exception Asm.Error e ->
      Alcotest.(check int) "error line" line e.Asm.line

let test_error_line_numbers () =
  expect_error_on_line "OpIdBound 10\n%1 = OpTypeVoid\nOpReturn\n" 3;
  (* terminator outside a block *)
  expect_error_on_line "%1 = OpBogusOpcode %2 %3\n" 1;
  expect_error_on_line "OpIdBound 10\n\n\n%1 = OpLabel\n" 4
  (* label outside a function *)

let test_error_to_string () =
  match Asm.of_string_result "%1 = OpNonsense %2\n" with
  | Error msg ->
      Alcotest.(check bool) "mentions line 1" true
        (try
           ignore (Str.search_forward (Str.regexp_string "line 1") msg 0);
           true
         with Not_found -> false)
  | Ok _ -> Alcotest.fail "expected error"

(* ------------------------------------------------------------------ *)
(* A hand-written listing parses and runs *)

let hand_written =
  {|
; a minimal shader written by hand: white left half, dark right half
OpIdBound 100
OpEntryPoint %20
%1 = OpTypeVoid
%2 = OpTypeFloat
%3 = OpTypeVector %2 2
%4 = OpTypeVector %2 4
%5 = OpTypePointer Input %3
%6 = OpTypePointer Output %4
%7 = OpTypeFunction %1
%8 = OpConstantFloat %2 0x1p+2   ; 4.0
%9 = OpConstantFloat %2 0x1p+0   ; 1.0
%10 = OpConstantFloat %2 0x1p-3  ; 0.125
%11 = OpTypeBool
%12 = OpGlobalVariable %5 "gl_FragCoord"
%13 = OpGlobalVariable %6 "_color"
%20 = OpFunction %7 None "main"
%21 = OpLabel
%22 = OpLoad %3 %12
%23 = OpCompositeExtract %2 %22 0
%24 = OpFOrdLessThan %11 %23 %8
OpBranchConditional %24 %25 %26
%25 = OpLabel
%27 = OpCompositeConstruct %4 %9 %9 %9 %9
OpStore %13 %27
OpBranch %28
%26 = OpLabel
%29 = OpCompositeConstruct %4 %10 %10 %10 %10
OpStore %13 %29
OpBranch %28
%28 = OpLabel
OpReturn
OpFunctionEnd
|}

let test_hand_written_listing () =
  let m = Asm.of_string hand_written in
  (match Validate.check m with
  | Ok () -> ()
  | Error (e :: _) -> Alcotest.failf "invalid: %s" (Validate.error_to_string e)
  | Error [] -> Alcotest.fail "invalid");
  match Interp.render m (Input.make ~width:8 ~height:1 []) with
  | Error t -> Alcotest.failf "trap: %s" (Interp.trap_to_string t)
  | Ok img ->
      let red x =
        match Image.get img ~x ~y:0 with
        | Image.Color (Value.VComposite [| Value.VFloat r; _; _; _ |]) -> r
        | _ -> Alcotest.fail "pixel"
      in
      Alcotest.(check (float 1e-9)) "left white" 1.0 (red 0);
      Alcotest.(check (float 1e-9)) "right dark" 0.125 (red 7)

let test_comments_and_blank_lines_ignored () =
  let m1 = Asm.of_string hand_written in
  let stripped =
    String.split_on_char '\n' hand_written
    |> List.map (fun l ->
           match String.index_opt l ';' with
           | Some i -> String.sub l 0 i
           | None -> l)
    |> List.filter (fun l -> String.trim l <> "")
    |> String.concat "\n"
  in
  let m2 = Asm.of_string stripped in
  Alcotest.(check bool) "same module" true (Module_ir.equal m1 m2)

(* ------------------------------------------------------------------ *)
(* Pointer parameters survive the full cycle *)

let test_pointer_parameter_call () =
  (* helper takes a Function-storage float pointer and writes through it *)
  let b = Builder.create () in
  let void_t = Builder.void_ty b in
  let float_t = Builder.float_ty b in
  let ptr_t = Builder.pointer_ty b Ty.Function float_t in
  let out = Builder.output_color b in
  let fb, writer, params =
    Builder.begin_function b ~name:"write_through" ~ret:float_t ~params:[ ptr_t ]
  in
  let p = List.hd params in
  let l = Builder.new_label fb in
  Builder.start_block fb l;
  Builder.store fb p (Builder.cfloat b 0.75);
  Builder.ret_value fb (Builder.cfloat b 0.0);
  ignore (Builder.end_function fb);
  let fb, main, _ = Builder.begin_function b ~name:"main" ~ret:void_t ~params:[] in
  let l = Builder.new_label fb in
  Builder.start_block fb l;
  let var = Builder.local_var fb ~pointee:float_t in
  let _ = Builder.call fb writer [ var ] in
  let v = Builder.load fb var in
  let one = Builder.cfloat b 1.0 in
  let color = Builder.composite fb ~ty:(Builder.vec4f b) [ v; one; one; one ] in
  Builder.store fb out color;
  Builder.ret fb;
  ignore (Builder.end_function fb);
  let m = Builder.finish b ~entry:main in
  (match Validate.check m with
  | Ok () -> ()
  | Error (e :: _) -> Alcotest.failf "invalid: %s" (Validate.error_to_string e)
  | Error [] -> Alcotest.fail "invalid");
  (* the write through the pointer parameter must be visible in the caller *)
  let check_red m expected =
    match Interp.render m (Input.make ~width:1 ~height:1 []) with
    | Error t -> Alcotest.failf "trap: %s" (Interp.trap_to_string t)
    | Ok img -> (
        match Image.get img ~x:0 ~y:0 with
        | Image.Color (Value.VComposite [| Value.VFloat r; _; _; _ |]) ->
            Alcotest.(check (float 1e-9)) "red" expected r
        | _ -> Alcotest.fail "pixel")
  in
  check_red m 0.75;
  (* and survive an assembler round trip *)
  check_red (Asm.of_string (Disasm.to_string m)) 0.75

(* ------------------------------------------------------------------ *)
(* Per-pass semantics on generated modules *)

let prop_each_pass_preserves_on_generated =
  QCheck.Test.make ~name:"each optimizer pass preserves generated modules" ~count:15
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let m = Generator.generate (Tbct.Rng.make seed) in
      let input = Generator.default_input in
      match Interp.render m input with
      | Error _ -> false
      | Ok reference ->
          List.for_all
            (fun pass ->
              let m' = Compilers.Optimizer.run [ pass ] m in
              Validate.is_valid m'
              && (match Interp.render m' input with
                 | Ok img -> Image.equal reference img
                 | Error _ -> false))
            Compilers.Optimizer.
              [ Const_fold; Copy_prop; Dce; Simplify_cfg; Phi_simplify; Cse;
                Inline; Store_forward; Dse ])

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "asm_and_cycles"
    [
      ( "floats",
        Alcotest.test_case "special floats" `Quick test_special_floats
        :: qcheck [ prop_float_roundtrip ] );
      ( "errors",
        [
          Alcotest.test_case "line numbers" `Quick test_error_line_numbers;
          Alcotest.test_case "error rendering" `Quick test_error_to_string;
        ] );
      ( "listings",
        [
          Alcotest.test_case "hand-written shader" `Quick test_hand_written_listing;
          Alcotest.test_case "comments and blanks ignored" `Quick
            test_comments_and_blank_lines_ignored;
        ] );
      ( "pointer-params",
        [ Alcotest.test_case "write through pointer parameter" `Quick
            test_pointer_parameter_call ] );
      ("optimizer-property", qcheck [ prop_each_pass_preserves_on_generated ]);
    ]
