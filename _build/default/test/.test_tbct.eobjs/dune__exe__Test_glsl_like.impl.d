test/test_glsl_like.ml: Alcotest Block Corpus Func Glsl_like Image Input Interp Lazy List Module_ir Spirv_ir Str String Validate Value
