test/test_asm.ml: Alcotest Asm Builder Compilers Disasm Float Generator Image Input Int64 Interp List Module_ir Printf QCheck QCheck_alcotest Spirv_ir Str String Tbct Ty Validate Value
