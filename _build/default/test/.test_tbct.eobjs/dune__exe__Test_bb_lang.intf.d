test/test_bb_lang.mli:
