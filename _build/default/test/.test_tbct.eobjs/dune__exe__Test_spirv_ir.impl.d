test/test_spirv_ir.ml: Alcotest Asm Block Builder Cfg Disasm Dominance Fun Func Generator Image Input Instr Int32 Interp List Module_ir Ops QCheck QCheck_alcotest Spirv_ir String Tbct Validate Value
