test/test_spirv_fuzz.ml: Alcotest Asm Block Disasm Func Generator Id Image Interp List Module_ir Printf QCheck QCheck_alcotest Spirv_fuzz Spirv_ir Tbct Ty Validate
