test/test_compilers.ml: Alcotest Builder Compilers Corpus Func Generator Id Image Input Interp Lazy List Module_ir Spirv_fuzz Spirv_ir Str String Tbct Validate
