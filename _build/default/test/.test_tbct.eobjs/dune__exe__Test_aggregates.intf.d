test/test_aggregates.mli:
