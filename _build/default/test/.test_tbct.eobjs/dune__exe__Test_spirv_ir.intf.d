test/test_spirv_ir.mli:
