test/test_transformations.mli:
