test/test_validator.ml: Alcotest Analysis Block Builder Constant Func Id Instr Int32 Interp List Module_ir Ops Option Spirv_ir Str String Ty Validate Value
