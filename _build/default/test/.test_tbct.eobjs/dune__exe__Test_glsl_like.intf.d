test/test_glsl_like.mli:
