test/test_bb_lang.ml: Alcotest Bb_lang List Option Printf QCheck QCheck_alcotest Tbct
