test/test_tbct.ml: Alcotest Fun Int List Printf QCheck QCheck_alcotest String Tbct
