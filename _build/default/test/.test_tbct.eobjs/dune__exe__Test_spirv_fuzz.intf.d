test/test_spirv_fuzz.mli:
