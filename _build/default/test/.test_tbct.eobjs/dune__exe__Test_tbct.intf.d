test/test_tbct.mli:
