test/test_harness.ml: Alcotest Array Compilers Corpus Float Harness Lazy List QCheck QCheck_alcotest Spirv_ir String
