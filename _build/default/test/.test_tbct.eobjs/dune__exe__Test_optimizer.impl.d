test/test_optimizer.ml: Alcotest Builder Compilers Constant Corpus Func Id Image Input Instr Interp Lazy List Module_ir Option Spirv_ir Ty Validate Value
