test/test_compilers.mli:
