test/test_aggregates.ml: Alcotest Asm Builder Disasm Image Input Instr Interp Module_ir Spirv_ir Validate Value
