(* Tests for the compilers-under-test library: the optimizer passes must be
   semantics-preserving with bug flags off, and the injected bugs must fire
   on the shapes they target (and not on the clean corpus). *)

open Spirv_ir

let default_input = Corpus.default_input

let render_exn name m input =
  match Interp.render m input with
  | Ok img -> img
  | Error t -> Alcotest.failf "%s: render failed: %s" name (Interp.trap_to_string t)

let check_valid name m =
  match Validate.check m with
  | Ok () -> ()
  | Error (e :: _) -> Alcotest.failf "%s: %s" name (Validate.error_to_string e)
  | Error [] -> Alcotest.failf "%s: invalid" name

(* ------------------------------------------------------------------ *)
(* Pass correctness on the corpus *)

let passes_to_check =
  [
    ("const_fold", [ Compilers.Optimizer.Const_fold ]);
    ("copy_prop", [ Compilers.Optimizer.Copy_prop ]);
    ("dce", [ Compilers.Optimizer.Dce ]);
    ("simplify_cfg", [ Compilers.Optimizer.Simplify_cfg ]);
    ("phi_simplify", [ Compilers.Optimizer.Phi_simplify ]);
    ("cse", [ Compilers.Optimizer.Cse ]);
    ("inline", [ Compilers.Optimizer.Inline ]);
    ("standard -O", Compilers.Optimizer.standard);
  ]

let test_pass_preserves (pass_name, pipeline) () =
  List.iter
    (fun (name, m) ->
      let reference = render_exn name m default_input in
      let optimized = Compilers.Optimizer.run pipeline m in
      check_valid (name ^ " after " ^ pass_name) optimized;
      let image = render_exn (name ^ " optimized") optimized default_input in
      if not (Image.equal reference image) then
        Alcotest.failf "%s changed the image of %s" pass_name name)
    (Lazy.force Corpus.lowered_references)

(* the same property on fuzzed variants, where dead blocks, φs, kills and
   inlined calls abound *)
let test_standard_pipeline_on_fuzzed_variants () =
  for seed = 1 to 10 do
    let m = Generator.generate (Tbct.Rng.make seed) in
    let ctx = Spirv_fuzz.Context.make m Generator.default_input in
    let result = Spirv_fuzz.Fuzzer.run ~seed:(seed * 13 + 1) ctx in
    let variant = result.Spirv_fuzz.Fuzzer.final.Spirv_fuzz.Context.m in
    let variant_input = result.Spirv_fuzz.Fuzzer.final.Spirv_fuzz.Context.input in
    let reference = render_exn "variant" variant variant_input in
    let optimized = Compilers.Optimizer.run Compilers.Optimizer.standard variant in
    check_valid "optimized variant" optimized;
    let image = render_exn "optimized variant" optimized variant_input in
    if not (Image.equal reference image) then
      Alcotest.failf "standard pipeline changed a fuzzed variant (seed %d)" seed
  done

let test_optimizer_shrinks_modules () =
  (* optimization should usually remove the naive load/store traffic *)
  let shrunk = ref 0 and total = ref 0 in
  List.iter
    (fun (_, m) ->
      incr total;
      let optimized = Compilers.Optimizer.run Compilers.Optimizer.standard m in
      if Module_ir.instruction_count optimized < Module_ir.instruction_count m then incr shrunk)
    (Lazy.force Corpus.lowered_references);
  Alcotest.(check bool) "most modules shrink" true (!shrunk * 2 > !total)

(* ------------------------------------------------------------------ *)
(* Bug triggers *)

let clean_target =
  {
    Compilers.Target.name = "clean";
    version = "-";
    gpu = Compilers.Target.Software;
    pipeline = Compilers.Optimizer.standard;
    opt_flags = Compilers.Passes.no_bugs;
    crash_bug_ids = [];
    miscompile_bug_ids = [];
    executes = true;
  }

let test_clean_target_agrees_with_reference () =
  List.iter
    (fun (name, m) ->
      match Compilers.Backend.run clean_target m default_input with
      | Compilers.Backend.Rendered img ->
          let reference = render_exn name m default_input in
          if not (Image.equal reference img) then
            Alcotest.failf "clean target disagrees on %s" name
      | Compilers.Backend.Compiled_ok -> Alcotest.fail "expected rendering"
      | Compilers.Backend.Crashed s -> Alcotest.failf "clean target crashed: %s" s)
    (Lazy.force Corpus.lowered_references)

let test_no_crash_bug_fires_on_corpus () =
  List.iter
    (fun (name, m) ->
      let optimized = Compilers.Optimizer.run Compilers.Optimizer.standard m in
      List.iter
        (fun (spec : Compilers.Bug.crash_spec) ->
          let subject =
            match spec.Compilers.Bug.phase with
            | Compilers.Bug.Before_opt -> m
            | Compilers.Bug.After_opt -> optimized
          in
          if spec.Compilers.Bug.trigger subject then
            Alcotest.failf "bug %s fires on clean corpus program %s"
              spec.Compilers.Bug.bug_id name)
        Compilers.Bug.all_crash_bugs)
    (Lazy.force Corpus.lowered_references)

let test_dontinline_trigger () =
  (* Figure 3 scenario: set DontInline on a called function *)
  let name, m = List.nth (Lazy.force Corpus.lowered_references) 4 (* helper_distance *) in
  ignore name;
  Alcotest.(check bool) "clean module does not trigger" false
    (Compilers.Bug.has_dontinline_call m);
  let with_attr =
    {
      m with
      Module_ir.functions =
        List.map
          (fun (f : Func.t) ->
            if not (Id.equal f.Func.id m.Module_ir.entry) then
              { f with Func.control = Func.DontInline }
            else f)
          m.Module_ir.functions;
    }
  in
  Alcotest.(check bool) "DontInline + call triggers" true
    (Compilers.Bug.has_dontinline_call with_attr);
  match Compilers.Backend.run Compilers.Target.swiftshader with_attr default_input with
  | Compilers.Backend.Crashed s ->
      Alcotest.(check bool) "signature mentions noinline" true
        (String.length s > 0
        &&
        let re = Str.regexp_string "noinline" in
        (try ignore (Str.search_forward re s 0); true with Not_found -> false))
  | _ -> Alcotest.fail "SwiftShader should crash on the DontInline variant"

let test_div_zero_fold_crash () =
  (* build a module folding 1/0 *)
  let b = Builder.create () in
  let void_t = Builder.void_ty b in
  let out = Builder.output_color b in
  let fb, main, _ = Builder.begin_function b ~name:"main" ~ret:void_t ~params:[] in
  let l = Builder.new_label fb in
  Builder.start_block fb l;
  let q = Builder.sdiv fb (Builder.cint b 1) (Builder.cint b 0) in
  let qf = Builder.s_to_f fb q in
  let one = Builder.cfloat b 1.0 in
  let color = Builder.composite fb ~ty:(Builder.vec4f b) [ qf; one; one; one ] in
  Builder.store fb out color;
  Builder.ret fb;
  ignore (Builder.end_function fb);
  let m = Builder.finish b ~entry:main in
  (* clean optimizer folds it fine *)
  (match Compilers.Optimizer.optimize m with
  | Ok _ -> ()
  | Error s -> Alcotest.failf "clean optimizer crashed: %s" s);
  (* spirv-opt target has the div-by-zero folding crash *)
  match Compilers.Backend.run Compilers.Target.spirv_opt m (Input.make []) with
  | Compilers.Backend.Crashed s ->
      Alcotest.(check bool) "mentions division" true
        (try ignore (Str.search_forward (Str.regexp_string "division") s 0); true
         with Not_found -> false)
  | _ -> Alcotest.fail "spirv-opt target should crash"

let test_stale_phi_bug_emits_invalid () =
  (* a diamond with a φ, one arm statically dead: with the stale-phi bug the
     optimizer forgets to prune the φ entry of the removed arm *)
  let b = Builder.create () in
  let void_t = Builder.void_ty b in
  let out = Builder.output_color b in
  let fb, main, _ = Builder.begin_function b ~name:"main" ~ret:void_t ~params:[] in
  let l0 = Builder.new_label fb in
  let lt = Builder.new_label fb in
  let lf = Builder.new_label fb in
  let lm = Builder.new_label fb in
  let cond = Builder.cbool b true in
  Builder.start_block fb l0;
  Builder.branch_cond fb cond lt lf;
  Builder.start_block fb lt;
  let vt = Builder.fadd fb (Builder.cfloat b 0.25) (Builder.cfloat b 0.25) in
  (* arms must fold to different constants or φ-simplification masks the bug *)
  Builder.branch fb lm;
  Builder.start_block fb lf;
  let vf = Builder.fadd fb (Builder.cfloat b 0.5) (Builder.cfloat b 0.25) in
  Builder.branch fb lm;
  Builder.start_block fb lm;
  let phi = Builder.phi fb ~ty:(Builder.float_ty b) [ (vt, lt); (vf, lf) ] in
  let one = Builder.cfloat b 1.0 in
  let color = Builder.composite fb ~ty:(Builder.vec4f b) [ phi; one; one; one ] in
  Builder.store fb out color;
  Builder.ret fb;
  ignore (Builder.end_function fb);
  let m = Builder.finish b ~entry:main in
  check_valid "diamond" m;
  (* clean pipeline: still valid *)
  let clean = Compilers.Optimizer.run Compilers.Optimizer.standard m in
  check_valid "clean optimized diamond" clean;
  (* buggy flags: phi entry for the removed arm survives -> invalid *)
  match Compilers.Backend.run Compilers.Target.spirv_opt_old m (Input.make []) with
  | Compilers.Backend.Crashed s ->
      Alcotest.(check bool) "flagged as invalid output" true
        (try ignore (Str.search_forward (Str.regexp_string "invalid") s 0); true
         with Not_found -> false)
  | Compilers.Backend.Compiled_ok -> Alcotest.fail "expected invalid-module signature"
  | Compilers.Backend.Rendered _ -> Alcotest.fail "tooling target rendered?"

let test_miscompile_rewrites_change_something () =
  (* each rewrite must be identity on the clean corpus... *)
  List.iter
    (fun (spec : Compilers.Bug.miscompile_spec) ->
      List.iter
        (fun (name, m) ->
          let optimized = Compilers.Optimizer.run Compilers.Optimizer.standard m in
          let corrupted = spec.Compilers.Bug.rewrite optimized in
          let i1 = render_exn name optimized default_input in
          let i2 = render_exn name corrupted default_input in
          (* allowed to differ only for mc-extract-high / mc-block-order,
             which genuinely affect some reference shapes *)
          if
            (not (Image.equal i1 i2))
            && List.mem spec.Compilers.Bug.mc_bug_id [ "mc-phi-cond"; "mc-phi-positional" ]
          then
            Alcotest.failf "%s corrupts clean corpus program %s"
              spec.Compilers.Bug.mc_bug_id name)
        (Lazy.force Corpus.lowered_references))
    Compilers.Bug.all_miscompile_bugs

let test_targets_well_formed () =
  List.iter
    (fun (t : Compilers.Target.t) ->
      List.iter
        (fun id ->
          if Compilers.Bug.find_crash_bug id = None then
            Alcotest.failf "target %s references unknown bug %s" t.Compilers.Target.name id)
        t.Compilers.Target.crash_bug_ids;
      List.iter
        (fun id ->
          if Compilers.Bug.find_miscompile_bug id = None then
            Alcotest.failf "target %s references unknown miscompile %s"
              t.Compilers.Target.name id)
        t.Compilers.Target.miscompile_bug_ids)
    Compilers.Target.all

let test_table2_inventory () =
  Alcotest.(check int) "nine targets" 9 (List.length Compilers.Target.all);
  Alcotest.(check bool) "reduction study has 4 targets" true
    (List.length Compilers.Target.reduction_study = 4);
  Alcotest.(check int) "dedup study excludes NVIDIA" 8
    (List.length Compilers.Target.dedup_study)

let () =
  Alcotest.run "compilers"
    [
      ( "passes",
        List.map
          (fun (name, pipeline) ->
            Alcotest.test_case (name ^ " preserves semantics") `Quick
              (test_pass_preserves (name, pipeline)))
          passes_to_check
        @ [
            Alcotest.test_case "standard pipeline on fuzzed variants" `Slow
              test_standard_pipeline_on_fuzzed_variants;
            Alcotest.test_case "optimizer shrinks modules" `Quick
              test_optimizer_shrinks_modules;
          ] );
      ( "bugs",
        [
          Alcotest.test_case "clean target agrees with reference" `Quick
            test_clean_target_agrees_with_reference;
          Alcotest.test_case "no crash bug fires on corpus" `Quick
            test_no_crash_bug_fires_on_corpus;
          Alcotest.test_case "DontInline trigger (Figure 3)" `Quick test_dontinline_trigger;
          Alcotest.test_case "div-by-zero folding crash" `Quick test_div_zero_fold_crash;
          Alcotest.test_case "stale-phi bug emits invalid modules" `Quick
            test_stale_phi_bug_emits_invalid;
          Alcotest.test_case "miscompile rewrites inert on clean phi-free corpus" `Quick
            test_miscompile_rewrites_change_something;
        ] );
      ( "targets",
        [
          Alcotest.test_case "rosters reference known bugs" `Quick test_targets_well_formed;
          Alcotest.test_case "Table 2 inventory" `Quick test_table2_inventory;
        ] );
    ]
