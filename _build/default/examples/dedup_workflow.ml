(* The "weekend of fuzzing" deduplication workflow (sections 2.1 and 3.5):
   run a campaign, reduce every crash-triggering test, then let the Figure 6
   algorithm pick which reduced tests a developer should actually look at.

   Run with:  dune exec examples/dedup_workflow.exe *)

let () =
  let scale =
    { Harness.Experiments.default_scale with Harness.Experiments.seeds = 120 }
  in
  Printf.printf "fuzzing %d seeds against every target...\n%!"
    scale.Harness.Experiments.seeds;
  let hits = Harness.Experiments.run_campaign ~scale Harness.Pipeline.Spirv_fuzz_tool in
  let crashes =
    List.filter
      (fun (h : Harness.Experiments.hit) ->
        not
          (Harness.Signature.is_miscompilation
             h.Harness.Experiments.hit_detection.Harness.Pipeline.signature))
      hits
  in
  Printf.printf "%d detections, %d of them crashes\n%!" (List.length hits)
    (List.length crashes);

  (* reduce each crash (capped per signature), collect the minimized
     transformation sequences, and run the Figure 6 selection — the Table 4
     plumbing does exactly this end to end *)
  let rows, total = Harness.Experiments.table4 ~scale ~hits:[| hits; []; [] |] () in
  Printf.printf "\n%-14s %6s %6s %8s %9s %6s\n" "Target" "Tests" "Sigs" "Reports"
    "Distinct" "Dups";
  List.iter
    (fun (r : Harness.Experiments.table4_row) ->
      if r.Harness.Experiments.t4_tests > 0 then
        Printf.printf "%-14s %6d %6d %8d %9d %6d\n" r.Harness.Experiments.t4_target
          r.Harness.Experiments.t4_tests r.Harness.Experiments.t4_sigs
          r.Harness.Experiments.t4_reports r.Harness.Experiments.t4_distinct
          r.Harness.Experiments.t4_dups)
    rows;
  Printf.printf "%-14s %6d %6d %8d %9d %6d\n" total.Harness.Experiments.t4_target
    total.Harness.Experiments.t4_tests total.Harness.Experiments.t4_sigs
    total.Harness.Experiments.t4_reports total.Harness.Experiments.t4_distinct
    total.Harness.Experiments.t4_dups;
  Printf.printf
    "\nReports is what a developer is asked to look at; Dups counts wasted looks.\n"
