(* Turning a found bug into a regression test (section 2.1, "Bug reports and
   regression tests"): the pair (P_{n-1}, P_n) — the minimally-reduced
   variant with and without its final transformation — executed on the same
   input must produce the same image.  A conformance suite can check exactly
   that.

   Run with:  dune exec examples/shader_regression.exe *)

let () =
  let name = "two_helpers" in
  let reference = List.assoc name (Lazy.force Corpus.lowered_references) in
  let input = Corpus.default_input in
  let target = Compilers.Target.swiftshader in
  let config =
    {
      Spirv_fuzz.Fuzzer.default_config with
      Spirv_fuzz.Fuzzer.donors = List.map snd (Lazy.force Corpus.lowered_donors);
    }
  in
  (* find a crashing seed *)
  let rec hunt seed =
    if seed > 300 then None
    else begin
      let ctx = Spirv_fuzz.Context.make reference input in
      let result = Spirv_fuzz.Fuzzer.run ~config ~seed ctx in
      match
        Compilers.Backend.run target result.Spirv_fuzz.Fuzzer.final.Spirv_fuzz.Context.m
          input
      with
      | Compilers.Backend.Crashed s -> Some (ctx, result, s)
      | _ -> hunt (seed + 1)
    end
  in
  match hunt 0 with
  | None -> print_endline "no crash found at this scale"
  | Some (ctx, result, signature) ->
      Printf.printf "found: %s\n" signature;
      let is_interesting (c : Spirv_fuzz.Context.t) =
        match Compilers.Backend.run target c.Spirv_fuzz.Context.m input with
        | Compilers.Backend.Crashed s -> String.equal s signature
        | _ -> false
      in
      let r =
        Spirv_fuzz.Reducer.reduce ~original:ctx ~is_interesting
          result.Spirv_fuzz.Fuzzer.transformations
      in
      let kept = r.Spirv_fuzz.Reducer.transformations in
      Printf.printf "minimized sequence: %s\n"
        (String.concat ", " (List.map Spirv_fuzz.Transformation.type_id kept));

      (* the regression pair: P_{n-1} (all but the last transformation) and
         P_n (all of them) *)
      let all_but_last =
        match List.rev kept with [] -> [] | _ :: rest -> List.rev rest
      in
      let p_pred = Spirv_fuzz.Lang.replay ctx all_but_last in
      let p_final = r.Spirv_fuzz.Reducer.reduced in
      Printf.printf "\nregression pair: %d vs %d instructions; delta:\n%s\n"
        (Spirv_ir.Module_ir.instruction_count p_pred.Spirv_fuzz.Context.m)
        (Spirv_ir.Module_ir.instruction_count p_final.Spirv_fuzz.Context.m)
        (Spirv_ir.Disasm.diff_to_string p_pred.Spirv_fuzz.Context.m
           p_final.Spirv_fuzz.Context.m);

      (* the regression check a conformance suite would run: both programs
         must render identical images on any correct implementation *)
      (match
         ( Spirv_ir.Interp.render p_pred.Spirv_fuzz.Context.m input,
           Spirv_ir.Interp.render p_final.Spirv_fuzz.Context.m input )
       with
      | Ok a, Ok b ->
          Printf.printf "regression check on the reference interpreter: images equal = %b\n"
            (Spirv_ir.Image.equal a b)
      | _ -> print_endline "render failed");

      (* and the buggy target fails it: P_{n-1} passes, P_n crashes *)
      let describe m =
        match Compilers.Backend.run target m input with
        | Compilers.Backend.Crashed s -> "CRASH: " ^ s
        | Compilers.Backend.Rendered _ -> "renders"
        | Compilers.Backend.Compiled_ok -> "compiles"
      in
      Printf.printf "on %s: P_pred %s; P_final %s\n" target.Compilers.Target.name
        (describe p_pred.Spirv_fuzz.Context.m)
        (describe p_final.Spirv_fuzz.Context.m)
