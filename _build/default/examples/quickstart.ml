(* Quickstart: the full transformation-based-testing loop on one shader.

   1. take a reference shader (MiniGLSL) and lower it to the IR;
   2. fuzz it: apply a recorded sequence of semantics-preserving
      transformations (Figure 1);
   3. run original and variant on a buggy target and compare;
   4. when a bug appears, delta-debug the transformation sequence to a
      1-minimal subsequence (Figure 2) and print the module-level delta
      (the artifact a bug report would contain, Figure 3).

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. a reference program, known to render a stable image *)
  let name = "helper_distance" in
  let reference =
    List.assoc name (Lazy.force Corpus.lowered_references)
  in
  let input = Corpus.default_input in
  Printf.printf "reference %s: %d instructions\n" name
    (Spirv_ir.Module_ir.instruction_count reference);
  (match Spirv_ir.Interp.render reference input with
  | Ok img -> Printf.printf "reference image:\n%s" (Spirv_ir.Image.to_ascii img)
  | Error t -> failwith (Spirv_ir.Interp.trap_to_string t));

  (* 2. fuzz: every transformation is recorded with all its parameters *)
  let ctx = Spirv_fuzz.Context.make reference input in
  let config =
    {
      Spirv_fuzz.Fuzzer.default_config with
      Spirv_fuzz.Fuzzer.donors = List.map snd (Lazy.force Corpus.lowered_donors);
    }
  in
  let result = Spirv_fuzz.Fuzzer.run ~config ~seed:0 ctx in
  let variant = result.Spirv_fuzz.Fuzzer.final.Spirv_fuzz.Context.m in
  Printf.printf "\nfuzzed with %d transformations -> %d instructions\n"
    (List.length result.Spirv_fuzz.Fuzzer.transformations)
    (Spirv_ir.Module_ir.instruction_count variant);

  (* the variant still renders the same image on a correct implementation *)
  (match (Spirv_ir.Interp.render reference input, Spirv_ir.Interp.render variant input) with
  | Ok a, Ok b ->
      Printf.printf "variant agrees with reference on the correct interpreter: %b\n"
        (Spirv_ir.Image.equal a b)
  | _ -> failwith "render failed");

  (* 3. run on a buggy target (SwiftShader has the DontInline bug) *)
  let target = Compilers.Target.swiftshader in
  let signature =
    match Compilers.Backend.run target variant input with
    | Compilers.Backend.Crashed s ->
        Printf.printf "\nSwiftShader crashed on the variant: %s\n" s;
        s
    | _ ->
        print_endline "\n(no bug with this seed; try another)";
        exit 0
  in

  (* 4. reduce: delta debugging over the recorded transformation sequence *)
  let is_interesting (c : Spirv_fuzz.Context.t) =
    match Compilers.Backend.run target c.Spirv_fuzz.Context.m input with
    | Compilers.Backend.Crashed s -> String.equal s signature
    | _ -> false
  in
  let reduction =
    Spirv_fuzz.Reducer.reduce ~original:ctx ~is_interesting
      result.Spirv_fuzz.Fuzzer.transformations
  in
  Printf.printf "reduced to %d transformation(s) with %d interestingness queries:\n"
    (List.length reduction.Spirv_fuzz.Reducer.transformations)
    reduction.Spirv_fuzz.Reducer.stats.Tbct.Reducer.queries;
  List.iter
    (fun t -> Printf.printf "  %s\n" (Spirv_fuzz.Transformation.type_id t))
    reduction.Spirv_fuzz.Reducer.transformations;
  Printf.printf "\nbug-report delta (original vs minimally-transformed variant):\n%s\n"
    (Spirv_fuzz.Reducer.delta_listing ~original:ctx reduction.Spirv_fuzz.Reducer.reduced)
