(* The baseline's side of RQ2: glsl-fuzz-style source fuzzing, bug finding
   and marker-based source reduction, with the source-level and IR-level
   deltas printed side by side.  Contrast with examples/quickstart.exe,
   where spirv-fuzz's transformation-sequence reduction yields a far tighter
   IR delta.

   Run with:  dune exec examples/baseline_reduction.exe *)

let () =
  let input = Corpus.default_input in
  (* hunt for a (reference, seed, target) where the baseline triggers a bug *)
  let found = ref None in
  List.iter
    (fun (name, source) ->
      if !found = None then
        for seed = 0 to 40 do
          if !found = None then begin
            let fuzzed = Glsl_like.Source_fuzzer.fuzz ~seed source in
            let program = fuzzed.Glsl_like.Source_fuzzer.program in
            let variant = Glsl_like.Lower.lower program in
            List.iter
              (fun (t : Compilers.Target.t) ->
                if !found = None && t.Compilers.Target.executes then
                  match Compilers.Backend.run t variant input with
                  | Compilers.Backend.Crashed s ->
                      found := Some (name, source, program, t, s)
                  | _ -> ())
              Compilers.Target.all
          end
        done)
    Corpus.references;
  match !found with
  | None -> print_endline "no baseline-triggered crash at this scale"
  | Some (name, source, program, target, signature) ->
      Printf.printf "reference %s crashes %s after source fuzzing:\n  %s\n\n" name
        target.Compilers.Target.name signature;
      Printf.printf "fuzzed source (%d markers):\n%s\n"
        (List.length (Glsl_like.Ast.program_markers program))
        (Glsl_like.Pp.program_to_string program);
      (* the hand-crafted reducer: revert markers while the crash persists *)
      let is_interesting p =
        match Compilers.Backend.run target (Glsl_like.Lower.lower p) input with
        | Compilers.Backend.Crashed s -> String.equal s signature
        | _ -> false
      in
      let reduced, stats = Glsl_like.Source_reducer.reduce ~is_interesting program in
      Printf.printf "reduction: %d of %d markers survive (%d queries)\n\n"
        stats.Glsl_like.Source_reducer.kept_markers
        stats.Glsl_like.Source_reducer.initial_markers
        stats.Glsl_like.Source_reducer.queries;
      Printf.printf "source-level delta against the original:\n%s\n\n"
        (Glsl_like.Pp.diff_to_string source reduced);
      let m0 = Glsl_like.Lower.lower source in
      let m1 = Glsl_like.Lower.lower reduced in
      let removed, added = Spirv_ir.Disasm.diff m0 m1 in
      Printf.printf
        "IR-level delta after re-lowering: %d lines (the re-lowering noise that\n\
         makes the baseline's RQ2 medians so much larger than spirv-fuzz's)\n"
        (List.length removed + List.length added)
