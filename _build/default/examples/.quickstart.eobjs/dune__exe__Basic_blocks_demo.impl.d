examples/basic_blocks_demo.ml: Bb_lang List Printf String Tbct
