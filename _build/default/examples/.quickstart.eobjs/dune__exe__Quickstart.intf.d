examples/quickstart.mli:
