examples/basic_blocks_demo.mli:
