examples/baseline_reduction.mli:
