examples/baseline_reduction.ml: Compilers Corpus Glsl_like List Printf Spirv_ir String
