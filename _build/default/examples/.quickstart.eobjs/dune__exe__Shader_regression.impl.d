examples/shader_regression.ml: Compilers Corpus Lazy List Printf Spirv_fuzz Spirv_ir String
