examples/dedup_workflow.mli:
