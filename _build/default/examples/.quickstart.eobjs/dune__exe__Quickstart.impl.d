examples/quickstart.ml: Compilers Corpus Lazy List Printf Spirv_fuzz Spirv_ir String Tbct
