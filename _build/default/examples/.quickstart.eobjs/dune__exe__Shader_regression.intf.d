examples/shader_regression.mli:
