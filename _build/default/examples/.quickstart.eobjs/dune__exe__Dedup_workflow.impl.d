examples/dedup_workflow.ml: Harness List Printf
