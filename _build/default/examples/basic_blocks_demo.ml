(* The paper's section 2.1 walkthrough on the "basic blocks" teaching
   language: apply the five transformations of Figure 4, then reduce against
   the hypothetical buggy compiler and recover the Figure 5 sequence.

   Run with:  dune exec examples/basic_blocks_demo.exe *)

let show_step label (ctx : Bb_lang.Transform.context) =
  Printf.printf "%s\n%s\n" label (Bb_lang.Syntax.to_string ctx.Bb_lang.Transform.program);
  (match Bb_lang.Interp.run ctx.Bb_lang.Transform.program ctx.Bb_lang.Transform.input with
  | Ok out ->
      Printf.printf "  output: %s\n\n"
        (String.concat ", " (List.map Bb_lang.Syntax.show_value out))
  | Error e -> Printf.printf "  ERROR: %s\n\n" e)

let () =
  let ctx0 = Bb_lang.Figures.initial_context () in
  show_step "== Original program (input: i=1, j=2, k=true) ==" ctx0;

  (* apply T1..T5 one at a time, exactly as Figure 4 *)
  let labels = [ "T1 SplitBlock(a,1,b)"; "T2 AddDeadBlock(a,c,u)"; "T3 AddStore(c,0,s,i)";
                 "T4 AddLoad(b,0,v,s)"; "T5 ChangeRHS(a,1,k)" ] in
  let _ =
    List.fold_left2
      (fun ctx t label ->
        let ctx = Bb_lang.Transform.Apply.sequence_ctx ctx [ t ] in
        show_step ("== After " ^ label ^ " ==") ctx;
        ctx)
      ctx0 Bb_lang.Figures.sequence labels
  in

  (* the buggy compiler crashes when a conditional branch survives its
     constant-propagation pass *)
  let exhibits seq =
    let ctx = Bb_lang.Transform.Apply.sequence_ctx ctx0 seq in
    Bb_lang.Compiler.exhibits_bug ~impl:Bb_lang.Compiler.run_buggy ctx
  in
  Printf.printf "full sequence triggers the hypothetical bug: %b\n" (exhibits Bb_lang.Figures.sequence);

  let reduced, stats =
    Tbct.Reducer.reduce ~is_interesting:exhibits Bb_lang.Figures.sequence
  in
  Printf.printf "delta debugging (%d queries) keeps: %s\n" stats.Tbct.Reducer.queries
    (String.concat ", " (List.map Bb_lang.Transform.type_id reduced));
  Printf.printf "matches Figure 5's [T1; T2; T5]: %b\n\n"
    (reduced = Bb_lang.Figures.minimized);

  (* Figure 5's tick marks: P0..P2 do not trigger, P3 does *)
  List.iteri
    (fun i prefix ->
      Printf.printf "P%d triggers: %b\n" i (exhibits prefix))
    [ [];
      [ Bb_lang.Figures.t1 ];
      [ Bb_lang.Figures.t1; Bb_lang.Figures.t2 ];
      Bb_lang.Figures.minimized ]
