(** Type checker for MiniGLSL.

    Enforces the well-formedness rules the lowering relies on: variables
    declared before use, no shadowing, uniforms in module scope, built-in
    per-fragment variables ([gl_x]/[gl_y]) only in [main], [Discard] only as
    the final statement of a branch, helper functions returning on every
    path, declaration-before-use of functions (hence no recursion), and
    [Set_color] only in [main]. *)

type error = string

val check : Ast.program -> (unit, error) result
(** All corpus programs pass; the lowering may assume a checked program and
    treats violations as programming errors. *)
