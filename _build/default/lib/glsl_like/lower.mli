(** Lowering MiniGLSL to the SPIR-V-like IR — the glslang analog.

    Deliberately naive, as front-ends are before optimization: every source
    variable becomes an [OpVariable] allocation (hoisted to the entry
    block), every read a load and every write a store, matrix-vector
    products expand into per-row dot products, and fresh ids are drawn in
    program order.  That last property is what limits the baseline's
    reduction quality (RQ2): reverting a source marker and re-lowering
    shifts every id downstream, so source-level reduction can never reach
    the tight IR deltas of transformation-sequence reduction. *)

val lower : Ast.program -> Spirv_ir.Module_ir.t
(** Lower a checked program; the result validates and renders (tested over
    the whole corpus and all fuzzed variants).
    @raise Invalid_argument on ill-typed input — run {!Typecheck.check}
    first. *)
