lib/glsl_like/pp.pp.mli: Ast
