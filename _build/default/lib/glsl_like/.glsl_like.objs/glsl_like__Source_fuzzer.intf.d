lib/glsl_like/source_fuzzer.pp.mli: Ast
