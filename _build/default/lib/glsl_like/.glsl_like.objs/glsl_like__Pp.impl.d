lib/glsl_like/pp.pp.ml: Array Ast List Printf String
