lib/glsl_like/typecheck.pp.mli: Ast
