lib/glsl_like/source_reducer.pp.ml: Ast List
