lib/glsl_like/lower.pp.ml: Ast Builder Id Instr List Module_ir Spirv_ir Ty
