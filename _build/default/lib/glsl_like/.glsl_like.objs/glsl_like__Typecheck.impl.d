lib/glsl_like/typecheck.pp.ml: Ast List Printf Result String
