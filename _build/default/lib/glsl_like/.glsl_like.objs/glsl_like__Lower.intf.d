lib/glsl_like/lower.pp.mli: Ast Spirv_ir
