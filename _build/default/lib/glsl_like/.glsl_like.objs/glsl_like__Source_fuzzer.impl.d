lib/glsl_like/source_fuzzer.pp.ml: Ast List Printf Tbct
