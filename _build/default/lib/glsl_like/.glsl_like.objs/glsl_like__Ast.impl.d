lib/glsl_like/ast.pp.ml: List Ppx_deriving_runtime String
