lib/glsl_like/source_reducer.pp.mli: Ast
