(** The glsl-fuzz-style baseline fuzzer: coarse semantics-preserving
    transformations applied at the {e source} level, before lowering.

    Four transformation families, as in GLFuzz (paper, section 1):
    wrapping consecutive statements in an always-true conditional; wrapping
    them in a single-iteration loop; injecting dead code behind a false
    guard (optionally with a [discard]); and identity mutations on
    expressions (e + 0, e * 1, !!e).  Every application leaves a marker in
    the AST for {!Source_reducer} to revert. *)

type result = {
  program : Ast.program;  (** type-checks and renders like the original *)
  applied : int;          (** number of transformations (markers) applied *)
}

val fuzz : ?budget:int -> ?sweeps:int -> seed:int -> Ast.program -> result
(** Deterministic in the seed.  [budget] caps the number of markers
    introduced (default 40) over [sweeps] passes (default 4). *)
