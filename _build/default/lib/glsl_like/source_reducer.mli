(** The baseline's hand-crafted reducer.

    glsl-fuzz reverts transformations by following the syntactic markers the
    fuzzer left in the program (paper, section 6).  The loop greedily tries
    to revert each marker, keeping a revert when the interestingness test —
    evaluated on the {e re-lowered} program — still passes, until no single
    revert preserves interestingness (source-level 1-minimality). *)

type stats = {
  initial_markers : int;
  kept_markers : int;
  queries : int;  (** interestingness evaluations, each a full re-lower *)
}

val reduce :
  is_interesting:(Ast.program -> bool) -> Ast.program -> Ast.program * stats
(** @raise Invalid_argument when the input program is not interesting. *)
