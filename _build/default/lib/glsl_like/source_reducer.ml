(** The baseline's hand-crafted reducer.

    glsl-fuzz reverts transformations by following the syntactic markers the
    fuzzer left in the program (section 6).  The reduction loop greedily
    tries to revert each marker; a revert is kept when the interestingness
    test (evaluated on the {e re-lowered} program) still passes.  It repeats
    until no single revert preserves interestingness — the source-level
    analog of 1-minimality.

    Note what this cannot do (and the paper's RQ2 measures): because the
    test runs on the re-lowered module, every revert perturbs all ids and
    offsets downstream, so the final module-level delta against the original
    lowering is much coarser than spirv-fuzz's transformation-level delta. *)

type stats = {
  initial_markers : int;
  kept_markers : int;
  queries : int;
}

let reduce ~(is_interesting : Ast.program -> bool) (p : Ast.program) :
    Ast.program * stats =
  let queries = ref 0 in
  let test p =
    incr queries;
    is_interesting p
  in
  if not (test p) then
    invalid_arg "Source_reducer.reduce: input program is not interesting";
  let initial_markers = List.length (Ast.program_markers p) in
  let rec pass p =
    let markers = Ast.program_markers p in
    let p', changed =
      List.fold_left
        (fun (p, changed) m ->
          let candidate = Ast.revert_program m p in
          if test candidate then (candidate, true) else (p, changed))
        (p, false) markers
    in
    if changed then pass p' else p'
  in
  let reduced = pass p in
  ( reduced,
    {
      initial_markers;
      kept_markers = List.length (Ast.program_markers reduced);
      queries = !queries;
    } )
