(** Pretty-printer for MiniGLSL source, in a GLSL-like concrete syntax.
    Marker nodes render with comment annotations ([/*wrap:7*/]), so fuzzed
    programs stay readable and source-level deltas — what a glsl-fuzz-style
    bug report contains — can be eyeballed. *)

val ty_to_string : Ast.ty -> string
val expr_to_string : Ast.expr -> string
val program_to_string : Ast.program -> string

val diff : Ast.program -> Ast.program -> string list * string list
(** Longest-common-subsequence line diff of the rendered programs:
    (lines only in the first, lines only in the second). *)

val diff_to_string : Ast.program -> Ast.program -> string
(** The diff as [-]/[+] lines. *)
