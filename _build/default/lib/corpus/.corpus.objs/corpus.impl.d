lib/corpus/corpus.ml: Ast Dsl Glsl_like Lazy List Lower Printf Spirv_fuzz Spirv_ir Typecheck
