lib/corpus/dsl.ml: Ast Glsl_like
