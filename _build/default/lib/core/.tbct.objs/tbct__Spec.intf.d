lib/core/spec.mli:
