lib/core/reducer.ml: Hashtbl List
