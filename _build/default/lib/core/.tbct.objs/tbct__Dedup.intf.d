lib/core/dedup.mli: Set
