lib/core/rng.ml: Array Hashtbl Int64 List Stdlib
