lib/core/rng.mli:
