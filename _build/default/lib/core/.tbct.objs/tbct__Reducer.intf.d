lib/core/reducer.mli:
