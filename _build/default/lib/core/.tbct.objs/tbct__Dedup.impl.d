lib/core/dedup.ml: List Set String
