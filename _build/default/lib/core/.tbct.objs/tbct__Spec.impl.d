lib/core/spec.ml: List
