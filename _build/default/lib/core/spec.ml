module type LANGUAGE = sig
  type context
  type transformation

  val type_id : transformation -> string
  val precondition : context -> transformation -> bool
  val apply : context -> transformation -> context
end

module Apply (L : LANGUAGE) = struct
  type step = { transformation : L.transformation; applied : bool }

  let step ctx t =
    if L.precondition ctx t then (L.apply ctx t, true) else (ctx, false)

  let sequence ctx ts =
    let ctx, rev_steps =
      List.fold_left
        (fun (ctx, acc) t ->
          let ctx, applied = step ctx t in
          (ctx, { transformation = t; applied } :: acc))
        (ctx, []) ts
    in
    (ctx, List.rev rev_steps)

  let sequence_ctx ctx ts = List.fold_left (fun ctx t -> fst (step ctx t)) ctx ts

  let applied_subsequence ctx ts =
    let _, steps = sequence ctx ts in
    List.filter_map
      (fun s -> if s.applied then Some s.transformation else None)
      steps

  let check_preserves ~semantics ~equal ctx ts =
    let reference = semantics ctx in
    let rec go i ctx = function
      | [] -> Ok ()
      | t :: rest ->
          let ctx, _ = step ctx t in
          if equal reference (semantics ctx) then go (i + 1) ctx rest
          else Error i
    in
    go 0 ctx ts
end
