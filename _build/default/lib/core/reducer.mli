(** Delta debugging over transformation sequences.

    This is the reduction algorithm of section 3.4 of the paper: maintain a
    chunk size [c], initialised to [n/2]; divide the sequence into chunks of
    size [c] starting from the {e last} element and working backwards (so any
    leftover smaller chunk sits at the front); try removing each chunk in
    turn, keeping the removal whenever the interestingness test still passes;
    once no chunk of size [c] can be removed, halve [c]; terminate when no
    chunk of size 1 can be removed.  The result is 1-minimal: removing any
    single remaining element makes the test fail. *)

type stats = {
  queries : int;      (** number of interestingness-test invocations *)
  kept : int;         (** length of the reduced sequence *)
  initial : int;      (** length of the input sequence *)
}

val reduce :
  is_interesting:('a list -> bool) ->
  'a list ->
  'a list * stats
(** [reduce ~is_interesting xs] returns a 1-minimal subsequence of [xs] that
    still satisfies [is_interesting], together with statistics about the run.

    [is_interesting xs] must hold for the input sequence; otherwise
    [Invalid_argument] is raised (a reducer invoked on a non-bug-triggering
    sequence indicates a harness error). *)

val reduce_linear :
  is_interesting:('a list -> bool) ->
  'a list ->
  'a list * stats
(** Naive baseline for the ablation study: repeatedly sweep the sequence
    trying to remove one element at a time, with no chunking.  Produces the
    same 1-minimal guarantee as {!reduce} but needs many more
    interestingness queries on long sequences (the bench's reducer ablation
    quantifies the gap). *)

val reduce_with_cache :
  key:('a list -> string) ->
  is_interesting:('a list -> bool) ->
  'a list ->
  'a list * stats
(** Like {!reduce} but memoises interestingness results by [key], so that
    candidate subsequences arising repeatedly (common once the sequence is
    nearly minimal) are only evaluated once.  [stats.queries] counts only the
    uncached evaluations. *)
