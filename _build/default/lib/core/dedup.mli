(** Heuristic test-case deduplication (Figure 6 of the paper).

    Given a set of {e reduced} test cases, each characterised by the
    (unordered, duplicate-free) set of transformation types its minimized
    transformation sequence contains, select a subset to recommend for manual
    investigation such that no two recommended tests share a transformation
    type.  Tests with few transformation types are preferred (the algorithm
    scans candidate set sizes [i = 1, 2, ...]), on the intuition that a
    smaller type set pins down the bug trigger more precisely. *)

module String_set : Set.S with type elt = string

type 'a config = {
  types_of : 'a -> String_set.t;
      (** transformation types of a reduced test *)
  ignored : String_set.t;
      (** types excluded before comparison — the paper's section 3.5 list of
          supporting / enabler transformations (e.g. adding types and
          constants, SplitBlock, AddFunction, ReplaceIdWithSynonym).  Pass
          {!String_set.empty} to disable the refinement. *)
}

val select : 'a config -> 'a list -> 'a list
(** [select config tests] returns the subset recommended for investigation,
    in selection order.  Tests whose type set is empty after removing
    [config.ignored] are never selected (they carry no deduplication signal
    and would otherwise make the Figure 6 loop diverge); this matches the
    behaviour of the spirv-fuzz companion script. *)

val pairwise_disjoint : 'a config -> 'a list -> bool
(** Invariant of {!select}'s output: no two selected tests share a
    (non-ignored) transformation type.  Exposed for property tests. *)
