(** The formal core of transformation-based compiler testing (section 2.2).

    A {e context} is a (program, input, facts) triple such that the program
    is well-defined on the input (Definition 2.3).  A {e transformation} has
    a type identifier, a precondition over contexts and an effect that, when
    the precondition holds, yields a context with identical semantics
    (Definition 2.4).  Sequences of transformations are applied by skipping
    those whose preconditions fail (Definition 2.5) — the property that makes
    delta debugging over subsequences sound.

    The module is a functor over the language of interest; it is instantiated
    by [Bb_lang] (the paper's "basic blocks" teaching language) and by
    [Spirv_fuzz] (the SPIR-V-like IR). *)

module type LANGUAGE = sig
  type context
  (** program + input + facts *)

  type transformation

  val type_id : transformation -> string
  (** The [Type] component (Definition 2.4), used for deduplication. *)

  val precondition : context -> transformation -> bool

  val apply : context -> transformation -> context
  (** Only called when [precondition] holds; must preserve semantics. *)
end

module Apply (L : LANGUAGE) : sig
  type step = {
    transformation : L.transformation;
    applied : bool;  (** false when the precondition failed and it was skipped *)
  }

  val sequence : L.context -> L.transformation list -> L.context * step list
  (** Definition 2.5: fold the sequence over the context, skipping
      transformations whose preconditions do not hold. *)

  val sequence_ctx : L.context -> L.transformation list -> L.context
  (** [sequence] without the per-step log. *)

  val applied_subsequence : L.context -> L.transformation list -> L.transformation list
  (** The transformations that actually applied, in order. *)

  val check_preserves :
    semantics:(L.context -> 'r) ->
    equal:('r -> 'r -> bool) ->
    L.context ->
    L.transformation list ->
    (unit, int) result
  (** Theorem 2.6 test harness: apply the sequence one step at a time and
      compare semantics after every step against the original context.
      Returns [Error i] with the index of the first semantics-changing step,
      if any.  Used by the property-based test suites. *)
end
