module String_set = Set.Make (String)

type 'a config = {
  types_of : 'a -> String_set.t;
  ignored : String_set.t;
}

let effective_types config t = String_set.diff (config.types_of t) config.ignored

let select config tests =
  (* Pair each test with its filtered type set once; drop signal-free tests. *)
  let tagged =
    List.filter_map
      (fun t ->
        let tys = effective_types config t in
        if String_set.is_empty tys then None else Some (t, tys))
      tests
  in
  let max_size =
    List.fold_left (fun acc (_, tys) -> max acc (String_set.cardinal tys)) 0 tagged
  in
  (* Figure 6: while Tests nonempty, find a test with |types| = i (smallest
     first); select it and discard every test sharing a type with it. *)
  let rec loop i remaining selected =
    match remaining with
    | [] -> List.rev selected
    | _ when i > max_size -> List.rev selected
    | _ -> (
        let found =
          List.find_opt (fun (_, tys) -> String_set.cardinal tys = i) remaining
        in
        match found with
        | None -> loop (i + 1) remaining selected
        | Some (t, tys) ->
            let survivors =
              List.filter
                (fun (_, tys') -> String_set.is_empty (String_set.inter tys tys'))
                remaining
            in
            loop i survivors ((t, tys) :: selected))
  in
  List.map fst (loop 1 tagged [])

let pairwise_disjoint config tests =
  let rec check = function
    | [] -> true
    | t :: rest ->
        let tys = effective_types config t in
        List.for_all
          (fun t' ->
            String_set.is_empty (String_set.inter tys (effective_types config t')))
          rest
        && check rest
  in
  check tests
