(* PCG32: state advances by a 64-bit LCG; output is an xorshift-rotated
   permutation of the old state.  Constants from the PCG reference
   implementation. *)

type t = {
  mutable state : int64;
  increment : int64; (* must be odd *)
}

let multiplier = 6364136223846793005L

let next_raw t =
  let old = t.state in
  t.state <- Int64.add (Int64.mul old multiplier) t.increment;
  (* output permutation: xsh-rr *)
  let xorshifted =
    Int64.to_int
      (Int64.logand
         (Int64.shift_right_logical (Int64.logxor (Int64.shift_right_logical old 18) old) 27)
         0xFFFFFFFFL)
  in
  let rot = Int64.to_int (Int64.shift_right_logical old 59) in
  let r = (xorshifted lsr rot) lor (xorshifted lsl (-rot land 31)) in
  r land 0xFFFFFFFF

let make_raw ~state ~increment =
  let t = { state = 0L; increment = Int64.logor increment 1L } in
  t.state <- Int64.add state t.increment;
  ignore (next_raw t);
  t

let make seed =
  make_raw ~state:(Int64.of_int seed) ~increment:0xda3e39cb94b95bdbL

let split t =
  (* Derive two fresh streams from draws of the parent; distinct increments
     guarantee distinct sequences even for equal states. *)
  let s1 = Int64.of_int (next_raw t) and s2 = Int64.of_int (next_raw t) in
  let i1 = Int64.of_int (next_raw t) and i2 = Int64.of_int (next_raw t) in
  ( make_raw ~state:(Int64.logor (Int64.shift_left s1 32) s2) ~increment:i1,
    make_raw ~state:(Int64.logor (Int64.shift_left s2 32) s1) ~increment:i2 )

let copy t = { state = t.state; increment = t.increment }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* rejection sampling to avoid modulo bias *)
  let limit = 0x100000000 - (0x100000000 mod bound) in
  let rec draw () =
    let r = next_raw t in
    if r < limit then r mod bound else draw ()
  in
  draw ()

let int_in_range t ~lo ~hi =
  if lo > hi then invalid_arg "Rng.int_in_range: lo > hi";
  lo + int t (hi - lo + 1)

let bool t = next_raw t land 1 = 1

let chance t ~num ~den =
  if den <= 0 then invalid_arg "Rng.chance: den must be positive";
  int t den < num

let float t bound = bound *. (Stdlib.float_of_int (next_raw t) /. 4294967296.0)

let choose t = function
  | [] -> invalid_arg "Rng.choose: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let choose_opt t = function
  | [] -> None
  | xs -> Some (List.nth xs (int t (List.length xs)))

let sample t k xs =
  let n = List.length xs in
  if k >= n then xs
  else begin
    (* reservoir-free: draw k distinct positions, keep order *)
    let chosen = Hashtbl.create k in
    let remaining = ref k in
    (* Floyd's algorithm over indices *)
    for j = n - k to n - 1 do
      let r = int t (j + 1) in
      if Hashtbl.mem chosen r then Hashtbl.replace chosen j ()
      else Hashtbl.replace chosen r ();
      decr remaining
    done;
    ignore !remaining;
    List.filteri (fun i _ -> Hashtbl.mem chosen i) xs
  end

let shuffle t xs =
  let a = Array.of_list xs in
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a
