(** Deterministic, splittable pseudo-random number generator.

    All randomized components of the library draw from this generator so that
    every fuzzing run, reduction and experiment is reproducible from a single
    integer seed, mirroring the seed-controlled behaviour of spirv-fuzz
    (paper, section 3.2).  The implementation is PCG32 (Melissa O'Neill's
    permuted congruential generator), self-contained so that results do not
    depend on the OCaml standard library's [Random] implementation. *)

type t

val make : int -> t
(** [make seed] creates a generator from an integer seed. *)

val split : t -> t * t
(** [split g] destructively advances [g] and returns two generators with
    independent streams.  Useful to give each fuzzer pass its own stream so
    that adding draws to one pass does not perturb another. *)

val copy : t -> t
(** A generator with the same state; the two evolve independently. *)

val int : t -> int -> int
(** [int g bound] draws a uniform integer in [\[0, bound)].  [bound] must be
    positive. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** Uniform integer in [\[lo, hi\]] inclusive.  Requires [lo <= hi]. *)

val bool : t -> bool

val chance : t -> num:int -> den:int -> bool
(** [chance g ~num ~den] is true with probability [num/den]. *)

val float : t -> float -> float
(** [float g bound] draws a uniform float in [\[0, bound)]. *)

val choose : t -> 'a list -> 'a
(** Uniform element of a non-empty list.  @raise Invalid_argument on []. *)

val choose_opt : t -> 'a list -> 'a option
(** Uniform element, or [None] on the empty list. *)

val sample : t -> int -> 'a list -> 'a list
(** [sample g k xs] draws min(k, length xs) distinct elements, preserving
    their relative order in [xs]. *)

val shuffle : t -> 'a list -> 'a list
(** Uniform permutation (Fisher-Yates). *)
