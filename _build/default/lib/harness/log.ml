(** Log source for the experiment harness ("tbct.harness"). *)

let src = Logs.Src.create "tbct.harness" ~doc:"experiment harness events"

include (val Logs.src_log src : Logs.LOG)
