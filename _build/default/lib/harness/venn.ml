(** Three-set Venn partitions (Figure 7): for each region of the diagram,
    how many bug signatures were found by exactly that combination of tool
    configurations. *)

module String_set = Set.Make (String)

type t = {
  only_a : int;
  only_b : int;
  only_c : int;
  ab : int;  (** in A and B but not C *)
  ac : int;
  bc : int;
  abc : int;
}

let partition ~(a : String_set.t) ~(b : String_set.t) ~(c : String_set.t) =
  let universe = String_set.union a (String_set.union b c) in
  let count p = String_set.cardinal (String_set.filter p universe) in
  let mem s x = String_set.mem x s in
  {
    only_a = count (fun x -> mem a x && (not (mem b x)) && not (mem c x));
    only_b = count (fun x -> (not (mem a x)) && mem b x && not (mem c x));
    only_c = count (fun x -> (not (mem a x)) && (not (mem b x)) && mem c x);
    ab = count (fun x -> mem a x && mem b x && not (mem c x));
    ac = count (fun x -> mem a x && (not (mem b x)) && mem c x);
    bc = count (fun x -> (not (mem a x)) && mem b x && mem c x);
    abc = count (fun x -> mem a x && mem b x && mem c x);
  }

let total t = t.only_a + t.only_b + t.only_c + t.ab + t.ac + t.bc + t.abc

(** Render in the style of Figure 7's per-target panels. *)
let to_string ~label_a ~label_b ~label_c t =
  String.concat "\n"
    [
      Printf.sprintf "  %s only: %d" label_a t.only_a;
      Printf.sprintf "  %s only: %d" label_b t.only_b;
      Printf.sprintf "  %s only: %d" label_c t.only_c;
      Printf.sprintf "  %s+%s: %d" label_a label_b t.ab;
      Printf.sprintf "  %s+%s: %d" label_a label_c t.ac;
      Printf.sprintf "  %s+%s: %d" label_b label_c t.bc;
      Printf.sprintf "  all three: %d" t.abc;
    ]
