(** Bug signatures (section 3.4).

    A bug signature is either the crash signature extracted from a compiler
    crash, or the single special signature used for all miscompilations
    ("Because all miscompilations contribute the same bug signature, the
    results do not provide insight into how many different miscompilations
    the tools can detect").  *)

type t = string

let miscompilation : t = "miscompilation"

let is_miscompilation s = String.equal s miscompilation

(** Ground-truth bug id behind a signature (for the Table 4 baseline, where
    "a set of bugs known to be distinct" is required).  Derived signatures
    (validation failures, device hangs) are canonicalised by prefix. *)
let bug_id_of_signature (s : t) : string =
  let has_prefix p = String.length s >= String.length p && String.sub s 0 (String.length p) = p in
  match
    List.find_opt
      (fun (spec : Compilers.Bug.crash_spec) -> String.equal spec.Compilers.Bug.signature s)
      Compilers.Bug.all_crash_bugs
  with
  | Some spec -> spec.Compilers.Bug.bug_id
  | None ->
      if has_prefix "optimizer emitted invalid module" then "opt-invalid-output"
      else if has_prefix "device lost" then "device-lost"
      else if has_prefix "constant folder: integer division" then "fold-div-crash"
      else if is_miscompilation s then "miscompilation"
      else s
