lib/harness/signature.ml: Compilers List String
