lib/harness/experiments.mli: Compilers Glsl_like Module_ir Pipeline Spirv_fuzz Spirv_ir Tbct Venn
