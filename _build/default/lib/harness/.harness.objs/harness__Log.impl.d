lib/harness/log.ml: Logs
