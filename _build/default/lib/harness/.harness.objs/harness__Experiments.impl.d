lib/harness/experiments.ml: Array Builder Cfg Compilers Corpus Func Glsl_like Hashtbl Image Input Lazy List Log Module_ir Option Pipeline Set Signature Spirv_fuzz Spirv_ir Stats String Venn
