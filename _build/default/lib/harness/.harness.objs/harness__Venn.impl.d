lib/harness/venn.ml: Printf Set String
