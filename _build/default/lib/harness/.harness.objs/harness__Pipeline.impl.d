lib/harness/pipeline.ml: Compilers Corpus Glsl_like Hashtbl Image Input Lazy List Module_ir Option Signature Spirv_fuzz Spirv_ir String
