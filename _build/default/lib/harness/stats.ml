(** Statistics for the controlled experiments: medians and the
    Mann-Whitney U test (the paper's reference [1]) with tie correction and
    normal approximation, used in Table 3 to compare tool configurations. *)

let median xs =
  match List.sort compare xs with
  | [] -> nan
  | sorted ->
      let n = List.length sorted in
      if n mod 2 = 1 then List.nth sorted (n / 2)
      else (List.nth sorted ((n / 2) - 1) +. List.nth sorted (n / 2)) /. 2.0

let mean xs =
  match xs with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(* standard normal CDF via the complementary error function approximation
   (Abramowitz & Stegun 7.1.26) *)
let normal_cdf z =
  let t = 1.0 /. (1.0 +. (0.2316419 *. Float.abs z)) in
  let d = 0.3989422804014327 *. exp (-.z *. z /. 2.0) in
  let poly =
    t *. (0.319381530 +. t *. (-0.356563782 +. t *. (1.781477937 +. t *. (-1.821255978 +. t *. 1.330274429))))
  in
  let p = 1.0 -. (d *. poly) in
  if z >= 0.0 then p else 1.0 -. p

type mwu_result = {
  u_statistic : float;
  z_score : float;
  (* one-sided confidence that population A is stochastically larger *)
  confidence_a_greater : float;
}

(** [mann_whitney_u a b] tests whether the population behind sample [a]
    tends to produce larger values than the one behind [b].
    [confidence_a_greater] is the one-sided confidence (0..1); values close
    to 1 mean "A beats B", close to 0 mean the opposite. *)
let mann_whitney_u (a : float list) (b : float list) =
  let na = float_of_int (List.length a) and nb = float_of_int (List.length b) in
  if a = [] || b = [] then { u_statistic = nan; z_score = nan; confidence_a_greater = nan }
  else begin
    (* rank the pooled sample, average ranks for ties *)
    let pooled =
      List.map (fun x -> (x, `A)) a @ List.map (fun x -> (x, `B)) b
      |> List.sort (fun (x, _) (y, _) -> compare x y)
    in
    let arr = Array.of_list pooled in
    let n = Array.length arr in
    let ranks = Array.make n 0.0 in
    let i = ref 0 in
    let tie_correction = ref 0.0 in
    while !i < n do
      let j = ref !i in
      while !j < n - 1 && fst arr.(!j + 1) = fst arr.(!i) do incr j done;
      let avg_rank = float_of_int (!i + !j + 2) /. 2.0 in
      for k = !i to !j do ranks.(k) <- avg_rank done;
      let t = float_of_int (!j - !i + 1) in
      tie_correction := !tie_correction +. ((t *. t *. t) -. t);
      i := !j + 1
    done;
    let rank_sum_a = ref 0.0 in
    Array.iteri (fun k (_, side) -> if side = `A then rank_sum_a := !rank_sum_a +. ranks.(k)) arr;
    let u_a = !rank_sum_a -. (na *. (na +. 1.0) /. 2.0) in
    let mu = na *. nb /. 2.0 in
    let n_total = na +. nb in
    let sigma2 =
      na *. nb /. 12.0
      *. (n_total +. 1.0 -. (!tie_correction /. (n_total *. (n_total -. 1.0))))
    in
    let sigma = sqrt sigma2 in
    let z = if sigma = 0.0 then 0.0 else (u_a -. mu) /. sigma in
    { u_statistic = u_a; z_score = z; confidence_a_greater = normal_cdf z }
  end

(** Render a confidence as the paper does: "Yes (99.98%)" when A is more
    likely better, "No (14.99%)" otherwise — the percentage always reports
    the confidence that A beats B. *)
let verdict confidence =
  let pct = confidence *. 100.0 in
  if confidence >= 0.5 then Printf.sprintf "Yes (%.2f%%)" pct
  else Printf.sprintf "No (%.2f%%)" pct
