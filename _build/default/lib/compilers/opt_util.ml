(** Shared helpers for the optimizer passes. *)

open Spirv_ir

exception Compiler_crash of string
(** Raised by injected crash bugs; the signature string is what the harness
    extracts (section 3.4: "a crash signature associated with the bug"). *)

let crash fmt = Printf.ksprintf (fun s -> raise (Compiler_crash s)) fmt

(** Intern a runtime value as a constant of the given type, creating
    constituent constants as needed. *)
let rec intern_value m ty (v : Value.t) =
  match (Module_ir.find_type m ty, v) with
  | Some Ty.Bool, Value.VBool b -> Module_ir.intern_constant m ~ty (Constant.Bool b)
  | Some Ty.Int, Value.VInt i -> Module_ir.intern_constant m ~ty (Constant.Int i)
  | Some Ty.Float, Value.VFloat f -> Module_ir.intern_constant m ~ty (Constant.Float f)
  | Some _, Value.VComposite parts ->
      let m, part_ids =
        Array.to_list parts
        |> List.mapi (fun i p -> (i, p))
        |> List.fold_left
             (fun (m, acc) (i, p) ->
               match Module_ir.component_ty m ty i with
               | Some cty ->
                   let m, id = intern_value m cty p in
                   (m, acc @ [ id ])
               | None -> (m, acc))
             (m, [])
      in
      Module_ir.intern_constant m ~ty (Constant.Composite part_ids)
  | _ -> invalid_arg "intern_value: type/value mismatch"

(** Map every instruction of every block of every function. *)
let map_instrs m f =
  {
    m with
    Module_ir.functions =
      List.map
        (fun (fn : Func.t) ->
          {
            fn with
            Func.blocks =
              List.map
                (fun (b : Block.t) -> { b with Block.instrs = List.map f b.Block.instrs })
                fn.Func.blocks;
          })
        m.Module_ir.functions;
  }

(** Substitute ids (via an association table) in all operand positions,
    terminators included. *)
let substitute_everywhere m table =
  let s id = match Hashtbl.find_opt table id with Some id' -> id' | None -> id in
  let subst_instr (i : Instr.t) =
    let rec resolve id seen =
      match Hashtbl.find_opt table id with
      | Some id' when not (List.mem id' seen) -> resolve id' (id :: seen)
      | _ -> id
    in
    ignore resolve;
    let op =
      match i.Instr.op with
      | Instr.Binop (b, x, y) -> Instr.Binop (b, s x, s y)
      | Instr.Unop (u, x) -> Instr.Unop (u, s x)
      | Instr.Select (c, t, f) -> Instr.Select (s c, s t, s f)
      | Instr.CompositeConstruct xs -> Instr.CompositeConstruct (List.map s xs)
      | Instr.CompositeExtract (c, p) -> Instr.CompositeExtract (s c, p)
      | Instr.CompositeInsert (o, c, p) -> Instr.CompositeInsert (s o, s c, p)
      | Instr.Load p -> Instr.Load (s p)
      | Instr.Store (p, v) -> Instr.Store (s p, s v)
      | Instr.AccessChain (b, idxs) -> Instr.AccessChain (s b, List.map s idxs)
      | Instr.FunctionCall (f, args) -> Instr.FunctionCall (f, List.map s args)
      | Instr.Phi inc -> Instr.Phi (List.map (fun (v, b) -> (s v, b)) inc)
      | Instr.CopyObject x -> Instr.CopyObject (s x)
      | (Instr.Variable _ | Instr.Undef | Instr.Nop) as op -> op
    in
    { i with Instr.op }
  in
  let subst_term = function
    | Block.BranchConditional (c, t, f) -> Block.BranchConditional (s c, t, f)
    | Block.ReturnValue v -> Block.ReturnValue (s v)
    | (Block.Branch _ | Block.Return | Block.Kill | Block.Unreachable) as t -> t
  in
  {
    m with
    Module_ir.functions =
      List.map
        (fun (fn : Func.t) ->
          {
            fn with
            Func.blocks =
              List.map
                (fun (b : Block.t) ->
                  {
                    b with
                    Block.instrs = List.map subst_instr b.Block.instrs;
                    Block.terminator = subst_term b.Block.terminator;
                  })
                fn.Func.blocks;
          })
        m.Module_ir.functions;
  }

(** All ids used as operands anywhere in the module (terminator conditions
    and return values included, branch targets and φ labels excluded). *)
let used_value_ids m =
  let used = ref Id.Set.empty in
  List.iter
    (fun (fn : Func.t) ->
      List.iter
        (fun (b : Block.t) ->
          List.iter
            (fun (i : Instr.t) ->
              List.iter (fun u -> used := Id.Set.add u !used) (Instr.used_ids i))
            b.Block.instrs;
          List.iter
            (fun u -> used := Id.Set.add u !used)
            (Block.terminator_used_ids b.Block.terminator))
        fn.Func.blocks)
    m.Module_ir.functions;
  !used
