(** The SPIR-V targets under test (Table 2 of the paper).

    Each target is an optimizer pipeline plus a roster of latent injected
    bugs.  The paper's version relationships are reproduced: Mesa fixes some
    Mesa-Old bugs, spirv-opt fixes most spirv-opt-old bugs, the Pixel images
    share a driver lineage, and AMD-LLPC and the spirv-opt tools cannot
    render (crashes only), as in the paper's experimental setup. *)

type gpu_type = Discrete | Integrated | Mobile | Software | Tooling

val gpu_type_to_string : gpu_type -> string

type t = {
  name : string;
  version : string;  (** cosmetic, mirrors Table 2 *)
  gpu : gpu_type;
  pipeline : Optimizer.pass_name list;
  opt_flags : Passes.flags;  (** enabled optimizer-hosted bugs *)
  crash_bug_ids : string list;  (** ids into {!Bug.all_crash_bugs} *)
  miscompile_bug_ids : string list;  (** ids into {!Bug.all_miscompile_bugs} *)
  executes : bool;  (** false for pure tooling: no rendering *)
}

val amd_llpc : t
val mesa : t
val mesa_old : t
val nvidia : t
val pixel5 : t
val pixel4 : t
val spirv_opt : t
val spirv_opt_old : t
val swiftshader : t

val all : t list
(** The nine targets, in Table 2 order. *)

val find : string -> t option

val reduction_study : t list
(** The four GPU-free targets used for the section 4.2 reduction-quality
    study (reductions can run massively in parallel there). *)

val dedup_study : t list
(** All targets but NVIDIA (excluded in the paper because of machine
    freezes), for the Table 4 deduplication study. *)
