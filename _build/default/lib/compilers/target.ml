(** The SPIR-V targets under test (Table 2).

    Each target is a compiler pipeline plus a roster of latent bugs.  The
    version relationships of the paper are reproduced: Mesa fixes some
    Mesa-Old bugs, spirv-opt fixes most spirv-opt-old bugs, and the Pixel
    images share a driver lineage. *)

type gpu_type = Discrete | Integrated | Mobile | Software | Tooling

let gpu_type_to_string = function
  | Discrete -> "Discrete"
  | Integrated -> "Integrated"
  | Mobile -> "Mobile"
  | Software -> "Software"
  | Tooling -> "N/A"

type t = {
  name : string;
  version : string;
  gpu : gpu_type;
  pipeline : Optimizer.pass_name list;
  opt_flags : Passes.flags;
  crash_bug_ids : string list;
  miscompile_bug_ids : string list;
  executes : bool;  (** false for pure tooling (spirv-opt): no rendering *)
}

let full = Optimizer.standard
let light = Optimizer.[ Const_fold; Copy_prop; Simplify_cfg; Phi_simplify; Copy_prop; Dce ]

let amd_llpc =
  {
    name = "AMD-LLPC";
    version = "git-4781635";
    gpu = Discrete;
    pipeline = full;
    opt_flags = Passes.no_bugs;
    crash_bug_ids =
      [ "many-params-4"; "deep-extract"; "phi-arity-4"; "loop-count-6"; "select-bool";
        "many-blocks-28" ];
    miscompile_bug_ids = [ "mc-extract-high" ];
    (* the paper could not render on AMD (no device): crashes only *)
    executes = false;
  }

let mesa =
  {
    name = "Mesa";
    version = "20.2.1";
    gpu = Integrated;
    pipeline = full;
    opt_flags = Passes.no_bugs;
    crash_bug_ids =
      [ "phi-arity-4"; "kill-complex-8"; "empty-chain-3"; "copy-chain-3";
        "many-blocks-28"; "loop-count-6" ];
    miscompile_bug_ids = [ "mc-phi-cond"; "mc-phi-positional" ];
    executes = true;
  }

let mesa_old =
  {
    name = "Mesa-Old";
    version = "19.1.0";
    gpu = Integrated;
    pipeline = light;
    opt_flags = Passes.no_bugs;
    crash_bug_ids =
      [ "phi-arity-3"; "kill-complex-8"; "empty-chain-3"; "copy-chain-3";
        "many-blocks-28"; "loop-count-4"; "select-bool"; "multi-output-store";
        "unreachable-block"; "donated-call" ];
    miscompile_bug_ids = [ "mc-phi-cond"; "mc-phi-positional"; "mc-uniform-cond" ];
    executes = true;
  }

let nvidia =
  {
    name = "NVIDIA";
    version = "440.100";
    gpu = Discrete;
    pipeline = light;
    opt_flags = Passes.no_bugs;
    crash_bug_ids =
      [ "phi-arity-3"; "phi-arity-4"; "kill-frontend"; "kill-complex-8";
        "many-blocks-28"; "many-blocks-40"; "many-params-4"; "copy-chain-3";
        "deep-extract"; "select-bool"; "loop-count-4";
        "loop-count-6"; "const-cond-frontend"; "empty-chain-3"; "donated-call" ];
    miscompile_bug_ids = [ "mc-block-order"; "mc-extract-high"; "mc-uniform-cond" ];
    executes = true;
  }

let pixel5 =
  {
    name = "Pixel-5";
    version = "RD1A.201105.003.C1";
    gpu = Mobile;
    pipeline = full;
    opt_flags = Passes.no_bugs;
    crash_bug_ids =
      [ "kill-frontend"; "many-blocks-40"; "uniform-cond-backend"; "many-params-4";
        "empty-chain-3" ];
    miscompile_bug_ids = [ "mc-block-order"; "mc-uniform-cond" ];
    executes = true;
  }

let pixel4 =
  {
    name = "Pixel-4";
    version = "QD1A.190821.014.C2";
    gpu = Mobile;
    pipeline = full;
    opt_flags = Passes.no_bugs;
    crash_bug_ids =
      [ "kill-frontend"; "many-blocks-40"; "uniform-cond-backend"; "copy-chain-3";
        "loop-count-6"; "phi-arity-4" ];
    miscompile_bug_ids = [ "mc-block-order"; "mc-phi-positional" ];
    executes = true;
  }

let spirv_opt =
  {
    name = "spirv-opt";
    version = "git-02195a0";
    gpu = Tooling;
    pipeline = full;
    opt_flags = { Passes.no_bugs with Passes.bug_fold_div_crash = true };
    crash_bug_ids = [ "deep-extract"; "copy-chain-3" ];
    miscompile_bug_ids = [];
    executes = false;
  }

let spirv_opt_old =
  {
    name = "spirv-opt-old";
    version = "git-2276e59";
    gpu = Tooling;
    pipeline = full;
    opt_flags =
      {
        Passes.no_bugs with
        Passes.bug_fold_div_crash = true;
        Passes.bug_keep_stale_phi_entries = true;
      };
    crash_bug_ids =
      [ "deep-extract"; "copy-chain-3"; "unreachable-block"; "phi-arity-4";
        "empty-chain-3"; "many-params-4"; "donated-call" ];
    miscompile_bug_ids = [];
    executes = false;
  }

let swiftshader =
  {
    name = "SwiftShader";
    version = "git-b5bf826";
    gpu = Software;
    pipeline = full;
    opt_flags = { Passes.no_bugs with Passes.bug_inline_swaps_const_args = true };
    crash_bug_ids =
      [ "dontinline-call"; "copy-chain-3"; "multi-output-store"; "select-bool";
        "phi-arity-4"; "many-params-4"; "kill-frontend"; "donated-call" ];
    miscompile_bug_ids = [ "mc-extract-high" ];
    executes = true;
  }

let all =
  [ amd_llpc; mesa; mesa_old; nvidia; pixel5; pixel4; spirv_opt; spirv_opt_old; swiftshader ]

let find name = List.find_opt (fun t -> String.equal t.name name) all

(** Targets used for the reduction-quality study (section 4.2): the four
    that need no GPU, where reductions can run massively in parallel. *)
let reduction_study = [ amd_llpc; spirv_opt; spirv_opt_old; swiftshader ]

(** Targets for the deduplication study (Table 4): all but NVIDIA, which the
    paper had to exclude because of machine freezes. *)
let dedup_study =
  [ amd_llpc; mesa; mesa_old; pixel5; pixel4; spirv_opt; spirv_opt_old; swiftshader ]
