(** Tiny block helpers local to the optimizer. *)

open Spirv_ir

let phi_count (b : Block.t) =
  let rec go n = function
    | (i : Instr.t) :: rest when Instr.is_phi i -> go (n + 1) rest
    | _ -> n
  in
  go 0 b.Block.instrs
