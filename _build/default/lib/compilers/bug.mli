(** Injected compiler bugs.

    Each of the nine targets (Table 2) carries a roster of latent bugs.
    {b Crash bugs} are structural predicates over the module being compiled;
    when one fires the "compiler" aborts with a stable crash signature (what
    gfauto's signature extraction recovers from a crash report, paper
    section 3.4).  {b Miscompilation bugs} are rewrites applied to the
    optimized module before execution — wrong code emitted for particular
    program shapes.

    Triggers are chosen to be reachable from the transformations the
    fuzzers apply (dead blocks, φ-nodes, OpKill, block reordering, uniform
    obfuscation, donated functions, ...) while absent from the lowered
    reference corpus — mirroring how real driver bugs hide on paths everyday
    shaders never exercise.  The test suite checks that no crash trigger
    fires on any clean corpus program, raw or optimized. *)

open Spirv_ir

type phase =
  | Before_opt  (** checked on the module as submitted (front-end bugs) *)
  | After_opt   (** checked on the optimized module (back-end bugs) *)

type crash_spec = {
  bug_id : string;     (** ground-truth identity for the Table 4 study *)
  signature : string;  (** what the harness extracts and deduplicates *)
  phase : phase;
  trigger : Module_ir.t -> bool;
}

type miscompile_spec = {
  mc_bug_id : string;
  rewrite : Module_ir.t -> Module_ir.t;  (** identity when the shape is absent *)
}

(** {1 Structural probes} (exposed for tests and target design) *)

val has_donated_call : Module_ir.t -> bool
val has_dontinline_call : Module_ir.t -> bool
val max_phi_arity : Module_ir.t -> int
val has_kill : Module_ir.t -> bool
val max_blocks : Module_ir.t -> int
val max_params : Module_ir.t -> int
val output_store_count : Module_ir.t -> int
val max_copy_chain : Module_ir.t -> int
val has_deep_extract : Module_ir.t -> bool
val has_unreachable_block : Module_ir.t -> bool
val has_select_on_bool : Module_ir.t -> bool
val has_undef : Module_ir.t -> bool
val loop_count : Module_ir.t -> int
(** Retreating edges (branches to earlier-or-equal syntactic positions) —
    loops, whether source-level or created by block reordering. *)

val max_empty_chain : Module_ir.t -> int
val has_constant_condition : Module_ir.t -> bool
val non_fallthrough_count : Module_ir.t -> int
val has_uniform_fed_condition : Module_ir.t -> bool

(** {1 The catalogue} *)

val all_crash_bugs : crash_spec list
val find_crash_bug : string -> crash_spec option
val all_miscompile_bugs : miscompile_spec list
val find_miscompile_bug : string -> miscompile_spec option
