lib/compilers/backend.pp.ml: Bug Image Input Interp List Module_ir Opt_util Optimizer Spirv_ir Target Validate
