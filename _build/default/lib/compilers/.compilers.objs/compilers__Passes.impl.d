lib/compilers/passes.pp.ml: Block Cfg Constant Edit_light Func Hashtbl Id Instr List Module_ir Ops Opt_util Option Spirv_ir Ty Value
