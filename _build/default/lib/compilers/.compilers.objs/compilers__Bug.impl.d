lib/compilers/bug.pp.ml: Block Cfg Func Hashtbl Id Instr List Module_ir Spirv_ir String Ty
