lib/compilers/edit_light.pp.ml: Block Instr Spirv_ir
