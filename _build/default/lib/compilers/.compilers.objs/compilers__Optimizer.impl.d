lib/compilers/optimizer.pp.ml: List Module_ir Opt_util Passes Ppx_deriving_runtime Spirv_ir
