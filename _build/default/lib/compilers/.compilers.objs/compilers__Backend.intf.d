lib/compilers/backend.pp.mli: Image Input Module_ir Spirv_ir Target
