lib/compilers/target.pp.mli: Optimizer Passes
