lib/compilers/optimizer.pp.mli: Format Module_ir Passes Spirv_ir
