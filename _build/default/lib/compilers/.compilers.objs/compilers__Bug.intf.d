lib/compilers/bug.pp.mli: Module_ir Spirv_ir
