lib/compilers/target.pp.ml: List Optimizer Passes String
