lib/compilers/passes.pp.mli: Module_ir Spirv_ir
