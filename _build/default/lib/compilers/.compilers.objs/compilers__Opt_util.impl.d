lib/compilers/opt_util.pp.ml: Array Block Constant Func Hashtbl Id Instr List Module_ir Printf Spirv_ir Ty Value
