(** Pass pipelines: the [-O]-style standard optimization sequence and the
    per-target pipelines. *)

open Spirv_ir

type pass_name =
  | Const_fold
  | Copy_prop
  | Dce
  | Simplify_cfg
  | Phi_simplify
  | Cse
  | Inline
  | Store_forward
  | Dse
[@@deriving show { with_path = false }, eq]

let run_pass flags m = function
  | Const_fold -> Passes.const_fold flags m
  | Copy_prop -> Passes.copy_prop m
  | Dce -> Passes.dce m
  | Simplify_cfg -> Passes.simplify_cfg flags m
  | Phi_simplify -> Passes.phi_simplify m
  | Cse -> Passes.cse m
  | Inline -> Passes.inline flags m
  | Store_forward -> Passes.store_forward m
  | Dse -> Passes.dse m

let run ?(flags = Passes.no_bugs) pipeline m =
  List.fold_left (run_pass flags) m pipeline

(** The standard [-O] pipeline, run twice like spirv-opt's iterated
    optimization loop. *)
let standard =
  let once =
    [ Inline; Const_fold; Copy_prop; Simplify_cfg; Phi_simplify; Copy_prop;
      Store_forward; Copy_prop; Cse; Copy_prop; Dse; Dce ]
  in
  once @ once

(** Optimize a module with default (bug-free) flags — the "apply spirv-opt
    with the -O argument" step of the paper's test pipeline. *)
let optimize m : (Module_ir.t, string) result =
  match run standard m with
  | m' -> Ok m'
  | exception Opt_util.Compiler_crash signature -> Error signature
