(** The spirv-fuzz reducer (section 3.4): delta debugging over the recorded
    transformation sequence, replaying candidate subsequences from the
    original context and keeping those that still satisfy the
    interestingness test; then — the spirv-reduce analog — shrinking the
    function bodies of any surviving AddFunction transformations. *)


type result = {
  transformations : Transformation.t list;  (** the 1-minimal subsequence *)
  reduced : Context.t;  (** the original context with it applied *)
  stats : Tbct.Reducer.stats;
}

val reduce :
  original:Context.t ->
  is_interesting:(Context.t -> bool) ->
  Transformation.t list ->
  result
(** The full sequence must be interesting.  Soundness rests on
    Definition 2.5: skipped preconditions make every subsequence
    semantics-preserving, so the reducer may try any of them. *)

val shrink_add_functions :
  original:Context.t ->
  is_interesting:(Context.t -> bool) ->
  Transformation.t list ->
  Transformation.t list
(** "After delta debugging, the reducer applies spirv-reduce to any
    remaining AddFunction transformations": delta debugging over each
    donated function's body instructions, testing validity plus the
    interestingness test. *)

val delta_size : original:Context.t -> Context.t -> int
(** Instruction-count difference — the section 4.2 reduction-quality
    metric. *)

val delta_listing : original:Context.t -> Context.t -> string
(** The textual module delta a bug report contains (cf. Figure 3). *)
