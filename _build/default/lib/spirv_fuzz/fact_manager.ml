(** The fact manager (section 3.2).

    Facts are properties of the (program, input) pair that transformations
    establish and later transformations take on trust:

    - [DeadBlock b]: block [b] is never executed;
    - [Synonymous (u@is, v@js)]: the component of [u] at literal index path
      [is] equals the component of [v] at path [js] wherever both ids are
      available (empty paths mean the whole values are equal);
    - [Irrelevant i]: the value of id [i] never affects the final result;
    - [IrrelevantPointee p]: the data pointed to by [p] never affects the
      final result;
    - [LiveSafe f]: calling function [f] from anywhere cannot affect the
      final result, provided pointer arguments are irrelevant-pointee. *)

open Spirv_ir

type indexed = Id.t * int list
[@@deriving show { with_path = false }, eq]

type t = {
  dead_blocks : Id.Set.t;
  synonyms : (indexed * indexed) list;
  irrelevant : Id.Set.t;
  irrelevant_pointees : Id.Set.t;
  live_safe : Id.Set.t;
}

let empty =
  {
    dead_blocks = Id.Set.empty;
    synonyms = [];
    irrelevant = Id.Set.empty;
    irrelevant_pointees = Id.Set.empty;
    live_safe = Id.Set.empty;
  }

let add_dead_block t b = { t with dead_blocks = Id.Set.add b t.dead_blocks }
let is_dead_block t b = Id.Set.mem b t.dead_blocks

let add_synonym t a b = { t with synonyms = (a, b) :: t.synonyms }
let add_id_synonym t a b = add_synonym t (a, []) (b, [])

let add_irrelevant t i = { t with irrelevant = Id.Set.add i t.irrelevant }
let is_irrelevant t i = Id.Set.mem i t.irrelevant

let add_irrelevant_pointee t p =
  { t with irrelevant_pointees = Id.Set.add p t.irrelevant_pointees }

let is_irrelevant_pointee t p = Id.Set.mem p t.irrelevant_pointees

let add_live_safe t f = { t with live_safe = Id.Set.add f t.live_safe }
let is_live_safe t f = Id.Set.mem f t.live_safe

(** Whole-object synonyms of [id]: the set of ids known equal to it, via the
    symmetric-transitive closure of path-free synonym facts.  [id] itself is
    not included. *)
let id_synonyms t id =
  let edges =
    List.filter_map
      (fun ((a, pa), (b, pb)) -> if pa = [] && pb = [] then Some (a, b) else None)
      t.synonyms
  in
  let rec closure frontier known =
    match frontier with
    | [] -> known
    | x :: rest ->
        let neighbours =
          List.concat_map
            (fun (a, b) ->
              if Id.equal a x then [ b ] else if Id.equal b x then [ a ] else [])
            edges
        in
        let fresh = List.filter (fun n -> not (Id.Set.mem n known)) neighbours in
        closure (fresh @ rest) (List.fold_left (fun s n -> Id.Set.add n s) known fresh)
  in
  Id.Set.remove id (closure [ id ] (Id.Set.singleton id)) |> Id.Set.elements

let are_synonymous t a b =
  (not (Id.equal a b)) && List.mem b (id_synonyms t a)

(** Ids known equal to component [path] of composite [c] (from indexed
    facts such as those CompositeConstruct records). *)
let component_synonyms t ~composite ~path =
  List.filter_map
    (fun ((a, pa), (b, pb)) ->
      if Id.equal a composite && pa = path && pb = [] then Some b
      else if Id.equal b composite && pb = path && pa = [] then Some a
      else None)
    t.synonyms

(** Drop facts that mention ids no longer defined in the module — used by
    consumers that prune a module (none of the built-in transformations
    remove ids, so this is a safety net for external tooling). *)
let restrict t ~defined =
  let mem = Id.Set.mem in
  {
    dead_blocks = Id.Set.inter t.dead_blocks defined;
    synonyms =
      List.filter
        (fun ((a, _), (b, _)) -> mem a defined && mem b defined)
        t.synonyms;
    irrelevant = Id.Set.inter t.irrelevant defined;
    irrelevant_pointees = Id.Set.inter t.irrelevant_pointees defined;
    live_safe = Id.Set.inter t.live_safe defined;
  }
