lib/spirv_fuzz/lang.pp.ml: Context Rules Tbct Transformation
