lib/spirv_fuzz/fact_manager.pp.mli: Format Id Spirv_ir
