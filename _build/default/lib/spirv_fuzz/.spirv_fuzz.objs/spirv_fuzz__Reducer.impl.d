lib/spirv_fuzz/reducer.pp.ml: Block Context Disasm Func Lang List Module_ir Spirv_ir Tbct Transformation Validate
