lib/spirv_fuzz/fact_manager.pp.ml: Id List Ppx_deriving_runtime Spirv_ir
