lib/spirv_fuzz/rules.pp.ml: Analysis Block Bool Cfg Constant Context Edit Fact_manager Func Id Input Instr List Module_ir Option Printf Spirv_ir String Transformation Ty Validate Value
