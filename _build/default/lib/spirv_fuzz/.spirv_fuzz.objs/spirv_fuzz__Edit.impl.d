lib/spirv_fuzz/edit.pp.ml: Block Bool Constant Func Instr List Module_ir Spirv_ir
