lib/spirv_fuzz/donor.pp.ml: Block Constant Context Func Id Instr List Module_ir Rules Spirv_ir Transformation Ty
