lib/spirv_fuzz/dedup.pp.ml: List Tbct Transformation
