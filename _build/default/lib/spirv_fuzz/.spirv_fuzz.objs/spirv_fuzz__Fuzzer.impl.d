lib/spirv_fuzz/fuzzer.pp.ml: Context List Log Module_ir Pass Queue Spirv_ir Tbct Transformation
