lib/spirv_fuzz/reducer.pp.mli: Context Tbct Transformation
