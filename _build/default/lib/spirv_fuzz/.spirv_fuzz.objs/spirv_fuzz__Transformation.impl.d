lib/spirv_fuzz/transformation.pp.ml: Block Constant Func Id Instr List Ppx_deriving_runtime Spirv_ir Ty Value
