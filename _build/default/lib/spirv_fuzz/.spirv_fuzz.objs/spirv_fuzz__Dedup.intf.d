lib/spirv_fuzz/dedup.pp.mli: Tbct Transformation
