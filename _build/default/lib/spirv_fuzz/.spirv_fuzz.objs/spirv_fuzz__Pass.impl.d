lib/spirv_fuzz/pass.pp.ml: Block Cfg Constant Context Donor Edit Fact_manager Func Id Instr List Module_ir Option Printf Rules Spirv_ir String Tbct Transformation Ty Value
