lib/spirv_fuzz/context.pp.mli: Fact_manager Func Id Input Module_ir Spirv_ir Value
