lib/spirv_fuzz/fuzzer.pp.mli: Context Module_ir Spirv_ir Transformation
