lib/spirv_fuzz/log.pp.ml: Logs
