lib/spirv_fuzz/context.pp.ml: Fact_manager Id Input List Module_ir Spirv_ir Ty
