(** Transformation contexts for the SPIR-V-like IR (Definition 2.3): a
    module, the input it will be executed on, and the current fact set. *)

open Spirv_ir

type t = {
  m : Module_ir.t;
  input : Input.t;
  facts : Fact_manager.t;
}

let make m input = { m; input; facts = Fact_manager.empty }

let with_module t m = { t with m }

(** Fresh-id discipline: every id a transformation introduces was drawn from
    the module's id bound at transformation-construction time, and bounds
    only grow, so during reduction an id is fresh iff it is at or beyond the
    current bound (see the design notes in {!Module_ir}).  The extra
    defined-check is a safety net for hand-written transformations. *)
let is_fresh t id =
  id >= t.m.Module_ir.id_bound
  || not (Id.Set.mem id (Module_ir.defined_ids t.m))

(** Raise the module's id bound to cover ids the transformation consumed. *)
let claim t ids =
  let bound =
    List.fold_left (fun acc id -> max acc (id + 1)) t.m.Module_ir.id_bound ids
  in
  { t with m = { t.m with Module_ir.id_bound = bound } }

let entry_function t = Module_ir.entry_function t.m

(** Uniform globals whose runtime value is known from the input, paired with
    that value — the knowledge ReplaceConstantWithUniform exploits. *)
let known_uniforms t =
  List.filter_map
    (fun (g : Module_ir.global_decl) ->
      match Module_ir.find_type t.m g.Module_ir.gd_ty with
      | Some (Ty.Pointer (Ty.Uniform, pointee)) -> (
          match Input.find_uniform t.input g.Module_ir.gd_name with
          | Some v -> Some (g.Module_ir.gd_id, pointee, v)
          | None -> None)
      | Some _ | None -> None)
    t.m.Module_ir.globals
