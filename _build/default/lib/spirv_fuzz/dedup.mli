(** Test-case deduplication for spirv-fuzz (section 3.5): the Figure 6
    algorithm over reduced transformation sequences, with the paper's fixed
    ignore list of supporting/enabler transformation types. *)

module String_set = Tbct.Dedup.String_set

val default_ignored : String_set.t
(** Types ignored before comparison: supporting transformations for adding
    types/constants/variables/uniforms, SplitBlock and AddFunction (enablers
    for other transformations), and ReplaceIdWithSynonym (which reaps the
    benefits of prior transformations but is not interesting in
    isolation). *)

type 'a test_case = {
  label : 'a;  (** caller payload (a seed, a file name, a bug id, ...) *)
  transformations : Transformation.t list;  (** the minimized sequence *)
}

val types_of : 'a test_case -> String_set.t

val config : ?ignored:String_set.t -> unit -> 'a test_case Tbct.Dedup.config

val select : ?ignored:String_set.t -> 'a test_case list -> 'a test_case list
(** The subset to recommend for manual investigation: pairwise disjoint in
    (non-ignored) transformation types, small type-sets preferred. *)
