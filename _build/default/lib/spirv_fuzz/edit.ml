(** Small module-editing helpers shared by the transformations. *)

open Spirv_ir

let find_block_in m ~fn ~block =
  match Module_ir.find_function m fn with
  | None -> None
  | Some f -> (
      match Func.find_block f block with
      | None -> None
      | Some b -> Some (f, b))

(** The instruction at [offset] of a block ([None] out of range). *)
let instr_at (b : Block.t) offset = List.nth_opt b.Block.instrs offset

(** Insert [instr] at position [offset] of [block] in [fn].  The caller has
    checked that [offset] is within [0 .. length]. *)
let insert_instr m ~fn ~block ~offset instr =
  match find_block_in m ~fn ~block with
  | None -> m
  | Some (f, b) ->
      let rec go i = function
        | rest when i = offset -> instr :: rest
        | [] -> [ instr ]
        | x :: rest -> x :: go (i + 1) rest
      in
      let b = { b with Block.instrs = go 0 b.Block.instrs } in
      Module_ir.replace_function m (Func.replace_block f b)

(** Replace the instruction at [offset]. *)
let replace_instr m ~fn ~block ~offset instr =
  match find_block_in m ~fn ~block with
  | None -> m
  | Some (f, b) ->
      let instrs =
        List.mapi (fun i x -> if i = offset then instr else x) b.Block.instrs
      in
      Module_ir.replace_function m
        (Func.replace_block f { b with Block.instrs = instrs })

let update_block m ~fn ~block ~f:update =
  match find_block_in m ~fn ~block with
  | None -> m
  | Some (f, b) -> Module_ir.replace_function m (Func.replace_block f (update b))

let update_block_in_function f ~block ~f:update =
  match Func.find_block f block with
  | None -> f
  | Some b -> Func.replace_block f (update b)

let update_function m ~fn ~f:update =
  match Module_ir.find_function m fn with
  | None -> m
  | Some f -> Module_ir.replace_function m (update f)

(** Number of φ-instructions at the start of a block. *)
let phi_count (b : Block.t) =
  let rec go n = function
    | (i : Instr.t) :: rest when Instr.is_phi i -> go (n + 1) rest
    | _ -> n
  in
  go 0 b.Block.instrs

(** Offsets at which a new non-φ instruction may be inserted: after the φs
    and at any later position, including after the last instruction. *)
let valid_insert_offsets (b : Block.t) =
  let lo = phi_count b and hi = List.length b.Block.instrs in
  List.init (hi - lo + 1) (fun i -> lo + i)

(** Does an id of type [ty] typecheck as an operand slot?  Used when
    replacing operands: the replacement must have exactly the same type id
    as the original operand. *)
let operand_ty m (f : Func.t) id =
  match Module_ir.type_of_id m id with
  | Some t -> Some t
  | None ->
      (* params of [f] and locally defined results are covered by
         [type_of_id]; ids from other functions are not usable here *)
      ignore f;
      None

(** Structural intern that prefers an existing declaration and otherwise
    adds one with the supplied fresh id.  Returns the id actually used. *)
let intern_type_with m ~fresh ty =
  match Module_ir.find_type_id m ty with
  | Some id -> (m, id)
  | None ->
      let m =
        {
          m with
          Module_ir.types = m.Module_ir.types @ [ { Module_ir.td_id = fresh; td_ty = ty } ];
          Module_ir.id_bound = max m.Module_ir.id_bound (fresh + 1);
        }
      in
      (m, fresh)

let intern_constant_with m ~fresh ~ty value =
  match Module_ir.find_constant_id m ~ty ~value with
  | Some id -> (m, id)
  | None ->
      let m =
        {
          m with
          Module_ir.constants =
            m.Module_ir.constants @ [ { Module_ir.cd_id = fresh; cd_ty = ty; cd_value = value } ];
          Module_ir.id_bound = max m.Module_ir.id_bound (fresh + 1);
        }
      in
      (m, fresh)

(** Constant id whose value is boolean [true], if the module has one. *)
let find_true_constant m =
  List.find_map
    (fun (d : Module_ir.const_decl) ->
      match d.Module_ir.cd_value with
      | Constant.Bool true -> Some d.Module_ir.cd_id
      | _ -> None)
    m.Module_ir.constants

let find_bool_constant m v =
  List.find_map
    (fun (d : Module_ir.const_decl) ->
      match d.Module_ir.cd_value with
      | Constant.Bool b when Bool.equal b v -> Some d.Module_ir.cd_id
      | _ -> None)
    m.Module_ir.constants

(** The value of a constant id, if [id] names a constant. *)
let constant_value m id =
  match Module_ir.find_constant m id with
  | Some _ -> Some (Module_ir.const_value m id)
  | None -> None
