(** Donor encoding for AddFunction (section 3.2).

    "Full details of a function are encoded in an AddFunction instance so
    that the donors are not required during reduction": this module turns a
    function from a donor module into a self-contained
    {!Transformation.add_function_payload} whose every id has been remapped
    to a fresh id of the recipient context. *)

open Spirv_ir

(** Functions of a donor module that are safe to transplant and mark
    live-safe: value-returning, call-free, kill-free, and never storing
    outside their own locals.  (The paper instead instruments arbitrary
    functions with loop limits and access clamping; our donors are total by
    construction — see DESIGN.md.) *)
let eligible_functions (donor : Module_ir.t) =
  List.filter
    (fun (f : Func.t) ->
      (not (Id.equal f.Func.id donor.Module_ir.entry))
      && (match Module_ir.find_type donor f.Func.fn_ty with
         | Some (Ty.Func (ret, _)) -> (
             match Module_ir.find_type donor ret with
             | Some Ty.Void | None -> false
             | Some _ -> true)
         | Some _ | None -> false)
      && List.for_all
           (fun (b : Block.t) ->
             (match b.Block.terminator with Block.Kill -> false | _ -> true)
             && List.for_all
                  (fun (i : Instr.t) ->
                    match i.Instr.op with
                    | Instr.FunctionCall _ -> false
                    | Instr.Store (ptr, _) ->
                        List.exists
                          (fun (j : Instr.t) -> j.Instr.result = Some ptr)
                          (Func.all_instrs f)
                    | _ -> true)
                  b.Block.instrs)
           f.Func.blocks)
    donor.Module_ir.functions

(* Type ids transitively required to declare [ty_id] in the donor module,
   in declaration order. *)
let required_types donor ty_ids =
  let needed = ref Id.Set.empty in
  let rec visit id =
    if not (Id.Set.mem id !needed) then begin
      needed := Id.Set.add id !needed;
      match Module_ir.find_type donor id with
      | Some (Ty.Vector (c, _)) | Some (Ty.Array (c, _)) | Some (Ty.Matrix (c, _)) ->
          visit c
      | Some (Ty.Struct ms) -> List.iter visit ms
      | Some (Ty.Pointer (_, p)) -> visit p
      | Some (Ty.Func (r, ps)) ->
          visit r;
          List.iter visit ps
      | Some (Ty.Void | Ty.Bool | Ty.Int | Ty.Float) | None -> ()
    end
  in
  List.iter visit ty_ids;
  List.filter
    (fun (d : Module_ir.type_decl) -> Id.Set.mem d.Module_ir.td_id !needed)
    donor.Module_ir.types

(* Constant decls transitively required for the given ids (non-constant ids
   are ignored), in declaration order. *)
let required_constants donor ids =
  let needed = ref Id.Set.empty in
  let rec visit id =
    match Module_ir.find_constant donor id with
    | None -> ()
    | Some d ->
        if not (Id.Set.mem id !needed) then begin
          needed := Id.Set.add id !needed;
          match d.Module_ir.cd_value with
          | Constant.Composite parts -> List.iter visit parts
          | Constant.Bool _ | Constant.Int _ | Constant.Float _ | Constant.Null -> ()
        end
  in
  List.iter visit ids;
  List.filter
    (fun (d : Module_ir.const_decl) -> Id.Set.mem d.Module_ir.cd_id !needed)
    donor.Module_ir.constants

(** Encode donor function [f] for transplantation into [ctx], drawing every
    fresh id from the context (and returning the context with its id bound
    advanced).  Returns [None] when the function references module-level
    state we do not transplant (globals). *)
let encode (ctx : Context.t) (donor : Module_ir.t) (f : Func.t) :
    (Context.t * Transformation.add_function_payload) option =
  let uses_globals =
    Func.all_instrs f
    |> List.exists (fun (i : Instr.t) ->
           List.exists
             (fun u -> Module_ir.find_global donor u <> None)
             (Instr.used_ids i))
  in
  if uses_globals then None
  else begin
    (* collect everything the function mentions: constants first, because a
       constant's type may appear nowhere else (e.g. the Bool of a [true]
       operand whose consumers all produce non-Bool results) *)
    let const_candidates =
      List.concat_map (fun (i : Instr.t) -> Instr.used_ids i) (Func.all_instrs f)
      @ List.concat_map
          (fun (b : Block.t) -> Block.terminator_used_ids b.Block.terminator)
          f.Func.blocks
    in
    let constants = required_constants donor const_candidates in
    let ty_ids =
      (f.Func.fn_ty :: List.map (fun (p : Func.param) -> p.Func.param_ty) f.Func.params)
      @ List.filter_map (fun (i : Instr.t) -> i.Instr.ty) (Func.all_instrs f)
      @ List.map (fun (d : Module_ir.const_decl) -> d.Module_ir.cd_ty) constants
    in
    let types = required_types donor ty_ids in
    (* draw fresh ids for every donor id we will introduce *)
    let donor_ids =
      List.map (fun (d : Module_ir.type_decl) -> d.Module_ir.td_id) types
      @ List.map (fun (d : Module_ir.const_decl) -> d.Module_ir.cd_id) constants
      @ (f.Func.id :: List.map (fun (p : Func.param) -> p.Func.param_id) f.Func.params)
      @ List.concat_map
          (fun (b : Block.t) ->
            b.Block.label
            :: List.filter_map (fun (i : Instr.t) -> i.Instr.result) b.Block.instrs)
          f.Func.blocks
    in
    let m, fresh = Module_ir.fresh_many ctx.Context.m (List.length donor_ids) in
    let ctx = { ctx with Context.m = m } in
    let map = List.combine donor_ids fresh in
    let remap id = match List.assoc_opt id map with Some id' -> id' | None -> id in
    let remap_ty = function
      | Ty.Vector (c, n) -> Ty.Vector (remap c, n)
      | Ty.Matrix (c, n) -> Ty.Matrix (remap c, n)
      | Ty.Struct ms -> Ty.Struct (List.map remap ms)
      | Ty.Array (c, n) -> Ty.Array (remap c, n)
      | Ty.Pointer (sc, p) -> Ty.Pointer (sc, remap p)
      | Ty.Func (r, ps) -> Ty.Func (remap r, List.map remap ps)
      | (Ty.Void | Ty.Bool | Ty.Int | Ty.Float) as s -> s
    in
    let payload =
      {
        Transformation.af_types =
          List.map
            (fun (d : Module_ir.type_decl) -> (remap d.Module_ir.td_id, remap_ty d.Module_ir.td_ty))
            types;
        Transformation.af_constants =
          List.map
            (fun (d : Module_ir.const_decl) ->
              let value =
                match d.Module_ir.cd_value with
                | Constant.Composite parts -> Constant.Composite (List.map remap parts)
                | (Constant.Bool _ | Constant.Int _ | Constant.Float _ | Constant.Null) as v -> v
              in
              (remap d.Module_ir.cd_id, remap d.Module_ir.cd_ty, value))
            constants;
        Transformation.af_function =
          {
            Func.id = remap f.Func.id;
            Func.name = f.Func.name ^ "_donated";
            Func.fn_ty = remap f.Func.fn_ty;
            Func.control = f.Func.control;
            Func.params =
              List.map
                (fun (p : Func.param) ->
                  { Func.param_id = remap p.Func.param_id; Func.param_ty = remap p.Func.param_ty })
                f.Func.params;
            Func.blocks = List.map (Rules.remap_block map) f.Func.blocks;
          };
        Transformation.af_live_safe = true;
      }
    in
    Some (ctx, payload)
  end
