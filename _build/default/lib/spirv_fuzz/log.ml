(** Log source for the fuzzer ("tbct.fuzz").  Enable with
    [Logs.Src.set_level] or the CLI's [--verbose]. *)

let src = Logs.Src.create "tbct.fuzz" ~doc:"spirv-fuzz fuzzer events"

include (val Logs.src_log src : Logs.LOG)
