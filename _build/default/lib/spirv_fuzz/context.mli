(** Transformation contexts for the SPIR-V-like IR: Definition 2.3's
    (program, input, facts) triples.

    The module must be well-defined with respect to the input (it renders an
    image within the step budget); transformations preserve that by
    construction.  Some transformations extend the {e input} in sync with
    the module (AddUniform, the paper's section 7 extension). *)

open Spirv_ir

type t = {
  m : Module_ir.t;
  input : Input.t;
  facts : Fact_manager.t;
}

val make : Module_ir.t -> Input.t -> t
(** A context with no facts. *)

val with_module : t -> Module_ir.t -> t

val is_fresh : t -> Id.t -> bool
(** Whether an id may be introduced by a transformation.  Because all fresh
    ids are drawn from the module's monotonically-growing id bound at
    transformation-construction time, an id is fresh during replay iff it is
    at or beyond the current bound; the definition check is a safety net for
    hand-written transformations. *)

val claim : t -> Id.t list -> t
(** Raise the module's id bound to cover the given ids; called by every
    transformation's effect on the ids it introduces. *)

val entry_function : t -> Func.t

val known_uniforms : t -> (Id.t * Id.t * Value.t) list
(** Uniform globals whose runtime value is known from the input, as
    (global id, pointee type id, value) — the knowledge that
    ReplaceConstantWithUniform exploits to obfuscate constants the compiler
    would otherwise fold. *)
