(** The fact manager (section 3.2): properties of the (program, input) pair
    that transformations establish and later transformations take on trust.

    - [DeadBlock b] — block [b] is never executed (its guard is a constant
      or an input value known to steer away from it);
    - [Synonymous (u@is, v@js)] — component [is] of [u] equals component
      [js] of [v] wherever both are available (empty paths: whole values);
    - [Irrelevant i] — the value of id [i] never affects the final image;
    - [IrrelevantPointee p] — data behind pointer [p] never affects it;
    - [LiveSafe f] — function [f] may be called from anywhere without
      affecting the result, provided pointer arguments are
      irrelevant-pointee. *)

open Spirv_ir

type indexed = Id.t * int list

val pp_indexed : Format.formatter -> indexed -> unit
val show_indexed : indexed -> string
val equal_indexed : indexed -> indexed -> bool

type t = {
  dead_blocks : Id.Set.t;
  synonyms : (indexed * indexed) list;
  irrelevant : Id.Set.t;
  irrelevant_pointees : Id.Set.t;
  live_safe : Id.Set.t;
}

val empty : t

val add_dead_block : t -> Id.t -> t
val is_dead_block : t -> Id.t -> bool

val add_synonym : t -> indexed -> indexed -> t
(** Record [Synonymous (a, b)] with arbitrary index paths. *)

val add_id_synonym : t -> Id.t -> Id.t -> t
(** Whole-object synonym (both paths empty). *)

val add_irrelevant : t -> Id.t -> t
val is_irrelevant : t -> Id.t -> bool

val add_irrelevant_pointee : t -> Id.t -> t
val is_irrelevant_pointee : t -> Id.t -> bool

val add_live_safe : t -> Id.t -> t
val is_live_safe : t -> Id.t -> bool

val id_synonyms : t -> Id.t -> Id.t list
(** Whole-object synonyms of an id: the symmetric-transitive closure of the
    path-free synonym facts, excluding the id itself. *)

val are_synonymous : t -> Id.t -> Id.t -> bool
(** Irreflexive: an id is not reported as a synonym of itself. *)

val component_synonyms : t -> composite:Id.t -> path:int list -> Id.t list
(** Ids recorded equal to the given component of a composite — what
    CompositeConstruct records and CompositeExtract bridges into
    whole-object synonyms. *)

val restrict : t -> defined:Id.Set.t -> t
(** Drop facts mentioning ids outside [defined]; a safety net for external
    tooling that prunes modules. *)
