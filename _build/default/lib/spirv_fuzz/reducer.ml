(** The spirv-fuzz reducer (section 3.4): delta debugging over the recorded
    transformation sequence, replaying candidate subsequences from the
    original context and keeping those that still satisfy the
    interestingness test. *)

open Spirv_ir

type result = {
  transformations : Transformation.t list;  (** the 1-minimal subsequence *)
  reduced : Context.t;  (** original context with the subsequence applied *)
  stats : Tbct.Reducer.stats;
}

(** [reduce ~original ~is_interesting ts] requires that the full sequence is
    interesting (i.e. the variant it produces triggers the bug).  The
    interestingness test receives the replayed context.

    The instruction-count delta between [original]'s module and
    [reduced]'s module is the reduction-quality measure of section 4.2. *)
let reduce ~(original : Context.t) ~is_interesting ts =
  let test seq = is_interesting (Lang.replay original seq) in
  let transformations, stats = Tbct.Reducer.reduce ~is_interesting:test ts in
  { transformations; reduced = Lang.replay original transformations; stats }

(* ------------------------------------------------------------------ *)
(* The spirv-reduce analog (section 3.4): "After delta debugging, the
   reducer applies spirv-reduce to any remaining AddFunction
   transformations in an attempt to simplify their associated functions".
   AddFunction is the one transformation that is hard to split into smaller
   transformations, so its donated function bodies are shrunk directly:
   delta debugging over the body's instructions, testing that the module
   still validates and the interestingness test still passes. *)

let shrink_function_payload ~original ~is_interesting ~prefix ~suffix
    (p : Transformation.add_function_payload) =
  let body_blocks = p.Transformation.af_function.Func.blocks in
  (* atoms: (block index, instruction index) pairs *)
  let atoms =
    List.concat
      (List.mapi
         (fun bi (b : Block.t) -> List.mapi (fun ii _ -> (bi, ii)) b.Block.instrs)
         body_blocks)
  in
  let payload_with kept_atoms =
    let blocks =
      List.mapi
        (fun bi (b : Block.t) ->
          {
            b with
            Block.instrs =
              List.filteri (fun ii _ -> List.mem (bi, ii) kept_atoms) b.Block.instrs;
          })
        body_blocks
    in
    {
      p with
      Transformation.af_function = { p.Transformation.af_function with Func.blocks = blocks };
    }
  in
  let test kept_atoms =
    let candidate = payload_with kept_atoms in
    let seq = prefix @ (Transformation.Add_function candidate :: suffix) in
    let ctx = Lang.replay original seq in
    Validate.is_valid ctx.Context.m && is_interesting ctx
  in
  if not (test atoms) then p (* shrinking unavailable: keep the original *)
  else
    let kept, _ = Tbct.Reducer.reduce ~is_interesting:test atoms in
    payload_with kept

(** Post-process a 1-minimal sequence, shrinking the function bodies of any
    surviving AddFunction transformations while the test keeps passing. *)
let shrink_add_functions ~original ~is_interesting (ts : Transformation.t list) =
  let rec go prefix = function
    | [] -> List.rev prefix
    | Transformation.Add_function p :: rest ->
        let shrunk =
          shrink_function_payload ~original ~is_interesting
            ~prefix:(List.rev prefix) ~suffix:rest p
        in
        go (Transformation.Add_function shrunk :: prefix) rest
    | t :: rest -> go (t :: prefix) rest
  in
  go [] ts

(** Size delta (in instructions) between the original module and a reduced
    variant — "the difference between the number of instructions in the
    original SPIR-V module and the reduced variant SPIR-V module". *)
let delta_size ~(original : Context.t) (reduced : Context.t) =
  Module_ir.instruction_count reduced.Context.m
  - Module_ir.instruction_count original.Context.m

(** The textual delta (for bug reports, cf. Figure 3). *)
let delta_listing ~(original : Context.t) (reduced : Context.t) =
  Disasm.diff_to_string original.Context.m reduced.Context.m
