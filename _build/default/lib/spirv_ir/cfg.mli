(** Control-flow-graph queries over one function: successor/predecessor
    lists, reachability from the entry block, and reverse post-order. *)

type t = {
  blocks : Block.t array;
  index_of : int Id.Map.t;  (** block label -> position in [blocks] *)
  succs : int list array;   (** successor positions *)
  preds : int list array;   (** predecessor positions, in edge order *)
  reachable : bool array;   (** reachable from the entry block *)
}

val of_func : Func.t -> t

val block_index : t -> Id.t -> int option
val successors : t -> Id.t -> Id.t list
(** Deduplicated: a conditional branch with equal arms yields one
    successor. *)

val predecessors : t -> Id.t -> Id.t list
val is_reachable : t -> Id.t -> bool
val reachable_labels : t -> Id.t list

val reverse_postorder : t -> int list
(** Positions of the reachable blocks in reverse post-order (the entry block
    first) — the iteration order the dominance computation wants. *)
