(** Dominator computation (Cooper–Harvey–Kennedy "a simple, fast dominance
    algorithm": iterative intersection over reverse post-order).

    Only reachable blocks have dominators.  Queries about unreachable blocks
    return [false]/[None], matching the validator's relaxed treatment of
    dead code (SPIR-V's dominance rules are vacuous for unreachable
    blocks). *)

type t = {
  cfg : Cfg.t;
  idom : int array;  (** immediate dominator position; -1 if none/unreachable *)
}

let compute (cfg : Cfg.t) =
  let n = Array.length cfg.Cfg.blocks in
  let idom = Array.make n (-1) in
  if n > 0 then begin
    let rpo = Cfg.reverse_postorder cfg in
    let rpo_number = Array.make n (-1) in
    List.iteri (fun k i -> rpo_number.(i) <- k) rpo;
    idom.(0) <- 0;
    let intersect a b =
      let a = ref a and b = ref b in
      while !a <> !b do
        while rpo_number.(!a) > rpo_number.(!b) do a := idom.(!a) done;
        while rpo_number.(!b) > rpo_number.(!a) do b := idom.(!b) done
      done;
      !a
    in
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun i ->
          if i <> 0 then begin
            let processed_preds =
              List.filter (fun p -> idom.(p) >= 0) cfg.Cfg.preds.(i)
            in
            match processed_preds with
            | [] -> ()
            | first :: rest ->
                let new_idom = List.fold_left intersect first rest in
                if idom.(i) <> new_idom then begin
                  idom.(i) <- new_idom;
                  changed := true
                end
          end)
        rpo
    done
  end;
  { cfg; idom }

let idom t label =
  match Cfg.block_index t.cfg label with
  | None -> None
  | Some i ->
      if i = 0 || t.idom.(i) < 0 then None
      else Some t.cfg.Cfg.blocks.(t.idom.(i)).Block.label

(** [dominates t a b]: every path from entry to [b] passes through [a].
    Reflexive on reachable blocks; false if either block is unreachable. *)
let dominates t a b =
  match (Cfg.block_index t.cfg a, Cfg.block_index t.cfg b) with
  | Some ia, Some ib ->
      if not (t.cfg.Cfg.reachable.(ia) && t.cfg.Cfg.reachable.(ib)) then false
      else if ia = ib then true
      else begin
        (* walk the idom chain from b towards the entry looking for a *)
        let rec walk j =
          if j = ia then true
          else if j = 0 || t.idom.(j) < 0 || t.idom.(j) = j then false
          else walk t.idom.(j)
        in
        walk ib
      end
  | _, _ -> false

let strictly_dominates t a b = (not (Id.equal a b)) && dominates t a b
