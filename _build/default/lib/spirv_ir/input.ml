(** Test inputs: the values of the module's uniforms and the dimensions of
    the fragment grid to render.  An input plays the role of the "file
    describing the inputs on which the module will be executed" that
    spirv-fuzz takes (section 3.2). *)

type t = {
  uniforms : (string * Value.t) list;
  width : int;
  height : int;
}
[@@deriving show { with_path = false }]

let make ?(width = 8) ?(height = 8) uniforms = { uniforms; width; height }

let find_uniform t name = List.assoc_opt name t.uniforms

(** Parse a uniform assignment list: ["name=value"] items separated by
    commas or newlines; values are [true]/[false], integers, floats, or
    vecN/array literals like [(1.0, 2.0)].  Grid size via the reserved
    names [width]/[height].  This is the "file describing the inputs on
    which the module will be executed" that spirv-fuzz takes. *)
let of_string text : (t, string) result =
  let items =
    String.split_on_char '\n' text
    |> List.concat_map (String.split_on_char ',')
    |> List.map String.trim
    |> List.filter (fun s -> s <> "" && s.[0] <> '#')
  in
  let parse_scalar v =
    match v with
    | "true" -> Ok (Value.VBool true)
    | "false" -> Ok (Value.VBool false)
    | _ -> (
        match int_of_string_opt v with
        | Some i -> Ok (Value.VInt (Int32.of_int i))
        | None -> (
            match float_of_string_opt v with
            | Some f -> Ok (Value.VFloat f)
            | None -> Error (Printf.sprintf "cannot parse value %S" v)))
  in
  let parse_value v =
    let v = String.trim v in
    if String.length v >= 2 && v.[0] = '(' && v.[String.length v - 1] = ')' then begin
      let inner = String.sub v 1 (String.length v - 2) in
      let parts = String.split_on_char ';' inner |> List.map String.trim in
      let rec go acc = function
        | [] -> Ok (Value.VComposite (Array.of_list (List.rev acc)))
        | p :: rest -> (
            match parse_scalar p with
            | Ok x -> go (x :: acc) rest
            | Error e -> Error e)
      in
      go [] parts
    end
    else parse_scalar v
  in
  let rec go acc ~width ~height = function
    | [] -> Ok { uniforms = List.rev acc; width; height }
    | item :: rest -> (
        match String.index_opt item '=' with
        | None -> Error (Printf.sprintf "expected name=value, got %S" item)
        | Some i -> (
            let name = String.trim (String.sub item 0 i) in
            let v = String.sub item (i + 1) (String.length item - i - 1) in
            match name with
            | "width" -> (
                match int_of_string_opt (String.trim v) with
                | Some w when w > 0 -> go acc ~width:w ~height rest
                | _ -> Error "width must be a positive integer")
            | "height" -> (
                match int_of_string_opt (String.trim v) with
                | Some h when h > 0 -> go acc ~width ~height:h rest
                | _ -> Error "height must be a positive integer")
            | _ -> (
                match parse_value v with
                | Ok value -> go ((name, value) :: acc) ~width ~height rest
                | Error e -> Error e)))
  in
  go [] ~width:8 ~height:8 items

(** Stable digest of an input, for crash-signature bookkeeping. *)
let to_string t =
  let b = Buffer.create 64 in
  Buffer.add_string b (Printf.sprintf "%dx%d" t.width t.height);
  List.iter
    (fun (name, v) ->
      Buffer.add_string b (Printf.sprintf ";%s=%s" name (Value.show v)))
    t.uniforms;
  Buffer.contents b
