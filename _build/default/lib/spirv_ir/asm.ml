(** Textual assembler: parses the format produced by {!Disasm}.

    Hand-rolled line-oriented recursive-descent parser.  Comment lines start
    with [';']; blank lines are ignored.  Errors carry the 1-based line
    number. *)

type parse_error = { line : int; message : string }

exception Error of parse_error

let error_to_string e = Printf.sprintf "line %d: %s" e.line e.message

let fail line fmt = Printf.ksprintf (fun message -> raise (Error { line; message })) fmt

(* ------------------------------------------------------------------ *)
(* Tokenization: each line becomes a token list.                       *)

type token =
  | Tid of Id.t          (* %42 *)
  | Tint of int          (* literal integer *)
  | Tfloat of float      (* literal float, incl. hex floats *)
  | Tword of string      (* opcode or keyword *)
  | Tstring of string    (* "name" *)
  | Teq

let tokenize_line lineno s =
  let n = String.length s in
  let tokens = ref [] in
  let i = ref 0 in
  let push t = tokens := t :: !tokens in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' then incr i
    else if c = ';' then i := n (* comment to end of line *)
    else if c = '=' then begin push Teq; incr i end
    else if c = '%' then begin
      let j = ref (!i + 1) in
      while !j < n && (match s.[!j] with '0' .. '9' -> true | _ -> false) do incr j done;
      if !j = !i + 1 then fail lineno "bad id";
      push (Tid (int_of_string (String.sub s (!i + 1) (!j - !i - 1))));
      i := !j
    end
    else if c = '"' then begin
      let j = ref (!i + 1) in
      let buf = Buffer.create 8 in
      let closed = ref false in
      while (not !closed) && !j < n do
        if s.[!j] = '\\' && !j + 1 < n then begin
          Buffer.add_char buf s.[!j + 1];
          j := !j + 2
        end
        else if s.[!j] = '"' then begin closed := true; incr j end
        else begin
          Buffer.add_char buf s.[!j];
          incr j
        end
      done;
      if not !closed then fail lineno "unterminated string";
      push (Tstring (Buffer.contents buf));
      i := !j
    end
    else begin
      (* word: letters, digits, '.', '+', '-', 'x', '_' — covers opcode names
         and numeric literals (decimal, hex float like 0x1.8p+1, -1.5) *)
      let j = ref !i in
      let word_char ch =
        match ch with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '+' | '-' | '_' -> true
        | _ -> false
      in
      while !j < n && word_char s.[!j] do incr j done;
      if !j = !i then fail lineno "unexpected character %C" c;
      let w = String.sub s !i (!j - !i) in
      (match int_of_string_opt w with
      | Some k -> push (Tint k)
      | None -> (
          match float_of_string_opt w with
          | Some f when String.contains w '.' || String.contains w 'p'
                        || String.contains w 'n' || String.contains w 'i' ->
              push (Tfloat f)
          | _ -> push (Tword w)));
      i := !j
    end
  done;
  List.rev !tokens

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

type pstate = {
  mutable id_bound : int;
  mutable entry : Id.t;
  mutable types : Module_ir.type_decl list;   (* reversed *)
  mutable constants : Module_ir.const_decl list;
  mutable globals : Module_ir.global_decl list;
  mutable functions : Func.t list;
  (* function under construction *)
  mutable cur_fn : (Id.t * Id.t * Func.control * string) option;
  mutable cur_params : Func.param list;
  mutable cur_blocks : Block.t list;
  mutable cur_label : Id.t option;
  mutable cur_instrs : Instr.t list;
}

let ids_only lineno toks =
  List.map
    (function Tid x -> x | _ -> fail lineno "expected an id operand")
    toks

let ints_only lineno toks =
  List.map
    (function Tint x -> x | _ -> fail lineno "expected a literal integer")
    toks

let parse_op lineno opname (ty : Id.t) rest : Instr.op =
  match opname with
  | "OpSelect" -> (
      match ids_only lineno rest with
      | [ c; t; f ] -> Instr.Select (c, t, f)
      | _ -> fail lineno "OpSelect needs 3 operands")
  | "OpCompositeConstruct" -> Instr.CompositeConstruct (ids_only lineno rest)
  | "OpCompositeExtract" -> (
      match rest with
      | Tid c :: path -> Instr.CompositeExtract (c, ints_only lineno path)
      | _ -> fail lineno "OpCompositeExtract needs a source id")
  | "OpCompositeInsert" -> (
      match rest with
      | Tid obj :: Tid c :: path -> Instr.CompositeInsert (obj, c, ints_only lineno path)
      | _ -> fail lineno "OpCompositeInsert needs two ids")
  | "OpLoad" -> (
      match ids_only lineno rest with
      | [ p ] -> Instr.Load p
      | _ -> fail lineno "OpLoad needs 1 operand")
  | "OpAccessChain" -> (
      match ids_only lineno rest with
      | base :: idxs when idxs <> [] -> Instr.AccessChain (base, idxs)
      | _ -> fail lineno "OpAccessChain needs base and indices")
  | "OpFunctionCall" -> (
      match ids_only lineno rest with
      | f :: args -> Instr.FunctionCall (f, args)
      | _ -> fail lineno "OpFunctionCall needs a callee")
  | "OpPhi" ->
      let rec pairs = function
        | [] -> []
        | Tid v :: Tid b :: tl -> (v, b) :: pairs tl
        | _ -> fail lineno "OpPhi needs (value, block) id pairs"
      in
      Instr.Phi (pairs rest)
  | "OpCopyObject" -> (
      match ids_only lineno rest with
      | [ x ] -> Instr.CopyObject x
      | _ -> fail lineno "OpCopyObject needs 1 operand")
  | "OpVariable" -> (
      match rest with
      | [ Tword sc ] -> (
          match Ty.storage_class_of_string sc with
          | Some c -> Instr.Variable c
          | None -> fail lineno "bad storage class %s" sc)
      | _ -> fail lineno "OpVariable needs a storage class")
  | "OpUndef" -> Instr.Undef
  | _ -> (
      ignore ty;
      (* binops and unops by name *)
      match List.find_opt (fun b -> String.equal (Instr.binop_name b) opname) Instr.all_binops with
      | Some bop -> (
          match ids_only lineno rest with
          | [ a; b ] -> Instr.Binop (bop, a, b)
          | _ -> fail lineno "%s needs 2 operands" opname)
      | None -> (
          match List.find_opt (fun u -> String.equal (Instr.unop_name u) opname) Instr.all_unops with
          | Some uop -> (
              match ids_only lineno rest with
              | [ a ] -> Instr.Unop (uop, a)
              | _ -> fail lineno "%s needs 1 operand" opname)
          | None -> fail lineno "unknown opcode %s" opname))

let finish_block st lineno term =
  match st.cur_label with
  | None -> fail lineno "terminator outside a block"
  | Some label ->
      st.cur_blocks <-
        { Block.label; Block.instrs = List.rev st.cur_instrs; Block.terminator = term }
        :: st.cur_blocks;
      st.cur_label <- None;
      st.cur_instrs <- []

let parse_line st lineno toks =
  match toks with
  | [] -> ()
  | [ Tword "OpIdBound"; Tint n ] -> st.id_bound <- n
  | [ Tword "OpEntryPoint"; Tid e ] -> st.entry <- e
  | [ Tword "OpFunctionEnd" ] -> (
      match st.cur_fn with
      | None -> fail lineno "OpFunctionEnd outside a function"
      | Some (id, fn_ty, control, name) ->
          if st.cur_label <> None then fail lineno "unterminated block at OpFunctionEnd";
          st.functions <-
            {
              Func.id;
              Func.name;
              Func.fn_ty;
              Func.control;
              Func.params = List.rev st.cur_params;
              Func.blocks = List.rev st.cur_blocks;
            }
            :: st.functions;
          st.cur_fn <- None;
          st.cur_params <- [];
          st.cur_blocks <- [])
  | Tword "OpStore" :: rest -> (
      match ids_only lineno rest with
      | [ p; v ] -> st.cur_instrs <- Instr.make_void (Instr.Store (p, v)) :: st.cur_instrs
      | _ -> fail lineno "OpStore needs 2 operands")
  | [ Tword "OpNop" ] -> st.cur_instrs <- Instr.make_void Instr.Nop :: st.cur_instrs
  | Tword "OpFunctionCall" :: rest -> (
      (* void call without a result *)
      match ids_only lineno rest with
      | f :: args ->
          st.cur_instrs <-
            Instr.make_void (Instr.FunctionCall (f, args)) :: st.cur_instrs
      | _ -> fail lineno "OpFunctionCall needs a callee")
  | [ Tword "OpBranch"; Tid t ] -> finish_block st lineno (Block.Branch t)
  | [ Tword "OpBranchConditional"; Tid c; Tid t; Tid f ] ->
      finish_block st lineno (Block.BranchConditional (c, t, f))
  | [ Tword "OpReturn" ] -> finish_block st lineno Block.Return
  | [ Tword "OpReturnValue"; Tid v ] -> finish_block st lineno (Block.ReturnValue v)
  | [ Tword "OpKill" ] -> finish_block st lineno Block.Kill
  | [ Tword "OpUnreachable" ] -> finish_block st lineno Block.Unreachable
  | Tid r :: Teq :: Tword opname :: rest -> (
      match (opname, rest) with
      | "OpTypeVoid", [] -> st.types <- { Module_ir.td_id = r; td_ty = Ty.Void } :: st.types
      | "OpTypeBool", [] -> st.types <- { Module_ir.td_id = r; td_ty = Ty.Bool } :: st.types
      | "OpTypeInt", [] -> st.types <- { Module_ir.td_id = r; td_ty = Ty.Int } :: st.types
      | "OpTypeFloat", [] -> st.types <- { Module_ir.td_id = r; td_ty = Ty.Float } :: st.types
      | "OpTypeVector", [ Tid c; Tint n ] ->
          st.types <- { Module_ir.td_id = r; td_ty = Ty.Vector (c, n) } :: st.types
      | "OpTypeMatrix", [ Tid c; Tint n ] ->
          st.types <- { Module_ir.td_id = r; td_ty = Ty.Matrix (c, n) } :: st.types
      | "OpTypeStruct", members ->
          st.types <-
            { Module_ir.td_id = r; td_ty = Ty.Struct (ids_only lineno members) } :: st.types
      | "OpTypeArray", [ Tid c; Tint n ] ->
          st.types <- { Module_ir.td_id = r; td_ty = Ty.Array (c, n) } :: st.types
      | "OpTypePointer", [ Tword sc; Tid p ] -> (
          match Ty.storage_class_of_string sc with
          | Some c ->
              st.types <- { Module_ir.td_id = r; td_ty = Ty.Pointer (c, p) } :: st.types
          | None -> fail lineno "bad storage class %s" sc)
      | "OpTypeFunction", Tid ret :: params ->
          st.types <-
            { Module_ir.td_id = r; td_ty = Ty.Func (ret, ids_only lineno params) }
            :: st.types
      | "OpConstantTrue", [ Tid ty ] ->
          st.constants <-
            { Module_ir.cd_id = r; cd_ty = ty; cd_value = Constant.Bool true } :: st.constants
      | "OpConstantFalse", [ Tid ty ] ->
          st.constants <-
            { Module_ir.cd_id = r; cd_ty = ty; cd_value = Constant.Bool false } :: st.constants
      | "OpConstant", [ Tid ty; Tint v ] ->
          st.constants <-
            { Module_ir.cd_id = r; cd_ty = ty; cd_value = Constant.Int (Int32.of_int v) }
            :: st.constants
      | "OpConstantFloat", [ Tid ty; Tfloat v ] ->
          st.constants <-
            { Module_ir.cd_id = r; cd_ty = ty; cd_value = Constant.Float v } :: st.constants
      | "OpConstantFloat", [ Tid ty; Tint v ] ->
          st.constants <-
            { Module_ir.cd_id = r; cd_ty = ty; cd_value = Constant.Float (float_of_int v) }
            :: st.constants
      | "OpConstantComposite", Tid ty :: parts ->
          st.constants <-
            { Module_ir.cd_id = r; cd_ty = ty; cd_value = Constant.Composite (ids_only lineno parts) }
            :: st.constants
      | "OpConstantNull", [ Tid ty ] ->
          st.constants <-
            { Module_ir.cd_id = r; cd_ty = ty; cd_value = Constant.Null } :: st.constants
      | "OpGlobalVariable", Tid ty :: Tstring name :: init -> (
          let gd_init =
            match init with
            | [] -> None
            | [ Tid i ] -> Some i
            | _ -> fail lineno "bad global initializer"
          in
          st.globals <-
            { Module_ir.gd_id = r; gd_ty = ty; gd_name = name; gd_init } :: st.globals)
      | "OpFunction", [ Tid fn_ty; Tword control; Tstring name ] -> (
          if st.cur_fn <> None then fail lineno "nested OpFunction";
          let ctrl =
            match control with
            | "None" -> Func.CNone
            | "DontInline" -> Func.DontInline
            | "AlwaysInline" -> Func.AlwaysInline
            | _ -> fail lineno "bad function control %s" control
          in
          st.cur_fn <- Some (r, fn_ty, ctrl, name))
      | "OpFunctionParameter", [ Tid ty ] ->
          if st.cur_fn = None then fail lineno "parameter outside a function";
          st.cur_params <- { Func.param_id = r; Func.param_ty = ty } :: st.cur_params
      | "OpLabel", [] ->
          if st.cur_fn = None then fail lineno "label outside a function";
          if st.cur_label <> None then fail lineno "previous block not terminated";
          st.cur_label <- Some r;
          st.cur_instrs <- []
      | _, (Tid ty :: operands) ->
          if st.cur_label = None then fail lineno "instruction outside a block";
          let op = parse_op lineno opname ty operands in
          st.cur_instrs <- Instr.make ~result:r ~ty op :: st.cur_instrs
      | _, [] when String.equal opname "OpUndef" ->
          fail lineno "OpUndef needs a type"
      | _ -> fail lineno "cannot parse %s" opname)
  | _ -> fail lineno "cannot parse line"

let of_string text =
  let st =
    {
      id_bound = 0;
      entry = 0;
      types = [];
      constants = [];
      globals = [];
      functions = [];
      cur_fn = None;
      cur_params = [];
      cur_blocks = [];
      cur_label = None;
      cur_instrs = [];
    }
  in
  let lines = String.split_on_char '\n' text in
  List.iteri (fun i line -> parse_line st (i + 1) (tokenize_line (i + 1) line)) lines;
  if st.cur_fn <> None then fail (List.length lines) "missing OpFunctionEnd";
  let m =
    {
      Module_ir.id_bound = st.id_bound;
      types = List.rev st.types;
      constants = List.rev st.constants;
      globals = List.rev st.globals;
      functions = List.rev st.functions;
      entry = st.entry;
    }
  in
  let computed_bound =
    Id.Set.fold max (Module_ir.defined_ids m) 0 + 1
  in
  if m.Module_ir.id_bound < computed_bound then
    { m with Module_ir.id_bound = computed_bound }
  else m

let of_string_result text =
  match of_string text with
  | m -> Ok m
  | exception Error e -> Error (error_to_string e)
