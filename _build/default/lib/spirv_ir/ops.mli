(** Total evaluation of scalar/vector operations.

    The reference semantics is deliberately {e total}: integer division and
    modulo by zero yield 0, float division by zero yields 0.0, non-finite
    float results are sanitized to 0.0, and conversions clamp.  This removes
    undefined behaviour from the language by construction — the property
    that lets transformation-based testing skip the external UB-analysis
    tooling that C-level reducers depend on (paper, section 1). *)

exception Type_error of string
(** Raised on kind mismatches; unreachable for modules that pass
    {!Validate.check}. *)

val sdiv : int32 -> int32 -> int32
val smod : int32 -> int32 -> int32
val fdiv : float -> float -> float
val fsanitize : float -> float
(** 0.0 for NaN and infinities, identity otherwise. *)

val eval_binop : Instr.binop -> Value.t -> Value.t -> Value.t
(** Arithmetic lifts componentwise over equal-length vectors; comparisons
    and logical operators are scalar. *)

val eval_unop : Instr.unop -> Value.t -> Value.t
(** Lifts componentwise over vectors; [ConvertFToS] truncates and clamps to
    the int32 range. *)
