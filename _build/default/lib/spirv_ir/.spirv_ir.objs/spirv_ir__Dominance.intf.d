lib/spirv_ir/dominance.pp.mli: Cfg Id
