lib/spirv_ir/cfg.pp.mli: Block Func Id
