lib/spirv_ir/validate.pp.mli: Module_ir
