lib/spirv_ir/func.pp.ml: Block Id Instr List Ppx_deriving_runtime Printf Ty
