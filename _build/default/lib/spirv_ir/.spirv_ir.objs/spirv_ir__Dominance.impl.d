lib/spirv_ir/dominance.pp.ml: Array Block Cfg Id List
