lib/spirv_ir/disasm.pp.ml: Array Block Buffer Constant Format Func Id Instr List Module_ir Printf String Ty
