lib/spirv_ir/builder.pp.ml: Block Constant Func Hashtbl Id Instr Int32 List Module_ir Option Printf Ty
