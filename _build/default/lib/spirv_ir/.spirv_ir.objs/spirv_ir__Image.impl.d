lib/spirv_ir/image.pp.ml: Array Buffer Int32 Ppx_deriving_runtime String Value
