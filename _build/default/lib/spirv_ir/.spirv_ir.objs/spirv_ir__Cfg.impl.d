lib/spirv_ir/cfg.pp.ml: Array Block Func Id List Seq
