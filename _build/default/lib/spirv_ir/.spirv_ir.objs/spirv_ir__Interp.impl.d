lib/spirv_ir/interp.pp.ml: Array Block Func Id Image Input Instr Int32 List Module_ir Ops Printf Ty Value
