lib/spirv_ir/block.pp.ml: Id Instr List Ppx_deriving_runtime
