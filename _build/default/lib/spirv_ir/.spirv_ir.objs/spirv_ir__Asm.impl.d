lib/spirv_ir/asm.pp.ml: Block Buffer Constant Func Id Instr Int32 List Module_ir Printf String Ty
