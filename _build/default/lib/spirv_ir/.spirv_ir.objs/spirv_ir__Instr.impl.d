lib/spirv_ir/instr.pp.ml: Id List Ppx_deriving_runtime Ty
