lib/spirv_ir/value.pp.ml: Array Bool Float Int32 Int64 Ppx_deriving_runtime
