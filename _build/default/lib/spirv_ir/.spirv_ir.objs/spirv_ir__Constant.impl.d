lib/spirv_ir/constant.pp.ml: Id List Ppx_deriving_runtime
