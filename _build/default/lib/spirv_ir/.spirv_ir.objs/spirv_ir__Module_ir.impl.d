lib/spirv_ir/module_ir.pp.ml: Array Block Constant Func Id Instr Int32 List Ppx_deriving_runtime Ty Value
