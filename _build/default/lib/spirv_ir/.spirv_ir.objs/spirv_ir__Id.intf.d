lib/spirv_ir/id.pp.mli: Format Map Set
