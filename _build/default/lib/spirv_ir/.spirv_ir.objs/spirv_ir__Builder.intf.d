lib/spirv_ir/builder.pp.mli: Block Func Id Instr Module_ir Ty
