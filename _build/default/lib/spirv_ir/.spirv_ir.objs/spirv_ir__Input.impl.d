lib/spirv_ir/input.pp.ml: Array Buffer Int32 List Ppx_deriving_runtime Printf String Value
