lib/spirv_ir/validate.pp.ml: Block Cfg Constant Dominance Func Hashtbl Id Instr Int32 List Module_ir Option Printf Ty
