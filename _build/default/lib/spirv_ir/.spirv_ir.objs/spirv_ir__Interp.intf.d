lib/spirv_ir/interp.pp.mli: Id Image Input Module_ir Value
