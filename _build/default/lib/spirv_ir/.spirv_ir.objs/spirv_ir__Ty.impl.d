lib/spirv_ir/ty.pp.ml: Id List Ppx_deriving_runtime
