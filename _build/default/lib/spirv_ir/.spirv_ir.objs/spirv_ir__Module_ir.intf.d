lib/spirv_ir/module_ir.pp.mli: Constant Format Func Id Ty Value
