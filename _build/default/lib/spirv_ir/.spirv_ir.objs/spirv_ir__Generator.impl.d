lib/spirv_ir/generator.pp.ml: Builder Id Input Instr List Printf Tbct Value
