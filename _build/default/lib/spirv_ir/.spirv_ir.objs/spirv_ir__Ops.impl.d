lib/spirv_ir/ops.pp.ml: Array Float Instr Int32 Printf Value
