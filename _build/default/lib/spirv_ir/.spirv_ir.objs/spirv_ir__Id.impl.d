lib/spirv_ir/id.pp.ml: Format Int Map Set
