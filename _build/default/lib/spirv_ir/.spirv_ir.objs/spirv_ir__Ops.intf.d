lib/spirv_ir/ops.pp.mli: Instr Value
