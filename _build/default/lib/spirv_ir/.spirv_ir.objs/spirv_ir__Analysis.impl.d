lib/spirv_ir/analysis.pp.ml: Block Cfg Dominance Func Id Instr List Module_ir
