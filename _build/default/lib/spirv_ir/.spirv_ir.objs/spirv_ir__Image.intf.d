lib/spirv_ir/image.pp.mli: Format Value
