(** Control-flow-graph queries over a function. *)

type t = {
  blocks : Block.t array;
  index_of : int Id.Map.t;       (** block label -> position in [blocks] *)
  succs : int list array;        (** successor positions *)
  preds : int list array;        (** predecessor positions *)
  reachable : bool array;        (** reachable from the entry block *)
}

let of_func (f : Func.t) =
  let blocks = Array.of_list f.Func.blocks in
  let n = Array.length blocks in
  let index_of =
    Array.to_seqi blocks
    |> Seq.fold_left (fun acc (i, b) -> Id.Map.add b.Block.label i acc) Id.Map.empty
  in
  let succs =
    Array.map
      (fun b ->
        List.filter_map (fun l -> Id.Map.find_opt l index_of) (Block.successors b))
      blocks
  in
  let preds = Array.make n [] in
  Array.iteri (fun i ss -> List.iter (fun s -> preds.(s) <- i :: preds.(s)) ss) succs;
  Array.iteri (fun i ps -> preds.(i) <- List.rev ps) preds;
  let reachable = Array.make n false in
  let rec visit i =
    if not reachable.(i) then begin
      reachable.(i) <- true;
      List.iter visit succs.(i)
    end
  in
  if n > 0 then visit 0;
  { blocks; index_of; succs; preds; reachable }

let block_index cfg label = Id.Map.find_opt label cfg.index_of

let successors cfg label =
  match block_index cfg label with
  | None -> []
  | Some i -> List.map (fun j -> cfg.blocks.(j).Block.label) cfg.succs.(i)

let predecessors cfg label =
  match block_index cfg label with
  | None -> []
  | Some i -> List.map (fun j -> cfg.blocks.(j).Block.label) cfg.preds.(i)

let is_reachable cfg label =
  match block_index cfg label with None -> false | Some i -> cfg.reachable.(i)

let reachable_labels cfg =
  Array.to_list cfg.blocks
  |> List.filteri (fun i _ -> cfg.reachable.(i))
  |> List.map (fun b -> b.Block.label)

(** Reverse post-order of the reachable subgraph, as positions. *)
let reverse_postorder cfg =
  let n = Array.length cfg.blocks in
  let visited = Array.make n false in
  let order = ref [] in
  let rec visit i =
    if not visited.(i) then begin
      visited.(i) <- true;
      List.iter visit cfg.succs.(i);
      order := i :: !order
    end
  in
  if n > 0 then visit 0;
  !order
