(** SPIR-V-like modules.

    A module is a type table, a constant table, global variables, functions
    and a designated entry-point function, in the declaration-order
    discipline of SPIR-V: every declaration may only reference earlier
    declarations, and the validator enforces it.

    {b Fresh-id discipline.}  Ids are allocated from the module-wide
    [id_bound], which only ever grows.  Transformations draw the fresh ids
    they will introduce at {e construction} time and record them as explicit
    parameters, so re-applying a recorded transformation during reduction
    reuses exactly the same ids — the property behind "maximizing
    independence" (paper, section 3.3). *)

type type_decl = { td_id : Id.t; td_ty : Ty.t }

val pp_type_decl : Format.formatter -> type_decl -> unit
val show_type_decl : type_decl -> string
val equal_type_decl : type_decl -> type_decl -> bool

type const_decl = { cd_id : Id.t; cd_ty : Id.t; cd_value : Constant.t }

val pp_const_decl : Format.formatter -> const_decl -> unit
val show_const_decl : const_decl -> string
val equal_const_decl : const_decl -> const_decl -> bool

type global_decl = {
  gd_id : Id.t;
  gd_ty : Id.t;  (** a [Ty.Pointer] type id *)
  gd_name : string;
      (** binds [Uniform]/[Input]/[Output] variables to input values and
          the framebuffer *)
  gd_init : Id.t option;  (** optional constant initializer *)
}

val pp_global_decl : Format.formatter -> global_decl -> unit
val show_global_decl : global_decl -> string
val equal_global_decl : global_decl -> global_decl -> bool

type t = {
  id_bound : int;  (** all ids are in [\[1, id_bound)] *)
  types : type_decl list;
  constants : const_decl list;
  globals : global_decl list;
  functions : Func.t list;
  entry : Id.t;  (** the entry-point function id *)
}

val pp : Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool

val equal_ignoring_bound : t -> t -> bool
(** Equality up to [id_bound]: fuzzers burn ids on proposals that fail their
    preconditions, so replaying a recorded sequence reproduces a variant's
    contents but may end with a smaller bound. *)

val empty : t

(** {1 Fresh ids} *)

val fresh : t -> t * Id.t
val fresh_many : t -> int -> t * Id.t list

(** {1 Lookups} *)

val find_type : t -> Id.t -> Ty.t option
val type_exn : t -> Id.t -> Ty.t
val find_type_id : t -> Ty.t -> Id.t option
(** Structural lookup: the id of an existing declaration equal to [ty]. *)

val find_constant : t -> Id.t -> const_decl option
val find_constant_id : t -> ty:Id.t -> value:Constant.t -> Id.t option
val find_global : t -> Id.t -> global_decl option
val find_function : t -> Id.t -> Func.t option
val function_exn : t -> Id.t -> Func.t
val entry_function : t -> Func.t
val replace_function : t -> Func.t -> t

(** {1 Interning} *)

val intern_type : t -> Ty.t -> t * Id.t
(** Get-or-create; component type ids must already be declared. *)

val intern_types : t -> Ty.t list -> t * Id.t list
val intern_constant : t -> ty:Id.t -> Constant.t -> t * Id.t
val add_global : t -> ty:Id.t -> name:string -> init:Id.t option -> t * Id.t

val bool_ty : t -> t * Id.t
val int_ty : t -> t * Id.t
val float_ty : t -> t * Id.t
val void_ty : t -> t * Id.t
val const_bool : t -> bool -> t * Id.t
val const_int : t -> int -> t * Id.t
val const_float : t -> float -> t * Id.t

(** {1 Typing and evaluation} *)

val type_of_id : t -> Id.t -> Id.t option
(** The declared/derived result-type id of any id that has one: constants,
    globals, functions (their function type), parameters and instruction
    results. *)

val zero_value : t -> Id.t -> Value.t
(** The all-zero runtime value of a type — what uninitialized variables and
    [OpConstantNull] denote. *)

val const_value : t -> Id.t -> Value.t
(** Evaluate a constant id to its runtime value.
    @raise Invalid_argument if the id is not a constant. *)

(** {1 Aggregate structure} *)

val composite_arity : t -> Id.t -> int option
(** Number of immediate components of a composite type.  Total: unknown or
    non-composite type ids yield [None] (transformation preconditions probe
    types whose declarations may have been removed from a reduced
    sequence). *)

val component_ty : t -> Id.t -> int -> Id.t option
(** Type id of component [i]; total like {!composite_arity}. *)

val ty_at_path : t -> Id.t -> int list -> Id.t option
(** The type reached by following a literal index path. *)

(** {1 Metrics} *)

val instruction_count : t -> int
(** Instructions across all functions, terminators included — the size
    metric of the paper's reduction-quality comparison (section 4.2). *)

val defined_ids : t -> Id.Set.t
(** Every id defined anywhere in the module. *)
