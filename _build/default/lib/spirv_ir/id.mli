(** Result ids.

    Every type, constant, global variable, function, block and
    result-producing instruction in a module is named by a unique positive
    integer id, exactly as in SPIR-V.  Transformations that need fresh ids
    receive them explicitly as parameters (rather than allocating on the
    fly), which is what makes transformation sequences stable under delta
    debugging (paper, section 3.3, "maximizing independence"). *)

type t = int

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
(** Prints in SPIR-V assembly style: [%42]. *)

val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
