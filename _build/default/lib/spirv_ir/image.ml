(** Rendered images: one pixel per fragment of the grid.

    A fragment that executes [OpKill] leaves its pixel unwritten ([Killed]),
    as on a real GPU, so transformations such as ReplaceBranchWithKill in
    dead blocks keep images identical while changing the CFG radically. *)

type pixel =
  | Killed
  | Color of Value.t
[@@deriving show { with_path = false }]

type t = {
  width : int;
  height : int;
  pixels : pixel array;  (** row-major, length = width * height *)
}

let create ~width ~height = { width; height; pixels = Array.make (width * height) Killed }

let get t ~x ~y = t.pixels.((y * t.width) + x)

let set t ~x ~y p = t.pixels.((y * t.width) + x) <- p

let equal_pixel ~tolerance a b =
  match (a, b) with
  | Killed, Killed -> true
  | Color u, Color v -> Value.approx_equal ~tolerance u v
  | Killed, Color _ | Color _, Killed -> false

(** Pixel-wise comparison with a small numeric tolerance, the oracle used to
    flag miscompilations (section 3.4: "compares the pair of images"). *)
let equal ?(tolerance = 1e-9) a b =
  a.width = b.width && a.height = b.height
  && (let ok = ref true in
      Array.iteri
        (fun i p -> if not (equal_pixel ~tolerance p b.pixels.(i)) then ok := false)
        a.pixels;
      !ok)

let mismatch_count ?(tolerance = 1e-9) a b =
  if a.width <> b.width || a.height <> b.height then a.width * a.height
  else begin
    let n = ref 0 in
    Array.iteri
      (fun i p -> if not (equal_pixel ~tolerance p b.pixels.(i)) then incr n)
      a.pixels;
    !n
  end

(** Compact ASCII rendering for examples and debugging: each pixel becomes a
    character by quantizing the first (red) channel; killed pixels are
    ['.']. *)
let to_ascii t =
  let b = Buffer.create ((t.width + 1) * t.height) in
  for y = 0 to t.height - 1 do
    for x = 0 to t.width - 1 do
      match get t ~x ~y with
      | Killed -> Buffer.add_char b '.'
      | Color v ->
          let r =
            match v with
            | Value.VComposite parts when Array.length parts > 0 -> (
                match parts.(0) with
                | Value.VFloat f -> f
                | Value.VInt i -> Int32.to_float i
                | Value.VBool bo -> if bo then 1.0 else 0.0
                | Value.VComposite _ -> 0.0)
            | Value.VFloat f -> f
            | Value.VInt i -> Int32.to_float i
            | Value.VBool bo -> if bo then 1.0 else 0.0
            | Value.VComposite _ -> 0.0
          in
          let clamped = if r < 0.0 then 0.0 else if r > 1.0 then 1.0 else r in
          let shades = " _-=+*#%@" in
          let idx = int_of_float (clamped *. float_of_int (String.length shades - 1)) in
          Buffer.add_char b shades.[idx]
    done;
    Buffer.add_char b '\n'
  done;
  Buffer.contents b
