(** Functions: parameters, a list of blocks (the entry block first, and every
    block preceding the blocks it dominates), and a function-control
    attribute mirroring SPIR-V's [FunctionControl] mask. *)

type control =
  | CNone
  | DontInline
  | AlwaysInline
[@@deriving show { with_path = false }, eq]

type param = { param_id : Id.t; param_ty : Id.t }
[@@deriving show { with_path = false }, eq]

type t = {
  id : Id.t;
  name : string;              (** for diagnostics and disassembly only *)
  fn_ty : Id.t;               (** id of a [Ty.Func] declaration *)
  control : control;
  params : param list;
  blocks : Block.t list;
}
[@@deriving show { with_path = false }, eq]

let entry_block f =
  match f.blocks with
  | [] -> invalid_arg ("Func.entry_block: function with no blocks: " ^ f.name)
  | b :: _ -> b

let find_block f label =
  List.find_opt (fun (b : Block.t) -> Id.equal b.label label) f.blocks

let block_exn f label =
  match find_block f label with
  | Some b -> b
  | None ->
      invalid_arg
        (Printf.sprintf "Func.block_exn: no block %s in %s" (Id.to_string label)
           f.name)

let replace_block f (b : Block.t) =
  {
    f with
    blocks =
      List.map (fun (b' : Block.t) -> if Id.equal b'.label b.label then b else b') f.blocks;
  }

(** Insert [nb] immediately after the block labelled [after]. *)
let insert_block_after f ~after (nb : Block.t) =
  let rec go = function
    | [] -> [ nb ]
    | (b : Block.t) :: rest ->
        if Id.equal b.label after then b :: nb :: rest else b :: go rest
  in
  { f with blocks = go f.blocks }

let remove_block f label =
  { f with blocks = List.filter (fun (b : Block.t) -> not (Id.equal b.label label)) f.blocks }

(** All instructions of the function in block order. *)
let all_instrs f = List.concat_map (fun (b : Block.t) -> b.instrs) f.blocks

(** (block label, instr) for every instruction. *)
let instrs_with_blocks f =
  List.concat_map
    (fun (b : Block.t) -> List.map (fun i -> (b.label, i)) b.instrs)
    f.blocks

(** Map from defined id to (block label, instr). *)
let definition_sites f =
  List.fold_left
    (fun acc (b : Block.t) ->
      List.fold_left
        (fun acc (i : Instr.t) ->
          match i.result with
          | Some r -> Id.Map.add r (b.label, i) acc
          | None -> acc)
        acc b.instrs)
    Id.Map.empty f.blocks

(** Ids of instructions that use [id] anywhere in the function (operands or
    terminators).  Returns the block labels containing such uses. *)
let blocks_using f id =
  List.filter_map
    (fun (b : Block.t) ->
      let used_in_instrs =
        List.exists (fun i -> List.mem id (Instr.used_ids i)) b.instrs
      in
      let used_in_term = List.mem id (Block.terminator_used_ids b.terminator) in
      if used_in_instrs || used_in_term then Some b.label else None)
    f.blocks

let substitute_uses ~old_id ~new_id f =
  { f with blocks = List.map (Block.substitute_uses ~old_id ~new_id) f.blocks }

let return_ty_of_fn_ty (types : (Id.t * Ty.t) list) fn_ty =
  match List.assoc_opt fn_ty types with
  | Some (Ty.Func (ret, _)) -> Some ret
  | Some _ | None -> None
