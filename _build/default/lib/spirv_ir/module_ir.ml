(** SPIR-V-like modules: a type table, a constant table, global variables,
    functions, and a designated entry-point function.

    Ids are allocated from a module-wide [id_bound]; all transformations that
    need fresh ids take them as explicit parameters drawn via {!fresh} at
    transformation-construction time, so re-applying a recorded
    transformation during reduction reuses exactly the same ids. *)

type type_decl = { td_id : Id.t; td_ty : Ty.t }
[@@deriving show { with_path = false }, eq]

type const_decl = { cd_id : Id.t; cd_ty : Id.t; cd_value : Constant.t }
[@@deriving show { with_path = false }, eq]

type global_decl = {
  gd_id : Id.t;
  gd_ty : Id.t;  (** a [Ty.Pointer] type id *)
  gd_name : string;  (** used to bind [Uniform]/[Input]/[Output] variables *)
  gd_init : Id.t option;  (** optional constant initializer *)
}
[@@deriving show { with_path = false }, eq]

type t = {
  id_bound : int;
  types : type_decl list;
  constants : const_decl list;
  globals : global_decl list;
  functions : Func.t list;
  entry : Id.t;
}
[@@deriving show { with_path = false }, eq]

(* ------------------------------------------------------------------ *)
(* Fresh ids                                                           *)

let fresh m = ({ m with id_bound = m.id_bound + 1 }, m.id_bound)

let fresh_many m n =
  let rec go m acc n = if n = 0 then (m, List.rev acc) else
    let m, id = fresh m in
    go m (id :: acc) (n - 1)
  in
  go m [] n

(* ------------------------------------------------------------------ *)
(* Lookups                                                             *)

let find_type m id =
  List.find_map (fun d -> if Id.equal d.td_id id then Some d.td_ty else None) m.types

let type_exn m id =
  match find_type m id with
  | Some ty -> ty
  | None -> invalid_arg ("Module_ir.type_exn: unknown type id " ^ Id.to_string id)

let find_type_id m ty =
  List.find_map (fun d -> if Ty.equal d.td_ty ty then Some d.td_id else None) m.types

let find_constant m id =
  List.find_opt (fun d -> Id.equal d.cd_id id) m.constants

let find_constant_id m ~ty ~value =
  List.find_map
    (fun d ->
      if Id.equal d.cd_ty ty && Constant.equal d.cd_value value then Some d.cd_id
      else None)
    m.constants

let find_global m id = List.find_opt (fun d -> Id.equal d.gd_id id) m.globals

let find_function m id =
  List.find_opt (fun (f : Func.t) -> Id.equal f.Func.id id) m.functions

let function_exn m id =
  match find_function m id with
  | Some f -> f
  | None ->
      invalid_arg ("Module_ir.function_exn: unknown function " ^ Id.to_string id)

let entry_function m = function_exn m m.entry

let replace_function m (f : Func.t) =
  {
    m with
    functions =
      List.map (fun (g : Func.t) -> if Id.equal g.Func.id f.Func.id then f else g) m.functions;
  }

(* ------------------------------------------------------------------ *)
(* Interning                                                           *)

(** Get-or-create a type declaration.  Component type ids must already be
    declared. *)
let intern_type m ty =
  match find_type_id m ty with
  | Some id -> (m, id)
  | None ->
      let m, id = fresh m in
      ({ m with types = m.types @ [ { td_id = id; td_ty = ty } ] }, id)

let intern_types m tys =
  List.fold_left
    (fun (m, acc) ty ->
      let m, id = intern_type m ty in
      (m, acc @ [ id ]))
    (m, []) tys

(** Get-or-create a constant declaration of type [ty]. *)
let intern_constant m ~ty value =
  match find_constant_id m ~ty ~value with
  | Some id -> (m, id)
  | None ->
      let m, id = fresh m in
      ( { m with constants = m.constants @ [ { cd_id = id; cd_ty = ty; cd_value = value } ] },
        id )

let add_global m ~ty ~name ~init =
  let m, id = fresh m in
  ( { m with globals = m.globals @ [ { gd_id = id; gd_ty = ty; gd_name = name; gd_init = init } ] },
    id )

(* Common scalar shortcuts. *)
let bool_ty m = intern_type m Ty.Bool
let int_ty m = intern_type m Ty.Int
let float_ty m = intern_type m Ty.Float
let void_ty m = intern_type m Ty.Void

let const_bool m b =
  let m, ty = bool_ty m in
  intern_constant m ~ty (Constant.Bool b)

let const_int m i =
  let m, ty = int_ty m in
  intern_constant m ~ty (Constant.Int (Int32.of_int i))

let const_float m f =
  let m, ty = float_ty m in
  intern_constant m ~ty (Constant.Float f)

(* ------------------------------------------------------------------ *)
(* Typing of ids                                                       *)

(** The declared/derived result type id of any id in the module, if it has
    one: types themselves have no type; constants, globals, functions,
    parameters and instruction results do. *)
let type_of_id m id =
  match find_constant m id with
  | Some c -> Some c.cd_ty
  | None -> (
      match find_global m id with
      | Some g -> Some g.gd_ty
      | None ->
          List.find_map
            (fun (f : Func.t) ->
              if Id.equal f.Func.id id then Some f.Func.fn_ty
              else
                match
                  List.find_map
                    (fun (p : Func.param) ->
                      if Id.equal p.Func.param_id id then Some p.Func.param_ty else None)
                    f.Func.params
                with
                | Some ty -> Some ty
                | None ->
                    List.find_map
                      (fun (b : Block.t) ->
                        List.find_map
                          (fun (i : Instr.t) ->
                            match (i.result, i.ty) with
                            | Some r, Some ty when Id.equal r id -> Some ty
                            | _ -> None)
                          b.Block.instrs)
                      f.Func.blocks)
            m.functions)

(* ------------------------------------------------------------------ *)
(* Constant evaluation                                                 *)

let rec zero_value m ty_id =
  match type_exn m ty_id with
  | Ty.Void -> Value.VComposite [||]
  | Ty.Bool -> Value.VBool false
  | Ty.Int -> Value.VInt 0l
  | Ty.Float -> Value.VFloat 0.0
  | Ty.Vector (c, n) | Ty.Array (c, n) ->
      Value.VComposite (Array.init n (fun _ -> zero_value m c))
  | Ty.Matrix (col, n) ->
      Value.VComposite (Array.init n (fun _ -> zero_value m col))
  | Ty.Struct members ->
      Value.VComposite (Array.of_list (List.map (zero_value m) members))
  | Ty.Pointer (_, pointee) -> zero_value m pointee
  | Ty.Func _ -> Value.VComposite [||]

let rec const_value m id =
  match find_constant m id with
  | None -> invalid_arg ("Module_ir.const_value: not a constant: " ^ Id.to_string id)
  | Some { cd_ty; cd_value; _ } -> (
      match cd_value with
      | Constant.Bool b -> Value.VBool b
      | Constant.Int i -> Value.VInt i
      | Constant.Float f -> Value.VFloat f
      | Constant.Null -> zero_value m cd_ty
      | Constant.Composite parts ->
          Value.VComposite (Array.of_list (List.map (const_value m) parts)))

(* ------------------------------------------------------------------ *)
(* Aggregate structure helpers                                         *)

(** Number of immediate components of a composite type, if composite.
    Total: unknown type ids yield [None] (preconditions probe types that may
    have been removed from a reduced transformation sequence). *)
let composite_arity m ty_id =
  match find_type m ty_id with
  | Some (Ty.Vector (_, n) | Ty.Matrix (_, n) | Ty.Array (_, n)) -> Some n
  | Some (Ty.Struct members) -> Some (List.length members)
  | Some (Ty.Void | Ty.Bool | Ty.Int | Ty.Float | Ty.Pointer _ | Ty.Func _) | None -> None

(** Type id of component [i] of a composite type; total like
    {!composite_arity}. *)
let component_ty m ty_id i =
  match find_type m ty_id with
  | Some (Ty.Vector (c, n)) when i >= 0 && i < n -> Some c
  | Some (Ty.Matrix (col, n)) when i >= 0 && i < n -> Some col
  | Some (Ty.Array (c, n)) when i >= 0 && i < n -> Some c
  | Some (Ty.Struct members) -> List.nth_opt members i
  | Some (Ty.Vector _ | Ty.Matrix _ | Ty.Array _)
  | Some (Ty.Void | Ty.Bool | Ty.Int | Ty.Float | Ty.Pointer _ | Ty.Func _)
  | None ->
      None

(** Type reached by following a literal index path from [ty_id]. *)
let rec ty_at_path m ty_id path =
  match path with
  | [] -> Some ty_id
  | i :: rest -> (
      match component_ty m ty_id i with
      | Some c -> ty_at_path m c rest
      | None -> None)

(** Count of instructions across all functions — the size metric used when
    reporting reduction quality (section 4.2 measures instruction-count
    deltas). Terminators count as instructions, as in SPIR-V. *)
let instruction_count m =
  List.fold_left
    (fun acc (f : Func.t) ->
      List.fold_left
        (fun acc (b : Block.t) -> acc + List.length b.Block.instrs + 1)
        acc f.Func.blocks)
    0 m.functions

(** All ids defined anywhere in the module. *)
let defined_ids m =
  let tbl = ref Id.Set.empty in
  let add id = tbl := Id.Set.add id !tbl in
  List.iter (fun d -> add d.td_id) m.types;
  List.iter (fun d -> add d.cd_id) m.constants;
  List.iter (fun d -> add d.gd_id) m.globals;
  List.iter
    (fun (f : Func.t) ->
      add f.Func.id;
      List.iter (fun (p : Func.param) -> add p.Func.param_id) f.Func.params;
      List.iter
        (fun (b : Block.t) ->
          add b.Block.label;
          List.iter
            (fun (i : Instr.t) -> match i.Instr.result with Some r -> add r | None -> ())
            b.Block.instrs)
        f.Func.blocks)
    m.functions;
  !tbl

(** Equality up to the id bound.  The bound over-approximates the used ids
    (fuzzers burn ids on proposals that fail their preconditions), so
    replaying a recorded transformation sequence reproduces a variant's
    contents but may end with a smaller bound. *)
let equal_ignoring_bound a b = equal { a with id_bound = 0 } { b with id_bound = 0 }

let empty =
  { id_bound = 1; types = []; constants = []; globals = []; functions = []; entry = 0 }
