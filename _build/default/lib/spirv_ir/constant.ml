(** Module-level constants ([OpConstant*] analogs).

    Composite constants refer to their constituents by id, so the constant
    table is ordered: a constituent must be declared before any composite
    using it. *)

type t =
  | Bool of bool
  | Int of int32
  | Float of float
  | Composite of Id.t list  (** constituent constant ids *)
  | Null                    (** zero value of the declared type *)
[@@deriving show { with_path = false }, eq]
