(** Rendered images: one pixel per fragment of the input grid.

    A fragment that executes [OpKill] leaves its pixel unwritten
    ([Killed]), as on a real GPU — which is why ReplaceBranchWithKill in
    dead blocks keeps images identical while changing the CFG radically.
    Image equality is the miscompilation oracle (paper, section 3.4: the
    interestingness test "compares the pair of images"). *)

type pixel =
  | Killed
  | Color of Value.t  (** normally a vec4 [VComposite] *)

val pp_pixel : Format.formatter -> pixel -> unit
val show_pixel : pixel -> string

type t = {
  width : int;
  height : int;
  pixels : pixel array;  (** row-major, length = width * height *)
}

val create : width:int -> height:int -> t
(** All pixels initially [Killed]. *)

val get : t -> x:int -> y:int -> pixel
val set : t -> x:int -> y:int -> pixel -> unit

val equal : ?tolerance:float -> t -> t -> bool
(** Pixel-wise with a small numeric tolerance (default 1e-9). *)

val mismatch_count : ?tolerance:float -> t -> t -> int

val to_ascii : t -> string
(** Compact rendering for examples and debugging: one shade character per
    pixel by quantizing the red channel; killed pixels print ['.']. *)
