(** Instructions.

    The instruction set is the Vulkan-fragment-shader subset of SPIR-V that
    the paper's transformations exercise: integer/float/boolean arithmetic,
    comparisons, composite construction/extraction, memory access through
    typed pointers, function calls, [OpPhi] and [OpCopyObject] (the natural
    carrier for {e synonym} facts). *)

type binop =
  | IAdd | ISub | IMul | SDiv | SMod
  | FAdd | FSub | FMul | FDiv
  | LogicalAnd | LogicalOr
  | IEqual | INotEqual
  | SLessThan | SLessThanEqual | SGreaterThan | SGreaterThanEqual
  | FOrdEqual | FOrdNotEqual
  | FOrdLessThan | FOrdLessThanEqual | FOrdGreaterThan | FOrdGreaterThanEqual
[@@deriving show { with_path = false }, eq]

type unop =
  | SNegate | FNegate | LogicalNot
  | ConvertSToF | ConvertFToS
[@@deriving show { with_path = false }, eq]

type op =
  | Binop of binop * Id.t * Id.t
  | Unop of unop * Id.t
  | Select of Id.t * Id.t * Id.t          (** condition, then-value, else-value *)
  | CompositeConstruct of Id.t list
  | CompositeExtract of Id.t * int list   (** composite, literal indices *)
  | CompositeInsert of Id.t * Id.t * int list  (** object, composite, indices *)
  | Load of Id.t                          (** pointer *)
  | Store of Id.t * Id.t                  (** pointer, value; no result *)
  | AccessChain of Id.t * Id.t list       (** base pointer, index ids *)
  | FunctionCall of Id.t * Id.t list      (** callee function id, arguments *)
  | Phi of (Id.t * Id.t) list             (** (value id, predecessor block id) *)
  | CopyObject of Id.t
  | Variable of Ty.storage_class          (** function-local allocation *)
  | Undef
  | Nop
[@@deriving show { with_path = false }, eq]

type t = {
  result : Id.t option;  (** [None] for [Store] and [Nop] *)
  ty : Id.t option;      (** result type id; [None] iff [result] is [None] *)
  op : op;
}
[@@deriving show { with_path = false }, eq]

let make ~result ~ty op = { result = Some result; ty = Some ty; op }
let make_void op = { result = None; ty = None; op }

let is_phi i = match i.op with Phi _ -> true | _ -> false

let has_side_effect i =
  match i.op with
  | Store _ | FunctionCall _ -> true
  | Variable _ -> true (* removing an allocation changes pointer validity *)
  | Binop _ | Unop _ | Select _ | CompositeConstruct _ | CompositeExtract _
  | CompositeInsert _ | Load _ | AccessChain _ | Phi _ | CopyObject _ | Undef
  | Nop ->
      false

(** Ids used (read) by an instruction's operands, excluding the result. *)
let used_ids i =
  match i.op with
  | Binop (_, a, b) -> [ a; b ]
  | Unop (_, a) -> [ a ]
  | Select (c, t, f) -> [ c; t; f ]
  | CompositeConstruct xs -> xs
  | CompositeExtract (c, _) -> [ c ]
  | CompositeInsert (obj, c, _) -> [ obj; c ]
  | Load p -> [ p ]
  | Store (p, v) -> [ p; v ]
  | AccessChain (base, idxs) -> base :: idxs
  | FunctionCall (f, args) -> f :: args
  | Phi incoming -> List.concat_map (fun (v, b) -> [ v; b ]) incoming
  | CopyObject x -> [ x ]
  | Variable _ | Undef | Nop -> []

(** Replace every use of [old_id] with [new_id] in operands (not result). *)
let substitute_uses ~old_id ~new_id i =
  let s x = if Id.equal x old_id then new_id else x in
  let op =
    match i.op with
    | Binop (b, x, y) -> Binop (b, s x, s y)
    | Unop (u, x) -> Unop (u, s x)
    | Select (c, t, f) -> Select (s c, s t, s f)
    | CompositeConstruct xs -> CompositeConstruct (List.map s xs)
    | CompositeExtract (c, idxs) -> CompositeExtract (s c, idxs)
    | CompositeInsert (obj, c, idxs) -> CompositeInsert (s obj, s c, idxs)
    | Load p -> Load (s p)
    | Store (p, v) -> Store (s p, s v)
    | AccessChain (base, idxs) -> AccessChain (s base, List.map s idxs)
    | FunctionCall (f, args) -> FunctionCall (s f, List.map s args)
    | Phi incoming -> Phi (List.map (fun (v, b) -> (s v, b)) incoming)
    | CopyObject x -> CopyObject (s x)
    | (Variable _ | Undef | Nop) as op -> op
  in
  { i with op }

(** Replace the use at position [n] of {!used_ids} with [new_id].  Returns
    [None] when [n] is out of range or the slot is a φ predecessor label
    (block labels are not value uses). *)
let substitute_nth_use ~n ~new_id i =
  let counter = ref (-1) in
  let s x =
    incr counter;
    if !counter = n then new_id else x
  in
  let keep x =
    incr counter;
    x
  in
  (* substitution must visit operands in [used_ids] order; constructor
     arguments evaluate right-to-left in OCaml, so sequence explicitly *)
  let map_in_order f xs =
    List.rev (List.fold_left (fun acc x -> f x :: acc) [] xs)
  in
  let op =
    match i.op with
    | Binop (b, x, y) ->
        let x = s x in
        let y = s y in
        Binop (b, x, y)
    | Unop (u, x) -> Unop (u, s x)
    | Select (c, t, f) ->
        let c = s c in
        let t = s t in
        let f = s f in
        Select (c, t, f)
    | CompositeConstruct xs -> CompositeConstruct (map_in_order s xs)
    | CompositeExtract (c, idxs) -> CompositeExtract (s c, idxs)
    | CompositeInsert (obj, c, idxs) ->
        let obj = s obj in
        let c = s c in
        CompositeInsert (obj, c, idxs)
    | Load p -> Load (s p)
    | Store (p, v) ->
        let p = s p in
        let v = s v in
        Store (p, v)
    | AccessChain (base, idxs) ->
        let base = s base in
        let idxs = map_in_order s idxs in
        AccessChain (base, idxs)
    | FunctionCall (f, args) ->
        let f = keep f in
        let args = map_in_order s args in
        FunctionCall (f, args)
    | Phi incoming ->
        Phi
          (map_in_order
             (fun (v, b) ->
               let v = s v in
               let b = keep b in
               (v, b))
             incoming)
    | CopyObject x -> CopyObject (s x)
    | (Variable _ | Undef | Nop) as op -> op
  in
  (* the callee slot and φ labels are positions in [used_ids] but not
     replaceable value uses; reject selections landing on them *)
  let replaceable =
    match i.op with
    | FunctionCall _ -> n >= 1
    | Phi _ -> n mod 2 = 0
    | _ -> true
  in
  if n >= 0 && n < List.length (used_ids i) && replaceable then Some { i with op }
  else None

let binop_name = function
  | IAdd -> "OpIAdd" | ISub -> "OpISub" | IMul -> "OpIMul"
  | SDiv -> "OpSDiv" | SMod -> "OpSMod"
  | FAdd -> "OpFAdd" | FSub -> "OpFSub" | FMul -> "OpFMul" | FDiv -> "OpFDiv"
  | LogicalAnd -> "OpLogicalAnd" | LogicalOr -> "OpLogicalOr"
  | IEqual -> "OpIEqual" | INotEqual -> "OpINotEqual"
  | SLessThan -> "OpSLessThan" | SLessThanEqual -> "OpSLessThanEqual"
  | SGreaterThan -> "OpSGreaterThan" | SGreaterThanEqual -> "OpSGreaterThanEqual"
  | FOrdEqual -> "OpFOrdEqual" | FOrdNotEqual -> "OpFOrdNotEqual"
  | FOrdLessThan -> "OpFOrdLessThan" | FOrdLessThanEqual -> "OpFOrdLessThanEqual"
  | FOrdGreaterThan -> "OpFOrdGreaterThan"
  | FOrdGreaterThanEqual -> "OpFOrdGreaterThanEqual"

let all_binops =
  [ IAdd; ISub; IMul; SDiv; SMod; FAdd; FSub; FMul; FDiv; LogicalAnd;
    LogicalOr; IEqual; INotEqual; SLessThan; SLessThanEqual; SGreaterThan;
    SGreaterThanEqual; FOrdEqual; FOrdNotEqual; FOrdLessThan;
    FOrdLessThanEqual; FOrdGreaterThan; FOrdGreaterThanEqual ]

let unop_name = function
  | SNegate -> "OpSNegate" | FNegate -> "OpFNegate"
  | LogicalNot -> "OpLogicalNot"
  | ConvertSToF -> "OpConvertSToF" | ConvertFToS -> "OpConvertFToS"

let all_unops = [ SNegate; FNegate; LogicalNot; ConvertSToF; ConvertFToS ]
