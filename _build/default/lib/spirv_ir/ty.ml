(** Types.

    A module carries a table of type declarations; aggregate types refer to
    their component types by id, mirroring SPIR-V's [OpType*] instructions.
    Scalars are [Bool], 32-bit signed [Int] and [Float] (IEEE double in the
    reference interpreter; the evaluation never depends on float width). *)

type storage_class =
  | Function   (** function-local variable *)
  | Private    (** module-scope mutable variable *)
  | Uniform    (** read-only shader input, value supplied by the test input *)
  | Input      (** per-fragment builtin input (e.g. the fragment coordinate) *)
  | Output     (** fragment output (the color) *)
[@@deriving show { with_path = false }, eq]

type t =
  | Void
  | Bool
  | Int
  | Float
  | Vector of Id.t * int    (** scalar component type id, size 2..4 *)
  | Matrix of Id.t * int    (** column (vector) type id, column count 2..4 *)
  | Struct of Id.t list     (** member type ids *)
  | Array of Id.t * int     (** element type id, length >= 1 *)
  | Pointer of storage_class * Id.t  (** pointee type id *)
  | Func of Id.t * Id.t list         (** return type id, parameter type ids *)
[@@deriving show { with_path = false }, eq]

let is_scalar = function Bool | Int | Float -> true | _ -> false

let is_numeric = function Int | Float -> true | _ -> false

let is_composite = function
  | Vector _ | Matrix _ | Struct _ | Array _ -> true
  | Void | Bool | Int | Float | Pointer _ | Func _ -> false

let storage_class_to_string = function
  | Function -> "Function"
  | Private -> "Private"
  | Uniform -> "Uniform"
  | Input -> "Input"
  | Output -> "Output"

let storage_class_of_string = function
  | "Function" -> Some Function
  | "Private" -> Some Private
  | "Uniform" -> Some Uniform
  | "Input" -> Some Input
  | "Output" -> Some Output
  | _ -> None
