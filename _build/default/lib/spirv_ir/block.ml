(** Basic blocks: a label id, a body of instructions (φ-instructions first),
    and exactly one terminator. *)

type terminator =
  | Branch of Id.t
  | BranchConditional of Id.t * Id.t * Id.t  (** condition, true target, false target *)
  | Return
  | ReturnValue of Id.t
  | Kill        (** OpKill: terminate the fragment without producing output *)
  | Unreachable
[@@deriving show { with_path = false }, eq]

type t = {
  label : Id.t;
  instrs : Instr.t list;
  terminator : terminator;
}
[@@deriving show { with_path = false }, eq]

let successors b =
  match b.terminator with
  | Branch t -> [ t ]
  | BranchConditional (_, t, f) -> if Id.equal t f then [ t ] else [ t; f ]
  | Return | ReturnValue _ | Kill | Unreachable -> []

let terminator_used_ids = function
  | Branch _ | Return | Kill | Unreachable -> []
  | BranchConditional (c, _, _) -> [ c ]
  | ReturnValue v -> [ v ]

let phis b = List.filter Instr.is_phi b.instrs
let non_phi_instrs b = List.filter (fun i -> not (Instr.is_phi i)) b.instrs

(** Instructions defined in this block, as (id, instr) pairs. *)
let definitions b =
  List.filter_map
    (fun (i : Instr.t) ->
      match i.result with Some r -> Some (r, i) | None -> None)
    b.instrs

let substitute_uses ~old_id ~new_id b =
  let instrs = List.map (Instr.substitute_uses ~old_id ~new_id) b.instrs in
  let s x = if Id.equal x old_id then new_id else x in
  let terminator =
    match b.terminator with
    | BranchConditional (c, t, f) -> BranchConditional (s c, t, f)
    | ReturnValue v -> ReturnValue (s v)
    | (Branch _ | Return | Kill | Unreachable) as t -> t
  in
  { b with instrs; terminator }

(** Redirect branch targets equal to [old_target] to [new_target]; also
    updates φ predecessor labels. *)
let redirect_target ~old_target ~new_target b =
  let s x = if Id.equal x old_target then new_target else x in
  let terminator =
    match b.terminator with
    | Branch t -> Branch (s t)
    | BranchConditional (c, t, f) -> BranchConditional (c, s t, s f)
    | (Return | ReturnValue _ | Kill | Unreachable) as t -> t
  in
  { b with terminator }
