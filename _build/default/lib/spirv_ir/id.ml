type t = int

let compare = Int.compare
let equal = Int.equal
let pp fmt id = Format.fprintf fmt "%%%d" id
let to_string id = "%" ^ string_of_int id

module Set = Set.Make (Int)
module Map = Map.Make (Int)
