(** Textual disassembler.

    The output uses SPIR-V assembly conventions ([%id = OpXxx ...]) and is
    precisely invertible by {!Asm}; floats are printed in hexadecimal float
    notation so that round-trips are exact.  The module-level delta between
    an original and a reduced variant (the artifact a bug report contains —
    Figure 3 of the paper) is computed on these listings. *)

let pp_id fmt id = Format.fprintf fmt "%%%d" id

let string_of_float_exact f = Printf.sprintf "%h" f

let instr_to_string (i : Instr.t) =
  let b = Buffer.create 32 in
  let id x = Buffer.add_string b (" " ^ Id.to_string x) in
  let lit n = Buffer.add_string b (" " ^ string_of_int n) in
  (match (i.Instr.result, i.Instr.ty) with
  | Some r, Some t ->
      Buffer.add_string b (Id.to_string r ^ " = ");
      let opname =
        match i.Instr.op with
        | Instr.Binop (op, _, _) -> Instr.binop_name op
        | Instr.Unop (op, _) -> Instr.unop_name op
        | Instr.Select _ -> "OpSelect"
        | Instr.CompositeConstruct _ -> "OpCompositeConstruct"
        | Instr.CompositeExtract _ -> "OpCompositeExtract"
        | Instr.CompositeInsert _ -> "OpCompositeInsert"
        | Instr.Load _ -> "OpLoad"
        | Instr.AccessChain _ -> "OpAccessChain"
        | Instr.FunctionCall _ -> "OpFunctionCall"
        | Instr.Phi _ -> "OpPhi"
        | Instr.CopyObject _ -> "OpCopyObject"
        | Instr.Variable _ -> "OpVariable"
        | Instr.Undef -> "OpUndef"
        | Instr.Store _ | Instr.Nop -> "?"
      in
      Buffer.add_string b opname;
      Buffer.add_string b (" " ^ Id.to_string t)
  | _ ->
      let opname =
        match i.Instr.op with
        | Instr.Store _ -> "OpStore"
        | Instr.Nop -> "OpNop"
        | Instr.FunctionCall _ -> "OpFunctionCall"
        | _ -> "?"
      in
      Buffer.add_string b opname);
  (match i.Instr.op with
  | Instr.Binop (_, x, y) -> id x; id y
  | Instr.Unop (_, x) -> id x
  | Instr.Select (c, t, f) -> id c; id t; id f
  | Instr.CompositeConstruct parts -> List.iter id parts
  | Instr.CompositeExtract (c, path) -> id c; List.iter lit path
  | Instr.CompositeInsert (obj, c, path) -> id obj; id c; List.iter lit path
  | Instr.Load p -> id p
  | Instr.Store (p, v) -> id p; id v
  | Instr.AccessChain (base, idxs) -> id base; List.iter id idxs
  | Instr.FunctionCall (f, args) -> id f; List.iter id args
  | Instr.Phi incoming -> List.iter (fun (v, blk) -> id v; id blk) incoming
  | Instr.CopyObject x -> id x
  | Instr.Variable sc -> Buffer.add_string b (" " ^ Ty.storage_class_to_string sc)
  | Instr.Undef | Instr.Nop -> ());
  Buffer.contents b

let terminator_to_string = function
  | Block.Branch t -> "OpBranch " ^ Id.to_string t
  | Block.BranchConditional (c, t, f) ->
      Printf.sprintf "OpBranchConditional %s %s %s" (Id.to_string c) (Id.to_string t)
        (Id.to_string f)
  | Block.Return -> "OpReturn"
  | Block.ReturnValue v -> "OpReturnValue " ^ Id.to_string v
  | Block.Kill -> "OpKill"
  | Block.Unreachable -> "OpUnreachable"

let control_to_string = function
  | Func.CNone -> "None"
  | Func.DontInline -> "DontInline"
  | Func.AlwaysInline -> "AlwaysInline"

let type_decl_to_string (d : Module_ir.type_decl) =
  let base = Id.to_string d.Module_ir.td_id ^ " = " in
  base
  ^
  match d.Module_ir.td_ty with
  | Ty.Void -> "OpTypeVoid"
  | Ty.Bool -> "OpTypeBool"
  | Ty.Int -> "OpTypeInt"
  | Ty.Float -> "OpTypeFloat"
  | Ty.Vector (c, n) -> Printf.sprintf "OpTypeVector %s %d" (Id.to_string c) n
  | Ty.Matrix (c, n) -> Printf.sprintf "OpTypeMatrix %s %d" (Id.to_string c) n
  | Ty.Struct members ->
      "OpTypeStruct" ^ String.concat "" (List.map (fun x -> " " ^ Id.to_string x) members)
  | Ty.Array (c, n) -> Printf.sprintf "OpTypeArray %s %d" (Id.to_string c) n
  | Ty.Pointer (sc, p) ->
      Printf.sprintf "OpTypePointer %s %s" (Ty.storage_class_to_string sc) (Id.to_string p)
  | Ty.Func (ret, params) ->
      "OpTypeFunction " ^ Id.to_string ret
      ^ String.concat "" (List.map (fun x -> " " ^ Id.to_string x) params)

let const_decl_to_string (d : Module_ir.const_decl) =
  let base = Id.to_string d.Module_ir.cd_id ^ " = " in
  let ty = Id.to_string d.Module_ir.cd_ty in
  base
  ^
  match d.Module_ir.cd_value with
  | Constant.Bool true -> "OpConstantTrue " ^ ty
  | Constant.Bool false -> "OpConstantFalse " ^ ty
  | Constant.Int i -> Printf.sprintf "OpConstant %s %ld" ty i
  | Constant.Float f -> Printf.sprintf "OpConstantFloat %s %s" ty (string_of_float_exact f)
  | Constant.Composite parts ->
      Printf.sprintf "OpConstantComposite %s%s" ty
        (String.concat "" (List.map (fun x -> " " ^ Id.to_string x) parts))
  | Constant.Null -> "OpConstantNull " ^ ty

let global_decl_to_string (d : Module_ir.global_decl) =
  Printf.sprintf "%s = OpGlobalVariable %s %S%s" (Id.to_string d.Module_ir.gd_id)
    (Id.to_string d.Module_ir.gd_ty) d.Module_ir.gd_name
    (match d.Module_ir.gd_init with
    | Some init -> " " ^ Id.to_string init
    | None -> "")

let function_to_lines (f : Func.t) =
  let header =
    Printf.sprintf "%s = OpFunction %s %s %S" (Id.to_string f.Func.id)
      (Id.to_string f.Func.fn_ty) (control_to_string f.Func.control) f.Func.name
  in
  let params =
    List.map
      (fun (p : Func.param) ->
        Printf.sprintf "%s = OpFunctionParameter %s" (Id.to_string p.Func.param_id)
          (Id.to_string p.Func.param_ty))
      f.Func.params
  in
  let block_lines (b : Block.t) =
    (Id.to_string b.Block.label ^ " = OpLabel")
    :: (List.map instr_to_string b.Block.instrs @ [ terminator_to_string b.Block.terminator ])
  in
  (header :: params) @ List.concat_map block_lines f.Func.blocks @ [ "OpFunctionEnd" ]

let to_lines (m : Module_ir.t) =
  [ Printf.sprintf "OpIdBound %d" m.Module_ir.id_bound;
    Printf.sprintf "OpEntryPoint %s" (Id.to_string m.Module_ir.entry) ]
  @ List.map type_decl_to_string m.Module_ir.types
  @ List.map const_decl_to_string m.Module_ir.constants
  @ List.map global_decl_to_string m.Module_ir.globals
  @ List.concat_map function_to_lines m.Module_ir.functions

let to_string m = String.concat "\n" (to_lines m) ^ "\n"

(** Line-level delta between two modules: lines only in [a] (removed) and
    lines only in [b] (added), via a longest-common-subsequence diff.  The
    count [distance a b] is the size metric used for reduction quality. *)
let diff a b =
  let la = Array.of_list (to_lines a) and lb = Array.of_list (to_lines b) in
  let n = Array.length la and p = Array.length lb in
  (* LCS dynamic program *)
  let dp = Array.make_matrix (n + 1) (p + 1) 0 in
  for i = n - 1 downto 0 do
    for j = p - 1 downto 0 do
      dp.(i).(j) <-
        (if String.equal la.(i) lb.(j) then 1 + dp.(i + 1).(j + 1)
         else max dp.(i + 1).(j) dp.(i).(j + 1))
    done
  done;
  let removed = ref [] and added = ref [] in
  let i = ref 0 and j = ref 0 in
  while !i < n && !j < p do
    if String.equal la.(!i) lb.(!j) then begin incr i; incr j end
    else if dp.(!i + 1).(!j) >= dp.(!i).(!j + 1) then begin
      removed := la.(!i) :: !removed;
      incr i
    end
    else begin
      added := lb.(!j) :: !added;
      incr j
    end
  done;
  while !i < n do removed := la.(!i) :: !removed; incr i done;
  while !j < p do added := lb.(!j) :: !added; incr j done;
  (List.rev !removed, List.rev !added)

let diff_to_string a b =
  let removed, added = diff a b in
  String.concat "\n"
    (List.map (fun l -> "- " ^ l) removed @ List.map (fun l -> "+ " ^ l) added)
