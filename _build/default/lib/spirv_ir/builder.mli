(** Imperative construction API for modules.

    The builder interns types and constants on demand, allocates fresh ids,
    and tracks the type of every id it creates so that the convenience
    instruction emitters ([iadd], [load], ...) can infer result types.
    Blocks are emitted in the order they are started; the caller must
    respect dominance order (the validator checks it).

    Typical shape:
    {[
      let b = Builder.create () in
      let out = Builder.output_color b in
      let fb, main, _ = Builder.begin_function b ~name:"main"
                          ~ret:(Builder.void_ty b) ~params:[] in
      let l = Builder.new_label fb in
      Builder.start_block fb l;
      ...;
      Builder.ret fb;
      ignore (Builder.end_function fb);
      Builder.finish b ~entry:main
    ]} *)

type t

val create : unit -> t

val module_ : t -> Module_ir.t
(** The module built so far (functions only appear after
    {!end_function}). *)

val finish : t -> entry:Id.t -> Module_ir.t
(** The finished module with its entry point set. *)

(** {1 Types} *)

val intern_ty : t -> Ty.t -> Id.t
val void_ty : t -> Id.t
val bool_ty : t -> Id.t
val int_ty : t -> Id.t
val float_ty : t -> Id.t
val vector_ty : t -> scalar:Id.t -> size:int -> Id.t
val matrix_ty : t -> column:Id.t -> count:int -> Id.t
val struct_ty : t -> Id.t list -> Id.t
val array_ty : t -> elem:Id.t -> len:int -> Id.t
val pointer_ty : t -> Ty.storage_class -> Id.t -> Id.t
val fn_ty : t -> ret:Id.t -> params:Id.t list -> Id.t
val vec2f : t -> Id.t
val vec3f : t -> Id.t
val vec4f : t -> Id.t

(** {1 Constants} *)

val cbool : t -> bool -> Id.t
val cint : t -> int -> Id.t
val cfloat : t -> float -> Id.t
val ccomposite : t -> ty:Id.t -> Id.t list -> Id.t
val cnull : t -> ty:Id.t -> Id.t
val cvec2f : t -> float -> float -> Id.t
val cvec4f : t -> float -> float -> float -> float -> Id.t

(** {1 Globals} *)

val global :
  t -> Ty.storage_class -> pointee:Id.t -> name:string -> ?init:Id.t -> unit -> Id.t

val uniform : t -> pointee:Id.t -> name:string -> Id.t
val frag_coord : t -> Id.t
(** The per-fragment [Input]-class vec2 named "gl_FragCoord". *)

val output_color : t -> Id.t
(** The [Output]-class vec4 named "_color" that the interpreter reads as
    the pixel. *)

(** {1 Functions and blocks} *)

type fn
(** A function under construction. *)

val begin_function :
  t -> name:string -> ret:Id.t -> params:Id.t list -> fn * Id.t * Id.t list
(** Returns the builder handle, the function id, and the parameter ids. *)

val set_control : fn -> Func.control -> unit
val param_ids : fn -> Id.t list
val new_label : fn -> Id.t
val start_block : fn -> Id.t -> unit
val current_label_exn : fn -> Id.t
val terminate : fn -> Block.terminator -> unit
val end_function : fn -> Id.t
(** Appends the finished function to the module and returns its id.
    @raise Invalid_argument if a block is still open. *)

(** {1 Raw instruction emission} *)

val instr : fn -> ty:Id.t -> Instr.op -> Id.t
val instr_void : fn -> Instr.op -> unit
val type_of : fn -> Id.t -> Id.t
(** The type id of any id the builder knows.
    @raise Invalid_argument on unknown ids. *)

val patch_phi : fn -> phi:Id.t -> pred:Id.t -> value:Id.t -> unit
(** Rewrite the incoming value for predecessor [pred] of an emitted
    φ-instruction; needed to close loop back-edges, whose latch value does
    not exist when the header φ is emitted. *)

(** {1 Typed convenience emitters} *)

val binop : fn -> Instr.binop -> Id.t -> Id.t -> Id.t
val iadd : fn -> Id.t -> Id.t -> Id.t
val isub : fn -> Id.t -> Id.t -> Id.t
val imul : fn -> Id.t -> Id.t -> Id.t
val sdiv : fn -> Id.t -> Id.t -> Id.t
val smod : fn -> Id.t -> Id.t -> Id.t
val fadd : fn -> Id.t -> Id.t -> Id.t
val fsub : fn -> Id.t -> Id.t -> Id.t
val fmul : fn -> Id.t -> Id.t -> Id.t
val fdiv : fn -> Id.t -> Id.t -> Id.t
val slt : fn -> Id.t -> Id.t -> Id.t
val sle : fn -> Id.t -> Id.t -> Id.t
val sgt : fn -> Id.t -> Id.t -> Id.t
val sge : fn -> Id.t -> Id.t -> Id.t
val ieq : fn -> Id.t -> Id.t -> Id.t
val ine : fn -> Id.t -> Id.t -> Id.t
val flt : fn -> Id.t -> Id.t -> Id.t
val fle : fn -> Id.t -> Id.t -> Id.t
val fgt : fn -> Id.t -> Id.t -> Id.t
val feq : fn -> Id.t -> Id.t -> Id.t
val land_ : fn -> Id.t -> Id.t -> Id.t
val lor_ : fn -> Id.t -> Id.t -> Id.t

val unop : fn -> Instr.unop -> Id.t -> Id.t
val s_to_f : fn -> Id.t -> Id.t
val f_to_s : fn -> Id.t -> Id.t
val lnot : fn -> Id.t -> Id.t

val select : fn -> Id.t -> Id.t -> Id.t -> Id.t
val composite : fn -> ty:Id.t -> Id.t list -> Id.t
val extract : fn -> Id.t -> int list -> Id.t
val local_var : fn -> pointee:Id.t -> Id.t
(** An allocation emitted in place; only valid inside the entry block. *)

val hoisted_var : fn -> pointee:Id.t -> Id.t
(** An allocation hoisted to the function's entry block (where validators
    require all [OpVariable]s); usable from any block under construction. *)

val load : fn -> Id.t -> Id.t
val store : fn -> Id.t -> Id.t -> unit
val access_chain : fn -> Id.t -> Id.t list -> Id.t
val call : fn -> Id.t -> Id.t list -> Id.t
val phi : fn -> ty:Id.t -> (Id.t * Id.t) list -> Id.t
val copy : fn -> Id.t -> Id.t

(** {1 Terminator shortcuts} *)

val branch : fn -> Id.t -> unit
val branch_cond : fn -> Id.t -> Id.t -> Id.t -> unit
val ret : fn -> unit
val ret_value : fn -> Id.t -> unit
val kill : fn -> unit
