(** Random generation of valid, terminating modules.

    Used by the property-based test suites (e.g. "every fuzzer-generated
    variant of a random module renders the same image") and by benchmark
    workloads.  Programs are built from structured control flow — sequences,
    if-then-else diamonds and counted loops — so termination is guaranteed
    by construction, and every generated module passes {!Validate.check}.

    Randomness comes from {!Tbct.Rng}, so generation is reproducible. *)

type config = {
  max_depth : int;        (** nesting depth of structured control flow *)
  max_stmts : int;        (** statements per straight-line segment *)
  max_functions : int;    (** helper functions in addition to main *)
  max_loop_trip : int;    (** loop iteration bound *)
}

let default_config = { max_depth = 3; max_stmts = 5; max_functions = 2; max_loop_trip = 4 }

(* Values available at the current program point, by kind. *)
type env = {
  ints : Id.t list;
  floats : Id.t list;
  bools : Id.t list;
}

let add_int e id = { e with ints = id :: e.ints }
let add_float e id = { e with floats = id :: e.floats }
let add_bool e id = { e with bools = id :: e.bools }

(* Emit one random pure arithmetic statement, returning the extended env. *)
let gen_statement rng fb env =
  match Tbct.Rng.int rng 6 with
  | 0 ->
      let a = Tbct.Rng.choose rng env.ints and b = Tbct.Rng.choose rng env.ints in
      let op = Tbct.Rng.choose rng [ Instr.IAdd; Instr.ISub; Instr.IMul; Instr.SDiv; Instr.SMod ] in
      add_int env (Builder.binop fb op a b)
  | 1 ->
      let a = Tbct.Rng.choose rng env.floats and b = Tbct.Rng.choose rng env.floats in
      let op = Tbct.Rng.choose rng [ Instr.FAdd; Instr.FSub; Instr.FMul; Instr.FDiv ] in
      add_float env (Builder.binop fb op a b)
  | 2 ->
      let a = Tbct.Rng.choose rng env.ints and b = Tbct.Rng.choose rng env.ints in
      let op =
        Tbct.Rng.choose rng
          [ Instr.SLessThan; Instr.SLessThanEqual; Instr.IEqual; Instr.INotEqual ]
      in
      add_bool env (Builder.binop fb op a b)
  | 3 ->
      let a = Tbct.Rng.choose rng env.floats and b = Tbct.Rng.choose rng env.floats in
      let op = Tbct.Rng.choose rng [ Instr.FOrdLessThan; Instr.FOrdGreaterThan ] in
      add_bool env (Builder.binop fb op a b)
  | 4 ->
      let a = Tbct.Rng.choose rng env.ints in
      add_float env (Builder.s_to_f fb a)
  | _ ->
      let c = Tbct.Rng.choose rng env.bools in
      let a = Tbct.Rng.choose rng env.floats and b = Tbct.Rng.choose rng env.floats in
      add_float env (Builder.select fb c a b)

let gen_straight rng cfg fb env =
  let n = 1 + Tbct.Rng.int rng cfg.max_stmts in
  let e = ref env in
  for _ = 1 to n do
    e := gen_statement rng fb !e
  done;
  !e

(* Generate structured control flow.  The current block is open on entry and
   a (new) current block is open on exit.  Returns the env at the join point
   (conservatively: values defined inside branches/loops are dropped, since
   they do not dominate the join). *)
let rec gen_region rng cfg b fb depth env =
  let env = gen_straight rng cfg fb env in
  if depth = 0 then env
  else
    match Tbct.Rng.int rng 3 with
    | 0 -> env (* plain sequence *)
    | 1 ->
        (* if-then-else diamond; values from the arms are merged via phi *)
        let cond = Tbct.Rng.choose rng env.bools in
        let then_l = Builder.new_label fb in
        let else_l = Builder.new_label fb in
        let merge_l = Builder.new_label fb in
        Builder.branch_cond fb cond then_l else_l;
        Builder.start_block fb then_l;
        let env_t = gen_region rng cfg b fb (depth - 1) env in
        let t_int = Tbct.Rng.choose rng env_t.ints in
        let t_float = Tbct.Rng.choose rng env_t.floats in
        Builder.branch fb merge_l;
        (* the region may have ended in a different block: phi predecessors
           must be the actual branching blocks.  We avoid this subtlety by
           noting gen_region always leaves the final block open and branches
           from it; record the label via a tiny helper below. *)
        Builder.start_block fb else_l;
        let env_e = gen_region rng cfg b fb (depth - 1) env in
        let e_int = Tbct.Rng.choose rng env_e.ints in
        let e_float = Tbct.Rng.choose rng env_e.floats in
        Builder.branch fb merge_l;
        ignore (t_int, t_float, e_int, e_float);
        Builder.start_block fb merge_l;
        env
    | _ ->
        (* counted loop: i from 0 to trip, executing the body each time *)
        let trip = 1 + Tbct.Rng.int rng cfg.max_loop_trip in
        let zero = Builder.cint b 0 in
        let limit = Builder.cint b trip in
        let one = Builder.cint b 1 in
        let header_l = Builder.new_label fb in
        let body_l = Builder.new_label fb in
        let latch_l = Builder.new_label fb in
        let exit_l = Builder.new_label fb in
        (* we need the label of the block currently open to wire the phi *)
        let preheader = Builder.current_label_exn fb in
        Builder.branch fb header_l;
        Builder.start_block fb header_l;
        let i_phi =
          Builder.phi fb ~ty:(Builder.int_ty b) [ (zero, preheader); (0, latch_l) ]
        in
        let cond = Builder.slt fb i_phi limit in
        Builder.branch_cond fb cond body_l exit_l;
        Builder.start_block fb body_l;
        let env_body = gen_straight rng cfg fb (add_int env i_phi) in
        ignore env_body;
        Builder.branch fb latch_l;
        Builder.start_block fb latch_l;
        let i_next = Builder.iadd fb i_phi one in
        Builder.patch_phi fb ~phi:i_phi ~pred:latch_l ~value:i_next;
        Builder.branch fb header_l;
        Builder.start_block fb exit_l;
        env

let gen_helper_function rng cfg b idx =
  let int_t = Builder.int_ty b and float_t = Builder.float_ty b in
  let fb, fn_id, params =
    Builder.begin_function b ~name:(Printf.sprintf "helper%d" idx) ~ret:float_t
      ~params:[ int_t; float_t ]
  in
  let p_int, p_float =
    match params with [ a; c ] -> (a, c) | _ -> assert false
  in
  let entry = Builder.new_label fb in
  Builder.start_block fb entry;
  let env =
    {
      ints = [ p_int; Builder.cint b 3; Builder.cint b 7 ];
      floats = [ p_float; Builder.cfloat b 0.25; Builder.cfloat b 2.0 ];
      bools = [ Builder.cbool b true; Builder.cbool b false ];
    }
  in
  let env = gen_region rng cfg b fb (cfg.max_depth - 1) env in
  let result = Tbct.Rng.choose rng env.floats in
  Builder.ret_value fb result;
  ignore (Builder.end_function fb);
  fn_id

let generate ?(config = default_config) rng =
  let b = Builder.create () in
  let void_t = Builder.void_ty b in
  let int_t = Builder.int_ty b and float_t = Builder.float_ty b in
  ignore int_t;
  let frag = Builder.frag_coord b in
  let out = Builder.output_color b in
  let u_int = Builder.uniform b ~pointee:(Builder.int_ty b) ~name:"u_int" in
  let u_float = Builder.uniform b ~pointee:float_t ~name:"u_float" in
  let n_helpers = Tbct.Rng.int rng (config.max_functions + 1) in
  let helpers = List.init n_helpers (fun i -> gen_helper_function rng config b i) in
  let fb, main_id, _ = Builder.begin_function b ~name:"main" ~ret:void_t ~params:[] in
  let entry = Builder.new_label fb in
  Builder.start_block fb entry;
  let fc = Builder.load fb frag in
  let fx = Builder.extract fb fc [ 0 ] in
  let fy = Builder.extract fb fc [ 1 ] in
  let ui = Builder.load fb u_int in
  let uf = Builder.load fb u_float in
  let env =
    {
      ints = [ ui; Builder.cint b 1; Builder.cint b 5 ];
      floats = [ fx; fy; uf; Builder.cfloat b 0.5 ];
      bools = [ Builder.cbool b true; Builder.cbool b false ];
    }
  in
  (* calls into helpers keep the call graph interesting *)
  let env =
    List.fold_left
      (fun env h ->
        let a = Tbct.Rng.choose rng env.ints and f = Tbct.Rng.choose rng env.floats in
        add_float env (Builder.call fb h [ a; f ]))
      env helpers
  in
  let env = gen_region rng config b fb config.max_depth env in
  let r = Tbct.Rng.choose rng env.floats in
  let g = Tbct.Rng.choose rng env.floats in
  let bl = Tbct.Rng.choose rng env.floats in
  let color =
    Builder.composite fb ~ty:(Builder.vec4f b) [ r; g; bl; Builder.cfloat b 1.0 ]
  in
  Builder.store fb out color;
  Builder.ret fb;
  ignore (Builder.end_function fb);
  Builder.finish b ~entry:main_id

let default_input = Input.make [ ("u_int", Value.VInt 3l); ("u_float", Value.VFloat 0.75) ]
