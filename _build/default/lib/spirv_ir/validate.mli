(** Module validator — the spirv-val analog.

    Checks the structural and typing rules of the IR (section 3.1 of the
    paper lists the SPIR-V rules these mirror):

    - id uniqueness and the module id bound;
    - well-formedness of the type, constant and global tables (declaration
      order: a declaration may only reference earlier declarations);
    - the entry point is a void, parameterless function;
    - the call graph is acyclic (no recursion, as in SPIR-V);
    - per function: the entry block comes first and has no predecessors,
      φ-instructions appear only at block starts, allocations only in the
      entry block, every block appears before all blocks it strictly
      dominates, φ-nodes have exactly one incoming value per predecessor,
      and every use is dominated by its definition;
    - full type checking of every instruction and terminator.

    Uses inside {e unreachable} blocks are only required to reference ids
    defined somewhere in the module (dominance rules are vacuous for dead
    code, as in SPIR-V) — the laxness that transformations on dead blocks
    rely on. *)

type error = {
  where : string;  (** e.g. ["function %12, block %15"] *)
  message : string;
}

val error_to_string : error -> string

val check : Module_ir.t -> (unit, error list) result
(** All validation errors, or [Ok ()] for a valid module. *)

val is_valid : Module_ir.t -> bool

val first_error : Module_ir.t -> string option
(** Rendering of the first error, for test assertions. *)
