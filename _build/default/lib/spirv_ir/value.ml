(** Runtime values of the reference interpreter. *)

type t =
  | VBool of bool
  | VInt of int32
  | VFloat of float
  | VComposite of t array
[@@deriving show { with_path = false }]

let rec equal a b =
  match (a, b) with
  | VBool x, VBool y -> Bool.equal x y
  | VInt x, VInt y -> Int32.equal x y
  | VFloat x, VFloat y ->
      (* NaN never arises (operations producing it are defined away), but be
         safe: compare representations so that equal renders are equal. *)
      Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | VComposite xs, VComposite ys ->
      Array.length xs = Array.length ys
      && (let ok = ref true in
          Array.iteri (fun i x -> if not (equal x ys.(i)) then ok := false) xs;
          !ok)
  | (VBool _ | VInt _ | VFloat _ | VComposite _), _ -> false

let rec approx_equal ~tolerance a b =
  match (a, b) with
  | VFloat x, VFloat y -> Float.abs (x -. y) <= tolerance
  | VComposite xs, VComposite ys ->
      Array.length xs = Array.length ys
      && (let ok = ref true in
          Array.iteri
            (fun i x -> if not (approx_equal ~tolerance x ys.(i)) then ok := false)
            xs;
          !ok)
  | _, _ -> equal a b

(** Functional update of a composite at a (possibly nested) index path. *)
let rec update_at_path v path x =
  match path with
  | [] -> x
  | i :: rest -> (
      match v with
      | VComposite elems ->
          let n = Array.length elems in
          let i = if i < 0 then 0 else if i >= n then n - 1 else i in
          let elems' = Array.copy elems in
          elems'.(i) <- update_at_path elems.(i) rest x;
          VComposite elems'
      | VBool _ | VInt _ | VFloat _ -> v)

(** Read a composite at an index path; out-of-range indices are clamped (the
    reference semantics is total; the validator rejects statically
    out-of-range constant indices, so clamping only matters for dynamically
    computed indices, which our language restricts to arrays). *)
let rec extract_at_path v path =
  match path with
  | [] -> v
  | i :: rest -> (
      match v with
      | VComposite elems ->
          let n = Array.length elems in
          let i = if i < 0 then 0 else if i >= n then n - 1 else i in
          extract_at_path elems.(i) rest
      | VBool _ | VInt _ | VFloat _ -> v)
