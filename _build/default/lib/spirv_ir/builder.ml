(** Imperative construction API for modules.

    The builder interns types and constants on demand, allocates fresh ids,
    and tracks the type of every id it creates so that convenience
    instruction emitters ([iadd], [load], ...) can infer result types.
    Blocks are emitted in the order they are started; the caller is
    responsible for respecting dominance order (the validator checks it). *)

type t = {
  mutable m : Module_ir.t;
  id_types : (Id.t, Id.t) Hashtbl.t;  (* id -> type id, for inference *)
}

let create () = { m = Module_ir.empty; id_types = Hashtbl.create 64 }

let module_ b = b.m

let finish b ~entry = { b.m with Module_ir.entry }

(* ------------------------------------------------------------------ *)
(* Types                                                               *)

let intern_ty b ty =
  let m, id = Module_ir.intern_type b.m ty in
  b.m <- m;
  id

let void_ty b = intern_ty b Ty.Void
let bool_ty b = intern_ty b Ty.Bool
let int_ty b = intern_ty b Ty.Int
let float_ty b = intern_ty b Ty.Float
let vector_ty b ~scalar ~size = intern_ty b (Ty.Vector (scalar, size))
let matrix_ty b ~column ~count = intern_ty b (Ty.Matrix (column, count))
let struct_ty b members = intern_ty b (Ty.Struct members)
let array_ty b ~elem ~len = intern_ty b (Ty.Array (elem, len))
let pointer_ty b sc pointee = intern_ty b (Ty.Pointer (sc, pointee))
let fn_ty b ~ret ~params = intern_ty b (Ty.Func (ret, params))

let vec2f b = vector_ty b ~scalar:(float_ty b) ~size:2
let vec3f b = vector_ty b ~scalar:(float_ty b) ~size:3
let vec4f b = vector_ty b ~scalar:(float_ty b) ~size:4

(* ------------------------------------------------------------------ *)
(* Constants                                                           *)

let register b id ty = Hashtbl.replace b.id_types id ty

let intern_const b ~ty value =
  let m, id = Module_ir.intern_constant b.m ~ty value in
  b.m <- m;
  register b id ty;
  id

let cbool b v = intern_const b ~ty:(bool_ty b) (Constant.Bool v)
let cint b v = intern_const b ~ty:(int_ty b) (Constant.Int (Int32.of_int v))
let cfloat b v = intern_const b ~ty:(float_ty b) (Constant.Float v)
let ccomposite b ~ty parts = intern_const b ~ty (Constant.Composite parts)
let cnull b ~ty = intern_const b ~ty Constant.Null

let cvec2f b x y = ccomposite b ~ty:(vec2f b) [ cfloat b x; cfloat b y ]
let cvec4f b x y z w =
  ccomposite b ~ty:(vec4f b) [ cfloat b x; cfloat b y; cfloat b z; cfloat b w ]

(* ------------------------------------------------------------------ *)
(* Globals                                                             *)

let global b sc ~pointee ~name ?init () =
  let ptr = pointer_ty b sc pointee in
  let m, id = Module_ir.add_global b.m ~ty:ptr ~name ~init in
  b.m <- m;
  register b id ptr;
  id

let uniform b ~pointee ~name = global b Ty.Uniform ~pointee ~name ()
let frag_coord b = global b Ty.Input ~pointee:(vec2f b) ~name:"gl_FragCoord" ()
let output_color b = global b Ty.Output ~pointee:(vec4f b) ~name:"_color" ()

(* ------------------------------------------------------------------ *)
(* Functions                                                           *)

type fn = {
  builder : t;
  fn_id : Id.t;
  fn_name : string;
  fn_type : Id.t;
  fn_params : Func.param list;
  mutable fn_control : Func.control;
  mutable done_blocks : Block.t list;  (* reversed *)
  mutable current_label : Id.t option;
  mutable current_instrs : Instr.t list;  (* reversed *)
  mutable hoisted : Instr.t list;  (* allocations destined for the entry block, reversed *)
}

let fresh b =
  let m, id = Module_ir.fresh b.m in
  b.m <- m;
  id

let begin_function b ~name ~ret ~params =
  let fnty = fn_ty b ~ret ~params in
  let fn_id = fresh b in
  register b fn_id fnty;
  let fn_params =
    List.map
      (fun param_ty ->
        let param_id = fresh b in
        register b param_id param_ty;
        { Func.param_id; Func.param_ty })
      params
  in
  let fn =
    {
      builder = b;
      fn_id;
      fn_name = name;
      fn_type = fnty;
      fn_params;
      fn_control = Func.CNone;
      done_blocks = [];
      current_label = None;
      current_instrs = [];
      hoisted = [];
    }
  in
  (fn, fn_id, List.map (fun (p : Func.param) -> p.Func.param_id) fn_params)

let set_control fn c = fn.fn_control <- c

let param_ids fn = List.map (fun (p : Func.param) -> p.Func.param_id) fn.fn_params

let new_label fn = fresh fn.builder

let start_block fn label =
  (match fn.current_label with
  | Some l ->
      invalid_arg
        (Printf.sprintf "Builder.start_block: block %s not terminated" (Id.to_string l))
  | None -> ());
  fn.current_label <- Some label;
  fn.current_instrs <- []

let terminate fn term =
  match fn.current_label with
  | None -> invalid_arg "Builder.terminate: no block in progress"
  | Some label ->
      let block =
        { Block.label; Block.instrs = List.rev fn.current_instrs; Block.terminator = term }
      in
      fn.done_blocks <- block :: fn.done_blocks;
      fn.current_label <- None;
      fn.current_instrs <- []

let push fn i = fn.current_instrs <- i :: fn.current_instrs

let current_label_exn fn =
  match fn.current_label with
  | Some l -> l
  | None -> invalid_arg "Builder.current_label_exn: no block in progress"

(** Rewrite the incoming value for predecessor [pred] of the φ-instruction
    whose result is [phi].  Needed to close loop back-edges: the latch value
    does not exist yet when the header φ is emitted. *)
let patch_phi fn ~phi ~pred ~value =
  let patch_instr (i : Instr.t) =
    match (i.Instr.result, i.Instr.op) with
    | Some r, Instr.Phi incoming when Id.equal r phi ->
        {
          i with
          Instr.op =
            Instr.Phi
              (List.map
                 (fun (v, b) -> if Id.equal b pred then (value, b) else (v, b))
                 incoming);
        }
    | _ -> i
  in
  fn.current_instrs <- List.map patch_instr fn.current_instrs;
  fn.done_blocks <-
    List.map
      (fun (b : Block.t) -> { b with Block.instrs = List.map patch_instr b.Block.instrs })
      fn.done_blocks

let instr fn ~ty op =
  let r = fresh fn.builder in
  register fn.builder r ty;
  push fn (Instr.make ~result:r ~ty op);
  r

let instr_void fn op = push fn (Instr.make_void op)

let end_function fn =
  (match fn.current_label with
  | Some l ->
      invalid_arg
        (Printf.sprintf "Builder.end_function: block %s not terminated" (Id.to_string l))
  | None -> ());
  let blocks =
    match List.rev fn.done_blocks with
    | [] -> []
    | entry :: rest ->
        { entry with Block.instrs = List.rev fn.hoisted @ entry.Block.instrs } :: rest
  in
  let f =
    {
      Func.id = fn.fn_id;
      Func.name = fn.fn_name;
      Func.fn_ty = fn.fn_type;
      Func.control = fn.fn_control;
      Func.params = fn.fn_params;
      Func.blocks;
    }
  in
  let b = fn.builder in
  b.m <- { b.m with Module_ir.functions = b.m.Module_ir.functions @ [ f ] };
  fn.fn_id

(* ------------------------------------------------------------------ *)
(* Typed convenience emitters                                          *)

let type_of fn id =
  match Hashtbl.find_opt fn.builder.id_types id with
  | Some t -> t
  | None -> (
      match Module_ir.type_of_id fn.builder.m id with
      | Some t -> t
      | None -> invalid_arg ("Builder.type_of: unknown id " ^ Id.to_string id))

let binop fn op a bv =
  let b = fn.builder in
  let is_cmp =
    match op with
    | Instr.IEqual | Instr.INotEqual | Instr.SLessThan | Instr.SLessThanEqual
    | Instr.SGreaterThan | Instr.SGreaterThanEqual | Instr.FOrdEqual
    | Instr.FOrdNotEqual | Instr.FOrdLessThan | Instr.FOrdLessThanEqual
    | Instr.FOrdGreaterThan | Instr.FOrdGreaterThanEqual ->
        true
    | _ -> false
  in
  let ty = if is_cmp then bool_ty b else type_of fn a in
  instr fn ~ty (Instr.Binop (op, a, bv))

let iadd fn a b = binop fn Instr.IAdd a b
let isub fn a b = binop fn Instr.ISub a b
let imul fn a b = binop fn Instr.IMul a b
let sdiv fn a b = binop fn Instr.SDiv a b
let smod fn a b = binop fn Instr.SMod a b
let fadd fn a b = binop fn Instr.FAdd a b
let fsub fn a b = binop fn Instr.FSub a b
let fmul fn a b = binop fn Instr.FMul a b
let fdiv fn a b = binop fn Instr.FDiv a b
let slt fn a b = binop fn Instr.SLessThan a b
let sle fn a b = binop fn Instr.SLessThanEqual a b
let sgt fn a b = binop fn Instr.SGreaterThan a b
let sge fn a b = binop fn Instr.SGreaterThanEqual a b
let ieq fn a b = binop fn Instr.IEqual a b
let ine fn a b = binop fn Instr.INotEqual a b
let flt fn a b = binop fn Instr.FOrdLessThan a b
let fle fn a b = binop fn Instr.FOrdLessThanEqual a b
let fgt fn a b = binop fn Instr.FOrdGreaterThan a b
let feq fn a b = binop fn Instr.FOrdEqual a b
let land_ fn a b = binop fn Instr.LogicalAnd a b
let lor_ fn a b = binop fn Instr.LogicalOr a b

let unop fn op a =
  let b = fn.builder in
  let ty =
    match op with
    | Instr.ConvertSToF -> float_ty b
    | Instr.ConvertFToS -> int_ty b
    | Instr.SNegate | Instr.FNegate | Instr.LogicalNot -> type_of fn a
  in
  instr fn ~ty (Instr.Unop (op, a))

let s_to_f fn a = unop fn Instr.ConvertSToF a
let f_to_s fn a = unop fn Instr.ConvertFToS a
let lnot fn a = unop fn Instr.LogicalNot a

let select fn c tv fv = instr fn ~ty:(type_of fn tv) (Instr.Select (c, tv, fv))

let composite fn ~ty parts = instr fn ~ty (Instr.CompositeConstruct parts)

let extract fn src path =
  let b = fn.builder in
  let src_ty = type_of fn src in
  match Module_ir.ty_at_path b.m src_ty path with
  | Some ty -> instr fn ~ty (Instr.CompositeExtract (src, path))
  | None -> invalid_arg "Builder.extract: invalid path"

let local_var fn ~pointee =
  let b = fn.builder in
  let ptr = pointer_ty b Ty.Function pointee in
  instr fn ~ty:ptr (Instr.Variable Ty.Function)

(** Allocation hoisted to the function's entry block (validators require all
    [OpVariable]s there); usable from any block under construction. *)
let hoisted_var fn ~pointee =
  let b = fn.builder in
  let ptr = pointer_ty b Ty.Function pointee in
  let r = fresh b in
  register b r ptr;
  fn.hoisted <- Instr.make ~result:r ~ty:ptr (Instr.Variable Ty.Function) :: fn.hoisted;
  r

let load fn p =
  let b = fn.builder in
  match Module_ir.find_type b.m (type_of fn p) with
  | Some (Ty.Pointer (_, pointee)) -> instr fn ~ty:pointee (Instr.Load p)
  | Some _ | None -> invalid_arg "Builder.load: not a pointer"

let store fn p v = instr_void fn (Instr.Store (p, v))

let access_chain fn base idxs =
  let b = fn.builder in
  match Module_ir.find_type b.m (type_of fn base) with
  | Some (Ty.Pointer (sc, pointee)) ->
      let rec walk t = function
        | [] -> t
        | idx :: rest -> (
            match Module_ir.find_type b.m t with
            | Some (Ty.Struct members) -> (
                match Module_ir.find_constant b.m idx with
                | Some { Module_ir.cd_value = Constant.Int k; _ } -> (
                    match List.nth_opt members (Int32.to_int k) with
                    | Some mem -> walk mem rest
                    | None -> invalid_arg "Builder.access_chain: struct index range")
                | Some _ | None ->
                    invalid_arg "Builder.access_chain: struct index must be constant")
            | Some (Ty.Vector (c, _)) | Some (Ty.Array (c, _)) -> walk c rest
            | Some (Ty.Matrix (col, _)) -> walk col rest
            | Some _ | None -> invalid_arg "Builder.access_chain: bad base type")
      in
      let final = walk pointee idxs in
      let ptr = pointer_ty b sc final in
      instr fn ~ty:ptr (Instr.AccessChain (base, idxs))
  | Some _ | None -> invalid_arg "Builder.access_chain: not a pointer"

let call fn callee args =
  let b = fn.builder in
  let callee_ty =
    match Hashtbl.find_opt b.id_types callee with
    | Some t -> Some t
    | None -> Module_ir.type_of_id b.m callee
  in
  match Option.bind callee_ty (Module_ir.find_type b.m) with
  | Some (Ty.Func (ret, _)) -> instr fn ~ty:ret (Instr.FunctionCall (callee, args))
  | Some _ | None -> invalid_arg "Builder.call: callee is not a function"

let phi fn ~ty incoming = instr fn ~ty (Instr.Phi incoming)

let copy fn x = instr fn ~ty:(type_of fn x) (Instr.CopyObject x)

(* Terminator shortcuts *)
let branch fn target = terminate fn (Block.Branch target)
let branch_cond fn c t f = terminate fn (Block.BranchConditional (c, t, f))
let ret fn = terminate fn Block.Return
let ret_value fn v = terminate fn (Block.ReturnValue v)
let kill fn = terminate fn Block.Kill
