(** Total evaluation of scalar/vector operations.

    The reference semantics is deliberately {e total}: integer division and
    modulo by zero yield 0, float division by zero yields 0.0, and conversion
    of non-finite floats yields 0.  This removes undefined behaviour from the
    language by construction, which is what entitles transformation-based
    testing to skip external UB-analysis tooling (paper, section 1). *)

exception Type_error of string

let type_error fmt = Printf.ksprintf (fun s -> raise (Type_error s)) fmt

let sdiv a b = if Int32.equal b 0l then 0l else Int32.div a b
let smod a b = if Int32.equal b 0l then 0l else Int32.rem a b
let fdiv a b = if Float.equal b 0.0 then 0.0 else a /. b

let fsanitize f = if Float.is_finite f then f else 0.0

let int_binop (op : Instr.binop) a b =
  match op with
  | Instr.IAdd -> Some (Int32.add a b)
  | Instr.ISub -> Some (Int32.sub a b)
  | Instr.IMul -> Some (Int32.mul a b)
  | Instr.SDiv -> Some (sdiv a b)
  | Instr.SMod -> Some (smod a b)
  | _ -> None

let float_binop (op : Instr.binop) a b =
  match op with
  | Instr.FAdd -> Some (fsanitize (a +. b))
  | Instr.FSub -> Some (fsanitize (a -. b))
  | Instr.FMul -> Some (fsanitize (a *. b))
  | Instr.FDiv -> Some (fsanitize (fdiv a b))
  | _ -> None

let int_cmp (op : Instr.binop) a b =
  let c = Int32.compare a b in
  match op with
  | Instr.IEqual -> Some (c = 0)
  | Instr.INotEqual -> Some (c <> 0)
  | Instr.SLessThan -> Some (c < 0)
  | Instr.SLessThanEqual -> Some (c <= 0)
  | Instr.SGreaterThan -> Some (c > 0)
  | Instr.SGreaterThanEqual -> Some (c >= 0)
  | _ -> None

let float_cmp (op : Instr.binop) a b =
  match op with
  | Instr.FOrdEqual -> Some (Float.equal a b)
  | Instr.FOrdNotEqual -> Some (not (Float.equal a b))
  | Instr.FOrdLessThan -> Some (a < b)
  | Instr.FOrdLessThanEqual -> Some (a <= b)
  | Instr.FOrdGreaterThan -> Some (a > b)
  | Instr.FOrdGreaterThanEqual -> Some (a >= b)
  | _ -> None

let bool_binop (op : Instr.binop) a b =
  match op with
  | Instr.LogicalAnd -> Some (a && b)
  | Instr.LogicalOr -> Some (a || b)
  | _ -> None

(** Evaluate a binop on scalar values; vectors are handled componentwise for
    arithmetic operations by {!eval_binop}. *)
let scalar_binop op (a : Value.t) (b : Value.t) : Value.t =
  match (a, b) with
  | Value.VInt x, Value.VInt y -> (
      match int_binop op x y with
      | Some r -> Value.VInt r
      | None -> (
          match int_cmp op x y with
          | Some r -> Value.VBool r
          | None -> type_error "binop %s on ints" (Instr.binop_name op)))
  | Value.VFloat x, Value.VFloat y -> (
      match float_binop op x y with
      | Some r -> Value.VFloat r
      | None -> (
          match float_cmp op x y with
          | Some r -> Value.VBool r
          | None -> type_error "binop %s on floats" (Instr.binop_name op)))
  | Value.VBool x, Value.VBool y -> (
      match bool_binop op x y with
      | Some r -> Value.VBool r
      | None -> type_error "binop %s on bools" (Instr.binop_name op))
  | _, _ -> type_error "binop %s: operand kind mismatch" (Instr.binop_name op)

let eval_binop op (a : Value.t) (b : Value.t) : Value.t =
  match (a, b) with
  | Value.VComposite xs, Value.VComposite ys when Array.length xs = Array.length ys ->
      Value.VComposite (Array.mapi (fun i x -> scalar_binop op x ys.(i)) xs)
  | _, _ -> scalar_binop op a b

let eval_unop (op : Instr.unop) (v : Value.t) : Value.t =
  let scalar v =
    match (op, v) with
    | Instr.SNegate, Value.VInt x -> Value.VInt (Int32.neg x)
    | Instr.FNegate, Value.VFloat x -> Value.VFloat (fsanitize (-.x))
    | Instr.LogicalNot, Value.VBool b -> Value.VBool (not b)
    | Instr.ConvertSToF, Value.VInt x -> Value.VFloat (Int32.to_float x)
    | Instr.ConvertFToS, Value.VFloat x ->
        let x = fsanitize x in
        let clamped =
          if x >= Int32.to_float Int32.max_int then Int32.max_int
          else if x <= Int32.to_float Int32.min_int then Int32.min_int
          else Int32.of_float x
        in
        Value.VInt clamped
    | _, _ -> type_error "unop %s: bad operand" (Instr.unop_name op)
  in
  match v with
  | Value.VComposite xs -> Value.VComposite (Array.map scalar xs)
  | Value.VBool _ | Value.VInt _ | Value.VFloat _ -> scalar v
