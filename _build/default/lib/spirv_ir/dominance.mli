(** Dominator trees, via the Cooper–Harvey–Kennedy iterative-intersection
    algorithm over reverse post-order.

    Dominance underpins both the validator's SSA rules (a use must be
    dominated by its definition; a block must precede the blocks it strictly
    dominates) and the availability analysis that transformation
    preconditions rely on.  Queries about unreachable blocks answer
    [false]/[None]: SPIR-V's dominance rules are vacuous for dead code, and
    the validator treats it accordingly. *)

type t

val compute : Cfg.t -> t

val idom : t -> Id.t -> Id.t option
(** Immediate dominator ([None] for the entry block and unreachable
    blocks). *)

val dominates : t -> Id.t -> Id.t -> bool
(** [dominates t a b]: every path from the entry to [b] passes through [a].
    Reflexive on reachable blocks; false if either block is unreachable. *)

val strictly_dominates : t -> Id.t -> Id.t -> bool
