(** The "basic blocks" language of section 2.1.

    Every block contains instructions of the form [x := y], [x := y1 + y2]
    or [print(y1)], where operands are variables or literals, and ends by
    branching unconditionally to a single successor, conditionally on a
    boolean variable, or halting. *)

type value =
  | Int of int
  | Bool of bool
[@@deriving show { with_path = false }, eq]

type operand =
  | Var of string
  | Int_lit of int
  | Bool_lit of bool
[@@deriving show { with_path = false }, eq]

type instr =
  | Assign of string * operand            (** x := y *)
  | Add of string * operand * operand     (** x := y1 + y2 *)
  | Print of operand                      (** print(y) *)
[@@deriving show { with_path = false }, eq]

type terminator =
  | Goto of string
  | Cond_goto of string * string * string  (** variable, true target, false target *)
  | Halt
[@@deriving show { with_path = false }, eq]

type block = {
  name : string;
  instrs : instr list;
  term : terminator;
}
[@@deriving show { with_path = false }, eq]

type program = {
  blocks : block list;
  entry : string;
}
[@@deriving show { with_path = false }, eq]

type input = (string * value) list

let find_block p name = List.find_opt (fun b -> String.equal b.name name) p.blocks

let block_names p = List.map (fun b -> b.name) p.blocks

let variables p =
  let of_operand = function Var v -> [ v ] | Int_lit _ | Bool_lit _ -> [] in
  List.concat_map
    (fun b ->
      List.concat_map
        (function
          | Assign (x, y) -> x :: of_operand y
          | Add (x, y1, y2) -> (x :: of_operand y1) @ of_operand y2
          | Print y -> of_operand y)
        b.instrs
      @ (match b.term with Cond_goto (v, _, _) -> [ v ] | Goto _ | Halt -> []))
    p.blocks
  |> List.sort_uniq String.compare

let replace_block p b =
  { p with blocks = List.map (fun b' -> if String.equal b'.name b.name then b else b') p.blocks }

let insert_block_after p ~after nb =
  let rec go = function
    | [] -> [ nb ]
    | b :: rest -> if String.equal b.name after then b :: nb :: rest else b :: go rest
  in
  { p with blocks = go p.blocks }

(** Fresh w.r.t. both block names and variables, as Table 1's side condition
    "f is fresh" requires. *)
let is_fresh p name =
  (not (List.mem name (block_names p))) && not (List.mem name (variables p))

(** Total instruction count, the size measure used in examples. *)
let size p = List.fold_left (fun acc b -> acc + List.length b.instrs + 1) 0 p.blocks

let to_string p =
  let operand = function
    | Var v -> v
    | Int_lit n -> string_of_int n
    | Bool_lit b -> string_of_bool b
  in
  let instr = function
    | Assign (x, y) -> Printf.sprintf "  %s := %s" x (operand y)
    | Add (x, y1, y2) -> Printf.sprintf "  %s := %s + %s" x (operand y1) (operand y2)
    | Print y -> Printf.sprintf "  print(%s)" (operand y)
  in
  let term = function
    | Goto t -> Printf.sprintf "  goto %s" t
    | Cond_goto (v, t, f) -> Printf.sprintf "  if %s goto %s else goto %s" v t f
    | Halt -> "  halt"
  in
  String.concat "\n"
    (List.map
       (fun b -> String.concat "\n" ((b.name ^ ":") :: List.map instr b.instrs @ [ term b.term ]))
       p.blocks)
