(** The transformation templates of Table 1, instantiating the generic
    framework of {!Tbct.Spec} for the basic-blocks language.

    A context is (program, input, facts); the only fact kind is "block [b]
    is dead".  Each template's precondition and effect follow Table 1
    literally, including the design flaws the paper points out in
    section 2.3 (SplitBlock's block+offset parameters, AddDeadBlock's fused
    true-variable) — reproducing those flaws is the point: the ablation
    benchmarks measure their cost. *)

module String_set = Set.Make (String)

type context = {
  program : Syntax.program;
  input : Syntax.input;
  dead_blocks : String_set.t;  (** the fact set: "block b is dead" *)
}

let initial_context program input =
  { program; input; dead_blocks = String_set.empty }

type t =
  | Split_block of string * int * string
      (** [Split_block (b, o, f)]: instructions from offset [o] of [b] move
          to new block [f] *)
  | Add_dead_block of string * string * string
      (** [Add_dead_block (b, f1, f2)]: new dead block [f1]; fresh variable
          [f2 := true] guards the branch *)
  | Add_load of string * int * string * string
      (** [Add_load (b, o, f, x)]: insert [f := x] at offset [o] *)
  | Add_store of string * int * string * string
      (** [Add_store (b, o, x1, x2)]: insert [x1 := x2] at offset [o];
          requires the "b is dead" fact *)
  | Change_rhs of string * int * string
      (** [Change_rhs (b, o, x)]: replace the right-hand side of the
          assignment at [b\[o\]] with [x], which must be guaranteed equal *)
[@@deriving show { with_path = false }, eq]

let type_id = function
  | Split_block _ -> "SplitBlock"
  | Add_dead_block _ -> "AddDeadBlock"
  | Add_load _ -> "AddLoad"
  | Add_store _ -> "AddStore"
  | Change_rhs _ -> "ChangeRHS"

(* "x and z are guaranteed to be equal at b[o]": we implement the guarantee
   the paper's example uses — [x] is an input variable never reassigned in
   the program, and [z] is a literal equal to its input value (or the same
   variable). *)
let guaranteed_equal ctx x z =
  let never_reassigned v =
    List.for_all
      (fun (b : Syntax.block) ->
        List.for_all
          (function
            | Syntax.Assign (y, _) | Syntax.Add (y, _, _) -> not (String.equal y v)
            | Syntax.Print _ -> true)
          b.Syntax.instrs)
      ctx.program.Syntax.blocks
  in
  match z with
  | Syntax.Var v -> String.equal v x
  | Syntax.Int_lit n ->
      never_reassigned x
      && List.assoc_opt x ctx.input = Some (Syntax.Int n)
  | Syntax.Bool_lit bv ->
      never_reassigned x
      && List.assoc_opt x ctx.input = Some (Syntax.Bool bv)

let precondition ctx t =
  let p = ctx.program in
  match t with
  | Split_block (b, o, f) -> (
      match Syntax.find_block p b with
      | Some blk -> o >= 0 && o <= List.length blk.Syntax.instrs && Syntax.is_fresh p f
      | None -> false)
  | Add_dead_block (b, f1, f2) -> (
      match Syntax.find_block p b with
      | Some blk -> (
          match blk.Syntax.term with
          | Syntax.Goto _ ->
              Syntax.is_fresh p f1 && Syntax.is_fresh p f2 && not (String.equal f1 f2)
          | Syntax.Cond_goto _ | Syntax.Halt -> false)
      | None -> false)
  | Add_load (b, o, f, x) -> (
      match Syntax.find_block p b with
      | Some blk ->
          o >= 0
          && o <= List.length blk.Syntax.instrs
          && Syntax.is_fresh p f
          && List.mem x (Syntax.variables p)
      | None -> false)
  | Add_store (b, o, x1, x2) -> (
      match Syntax.find_block p b with
      | Some blk ->
          String_set.mem b ctx.dead_blocks
          && o >= 0
          && o <= List.length blk.Syntax.instrs
          && List.mem x1 (Syntax.variables p)
          && List.mem x2 (Syntax.variables p)
      | None -> false)
  | Change_rhs (b, o, x) -> (
      match Syntax.find_block p b with
      | Some blk -> (
          match List.nth_opt blk.Syntax.instrs o with
          | Some (Syntax.Assign (_, z)) ->
              List.mem x (Syntax.variables p @ List.map fst ctx.input)
              && guaranteed_equal ctx x z
          | Some (Syntax.Add _ | Syntax.Print _) | None -> false)
      | None -> false)

let insert_at xs o x =
  let rec go i = function
    | rest when i = o -> x :: rest
    | [] -> [ x ] (* unreachable under the precondition *)
    | y :: rest -> y :: go (i + 1) rest
  in
  go 0 xs

let apply ctx t =
  let p = ctx.program in
  match t with
  | Split_block (b, o, f) ->
      let blk = Option.get (Syntax.find_block p b) in
      let before = List.filteri (fun i _ -> i < o) blk.Syntax.instrs in
      let after = List.filteri (fun i _ -> i >= o) blk.Syntax.instrs in
      let new_block = { Syntax.name = f; instrs = after; term = blk.Syntax.term } in
      let p = Syntax.replace_block p { blk with Syntax.instrs = before; term = Syntax.Goto f } in
      let p = Syntax.insert_block_after p ~after:b new_block in
      { ctx with program = p }
  | Add_dead_block (b, f1, f2) ->
      let blk = Option.get (Syntax.find_block p b) in
      let c = match blk.Syntax.term with Syntax.Goto c -> c | _ -> assert false in
      let dead = { Syntax.name = f1; instrs = []; term = Syntax.Goto c } in
      let p =
        Syntax.replace_block p
          {
            blk with
            Syntax.instrs = blk.Syntax.instrs @ [ Syntax.Assign (f2, Syntax.Bool_lit true) ];
            term = Syntax.Cond_goto (f2, c, f1);
          }
      in
      let p = Syntax.insert_block_after p ~after:b dead in
      { ctx with program = p; dead_blocks = String_set.add f1 ctx.dead_blocks }
  | Add_load (b, o, f, x) ->
      let blk = Option.get (Syntax.find_block p b) in
      let instrs = insert_at blk.Syntax.instrs o (Syntax.Assign (f, Syntax.Var x)) in
      { ctx with program = Syntax.replace_block p { blk with Syntax.instrs = instrs } }
  | Add_store (b, o, x1, x2) ->
      let blk = Option.get (Syntax.find_block p b) in
      let instrs = insert_at blk.Syntax.instrs o (Syntax.Assign (x1, Syntax.Var x2)) in
      { ctx with program = Syntax.replace_block p { blk with Syntax.instrs = instrs } }
  | Change_rhs (b, o, x) ->
      let blk = Option.get (Syntax.find_block p b) in
      let instrs =
        List.mapi
          (fun i instr ->
            if i = o then
              match instr with
              | Syntax.Assign (y, _) -> Syntax.Assign (y, Syntax.Var x)
              | other -> other
            else instr)
          blk.Syntax.instrs
      in
      { ctx with program = Syntax.replace_block p { blk with Syntax.instrs = instrs } }

module Lang = struct
  type nonrec context = context
  type transformation = t

  let type_id = type_id
  let precondition = precondition
  let apply = apply
end

module Apply = Tbct.Spec.Apply (Lang)
