lib/bb_lang/interp.pp.mli: Syntax
