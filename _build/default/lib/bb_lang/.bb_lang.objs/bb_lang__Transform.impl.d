lib/bb_lang/transform.pp.ml: List Option Ppx_deriving_runtime Set String Syntax Tbct
