lib/bb_lang/fuzzer.pp.mli: Transform
