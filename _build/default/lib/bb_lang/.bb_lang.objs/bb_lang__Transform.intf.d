lib/bb_lang/transform.pp.mli: Format Set Syntax Tbct
