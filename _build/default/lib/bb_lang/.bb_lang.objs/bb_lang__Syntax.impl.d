lib/bb_lang/syntax.pp.ml: List Ppx_deriving_runtime Printf String
