lib/bb_lang/compiler.pp.ml: Interp List String Syntax Transform
