lib/bb_lang/interp.pp.ml: List Syntax
