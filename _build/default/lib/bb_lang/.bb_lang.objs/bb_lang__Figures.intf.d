lib/bb_lang/figures.pp.mli: Syntax Transform
