lib/bb_lang/fuzzer.pp.ml: List Option Printf Syntax Tbct Transform
