lib/bb_lang/figures.pp.ml: Syntax Transform
