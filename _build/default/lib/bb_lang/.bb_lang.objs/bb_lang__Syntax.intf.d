lib/bb_lang/syntax.pp.mli: Format
