lib/bb_lang/compiler.pp.mli: Syntax Transform
