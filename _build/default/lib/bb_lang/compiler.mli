(** Tiny "compilers" for the basic-blocks language, hosting the section 2.1
    hypothetical bugs that the Figure 5 walkthrough and the deduplication
    demo reduce against. *)

type result =
  | Output of Syntax.value list
  | Crash of string  (** crash signature *)

val optimize : Syntax.program -> Syntax.program
(** Block-local constant propagation: resolves conditional branches whose
    variable provably holds a literal at the end of the block.
    Semantics-preserving. *)

val run_correct : Syntax.program -> Syntax.input -> result
(** Optimize, then execute faithfully: a correct implementation. *)

val run_buggy : Syntax.program -> Syntax.input -> result
(** The section 2.1 hypothetical bug: the backend cannot lower a conditional
    branch that survives constant propagation — triggered exactly when a
    dead block's guard has been obfuscated (ChangeRHS), the Figure 5
    scenario. *)

val run_buggy_scheduler : Syntax.program -> Syntax.input -> result
(** An independent second bug for the deduplication walkthrough: blocks with
    more than three instructions lose their last addition — triggered by
    the AddLoad/AddStore family piling instructions into a block. *)

val exhibits_bug : impl:(Syntax.program -> Syntax.input -> result) -> Transform.context -> bool
(** The Figure 1 oracle: the implementation faults on, or disagrees about,
    a transformed variant of a well-defined original. *)
