(** A small randomized fuzzer for the basic-blocks language — the "fuzzer"
    box of Figure 1 instantiated for section 2.1's teaching language.

    Repeatedly proposes random instantiations of the five Table 1 templates
    and keeps those whose preconditions hold.  Used by the examples and by
    the deduplication walkthrough of section 2.1 (the "weekend of fuzzing"
    scenario). *)

type config = {
  max_transformations : int;
  proposals_per_round : int;
}

let default_config = { max_transformations = 30; proposals_per_round = 4 }

let propose rng (ctx : Transform.context) =
  let p = ctx.Transform.program in
  let blocks = Syntax.block_names p in
  let vars = Syntax.variables p in
  let inputs = List.map fst ctx.Transform.input in
  let fresh prefix = Printf.sprintf "%s%d" prefix (Tbct.Rng.int rng 1_000_000) in
  let block = Tbct.Rng.choose rng blocks in
  let blk = Option.get (Syntax.find_block p block) in
  let offset = Tbct.Rng.int rng (List.length blk.Syntax.instrs + 1) in
  match Tbct.Rng.int rng 5 with
  | 0 -> Transform.Split_block (block, offset, fresh "blk")
  | 1 -> Transform.Add_dead_block (block, fresh "dead", fresh "guard")
  | 2 ->
      let x = Tbct.Rng.choose rng (vars @ inputs) in
      Transform.Add_load (block, offset, fresh "v", x)
  | 3 ->
      let x1 = Tbct.Rng.choose rng (vars @ inputs) in
      let x2 = Tbct.Rng.choose rng (vars @ inputs) in
      Transform.Add_store (block, offset, x1, x2)
  | _ ->
      let x = Tbct.Rng.choose rng (vars @ inputs) in
      Transform.Change_rhs (block, offset, x)

type result = {
  final : Transform.context;
  transformations : Transform.t list;
}

let run ?(config = default_config) ~seed (ctx : Transform.context) : result =
  let rng = Tbct.Rng.make seed in
  let rec go ctx acc n =
    if n >= config.max_transformations then (ctx, acc)
    else begin
      let candidates =
        List.init config.proposals_per_round (fun _ -> propose rng ctx)
      in
      match List.find_opt (Transform.precondition ctx) candidates with
      | Some t -> go (Transform.apply ctx t) (t :: acc) (n + 1)
      | None -> go ctx acc (n + 1)
    end
  in
  let final, rev = go ctx [] 0 in
  { final; transformations = List.rev rev }
