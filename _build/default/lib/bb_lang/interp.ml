(** Reference semantics of the basic-blocks language.

    Execution starts at the entry block with the environment given by the
    input and collects the values printed.  Semantics is total: reading an
    undefined variable yields [Int 0], a conditional on an integer treats
    non-zero as true, and a step budget bounds execution (programs exceeding
    it are not well-defined, per Definition 2.1). *)

type outcome = (Syntax.value list, string) result

let truthy = function Syntax.Bool b -> b | Syntax.Int n -> n <> 0

let eval env = function
  | Syntax.Var v -> (
      match List.assoc_opt v env with Some x -> x | None -> Syntax.Int 0)
  | Syntax.Int_lit n -> Syntax.Int n
  | Syntax.Bool_lit b -> Syntax.Bool b

let as_int = function Syntax.Int n -> n | Syntax.Bool b -> if b then 1 else 0

let default_step_limit = 10_000

let run ?(step_limit = default_step_limit) (p : Syntax.program) (input : Syntax.input) :
    outcome =
  let rec exec steps env output block =
    if steps > step_limit then Error "step limit exceeded"
    else
      let env, output =
        List.fold_left
          (fun (env, output) i ->
            match i with
            | Syntax.Assign (x, y) -> ((x, eval env y) :: env, output)
            | Syntax.Add (x, y1, y2) ->
                ((x, Syntax.Int (as_int (eval env y1) + as_int (eval env y2))) :: env, output)
            | Syntax.Print y -> (env, eval env y :: output))
          (env, output) block.Syntax.instrs
      in
      let continue target =
        match Syntax.find_block p target with
        | Some b -> exec (steps + List.length block.Syntax.instrs + 1) env output b
        | None -> Error ("branch to unknown block " ^ target)
      in
      match block.Syntax.term with
      | Syntax.Goto t -> continue t
      | Syntax.Cond_goto (v, t, f) ->
          if truthy (eval env (Syntax.Var v)) then continue t else continue f
      | Syntax.Halt -> Ok (List.rev output)
  in
  match Syntax.find_block p p.Syntax.entry with
  | Some entry -> exec 0 input [] entry
  | None -> Error ("unknown entry block " ^ p.Syntax.entry)

let well_defined ?step_limit p input =
  match run ?step_limit p input with Ok _ -> true | Error _ -> false
