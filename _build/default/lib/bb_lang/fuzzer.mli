(** A small randomized fuzzer for the basic-blocks language — the "fuzzer"
    box of Figure 1 instantiated for the section 2.1 teaching language.
    Used by the examples and by the "weekend of fuzzing" deduplication
    walkthrough. *)

type config = {
  max_transformations : int;
  proposals_per_round : int;  (** random candidates tried per round *)
}

val default_config : config

type result = {
  final : Transform.context;
  transformations : Transform.t list;
      (** the recorded sequence; replaying it with {!Transform.Apply}
          reproduces [final] *)
}

val run : ?config:config -> seed:int -> Transform.context -> result
(** Deterministic in the seed; the result's program prints the same output
    as the original (property-tested). *)
