(** The exact programs and transformation sequences of Figures 4 and 5.

    The original program prints 6 on the input i = 1, j = 2, k = true; the
    five transformations T1..T5 build the fully transformed variant of
    Figure 4; delta-debugging the sequence against the buggy compiler of
    {!Compiler} recovers the minimized sequence [T1; T2; T5] of Figure 5. *)

let original : Syntax.program =
  {
    Syntax.entry = "a";
    blocks =
      [
        {
          Syntax.name = "a";
          instrs =
            [
              Syntax.Add ("s", Syntax.Var "i", Syntax.Var "j");
              Syntax.Add ("t", Syntax.Var "s", Syntax.Var "s");
              Syntax.Print (Syntax.Var "t");
            ];
          term = Syntax.Halt;
        };
      ];
  }

let input : Syntax.input =
  [ ("i", Syntax.Int 1); ("j", Syntax.Int 2); ("k", Syntax.Bool true) ]

let t1 = Transform.Split_block ("a", 1, "b")
let t2 = Transform.Add_dead_block ("a", "c", "u")
let t3 = Transform.Add_store ("c", 0, "s", "i")
let t4 = Transform.Add_load ("b", 0, "v", "s")
let t5 = Transform.Change_rhs ("a", 1, "k")

let sequence = [ t1; t2; t3; t4; t5 ]

(** The minimized sequence the reducer should find (Figure 5). *)
let minimized = [ t1; t2; t5 ]

let initial_context () = Transform.initial_context original input

let transformed_context () =
  Transform.Apply.sequence_ctx (initial_context ()) sequence
