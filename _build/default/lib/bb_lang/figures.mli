(** The exact programs and transformation sequences of Figures 4 and 5.

    {!original} prints 6 on {!input} (i = 1, j = 2, k = true); T1..T5 build
    the fully transformed variant of Figure 4; delta-debugging {!sequence}
    against {!Compiler.run_buggy} recovers {!minimized} = [T1; T2; T5],
    which is Figure 5. *)

val original : Syntax.program
val input : Syntax.input

val t1 : Transform.t  (** SplitBlock(a, 1, b) *)
val t2 : Transform.t  (** AddDeadBlock(a, c, u) *)
val t3 : Transform.t  (** AddStore(c, 0, s, i) *)
val t4 : Transform.t  (** AddLoad(b, 0, v, s) *)
val t5 : Transform.t  (** ChangeRHS(a, 1, k) *)

val sequence : Transform.t list
(** [\[t1; t2; t3; t4; t5\]] — Figure 4. *)

val minimized : Transform.t list
(** [\[t1; t2; t5\]] — the 1-minimal sequence of Figure 5. *)

val initial_context : unit -> Transform.context
val transformed_context : unit -> Transform.context
(** {!initial_context} with the full {!sequence} applied. *)
