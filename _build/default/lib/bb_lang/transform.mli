(** The five transformation templates of Table 1, instantiating the generic
    framework ({!Tbct.Spec}) for the basic-blocks language.

    A context is (program, input, facts); the only fact kind is "block [b]
    is dead".  Preconditions and effects follow Table 1 literally —
    including the design flaws section 2.3 points out (SplitBlock's
    block+offset parameters, AddDeadBlock's fused true-variable), because
    reproducing those flaws is part of reproducing the paper's argument. *)

module String_set : Set.S with type elt = string

type context = {
  program : Syntax.program;
  input : Syntax.input;
  dead_blocks : String_set.t;  (** the fact set: "block b is dead" *)
}

val initial_context : Syntax.program -> Syntax.input -> context

type t =
  | Split_block of string * int * string
      (** [Split_block (b, o, f)]: instructions from offset [o] of [b] move
          to new block [f]; [b] branches to [f] *)
  | Add_dead_block of string * string * string
      (** [Add_dead_block (b, f1, f2)]: new dead block [f1]; fresh variable
          [f2 := true] guards the branch; records "f1 is dead" *)
  | Add_load of string * int * string * string
      (** [Add_load (b, o, f, x)]: insert [f := x] at offset [o], [f] fresh *)
  | Add_store of string * int * string * string
      (** [Add_store (b, o, x1, x2)]: insert [x1 := x2] at offset [o];
          requires the "b is dead" fact *)
  | Change_rhs of string * int * string
      (** [Change_rhs (b, o, x)]: replace the right-hand side of the
          assignment at [b\[o\]] with [x], which must be guaranteed equal *)

val pp : Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool

val type_id : t -> string
(** The Type component of Definition 2.4 — what deduplication compares. *)

val precondition : context -> t -> bool
val apply : context -> t -> context
(** Only call under {!precondition}; preserves the program's printed
    output (property-tested). *)

(** The {!Tbct.Spec} instantiation and its derived [Apply] operations
    (Definition 2.5: sequences skip transformations whose preconditions
    fail). *)
module Lang : sig
  type nonrec context = context
  type transformation = t

  val type_id : transformation -> string
  val precondition : context -> transformation -> bool
  val apply : context -> transformation -> context
end

module Apply : module type of Tbct.Spec.Apply (Lang)
