(** Reference semantics of the basic-blocks language.

    Execution starts at the entry block with the environment given by the
    input and collects the printed values — the program's result in
    Definition 2.1.  Semantics is total up to the step budget: reading an
    undefined variable yields [Int 0] and a conditional on an integer treats
    non-zero as true, so well-formed programs have no undefined behaviour
    (the property Theorem 2.6 needs). *)

type outcome = (Syntax.value list, string) result

val default_step_limit : int

val run : ?step_limit:int -> Syntax.program -> Syntax.input -> outcome
(** [Error] on branch-to-unknown-block or step-limit exhaustion. *)

val well_defined : ?step_limit:int -> Syntax.program -> Syntax.input -> bool
(** Whether the (program, input) pair may serve as an original test
    (Definition 2.3). *)
