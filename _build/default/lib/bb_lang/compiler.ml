(** A tiny "compiler" for the basic-blocks language, with the hypothetical
    bug of section 2.1 built in.

    The compiler performs a constant-propagation pass that rewrites a
    conditional branch to an unconditional one when the condition variable
    was assigned a literal [true]/[false] earlier in the same block.  The
    hypothetical bug lives in the backend: lowering a conditional branch
    that {e survives} simplification fails with an internal error.  Thus the
    bug triggers exactly when a program contains a conditional branch whose
    condition the compiler cannot resolve — e.g. after the fact that a block
    is dead has been obfuscated via ChangeRHS, the scenario of Figure 5. *)

type result =
  | Output of Syntax.value list
  | Crash of string  (** crash signature *)

(* Constant propagation, block-local: resolve Cond_goto whose variable holds
   a known literal at the end of the block. *)
let simplify_block (b : Syntax.block) =
  match b.Syntax.term with
  | Syntax.Cond_goto (v, t, f) -> (
      let last_literal =
        List.fold_left
          (fun acc i ->
            match i with
            | Syntax.Assign (x, Syntax.Bool_lit bv) when String.equal x v -> Some bv
            | Syntax.Assign (x, _) | Syntax.Add (x, _, _) when String.equal x v -> None
            | Syntax.Assign _ | Syntax.Add _ | Syntax.Print _ -> acc)
          None b.Syntax.instrs
      in
      match last_literal with
      | Some true -> { b with Syntax.term = Syntax.Goto t }
      | Some false -> { b with Syntax.term = Syntax.Goto f }
      | None -> b)
  | Syntax.Goto _ | Syntax.Halt -> b

let optimize (p : Syntax.program) =
  { p with Syntax.blocks = List.map simplify_block p.Syntax.blocks }

(* The correct implementation: optimize, then run the reference semantics
   (the optimization above is semantics-preserving). *)
let run_correct p input =
  match Interp.run (optimize p) input with
  | Ok output -> Output output
  | Error msg -> Crash ("runtime: " ^ msg)

(* The buggy implementation: the backend cannot lower a surviving
   conditional branch. *)
let run_buggy p input =
  let optimized = optimize p in
  let surviving_cond =
    List.exists
      (fun (b : Syntax.block) ->
        match b.Syntax.term with
        | Syntax.Cond_goto _ -> true
        | Syntax.Goto _ | Syntax.Halt -> false)
      optimized.Syntax.blocks
  in
  if surviving_cond then
    Crash "internal error: cannot lower non-constant conditional branch"
  else
    match Interp.run optimized input with
    | Ok output -> Output output
    | Error msg -> Crash ("runtime: " ^ msg)

(* A second, independent bug for the deduplication walkthrough: the
   "instruction scheduler" mis-schedules blocks containing more than three
   instructions and loses the last addition in them.  Triggered by
   AddLoad/AddStore piling instructions into one block — a different
   transformation family from the conditional-lowering crash, so Figure 6
   should separate the two. *)
let run_buggy_scheduler p input =
  let optimized = optimize p in
  let corrupt_block (b : Syntax.block) =
    if List.length b.Syntax.instrs > 3 then begin
      let last_add =
        List.fold_left
          (fun (i, found) instr ->
            match instr with Syntax.Add _ -> (i + 1, Some i) | _ -> (i + 1, found))
          (0, None) b.Syntax.instrs
        |> snd
      in
      match last_add with
      | None -> b
      | Some drop ->
          { b with Syntax.instrs = List.filteri (fun i _ -> i <> drop) b.Syntax.instrs }
    end
    else b
  in
  let corrupted =
    { optimized with Syntax.blocks = List.map corrupt_block optimized.Syntax.blocks }
  in
  match Interp.run corrupted input with
  | Ok output -> Output output
  | Error msg -> Crash ("runtime: " ^ msg)

(** The oracle of Figure 1: an implementation is caught out when it faults
    on, or disagrees about, a transformed variant of a well-defined
    original. *)
let exhibits_bug ~impl (ctx : Transform.context) =
  match Interp.run ctx.Transform.program ctx.Transform.input with
  | Error _ -> false (* not well-defined: not a usable test *)
  | Ok expected -> (
      match impl ctx.Transform.program ctx.Transform.input with
      | Crash _ -> true
      | Output actual -> actual <> expected)
