(** The "basic blocks" language of section 2.1 of the paper.

    Every block contains instructions of the form [x := y], [x := y1 + y2]
    or [print(y1)], where operands are variables or literals, and ends by
    branching unconditionally to a single successor, conditionally on a
    boolean variable, or halting.  The language exists to make the formal
    framework concrete: Table 1's five transformation templates are defined
    over it ({!Transform}), and Figures 4 and 5 replay on it verbatim
    ({!Figures}). *)

type value = Int of int | Bool of bool

val pp_value : Format.formatter -> value -> unit
val show_value : value -> string
val equal_value : value -> value -> bool

type operand = Var of string | Int_lit of int | Bool_lit of bool

val pp_operand : Format.formatter -> operand -> unit
val show_operand : operand -> string
val equal_operand : operand -> operand -> bool

type instr =
  | Assign of string * operand         (** x := y *)
  | Add of string * operand * operand  (** x := y1 + y2 *)
  | Print of operand                   (** print(y) *)

val pp_instr : Format.formatter -> instr -> unit
val show_instr : instr -> string
val equal_instr : instr -> instr -> bool

type terminator =
  | Goto of string
  | Cond_goto of string * string * string
      (** variable, true target, false target *)
  | Halt

val pp_terminator : Format.formatter -> terminator -> unit
val show_terminator : terminator -> string
val equal_terminator : terminator -> terminator -> bool

type block = { name : string; instrs : instr list; term : terminator }

val pp_block : Format.formatter -> block -> unit
val show_block : block -> string
val equal_block : block -> block -> bool

type program = { blocks : block list; entry : string }

val pp_program : Format.formatter -> program -> unit
val show_program : program -> string
val equal_program : program -> program -> bool

type input = (string * value) list

val find_block : program -> string -> block option
val block_names : program -> string list

val variables : program -> string list
(** Every variable read or written anywhere in the program, sorted. *)

val replace_block : program -> block -> program
val insert_block_after : program -> after:string -> block -> program

val is_fresh : program -> string -> bool
(** Fresh with respect to both block names and variables — Table 1's
    "f is fresh" side condition. *)

val size : program -> int
(** Instruction count, terminators included. *)

val to_string : program -> string
(** Pretty-print in the notation of Figure 4. *)
