(** The fleet daemon's event loop (see the interface). *)

module Jobs = Tbct_store.Jobs

type client = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (* accumulated partial line *)
  mutable attached : string option;  (* job id this client streams *)
  mutable alive : bool;
}

type srv = {
  sched : Scheduler.t;
  listen_fd : Unix.file_descr;
  mutable clients : client list;
  (* serializes socket writes: worker domains stream events while the
     loop thread answers requests *)
  send_mutex : Mutex.t;
  mutable draining : bool;
  mutable stopping : bool;
  tick : float;
}

(* ---------- writing ---------- *)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      let w = Unix.write fd b off (n - off) in
      go (off + w)
  in
  go 0

(* A dead peer must not take the daemon down: EPIPE (SIGPIPE is ignored)
   and friends just mark the client for reaping. *)
let send srv c line =
  if c.alive then
    Mutex.protect srv.send_mutex (fun () ->
        try write_all c.fd (line ^ "\n")
        with Unix.Unix_error _ | Sys_error _ -> c.alive <- false)

let send_json srv c v = send srv c (Json.to_string v)

(* ---------- JSON views ---------- *)

let job_json j =
  Json.Obj
    [
      ("id", Json.Str (Scheduler.id j));
      ("state", Json.Str (Jobs.state_to_string (Scheduler.state j)));
      ("tool", Json.Str (Scheduler.spec j).Jobs.tool);
      ("seeds", Json.Int (Scheduler.spec j).Jobs.seeds);
      ("seeds_done", Json.Int (Scheduler.seeds_done j));
      ( "targets",
        Json.List
          (List.map (fun t -> Json.Str t) (Scheduler.spec j).Jobs.targets) );
      ("weights", Json.Str (Scheduler.spec j).Jobs.weights);
      ("tv", Json.Bool (Scheduler.spec j).Jobs.tv);
      ("hits", Json.Int (Scheduler.hits_found j));
      ("new_signatures", Json.Int (Scheduler.new_signatures j));
      ("runs_executed", Json.Int (Scheduler.runs_executed j));
      ("memo_hits", Json.Int (Scheduler.memo_hits j));
      ("cross_memo_hits", Json.Int (Scheduler.cross_memo_hits j));
      ("slices", Json.Int (Scheduler.slices j));
      ( "tv_abstains",
        Json.Obj
          (List.map
             (fun (k, v) -> (k, Json.Int v))
             (Scheduler.tv_abstains j)) );
      ( "error",
        match Scheduler.last_error j with
        | Some e -> Json.Str e
        | None -> Json.Null );
    ]

let engine_json (s : Harness.Engine.stats) =
  Json.Obj
    [
      ("runs_executed", Json.Int s.Harness.Engine.runs_executed);
      ("cache_hits", Json.Int s.Harness.Engine.cache_hits);
      ("baseline_hits", Json.Int s.Harness.Engine.baseline_hits);
      ("opt_runs", Json.Int s.Harness.Engine.opt_runs);
      ("opt_hits", Json.Int s.Harness.Engine.opt_hits);
      ("store_hits", Json.Int s.Harness.Engine.store_hits);
      ("store_writes", Json.Int s.Harness.Engine.store_writes);
      ("tv_checks", Json.Int s.Harness.Engine.tv_checks);
      ("tv_hits", Json.Int s.Harness.Engine.tv_hits);
      ("compiles", Json.Int s.Harness.Engine.compiles);
      ("compile_hits", Json.Int s.Harness.Engine.compile_hits);
      ("memo_entries", Json.Int s.Harness.Engine.memo_entries);
      ("memo_evictions", Json.Int s.Harness.Engine.memo_evictions);
      ("runs_saved", Json.Int s.Harness.Engine.runs_saved);
      ("hit_rate", Json.Float s.Harness.Engine.hit_rate);
      ("execute_wall", Json.Float s.Harness.Engine.execute_wall);
      ( "counters",
        Json.Obj
          (List.map
             (fun (k, v) -> (k, Json.Int v))
             (List.sort
                (fun (a, _) (b, _) -> String.compare a b)
                s.Harness.Engine.counters)) );
    ]

let pool_json pool =
  Json.Obj
    [
      ("workers", Json.Int (Harness.Pool.workers pool));
      ( "per_worker",
        Json.List
          (Array.to_list
             (Array.map
                (fun (w : Harness.Pool.worker_stats) ->
                  Json.Obj
                    [
                      ("tasks", Json.Int w.Harness.Pool.ws_tasks);
                      ("steals", Json.Int w.Harness.Pool.ws_steals);
                    ])
                (Harness.Pool.stats pool))) );
    ]

let daemon_json srv pool =
  Protocol.ok
    [
      ("jobs", Json.List (List.map job_json (Scheduler.jobs srv.sched)));
      ( "cross_job_memo_hits",
        Json.Int (Scheduler.cross_job_memo_hits srv.sched) );
      ("draining", Json.Bool srv.draining);
      ("engine", engine_json (Harness.Engine.stats (Scheduler.engine srv.sched)));
      ("pool", pool_json pool);
    ]

(* ---------- event streaming ---------- *)

let event_json = function
  | Scheduler.Submitted j ->
      (Scheduler.id j, Json.Obj [ ("event", Json.Str "submitted") ])
  | Scheduler.Started j ->
      (Scheduler.id j, Json.Obj [ ("event", Json.Str "started") ])
  | Scheduler.Seed_done (j, seed, nhits) ->
      ( Scheduler.id j,
        Json.Obj
          [
            ("event", Json.Str "seed");
            ("seed", Json.Int seed);
            ("hits", Json.Int nhits);
            ("seeds_done", Json.Int (Scheduler.seeds_done j));
            ("seeds", Json.Int (Scheduler.spec j).Jobs.seeds);
          ] )
  | Scheduler.Hit_found (j, h, is_new) ->
      ( Scheduler.id j,
        Json.Obj
          [
            ("event", Json.Str "hit");
            ("line", Json.Str (Harness.Persist.hit_line h));
            ("new_signature", Json.Bool is_new);
          ] )
  | Scheduler.Finished j ->
      (Scheduler.id j, Json.Obj [ ("event", Json.Str "finished") ])
  | Scheduler.Halted j ->
      ( Scheduler.id j,
        Json.Obj
          [
            ("event", Json.Str "halted");
            ( "error",
              match Scheduler.last_error j with
              | Some e -> Json.Str e
              | None -> Json.Null );
          ] )

let end_event j =
  Json.Obj
    [
      ("event", Json.Str "end");
      ("state", Json.Str (Jobs.state_to_string (Scheduler.state j)));
    ]

let broadcast srv ev =
  let jid, payload = event_json ev in
  let line = Json.to_string (match payload with
    | Json.Obj fields -> Json.Obj (("job", Json.Str jid) :: fields)
    | v -> v)
  in
  List.iter
    (fun c ->
      if c.alive && c.attached = Some jid then begin
        send srv c line;
        (* terminal event: close the stream so the client's read loop
           ends, then the connection is back to request/reply *)
        match ev with
        | Scheduler.Finished j | Scheduler.Halted j ->
            send_json srv c (end_event j);
            c.attached <- None
        | _ -> ()
      end)
    srv.clients

(* ---------- request handling ---------- *)

let handle_request srv pool c req =
  match req with
  | Protocol.Ping -> send_json srv c (Protocol.ok [ ("pong", Json.Bool true) ])
  | Protocol.Submit spec ->
      if srv.draining then
        send_json srv c (Protocol.error "daemon is draining")
      else (
        match Scheduler.submit srv.sched spec with
        | Ok j ->
            send_json srv c
              (Protocol.ok [ ("job", Json.Str (Scheduler.id j)) ])
        | Error msg -> send_json srv c (Protocol.error msg))
  | Protocol.Status None -> send_json srv c (daemon_json srv pool)
  | Protocol.Status (Some id) -> (
      match Scheduler.job srv.sched ~id with
      | Some j -> send_json srv c (Protocol.ok [ ("job", job_json j) ])
      | None ->
          send_json srv c (Protocol.error (Printf.sprintf "no such job %S" id))
      )
  | Protocol.Jobs ->
      send_json srv c
        (Protocol.ok
           [ ("jobs", Json.List (List.map job_json (Scheduler.jobs srv.sched))) ])
  | Protocol.Attach id -> (
      match Scheduler.job srv.sched ~id with
      | None ->
          send_json srv c (Protocol.error (Printf.sprintf "no such job %S" id))
      | Some j -> (
          send_json srv c (Protocol.ok [ ("job", job_json j) ]);
          match Scheduler.state j with
          | Jobs.Done | Jobs.Cancelled -> send_json srv c (end_event j)
          | Jobs.Queued | Jobs.Running -> c.attached <- Some id))
  | Protocol.Hits id -> (
      match Scheduler.job srv.sched ~id with
      | None ->
          send_json srv c (Protocol.error (Printf.sprintf "no such job %S" id))
      | Some j -> (
          match Scheduler.hits srv.sched j with
          | Error msg -> send_json srv c (Protocol.error msg)
          | Ok (hits, completed) ->
              send_json srv c
                (Protocol.ok
                   [
                     ("completed", Json.Bool completed);
                     ( "hits",
                       Json.List
                         (List.map
                            (fun h ->
                              Json.Str (Harness.Persist.hit_line h))
                            hits) );
                   ])))
  | Protocol.Cancel id -> (
      match Scheduler.cancel srv.sched ~id with
      | Ok () -> send_json srv c (Protocol.ok [])
      | Error msg -> send_json srv c (Protocol.error msg))
  | Protocol.Drain ->
      srv.draining <- true;
      send_json srv c (Protocol.ok [ ("draining", Json.Bool true) ])
  | Protocol.Shutdown ->
      send_json srv c (Protocol.ok [ ("stopping", Json.Bool true) ]);
      srv.stopping <- true;
      Scheduler.interrupt srv.sched

let handle_line srv pool c line =
  if String.trim line <> "" then
    match Protocol.parse_request line with
    | Ok req -> handle_request srv pool c req
    | Error msg -> send_json srv c (Protocol.error msg)

(* Drain whatever bytes are ready into the client's line buffer and
   process every complete line. *)
let read_chunk srv pool c =
  let chunk = Bytes.create 4096 in
  match Unix.read c.fd chunk 0 (Bytes.length chunk) with
  | 0 -> c.alive <- false
  | n ->
      Buffer.add_subbytes c.buf chunk 0 n;
      let data = Buffer.contents c.buf in
      Buffer.clear c.buf;
      let parts = String.split_on_char '\n' data in
      let rec go = function
        | [] -> ()
        | [ tail ] -> Buffer.add_string c.buf tail  (* partial line *)
        | line :: rest ->
            handle_line srv pool c line;
            go rest
      in
      go parts
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error _ -> c.alive <- false

(* ---------- the loop ---------- *)

let reap srv =
  let dead, alive = List.partition (fun c -> not c.alive) srv.clients in
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) dead;
  srv.clients <- alive

let poll_io srv pool timeout =
  let fds = srv.listen_fd :: List.map (fun c -> c.fd) srv.clients in
  let readable, _, _ =
    try Unix.select fds [] [] timeout
    with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
  in
  if List.mem srv.listen_fd readable then begin
    match Unix.accept srv.listen_fd with
    | fd, _ ->
        srv.clients <-
          srv.clients
          @ [ { fd; buf = Buffer.create 256; attached = None; alive = true } ]
    | exception Unix.Unix_error _ -> ()
  end;
  List.iter
    (fun c -> if List.mem c.fd readable then read_chunk srv pool c)
    srv.clients;
  reap srv

let loop srv pool =
  let finished = ref false in
  while not !finished do
    let timeout =
      if Scheduler.runnable srv.sched && not srv.stopping then 0.0
      else srv.tick
    in
    poll_io srv pool timeout;
    if srv.stopping || Scheduler.interrupted srv.sched then finished := true
    else if Scheduler.runnable srv.sched then
      ignore (Scheduler.step srv.sched : [ `Idle | `Sliced of _ | `Finished of _ | `Halted of _ ])
    else if srv.draining then finished := true
  done

(* ---------- entry point ---------- *)

let bind_socket path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (* a stale socket file from a dead daemon would make bind fail *)
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  match
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 16
  with
  | () -> Ok fd
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot bind socket %s: %s" path
           (Unix.error_message e))

let run ?(fsync = false) ?(quantum = 8) ?(tick = 0.2) ~root ~socket ~domains
    () =
  match bind_socket socket with
  | Error _ as e -> e
  | Ok listen_fd ->
      Fun.protect
        ~finally:(fun () ->
          (try Unix.close listen_fd with Unix.Unix_error _ -> ());
          try Unix.unlink socket with Unix.Unix_error _ -> ())
        (fun () ->
          Harness.Pool.with_pool ~workers:domains (fun pool ->
              (* the scheduler needs the event callback at create time and
                 the callback needs the server record: tie the knot *)
              let srv_ref = ref None in
              let on_event ev =
                match !srv_ref with
                | Some srv -> broadcast srv ev
                | None -> ()
              in
              let sched =
                Scheduler.create ~fsync ~quantum ~on_event ~root ~pool ()
              in
              let srv =
                {
                  sched;
                  listen_fd;
                  clients = [];
                  send_mutex = Mutex.create ();
                  draining = false;
                  stopping = false;
                  tick;
                }
              in
              srv_ref := Some srv;
              (* EPIPE over SIGPIPE: a dead client must not kill the fleet *)
              Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
              let interrupt _ = Scheduler.interrupt sched in
              Sys.set_signal Sys.sigint (Sys.Signal_handle interrupt);
              Sys.set_signal Sys.sigterm (Sys.Signal_handle interrupt);
              Fun.protect
                ~finally:(fun () ->
                  Scheduler.close sched;
                  List.iter
                    (fun c ->
                      try Unix.close c.fd with Unix.Unix_error _ -> ())
                    srv.clients)
                (fun () -> loop srv pool);
              Ok ()))
