(** Client side of the daemon protocol: connect, one-line request/reply,
    and event streaming for [attach].  Used by the [tbct] client commands
    and the service tests. *)

type conn

val connect : path:string -> (conn, string) result

val request : conn -> Protocol.request -> (Json.t, string) result
(** Send one request, read one reply line.  [Error] on a dropped
    connection or unparseable reply. *)

val stream :
  conn -> Protocol.request -> on_event:(Json.t -> unit) -> (Json.t, string) result
(** Send an [Attach] request and feed every event line to [on_event] until
    the server's terminal [{"event": "end"}] line, which is returned.  The
    initial [ok] reply (the job snapshot) is fed to [on_event] too. *)

val close : conn -> unit
