(** Daemon protocol client (see the interface). *)

type conn = { fd : Unix.file_descr; ic : in_channel }

let connect ~path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> Ok { fd; ic = Unix.in_channel_of_descr fd }
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot connect to %s: %s" path (Unix.error_message e))

let send_line c line =
  let b = Bytes.of_string (line ^ "\n") in
  let n = Bytes.length b in
  let rec go off =
    if off < n then go (off + Unix.write c.fd b off (n - off))
  in
  try Ok (go 0)
  with Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "send failed: %s" (Unix.error_message e))

let read_json c =
  match input_line c.ic with
  | line -> (
      match Json.of_string line with
      | Ok v -> Ok v
      | Error msg -> Error (Printf.sprintf "bad reply: %s" msg))
  | exception End_of_file -> Error "connection closed by daemon"
  | exception Sys_error msg -> Error msg

let request c req =
  match send_line c (Protocol.encode_request req) with
  | Error _ as e -> e
  | Ok () -> read_json c

let stream c req ~on_event =
  match send_line c (Protocol.encode_request req) with
  | Error _ as e -> e
  | Ok () ->
      let rec go () =
        match read_json c with
        | Error _ as e -> e
        | Ok v -> (
            (* a failed attach gets one error reply and no stream *)
            match Json.mem_bool "ok" v with
            | Some false -> Ok v
            | _ ->
                if Json.mem_str "event" v = Some "end" then Ok v
                else begin
                  on_event v;
                  go ()
                end)
      in
      go ()

let close c =
  try Unix.close c.fd with Unix.Unix_error _ -> ()
