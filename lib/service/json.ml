(** JSON value type and single-line codec (see the interface). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---------- encoding ---------- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec encode buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
      if Float.is_finite f then begin
        (* %.17g round-trips every finite double through float_of_string;
           make sure the text stays a float, not an integer literal *)
        let s = Printf.sprintf "%.17g" f in
        Buffer.add_string buf s;
        if String.for_all (fun c -> c = '-' || (c >= '0' && c <= '9')) s then
          Buffer.add_string buf ".0"
      end
      else Buffer.add_string buf "null"
  | Str s -> escape_string buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          encode buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          encode buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  encode buf v;
  Buffer.contents buf

(* ---------- parsing ---------- *)

exception Parse_error of string

type cursor = { s : string; mutable pos : int }

let fail c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))
let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None
let advance c = c.pos <- c.pos + 1

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance c;
        true
    | _ -> false
  do
    ()
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let literal c word value =
  let n = String.length word in
  if
    c.pos + n <= String.length c.s
    && String.equal (String.sub c.s c.pos n) word
  then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected %s" word)

let hex_digit c ch =
  match ch with
  | '0' .. '9' -> Char.code ch - Char.code '0'
  | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
  | _ -> fail c "bad hex digit in \\u escape"

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | None -> fail c "unterminated escape"
        | Some e ->
            advance c;
            (match e with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                if c.pos + 4 > String.length c.s then
                  fail c "truncated \\u escape";
                let v =
                  (hex_digit c c.s.[c.pos] lsl 12)
                  lor (hex_digit c c.s.[c.pos + 1] lsl 8)
                  lor (hex_digit c c.s.[c.pos + 2] lsl 4)
                  lor hex_digit c c.s.[c.pos + 3]
                in
                c.pos <- c.pos + 4;
                (* our encoder only \u-escapes control bytes, so a
                   code point < 0x80 is a plain byte; anything larger
                   (a foreign encoder's escape) goes out as UTF-8 *)
                if v < 0x80 then Buffer.add_char buf (Char.chr v)
                else if v < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (v lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (v land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (v lsr 12)));
                  Buffer.add_char buf
                    (Char.chr (0x80 lor ((v lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (v land 0x3F)))
                end
            | _ -> fail c "unknown escape");
            loop ())
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_float = ref false in
  let rec loop () =
    match peek c with
    | Some ('0' .. '9' | '-' | '+') ->
        advance c;
        loop ()
    | Some ('.' | 'e' | 'E') ->
        is_float := true;
        advance c;
        loop ()
    | _ -> ()
  in
  loop ();
  let text = String.sub c.s start (c.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail c "bad float literal"
  else
    match int_of_string_opt text with
    | Some n -> Int n
    | None -> fail c "bad int literal"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          fields := (k, v) :: !fields;
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              members ()
          | Some '}' -> advance c
          | _ -> fail c "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value c in
          items := v :: !items;
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              elements ()
          | Some ']' -> advance c
          | _ -> fail c "expected ',' or ']'"
        in
        elements ();
        List (List.rev !items)
      end
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c (Printf.sprintf "unexpected %C" ch)

let of_string s =
  let c = { s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos < String.length s then Error "trailing garbage after value"
      else Ok v
  | exception Parse_error msg -> Error msg

(* ---------- accessors ---------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int n -> Some n | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List l -> Some l | _ -> None

let mem_str key v = Option.bind (member key v) to_str
let mem_int key v = Option.bind (member key v) to_int
let mem_bool key v = Option.bind (member key v) to_bool
