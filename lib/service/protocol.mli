(** The daemon's wire protocol: newline-delimited JSON over a Unix socket.

    Each request is one JSON object on one line ([{"cmd": ...}]); each
    reply is one line too, except [attach], which streams one event object
    per line until the job reaches a terminal state.  The codec is exact:
    {!parse_request} inverts {!encode_request} for every request —
    QCheck-tested in [test_service].

    Replies are plain {!Json.t} objects built with the helpers below; the
    daemon guarantees every reply carries an ["ok"] boolean, so clients
    can dispatch on [Json.mem_bool "ok"] without knowing the verb. *)

(** Campaign submission parameters.  [sub_weights] keeps the CLI
    [FAMILY=N,...] syntax (validated by the daemon at submit time with
    {!Spirv_fuzz.Registry.parse_weights}); [sub_targets = []] means every
    registered target. *)
type submit_spec = {
  sub_tool : Harness.Pipeline.tool;
  sub_seeds : int;
  sub_targets : string list;
  sub_weights : string;
  sub_tv : bool;
}

type request =
  | Ping
  | Submit of submit_spec
  | Status of string option  (** one job, or the whole daemon for [None] *)
  | Jobs
  | Attach of string  (** stream events until the job is terminal *)
  | Hits of string  (** full hit list of a finished job *)
  | Cancel of string
  | Drain  (** refuse new submissions; exit once all jobs are terminal *)
  | Shutdown  (** checkpoint every in-flight campaign and exit *)

val encode_request : request -> string
(** One line, no trailing newline. *)

val parse_request : string -> (request, string) result

(** {1 Reply builders} *)

val ok : (string * Json.t) list -> Json.t
(** [{"ok": true, ...fields}] *)

val error : string -> Json.t
(** [{"ok": false, "error": msg}] *)
