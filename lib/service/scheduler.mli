(** The fleet scheduler: a fair round-robin multiplexer running any number
    of campaigns over {e one} shared {!Harness.Engine} and
    {!Harness.Pool}.

    Each call to {!step} runs one {e slice} of one runnable job: a
    [Persist.run_campaign ~resume:true] invocation at the job's full scale
    whose [?stop] hook halts it after [quantum] freshly-executed seeds.
    The campaign journal under [root/jobs/<id>/] makes every slice a
    checkpoint — the journal replay at the start of the next slice splices
    all prior seeds back in, so the final slice returns a hit list
    bit-identical to an uninterrupted run (the {!Harness.Persist} resume
    contract).  Because jobs advance slice by slice in submission-order
    rotation, two concurrent jobs interleave progress fairly instead of
    running back to back.

    All jobs share the engine, so one job's executions memoize for every
    other — the cross-job hit counter measures exactly that: memo/store/TV
    hits observed during a job's slice after {e another} job has executed
    runs.  Job submissions and state transitions are durable in
    [root/jobs/jobs.log] ({!Tbct_store.Jobs}); a daemon killed [-9]
    mid-slice restarts with every interrupted job still [Running] and
    resumes it from its journal, bit-identical.

    Threading: {!step}, {!submit}, {!cancel} and {!hits} must be called
    from one thread (the server's event loop).  The [on_event] callback,
    however, fires from {e worker domains} for [Seed_done]/[Hit_found]
    and must be thread-safe. *)

type t
type job

(** {1 Job accessors} *)

val id : job -> string
val spec : job -> Tbct_store.Jobs.record
val state : job -> Tbct_store.Jobs.state

val seeds_done : job -> int
(** Journaled seeds (resumed + freshly executed).  For a job restored
    already-[Done] from a previous daemon this is its full seed count. *)

val hits_found : job -> int
(** Hits observed by {e this} daemon (restored jobs report their full list
    via the [hits] verb, not this counter). *)

val new_signatures : job -> int
(** Hits whose bank signature was new when first seen. *)

val runs_executed : job -> int  (** engine executions attributed to the job *)

val memo_hits : job -> int
(** memo + store + optimize + TV hits observed during the job's slices. *)

val cross_memo_hits : job -> int
(** The subset of {!memo_hits} earned after another job had already
    executed runs — the shared-engine payoff. *)

val slices : job -> int

val tv_abstains : job -> (string * int) list
(** The job's accumulated translation-validation abstention buckets
    ([("tv-abstain:<reason>", count)]), sorted by label.  Attributed from
    the engine's counter deltas around each slice (slices are
    serialized), persisted to the jobs journal as ["counters"] records,
    and restored on daemon restart. *)

val last_error : job -> string option

(** {1 Events} *)

type event =
  | Submitted of job
  | Started of job  (** first slice about to run *)
  | Seed_done of job * int * int  (** seed id, hits it produced *)
  | Hit_found of job * Harness.Experiments.hit * bool
      (** [true]: the signature was new to the service's bug bank *)
  | Finished of job
  | Halted of job  (** cancelled, or failed (see {!last_error}) *)

(** {1 Lifecycle} *)

val create :
  ?fsync:bool ->
  ?quantum:int ->
  ?on_event:(event -> unit) ->
  root:string ->
  pool:Harness.Pool.t ->
  unit ->
  t
(** Open the store rooted at [root]: the shared CAS at [root/cas] (backing
    a single shared engine), the job store at [root/jobs/jobs.log], and
    the service bug bank at [root/jobs/bugbank.txt].  Jobs recorded
    [Queued] or [Running] by a previous daemon are picked up where their
    journals left off.  [quantum] (default 8) is the fresh-seed budget per
    slice. *)

val engine : t -> Harness.Engine.t

val submit : t -> Protocol.submit_spec -> (job, string) result
(** Validate targets and weights, persist the job ([Queued]), emit
    [Submitted]. *)

val cancel : t -> id:string -> (unit, string) result
(** Cancel a queued or running job (persisted; emits [Halted]).  Already
    terminal jobs are an error. *)

val job : t -> id:string -> job option
val jobs : t -> job list  (** submission order *)

val runnable : t -> bool
(** Is any job [Queued] or [Running]?  (Drives the server's select
    timeout: poll-only when there is work to do.) *)

val step : t -> [ `Idle | `Sliced of job | `Finished of job | `Halted of job ]
(** Run one slice of the next runnable job in round-robin order.
    [`Finished]: that slice completed the campaign (job now [Done]).
    [`Halted]: the slice failed (journal mismatch, worker exception);
    the job is cancelled with {!last_error} set. *)

val hits : t -> job -> (Harness.Experiments.hit list * bool, string) result
(** The job's journaled hits in canonical order, and whether the campaign
    is complete.  Implemented as a resume-replay with an always-[true]
    stop hook, so nothing executes: for a [Done] job this is the full hit
    list, bit-identical to an uninterrupted batch run; for a [Running] job
    it is the checkpointed prefix. *)

val interrupt : t -> unit
(** Graceful-shutdown flag, consulted by the in-flight slice's stop hook
    (safe from a signal handler: one atomic store).  The slice checkpoints
    at seed granularity and {!step} returns; jobs stay [Running] in the
    store, to be resumed by the next daemon. *)

val interrupted : t -> bool

val cross_job_memo_hits : t -> int
(** Total {!cross_memo_hits} across all jobs. *)

val close : t -> unit
(** Save the bug bank and close the job store (campaign journals are
    opened and closed per slice and need no cleanup here). *)
