(** The fleet daemon: a single-threaded event loop serving the
    newline-delimited JSON protocol over a Unix domain socket while a
    {!Scheduler} advances campaigns slice by slice between polls.

    The loop alternates I/O and work: with runnable jobs it polls with a
    zero timeout and runs one scheduler slice per iteration; idle, it
    blocks in [select] for a short tick.  Requests are therefore answered
    between slices — never concurrently with one — which is what lets the
    scheduler stay single-threaded while worker domains stream
    [Seed_done]/[Hit_found] events to attached clients (socket writes are
    serialized by one mutex).

    Shutdown paths, all of which checkpoint through the campaign journals:
    - [SIGINT]/[SIGTERM]: the handler sets the scheduler's interrupt flag;
      the in-flight slice stops at the next seed boundary and the loop
      exits.  Jobs stay [Running] in the job store and resume on restart.
    - the [shutdown] verb: same, by request.
    - the [drain] verb: new submissions are refused and the loop exits
      once every job is terminal.
    - [kill -9]: no cleanup runs, but every completed seed was journaled
      before its hook returned, so the restarted daemon loses at most the
      in-flight seeds of one quantum — and re-executes them bit-identical. *)

val run :
  ?fsync:bool ->
  ?quantum:int ->
  ?tick:float ->
  root:string ->
  socket:string ->
  domains:int ->
  unit ->
  (unit, string) result
(** Serve until a shutdown path fires.  [root] is the store directory
    (CAS, job store, bug bank, per-job journals all live under it);
    [socket] is the Unix socket path (a stale socket file is replaced);
    [domains] sizes the shared worker pool.  [tick] (default 0.2s) is the
    idle poll interval.  Returns [Error] only when the socket cannot be
    bound. *)
