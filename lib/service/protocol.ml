(** Wire protocol codec (see the interface). *)

type submit_spec = {
  sub_tool : Harness.Pipeline.tool;
  sub_seeds : int;
  sub_targets : string list;
  sub_weights : string;
  sub_tv : bool;
}

type request =
  | Ping
  | Submit of submit_spec
  | Status of string option
  | Jobs
  | Attach of string
  | Hits of string
  | Cancel of string
  | Drain
  | Shutdown

let encode_request req =
  let obj fields = Json.to_string (Json.Obj fields) in
  let cmd name rest = obj (("cmd", Json.Str name) :: rest) in
  match req with
  | Ping -> cmd "ping" []
  | Submit spec ->
      cmd "submit"
        [
          ("tool", Json.Str (Harness.Pipeline.tool_name spec.sub_tool));
          ("seeds", Json.Int spec.sub_seeds);
          ( "targets",
            Json.List (List.map (fun t -> Json.Str t) spec.sub_targets) );
          ("weights", Json.Str spec.sub_weights);
          ("tv", Json.Bool spec.sub_tv);
        ]
  | Status None -> cmd "status" []
  | Status (Some id) -> cmd "status" [ ("job", Json.Str id) ]
  | Jobs -> cmd "jobs" []
  | Attach id -> cmd "attach" [ ("job", Json.Str id) ]
  | Hits id -> cmd "hits" [ ("job", Json.Str id) ]
  | Cancel id -> cmd "cancel" [ ("job", Json.Str id) ]
  | Drain -> cmd "drain" []
  | Shutdown -> cmd "shutdown" []

let parse_request line =
  match Json.of_string line with
  | Error msg -> Error (Printf.sprintf "bad JSON: %s" msg)
  | Ok v -> (
      let job_arg make =
        match Json.mem_str "job" v with
        | Some id -> Ok (make id)
        | None -> Error "missing \"job\" field"
      in
      match Json.mem_str "cmd" v with
      | None -> Error "missing \"cmd\" field"
      | Some "ping" -> Ok Ping
      | Some "submit" -> (
          let tool_name =
            Option.value ~default:"spirv-fuzz" (Json.mem_str "tool" v)
          in
          match Harness.Pipeline.tool_of_name tool_name with
          | None -> Error (Printf.sprintf "unknown tool %S" tool_name)
          | Some sub_tool ->
              let sub_seeds =
                Option.value ~default:0 (Json.mem_int "seeds" v)
              in
              if sub_seeds <= 0 then Error "\"seeds\" must be positive"
              else
                let sub_targets =
                  match Option.bind (Json.member "targets" v) Json.to_list with
                  | None -> []
                  | Some items -> List.filter_map Json.to_str items
                in
                let sub_weights =
                  Option.value ~default:"" (Json.mem_str "weights" v)
                in
                let sub_tv =
                  Option.value ~default:false (Json.mem_bool "tv" v)
                in
                Ok
                  (Submit
                     { sub_tool; sub_seeds; sub_targets; sub_weights; sub_tv })
          )
      | Some "status" -> Ok (Status (Json.mem_str "job" v))
      | Some "jobs" -> Ok Jobs
      | Some "attach" -> job_arg (fun id -> Attach id)
      | Some "hits" -> job_arg (fun id -> Hits id)
      | Some "cancel" -> job_arg (fun id -> Cancel id)
      | Some "drain" -> Ok Drain
      | Some "shutdown" -> Ok Shutdown
      | Some other -> Error (Printf.sprintf "unknown command %S" other))

let ok fields = Json.Obj (("ok", Json.Bool true) :: fields)
let error msg = Json.Obj [ ("ok", Json.Bool false); ("error", Json.Str msg) ]
