(** A minimal JSON value type and exact single-line codec for the service's
    newline-delimited wire protocol.

    No JSON library ships in the build, so the service carries its own:
    a small recursive-descent parser and an encoder whose output never
    contains a raw newline (control bytes are [\uXXXX]-escaped), so one
    value always occupies exactly one wire line.  The codec round-trips
    every value exactly — QCheck-tested — with two documented exceptions:
    non-finite floats encode as [null] (JSON has no spelling for them) and
    finite floats are printed with 17 significant digits, which
    [float_of_string] maps back to the identical bit pattern. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line encoding (no raw newlines, ever). *)

val of_string : string -> (t, string) result
(** Parse one JSON value; trailing garbage (other than whitespace) is an
    error.  Numbers without [.]/[e] parse as [Int], others as [Float]. *)

(** {1 Accessors} — total, [option]-valued helpers for picking responses
    apart without pattern-matching boilerplate. *)

val member : string -> t -> t option
(** Field lookup; [None] for missing fields and non-objects. *)

val to_int : t -> int option       (** [Int] only *)

val to_str : t -> string option    (** [Str] only *)

val to_bool : t -> bool option     (** [Bool] only *)

val to_list : t -> t list option   (** [List] only *)

val mem_str : string -> t -> string option
(** [member] composed with {!to_str}. *)

val mem_int : string -> t -> int option
val mem_bool : string -> t -> bool option
