(** Fair round-robin campaign multiplexer (see the interface). *)

module Jobs = Tbct_store.Jobs
module Bugbank = Tbct_store.Bugbank
module Persist = Harness.Persist
module Experiments = Harness.Experiments

type job = {
  jid : string;
  jspec : Jobs.record;
  mutable jstate : Jobs.state;
  mutable jseeds_done : int;
  mutable jhits_found : int;
  mutable jnew_sigs : int;
  mutable jruns : int;
  mutable jmemo_hits : int;
  mutable jcross_hits : int;
  mutable jslices : int;
  (* accumulated tv-abstain:<reason> buckets, attributed per slice (slices
     are serialized, so an engine-counter delta belongs to this job) *)
  jabstains : (string, int) Hashtbl.t;
  mutable jerror : string option;
}

type event =
  | Submitted of job
  | Started of job
  | Seed_done of job * int * int
  | Hit_found of job * Harness.Experiments.hit * bool
  | Finished of job
  | Halted of job

type t = {
  root : string;
  store : Jobs.t;
  engine : Harness.Engine.t;
  pool : Harness.Pool.t;
  bank : Bugbank.t;
  (* guards the bank and the live per-job counters the worker-domain
     on_seed hook mutates *)
  mutex : Mutex.t;
  quantum : int;
  fsync : bool;
  on_event : event -> unit;
  table : (string, job) Hashtbl.t;
  mutable order : string list;  (* submission order *)
  mutable rr : int;
  stop_flag : bool Atomic.t;
}

let id j = j.jid
let spec j = j.jspec
let state j = j.jstate
let seeds_done j = j.jseeds_done
let hits_found j = j.jhits_found
let new_signatures j = j.jnew_sigs
let runs_executed j = j.jruns
let memo_hits j = j.jmemo_hits
let cross_memo_hits j = j.jcross_hits
let slices j = j.jslices

let tv_abstains j =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) j.jabstains [])

let last_error j = j.jerror

let jobs_dir t = Filename.concat t.root "jobs"
let job_dir t id = Filename.concat (jobs_dir t) id

let fresh_job ?(counters = []) (r : Jobs.record) st =
  let jabstains = Hashtbl.create 4 in
  List.iter (fun (k, v) -> Hashtbl.replace jabstains k v) counters;
  {
    jid = r.Jobs.id;
    jspec = r;
    jstate = st;
    jseeds_done = (if st = Jobs.Done then r.Jobs.seeds else 0);
    jhits_found = 0;
    jnew_sigs = 0;
    jruns = 0;
    jmemo_hits = 0;
    jcross_hits = 0;
    jslices = 0;
    jabstains;
    jerror = None;
  }

let create ?(fsync = false) ?(quantum = 8) ?(on_event = fun _ -> ()) ~root
    ~pool () =
  let store = Jobs.open_ ~fsync ~dir:(Filename.concat root "jobs") () in
  let cas = Persist.open_cas ~fsync ~dir:root () in
  let engine = Harness.Engine.create ~store:cas () in
  let bank = Bugbank.load ~dir:(Filename.concat root "jobs") in
  let t =
    {
      root;
      store;
      engine;
      pool;
      bank;
      mutex = Mutex.create ();
      quantum = max 1 quantum;
      fsync;
      on_event;
      table = Hashtbl.create 16;
      order = [];
      rr = 0;
      stop_flag = Atomic.make false;
    }
  in
  (* restore the queue a previous daemon left behind: Running jobs were
     interrupted mid-campaign and resume from their journals *)
  List.iter
    (fun ((r : Jobs.record), st) ->
      let counters = Jobs.counters store ~id:r.Jobs.id in
      Hashtbl.replace t.table r.Jobs.id (fresh_job ~counters r st);
      t.order <- t.order @ [ r.Jobs.id ])
    (Jobs.entries store);
  t

let engine t = t.engine
let job t ~id = Hashtbl.find_opt t.table id
let jobs t = List.filter_map (fun id -> Hashtbl.find_opt t.table id) t.order

let runnable_ids t =
  List.filter
    (fun id ->
      match Hashtbl.find_opt t.table id with
      | Some j -> j.jstate = Jobs.Queued || j.jstate = Jobs.Running
      | None -> false)
    t.order

let runnable t = runnable_ids t <> []
let interrupt t = Atomic.set t.stop_flag true
let interrupted t = Atomic.get t.stop_flag

let cross_job_memo_hits t =
  List.fold_left (fun acc j -> acc + j.jcross_hits) 0 (jobs t)

(* ---------- submission ---------- *)

let resolve_targets names =
  match names with
  | [] -> Ok Compilers.Target.all
  | names ->
      List.fold_left
        (fun acc name ->
          Result.bind acc (fun ts ->
              match Compilers.Target.find name with
              | Some target -> Ok (ts @ [ target ])
              | None -> Error (Printf.sprintf "unknown target %S" name)))
        (Ok []) names

let submit t (s : Protocol.submit_spec) =
  if Atomic.get t.stop_flag then Error "daemon is shutting down"
  else
    match resolve_targets s.Protocol.sub_targets with
    | Error _ as e -> e
    | Ok _ -> (
        match Spirv_fuzz.Registry.parse_weights s.Protocol.sub_weights with
        | Error msg -> Error (Printf.sprintf "bad weights: %s" msg)
        | Ok _ ->
            let record : Jobs.record =
              {
                Jobs.id = Jobs.fresh_id t.store;
                tool = Harness.Pipeline.tool_name s.Protocol.sub_tool;
                seeds = s.Protocol.sub_seeds;
                targets = s.Protocol.sub_targets;
                weights = s.Protocol.sub_weights;
                tv = s.Protocol.sub_tv;
              }
            in
            Jobs.add t.store record;
            let j = fresh_job record Jobs.Queued in
            Hashtbl.replace t.table j.jid j;
            t.order <- t.order @ [ j.jid ];
            t.on_event (Submitted j);
            Ok j)

let cancel t ~id =
  match Hashtbl.find_opt t.table id with
  | None -> Error (Printf.sprintf "no such job %S" id)
  | Some j -> (
      match j.jstate with
      | Jobs.Done -> Error (Printf.sprintf "job %s already finished" id)
      | Jobs.Cancelled -> Error (Printf.sprintf "job %s already cancelled" id)
      | Jobs.Queued | Jobs.Running ->
          Jobs.set_state t.store ~id Jobs.Cancelled;
          j.jstate <- Jobs.Cancelled;
          t.on_event (Halted j);
          Ok ())

(* ---------- slicing ---------- *)

(* Decode a job's persisted parameters back into harness types.  Failures
   here (a hand-edited jobs.log, a target renamed between versions) halt
   the job rather than the daemon. *)
let decode_spec (r : Jobs.record) =
  match Harness.Pipeline.tool_of_name r.Jobs.tool with
  | None -> Error (Printf.sprintf "unknown tool %S" r.Jobs.tool)
  | Some tool -> (
      match resolve_targets r.Jobs.targets with
      | Error _ as e -> e
      | Ok targets -> (
          match Spirv_fuzz.Registry.parse_weights r.Jobs.weights with
          | Error msg -> Error (Printf.sprintf "bad weights: %s" msg)
          | Ok weights -> Ok (tool, targets, weights)))

let scale_of (r : Jobs.record) =
  { Experiments.default_scale with Experiments.seeds = r.Jobs.seeds }

let memo_total (s : Harness.Engine.stats) =
  s.Harness.Engine.cache_hits + s.Harness.Engine.store_hits
  + s.Harness.Engine.opt_hits + s.Harness.Engine.tv_hits

let abstain_prefix = "tv-abstain:"

let abstain_counters (s : Harness.Engine.stats) =
  List.filter
    (fun (k, _) ->
      String.length k > String.length abstain_prefix
      && String.sub k 0 (String.length abstain_prefix) = abstain_prefix)
    s.Harness.Engine.counters

let record_hit t j (h : Experiments.hit) =
  let signature = h.Experiments.hit_detection.Harness.Pipeline.signature in
  let bug_id = Harness.Signature.bug_id_of_signature signature in
  Mutex.protect t.mutex (fun () ->
      let verdict =
        Bugbank.record t.bank ~target:h.Experiments.hit_target ~bug_id
          ~types:[ signature ]
      in
      j.jhits_found <- j.jhits_found + 1;
      let is_new = verdict = `New in
      if is_new then j.jnew_sigs <- j.jnew_sigs + 1;
      is_new)

let halt t j msg =
  Jobs.set_state t.store ~id:j.jid Jobs.Cancelled;
  j.jstate <- Jobs.Cancelled;
  j.jerror <- Some msg;
  t.on_event (Halted j);
  `Halted j

let slice t j =
  match decode_spec j.jspec with
  | Error msg -> halt t j msg
  | Ok (tool, targets, weights) -> (
      if j.jstate = Jobs.Queued then begin
        Jobs.set_state t.store ~id:j.jid Jobs.Running;
        j.jstate <- Jobs.Running;
        t.on_event (Started j)
      end;
      (* did any OTHER job execute runs before this slice?  If so, memo
         hits earned during it count as cross-job sharing *)
      let other_ran =
        List.exists (fun o -> o.jid <> j.jid && o.jruns > 0) (jobs t)
      in
      let before = Harness.Engine.stats t.engine in
      let executed = Atomic.make 0 in
      let stop () =
        Atomic.get executed >= t.quantum || Atomic.get t.stop_flag
      in
      let on_seed seed hits =
        Atomic.incr executed;
        let events =
          List.map (fun h -> Hit_found (j, h, record_hit t j h)) hits
        in
        Mutex.protect t.mutex (fun () ->
            j.jseeds_done <- j.jseeds_done + 1);
        List.iter t.on_event events;
        t.on_event (Seed_done (j, seed, List.length hits))
      in
      let outcome =
        try
          Persist.run_campaign ~scale:(scale_of j.jspec) ~targets ~pool:t.pool
            ~engine:t.engine ~tv:j.jspec.Jobs.tv ~weights ~resume:true
            ~fsync:t.fsync ~stop ~on_seed ~dir:(job_dir t j.jid) tool
        with e -> Error (Printexc.to_string e)
      in
      match outcome with
      | Error msg -> halt t j msg
      | Ok o ->
          let after = Harness.Engine.stats t.engine in
          let memo_delta = memo_total after - memo_total before in
          j.jruns <-
            j.jruns
            + (after.Harness.Engine.runs_executed
             - before.Harness.Engine.runs_executed);
          j.jmemo_hits <- j.jmemo_hits + memo_delta;
          if other_ran then j.jcross_hits <- j.jcross_hits + memo_delta;
          (* slice-local growth of each tv-abstain bucket belongs to this
             job; persist the accumulated snapshot with the slice *)
          let before_abstains = abstain_counters before in
          List.iter
            (fun (k, v) ->
              let prior =
                Option.value ~default:0 (List.assoc_opt k before_abstains)
              in
              if v > prior then
                Hashtbl.replace j.jabstains k
                  (v - prior
                  + Option.value ~default:0 (Hashtbl.find_opt j.jabstains k)))
            (abstain_counters after);
          Jobs.set_counters t.store ~id:j.jid (tv_abstains j);
          j.jslices <- j.jslices + 1;
          (* exact, replacing the live per-seed increments: the journal
             knows precisely how many seeds are recorded *)
          j.jseeds_done <- o.Persist.seeds_skipped + o.Persist.seeds_run;
          if o.Persist.completed then begin
            Jobs.set_state t.store ~id:j.jid Jobs.Done;
            j.jstate <- Jobs.Done;
            Mutex.protect t.mutex (fun () -> Bugbank.save ~fsync:t.fsync t.bank);
            t.on_event (Finished j);
            `Finished j
          end
          else begin
            (* checkpoint the bank alongside the journal's slice boundary *)
            Mutex.protect t.mutex (fun () -> Bugbank.save ~fsync:t.fsync t.bank);
            `Sliced j
          end)

let step t =
  match runnable_ids t with
  | [] -> `Idle
  | ids ->
      let n = List.length ids in
      let j =
        Hashtbl.find t.table (List.nth ids (t.rr mod n))
      in
      t.rr <- t.rr + 1;
      slice t j

(* ---------- hit retrieval ---------- *)

let hits t j =
  match decode_spec j.jspec with
  | Error _ as e -> e
  | Ok (tool, targets, weights) -> (
      (* resume-replay with an always-true stop hook: journaled seeds are
         spliced in, nothing executes.  ~domains:1 keeps the shared pool
         out of it (a 1-worker pool runs inline, no domain spawned). *)
      match
        Persist.run_campaign ~scale:(scale_of j.jspec) ~targets ~domains:1
          ~engine:t.engine ~tv:j.jspec.Jobs.tv ~weights ~resume:true
          ~stop:(fun () -> true) ~dir:(job_dir t j.jid) tool
      with
      | Error _ as e -> e
      | Ok o -> Ok (o.Persist.hits, o.Persist.completed))

let close t =
  Mutex.protect t.mutex (fun () -> Bugbank.save ~fsync:t.fsync t.bank);
  Jobs.close t.store
