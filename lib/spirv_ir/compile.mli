(** Flat compiled execution kernel.

    {!lower} translates a module once into a flat executable program: ids
    resolved to dense integer register slots (no [Id.Map] lookup on the hot
    path), constants pre-materialized, blocks flattened into arrays of
    instruction records with pre-resolved φ move lists and jump targets.
    {!render_batch} then executes the whole fragment grid against one
    reused globals/locals arena.

    The kernel is observably bit-identical to the reference interpreter
    {!Interp}: same images, same traps (messages included), same trap
    ordering and step accounting.  Errors the interpreter only discovers at
    execution time (constants that fail to materialize, branches to missing
    blocks, …) are captured during lowering and re-raised at the same
    execution point, so [lower] itself never raises and accepts any
    [Module_ir.t].

    A compiled program is immutable and may be shared freely across
    domains; all mutable execution state lives in an arena private to each
    {!render_batch} / {!run_fragment} call. *)

type t
(** A lowered program.  Immutable; safe to cache and share. *)

val lower : Module_ir.t -> t
(** One-time lowering.  Never raises: invalid modules lower to programs
    that reproduce the interpreter's runtime trap (or escaping exception)
    at the same execution point. *)

val render_batch :
  ?step_limit:int -> t -> Input.t -> (Image.t, Interp.trap) result
(** Execute every fragment of the grid, reusing one arena.  Bit-identical
    to {!Interp.render} on the source module: same pixels, same first trap
    in the same fragment order (y-major), and no partial image on the
    [Error] path.  Default step limit: {!Interp.default_step_limit},
    applied per fragment. *)

val run_fragment :
  ?step_limit:int -> t -> Input.t -> frag_x:int -> frag_y:int -> Interp.outcome
(** Execute a single fragment; bit-identical to {!Interp.run_fragment}. *)

val render :
  ?step_limit:int -> Module_ir.t -> Input.t -> (Image.t, Interp.trap) result
(** [lower] + [render_batch] in one step, for one-shot callers. *)

val func_count : t -> int
(** Number of lowered functions (diagnostics). *)

val instr_count : t -> int
(** Flattened instruction records, terminators included (diagnostics). *)
