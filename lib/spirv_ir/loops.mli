(** Natural-loop forest over an already-computed CFG + dominator tree.

    Callers are expected to source both inputs from the shared
    [Dataflow.Availability] analysis; this module never computes its own. *)

type loop = {
  header : Id.t;
  latches : Id.t list;  (** back-edge sources, in block order *)
  blocks : Id.Set.t;  (** body, including the header *)
  exits : (Id.t * Id.t) list;  (** (in-loop block, out-of-loop target) edges *)
  depth : int;  (** nesting depth; 1 = outermost *)
  parent : Id.t option;  (** header of the innermost enclosing loop *)
}

type forest = {
  loops : loop list;  (** outermost-first (sorted by increasing depth) *)
  irreducible : (Id.t * Id.t) list;
      (** retreating edges whose target does not dominate their source *)
}

val analyze : Cfg.t -> Dominance.t -> forest

val header_of : forest -> Id.t -> loop option
(** The loop headed at the given label, if any. *)

val innermost_containing : forest -> Id.t -> loop option
(** Innermost loop whose body contains the given label. *)

val is_in_loop : loop -> Id.t -> bool
val is_reducible : forest -> bool
