(** Availability and use-site analysis over one function — the
    transformation layer's façade over the shared {!Dataflow} analyses.

    Transformation preconditions ask two questions: "may this id be
    referenced at this program point?" (the SSA dominance rule, delegated
    to {!Dataflow.Availability}) and "where is this id used?" (use-site
    enumeration for id-replacing transformations). *)

type t

val make : Module_ir.t -> Func.t -> t
(** Build the per-function analysis record; the control-flow graph,
    dominator tree and definition sites are computed once and shared by
    every query. *)

val cfg : t -> Cfg.t
val dominance : t -> Dominance.t

val available_at : t -> block:Id.t -> index:int -> Id.t -> bool
(** May [id] be used by the instruction at position [index] of [block]?
    ([index] may be one past the last instruction to mean the terminator.)
    Follows the validator's rule, including its relaxation inside
    unreachable blocks. *)

val available_at_end : t -> block:Id.t -> Id.t -> bool
(** Availability at the block's terminator — the rule for φ incoming
    values at their predecessor. *)

val available_ids_of_type : t -> block:Id.t -> index:int -> ty:Id.t -> Id.t list
(** Ids of every value available at position [index] of [block] whose type
    id is [ty] — candidates for id-replacement transformations.  Module
    constants and globals first, then this function's parameters, then
    instruction results in block order. *)

(** A use of an id inside a function, precise enough to parametrize a
    replacement transformation: [instr_index] is the position within the
    block's instruction list, or the instruction count to denote the
    terminator; [operand_index] is the position within {!Instr.used_ids}. *)
type use_site = {
  fn : Id.t;
  block : Id.t;
  instr_index : int;
  operand_index : int;
}

val use_sites_in_function : Module_ir.t -> Func.t -> of_id:Id.t -> use_site list
