type error = { where : string; message : string }

let error_to_string e = Printf.sprintf "%s: %s" e.where e.message

type ctx = {
  m : Module_ir.t;
  errors : error Queue.t;  (* appended in source order *)
}

let err ctx where fmt =
  Printf.ksprintf (fun message -> Queue.add { where; message } ctx.errors) fmt

(* ------------------------------------------------------------------ *)
(* Ids                                                                 *)

let check_ids ctx =
  let m = ctx.m in
  let seen = Hashtbl.create 64 in
  let declare where id =
    if id <= 0 || id >= m.Module_ir.id_bound then
      err ctx where "id %s out of bounds (bound %d)" (Id.to_string id) m.Module_ir.id_bound;
    if Hashtbl.mem seen id then err ctx where "duplicate definition of %s" (Id.to_string id)
    else Hashtbl.add seen id ()
  in
  List.iter (fun (d : Module_ir.type_decl) -> declare "types" d.Module_ir.td_id) m.Module_ir.types;
  List.iter (fun (d : Module_ir.const_decl) -> declare "constants" d.Module_ir.cd_id) m.Module_ir.constants;
  List.iter (fun (d : Module_ir.global_decl) -> declare "globals" d.Module_ir.gd_id) m.Module_ir.globals;
  List.iter
    (fun (f : Func.t) ->
      let where = "function " ^ Id.to_string f.Func.id in
      declare where f.Func.id;
      List.iter (fun (p : Func.param) -> declare where p.Func.param_id) f.Func.params;
      List.iter
        (fun (b : Block.t) ->
          declare where b.Block.label;
          List.iter
            (fun (i : Instr.t) ->
              match i.Instr.result with Some r -> declare where r | None -> ())
            b.Block.instrs)
        f.Func.blocks)
    m.Module_ir.functions

(* ------------------------------------------------------------------ *)
(* Type table                                                          *)

let check_types ctx =
  let m = ctx.m in
  let declared = Hashtbl.create 16 in
  let is_declared id = Hashtbl.mem declared id in
  let kind_of id = Hashtbl.find_opt declared id in
  List.iter
    (fun (d : Module_ir.type_decl) ->
      let where = "type " ^ Id.to_string d.Module_ir.td_id in
      let need_declared id =
        if not (is_declared id) then
          err ctx where "component type %s not declared earlier" (Id.to_string id)
      in
      (match d.Module_ir.td_ty with
      | Ty.Void | Ty.Bool | Ty.Int | Ty.Float -> ()
      | Ty.Vector (c, n) ->
          need_declared c;
          (match kind_of c with
          | Some (Ty.Bool | Ty.Int | Ty.Float) -> ()
          | Some _ -> err ctx where "vector component must be a scalar"
          | None -> ());
          if n < 2 || n > 4 then err ctx where "vector size %d out of range 2..4" n
      | Ty.Matrix (col, n) ->
          need_declared col;
          (match kind_of col with
          | Some (Ty.Vector (c, _)) -> (
              match kind_of c with
              | Some Ty.Float -> ()
              | Some _ | None -> err ctx where "matrix column must be a float vector")
          | Some _ -> err ctx where "matrix column must be a vector"
          | None -> ());
          if n < 2 || n > 4 then err ctx where "matrix column count %d out of range 2..4" n
      | Ty.Struct members ->
          List.iter
            (fun mem ->
              need_declared mem;
              match kind_of mem with
              | Some (Ty.Void | Ty.Func _ | Ty.Pointer _) ->
                  err ctx where "struct member may not be void/function/pointer"
              | Some _ | None -> ())
            members
      | Ty.Array (c, n) ->
          need_declared c;
          (match kind_of c with
          | Some (Ty.Void | Ty.Func _ | Ty.Pointer _) ->
              err ctx where "array element may not be void/function/pointer"
          | Some _ | None -> ());
          if n < 1 then err ctx where "array length %d must be positive" n
      | Ty.Pointer (_, p) ->
          need_declared p;
          (match kind_of p with
          | Some (Ty.Void | Ty.Func _) ->
              err ctx where "pointer pointee may not be void/function"
          | Some _ | None -> ())
      | Ty.Func (ret, params) ->
          need_declared ret;
          List.iter
            (fun p ->
              need_declared p;
              match kind_of p with
              | Some (Ty.Void | Ty.Func _) ->
                  err ctx where "parameter type may not be void/function"
              | Some _ | None -> ())
            params);
      Hashtbl.replace declared d.Module_ir.td_id d.Module_ir.td_ty)
    m.Module_ir.types

(* ------------------------------------------------------------------ *)
(* Constants                                                           *)

let check_constants ctx =
  let m = ctx.m in
  let declared = Hashtbl.create 16 in
  List.iter
    (fun (d : Module_ir.const_decl) ->
      let where = "constant " ^ Id.to_string d.Module_ir.cd_id in
      (match Module_ir.find_type m d.Module_ir.cd_ty with
      | None -> err ctx where "unknown type %s" (Id.to_string d.Module_ir.cd_ty)
      | Some ty -> (
          match (d.Module_ir.cd_value, ty) with
          | Constant.Bool _, Ty.Bool -> ()
          | Constant.Int _, Ty.Int -> ()
          | Constant.Float _, Ty.Float -> ()
          | Constant.Null, (Ty.Void | Ty.Func _ | Ty.Pointer _) ->
              err ctx where "null constant of non-data type"
          | Constant.Null, _ -> ()
          | Constant.Composite parts, composite_ty -> (
              if not (Ty.is_composite composite_ty) then
                err ctx where "composite constant of non-composite type";
              match Module_ir.composite_arity m d.Module_ir.cd_ty with
              | Some n when List.length parts = n ->
                  List.iteri
                    (fun i part ->
                      if not (Hashtbl.mem declared part) then
                        err ctx where "constituent %s not declared earlier" (Id.to_string part)
                      else begin
                        match (Hashtbl.find_opt declared part,
                               Module_ir.component_ty m d.Module_ir.cd_ty i) with
                        | Some part_ty, Some expected when not (Id.equal part_ty expected) ->
                            err ctx where "constituent %d has type %s, expected %s" i
                              (Id.to_string part_ty) (Id.to_string expected)
                        | _ -> ()
                      end)
                    parts
              | Some n ->
                  err ctx where "composite arity %d, expected %d" (List.length parts) n
              | None -> ())
          | Constant.Bool _, _ | Constant.Int _, _ | Constant.Float _, _ ->
              err ctx where "constant value does not match its type"));
      Hashtbl.replace declared d.Module_ir.cd_id d.Module_ir.cd_ty)
    m.Module_ir.constants

(* ------------------------------------------------------------------ *)
(* Globals                                                             *)

let check_globals ctx =
  let m = ctx.m in
  List.iter
    (fun (g : Module_ir.global_decl) ->
      let where = "global " ^ Id.to_string g.Module_ir.gd_id in
      match Module_ir.find_type m g.Module_ir.gd_ty with
      | Some (Ty.Pointer (sc, pointee)) -> (
          (match sc with
          | Ty.Function -> err ctx where "global with Function storage class"
          | Ty.Input -> (
              match Module_ir.find_type m pointee with
              | Some (Ty.Vector (c, 2)) when
                  (match Module_ir.find_type m c with Some Ty.Float -> true | _ -> false) ->
                  ()
              | Some _ | None -> err ctx where "Input global must be a float vec2")
          | Ty.Private | Ty.Uniform | Ty.Output -> ());
          match g.Module_ir.gd_init with
          | None -> ()
          | Some init -> (
              if sc = Ty.Uniform || sc = Ty.Input then
                err ctx where "Uniform/Input global may not have an initializer";
              match Module_ir.find_constant m init with
              | Some c ->
                  if not (Id.equal c.Module_ir.cd_ty pointee) then
                    err ctx where "initializer type mismatch"
              | None -> err ctx where "initializer %s is not a constant" (Id.to_string init)))
      | Some _ -> err ctx where "global type must be a pointer"
      | None -> err ctx where "unknown type %s" (Id.to_string g.Module_ir.gd_ty))
    m.Module_ir.globals

(* ------------------------------------------------------------------ *)
(* Call graph                                                          *)

let check_call_graph ctx =
  let m = ctx.m in
  let callees (f : Func.t) =
    Func.all_instrs f
    |> List.filter_map (fun (i : Instr.t) ->
           match i.Instr.op with Instr.FunctionCall (g, _) -> Some g | _ -> None)
  in
  (* DFS cycle detection: 0 = unvisited, 1 = on stack, 2 = done *)
  let state = Hashtbl.create 8 in
  let rec visit (f : Func.t) =
    match Hashtbl.find_opt state f.Func.id with
    | Some 1 -> err ctx ("function " ^ Id.to_string f.Func.id) "recursive call cycle"
    | Some _ -> ()
    | None ->
        Hashtbl.replace state f.Func.id 1;
        List.iter
          (fun g ->
            match Module_ir.find_function m g with
            | Some gf -> visit gf
            | None -> ())
          (callees f);
        Hashtbl.replace state f.Func.id 2
  in
  List.iter visit m.Module_ir.functions

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)

let check_entry ctx =
  let m = ctx.m in
  match Module_ir.find_function m m.Module_ir.entry with
  | None -> err ctx "entry point" "entry function %s not found" (Id.to_string m.Module_ir.entry)
  | Some f -> (
      if f.Func.params <> [] then err ctx "entry point" "entry function must have no parameters";
      match Module_ir.find_type m f.Func.fn_ty with
      | Some (Ty.Func (ret, _)) -> (
          match Module_ir.find_type m ret with
          | Some Ty.Void -> ()
          | Some _ | None -> err ctx "entry point" "entry function must return void")
      | Some _ | None -> err ctx "entry point" "entry function has a non-function type")

(* ------------------------------------------------------------------ *)
(* Functions                                                           *)

(* Expected result type of an instruction, or None when the instruction is
   ill-typed (an error is recorded).  [ty_of] maps an id to its type id. *)
let check_instr ctx (f : Func.t) where ~ty_of (i : Instr.t) =
  let m = ctx.m in
  let tid id = ty_of id in
  let ty_struct id = Option.bind (tid id) (Module_ir.find_type m) in
  let expect_result expected =
    match (i.Instr.result, i.Instr.ty) with
    | Some _, Some actual ->
        if not (Id.equal actual expected) then
          err ctx where "result type %s, expected %s" (Id.to_string actual)
            (Id.to_string expected)
    | _ -> err ctx where "instruction must have a result"
  in
  let operand_ty name id =
    match tid id with
    | Some t -> Some t
    | None ->
        err ctx where "%s operand %s has no type" name (Id.to_string id);
        None
  in
  let scalar_kind t =
    match Module_ir.find_type m t with
    | Some Ty.Int -> Some `Int
    | Some Ty.Float -> Some `Float
    | Some Ty.Bool -> Some `Bool
    | Some (Ty.Vector (c, _)) -> (
        match Module_ir.find_type m c with
        | Some Ty.Int -> Some `IntVec
        | Some Ty.Float -> Some `FloatVec
        | Some Ty.Bool -> Some `BoolVec
        | Some _ | None -> None)
    | Some _ | None -> None
  in
  match i.Instr.op with
  | Instr.Nop ->
      if i.Instr.result <> None then err ctx where "OpNop has no result"
  | Instr.Binop (op, a, b) -> (
      match (operand_ty "left" a, operand_ty "right" b) with
      | Some ta, Some tb ->
          if not (Id.equal ta tb) then
            err ctx where "binop operand types differ (%s vs %s)" (Id.to_string ta)
              (Id.to_string tb)
          else begin
            let kind = scalar_kind ta in
            let arith_ok kinds = List.exists (fun k -> kind = Some k) kinds in
            let is_cmp =
              match op with
              | Instr.IEqual | Instr.INotEqual | Instr.SLessThan
              | Instr.SLessThanEqual | Instr.SGreaterThan | Instr.SGreaterThanEqual
              | Instr.FOrdEqual | Instr.FOrdNotEqual | Instr.FOrdLessThan
              | Instr.FOrdLessThanEqual | Instr.FOrdGreaterThan
              | Instr.FOrdGreaterThanEqual ->
                  true
              | _ -> false
            in
            let int_op =
              match op with
              | Instr.IAdd | Instr.ISub | Instr.IMul | Instr.SDiv | Instr.SMod -> true
              | _ -> false
            in
            let float_op =
              match op with
              | Instr.FAdd | Instr.FSub | Instr.FMul | Instr.FDiv -> true
              | _ -> false
            in
            let bool_op =
              match op with Instr.LogicalAnd | Instr.LogicalOr -> true | _ -> false
            in
            let int_cmp =
              match op with
              | Instr.IEqual | Instr.INotEqual | Instr.SLessThan
              | Instr.SLessThanEqual | Instr.SGreaterThan | Instr.SGreaterThanEqual ->
                  true
              | _ -> false
            in
            if is_cmp then begin
              (* comparisons: scalar only, result Bool *)
              let ok =
                if int_cmp then arith_ok [ `Int ] else arith_ok [ `Float ]
              in
              if not ok then
                err ctx where "comparison %s on wrong operand type" (Instr.binop_name op);
              match Module_ir.find_type_id m Ty.Bool with
              | Some bool_ty -> expect_result bool_ty
              | None -> err ctx where "module lacks Bool type for comparison"
            end
            else begin
              let ok =
                (int_op && arith_ok [ `Int; `IntVec ])
                || (float_op && arith_ok [ `Float; `FloatVec ])
                || (bool_op && arith_ok [ `Bool ])
              in
              if not ok then
                err ctx where "binop %s on wrong operand type" (Instr.binop_name op);
              expect_result ta
            end
          end
      | _ -> ())
  | Instr.Unop (op, a) -> (
      match operand_ty "operand" a with
      | None -> ()
      | Some ta -> (
          let kind = scalar_kind ta in
          match op with
          | Instr.SNegate ->
              if kind <> Some `Int && kind <> Some `IntVec then
                err ctx where "SNegate on non-int";
              expect_result ta
          | Instr.FNegate ->
              if kind <> Some `Float && kind <> Some `FloatVec then
                err ctx where "FNegate on non-float";
              expect_result ta
          | Instr.LogicalNot ->
              if kind <> Some `Bool then err ctx where "LogicalNot on non-bool";
              expect_result ta
          | Instr.ConvertSToF -> (
              match (kind, i.Instr.ty) with
              | Some `Int, Some rt ->
                  if Module_ir.find_type m rt <> Some Ty.Float then
                    err ctx where "ConvertSToF must produce float"
              | Some `IntVec, Some rt -> (
                  match (Module_ir.find_type m ta, Module_ir.find_type m rt) with
                  | Some (Ty.Vector (_, n)), Some (Ty.Vector (c, n'))
                    when n = n' && Module_ir.find_type m c = Some Ty.Float ->
                      ()
                  | _ -> err ctx where "ConvertSToF vector shape mismatch")
              | _ -> err ctx where "ConvertSToF on non-int")
          | Instr.ConvertFToS -> (
              match (kind, i.Instr.ty) with
              | Some `Float, Some rt ->
                  if Module_ir.find_type m rt <> Some Ty.Int then
                    err ctx where "ConvertFToS must produce int"
              | Some `FloatVec, Some rt -> (
                  match (Module_ir.find_type m ta, Module_ir.find_type m rt) with
                  | Some (Ty.Vector (_, n)), Some (Ty.Vector (c, n'))
                    when n = n' && Module_ir.find_type m c = Some Ty.Int ->
                      ()
                  | _ -> err ctx where "ConvertFToS vector shape mismatch")
              | _ -> err ctx where "ConvertFToS on non-float")))
  | Instr.Select (c, tv, fv) -> (
      (match ty_struct c with
      | Some Ty.Bool -> ()
      | Some _ | None -> err ctx where "select condition must be scalar bool");
      match (tid tv, tid fv) with
      | Some t1, Some t2 ->
          if not (Id.equal t1 t2) then err ctx where "select arms have different types"
          else begin
            (match Module_ir.find_type m t1 with
            | Some (Ty.Pointer _) -> err ctx where "select on pointers is not allowed"
            | Some _ | None -> ());
            expect_result t1
          end
      | _ -> err ctx where "select arm has no type")
  | Instr.CompositeConstruct parts -> (
      match i.Instr.ty with
      | None -> err ctx where "CompositeConstruct must have a result type"
      | Some rt -> (
          match Module_ir.composite_arity m rt with
          | None -> err ctx where "CompositeConstruct of non-composite type"
          | Some n ->
              if List.length parts <> n then
                err ctx where "CompositeConstruct arity %d, expected %d"
                  (List.length parts) n
              else
                List.iteri
                  (fun idx part ->
                    match (tid part, Module_ir.component_ty m rt idx) with
                    | Some pt, Some expected when not (Id.equal pt expected) ->
                        err ctx where "constituent %d type mismatch" idx
                    | None, _ -> err ctx where "constituent %d has no type" idx
                    | _ -> ())
                  parts;
              expect_result rt))
  | Instr.CompositeExtract (c, path) -> (
      if path = [] then err ctx where "CompositeExtract needs at least one index";
      match tid c with
      | None -> err ctx where "CompositeExtract source has no type"
      | Some ct -> (
          match Module_ir.ty_at_path m ct path with
          | Some expected -> expect_result expected
          | None -> err ctx where "CompositeExtract index path invalid"))
  | Instr.CompositeInsert (obj, c, path) -> (
      if path = [] then err ctx where "CompositeInsert needs at least one index";
      match (tid obj, tid c) with
      | Some ot, Some ct -> (
          match Module_ir.ty_at_path m ct path with
          | Some at_path ->
              if not (Id.equal ot at_path) then
                err ctx where "CompositeInsert object type mismatch";
              expect_result ct
          | None -> err ctx where "CompositeInsert index path invalid")
      | _ -> err ctx where "CompositeInsert operand has no type")
  | Instr.Load p -> (
      match ty_struct p with
      | Some (Ty.Pointer (_, pointee)) -> expect_result pointee
      | Some _ | None -> err ctx where "load source is not a pointer")
  | Instr.Store (p, v) -> (
      if i.Instr.result <> None then err ctx where "store has no result";
      match ty_struct p with
      | Some (Ty.Pointer (sc, pointee)) -> (
          (match sc with
          | Ty.Uniform | Ty.Input -> err ctx where "store to read-only storage class"
          | Ty.Function | Ty.Private | Ty.Output -> ());
          match tid v with
          | Some vt when not (Id.equal vt pointee) ->
              err ctx where "store value type mismatch"
          | Some _ -> ()
          | None -> err ctx where "store value has no type")
      | Some _ | None -> err ctx where "store destination is not a pointer")
  | Instr.AccessChain (base, idxs) -> (
      if idxs = [] then err ctx where "access chain needs at least one index";
      match ty_struct base with
      | Some (Ty.Pointer (sc, pointee)) -> (
          let rec walk t = function
            | [] -> Some t
            | idx :: rest -> (
                (match ty_struct idx with
                | Some Ty.Int -> ()
                | Some _ | None -> err ctx where "access chain index must be int");
                match Module_ir.find_type m t with
                | Some (Ty.Struct members) -> (
                    (* struct index must be a compile-time constant *)
                    match Module_ir.find_constant m idx with
                    | Some { Module_ir.cd_value = Constant.Int k; _ } -> (
                        match List.nth_opt members (Int32.to_int k) with
                        | Some mem -> walk mem rest
                        | None ->
                            err ctx where "struct index out of range";
                            None)
                    | Some _ | None ->
                        err ctx where "struct index must be an int constant";
                        None)
                | Some (Ty.Vector (c, _)) -> walk c rest
                | Some (Ty.Array (c, _)) -> walk c rest
                | Some (Ty.Matrix (col, _)) -> walk col rest
                | Some _ | None ->
                    err ctx where "access chain into non-composite";
                    None)
          in
          match walk pointee idxs with
          | Some final -> (
              match Module_ir.find_type_id m (Ty.Pointer (sc, final)) with
              | Some expected -> expect_result expected
              | None ->
                  err ctx where "module lacks pointer type for access chain result")
          | None -> ())
      | Some _ | None -> err ctx where "access chain base is not a pointer")
  | Instr.FunctionCall (callee, args) -> (
      match Module_ir.find_function m callee with
      | None -> err ctx where "call to unknown function %s" (Id.to_string callee)
      | Some g -> (
          match Module_ir.find_type m g.Func.fn_ty with
          | Some (Ty.Func (ret, param_tys)) -> (
              if List.length args <> List.length param_tys then
                err ctx where "call arity mismatch"
              else
                List.iteri
                  (fun idx (arg, expected) ->
                    match tid arg with
                    | Some at when not (Id.equal at expected) ->
                        err ctx where "call argument %d type mismatch" idx
                    | Some _ -> ()
                    | None -> err ctx where "call argument %d has no type" idx)
                  (List.combine args param_tys);
              match Module_ir.find_type m ret with
              | Some Ty.Void ->
                  if i.Instr.result <> None then
                    (* calling a void function with a result id: we model it
                       as a unit value; SPIR-V instead requires a result of
                       void type.  Accept a result typed with the void id. *)
                    expect_result ret
              | Some _ | None -> expect_result ret)
          | Some _ | None -> err ctx where "callee has a non-function type"))
  | Instr.Phi incoming ->
      List.iter
        (fun (v, _) ->
          match (tid v, i.Instr.ty) with
          | Some vt, Some rt when not (Id.equal vt rt) ->
              err ctx where "phi incoming value type mismatch"
          | None, _ -> err ctx where "phi incoming value has no type"
          | _ -> ())
        incoming;
      (match i.Instr.ty with
      | Some rt -> expect_result rt
      | None -> err ctx where "phi must have a type")
  | Instr.CopyObject x -> (
      match tid x with
      | Some t -> expect_result t
      | None -> err ctx where "CopyObject source has no type")
  | Instr.Variable sc -> (
      (match sc with
      | Ty.Function -> ()
      | _ -> err ctx where "function-scope variable must have Function storage");
      match i.Instr.ty with
      | Some t -> (
          match Module_ir.find_type m t with
          | Some (Ty.Pointer (Ty.Function, _)) -> ()
          | Some _ | None -> err ctx where "variable type must be a Function pointer")
      | None -> err ctx where "variable must have a type");
      (* entry-block placement is enforced by the block checks *)
      ignore f
  | Instr.Undef -> (
      match i.Instr.ty with
      | Some t -> (
          match Module_ir.find_type m t with
          | Some (Ty.Void | Ty.Func _) -> err ctx where "undef of void/function type"
          | Some _ -> ()
          | None -> err ctx where "undef of unknown type")
      | None -> err ctx where "undef must have a type")

let check_function ctx (f : Func.t) =
  let m = ctx.m in
  let fname = Printf.sprintf "function %s(%s)" (Id.to_string f.Func.id) f.Func.name in
  (* function type matches parameters *)
  (match Module_ir.find_type m f.Func.fn_ty with
  | Some (Ty.Func (_, param_tys)) ->
      if List.length param_tys <> List.length f.Func.params then
        err ctx fname "parameter count does not match function type"
      else
        List.iteri
          (fun i ((p : Func.param), expected) ->
            if not (Id.equal p.Func.param_ty expected) then
              err ctx fname "parameter %d type mismatch" i)
          (List.combine f.Func.params param_tys)
  | Some _ | None -> err ctx fname "function type is not a function type");
  match f.Func.blocks with
  | [] -> err ctx fname "function has no blocks"
  | entry_b :: _ ->
      (* the shared analyses: control-flow graph, dominator tree and
         definition sites all come from Dataflow.Availability (via
         Analysis), never re-derived here *)
      let an = Analysis.make m f in
      let cfg = Analysis.cfg an in
      let dom = Analysis.dominance an in
      (* entry block must have no predecessors *)
      if Cfg.predecessors cfg entry_b.Block.label <> [] then
        err ctx fname "entry block has predecessors";
      (* all branch targets exist *)
      List.iter
        (fun (b : Block.t) ->
          List.iter
            (fun target ->
              if Func.find_block f target = None then
                err ctx fname "branch to unknown block %s" (Id.to_string target))
            (Block.successors b))
        f.Func.blocks;
      (* block order: a block precedes all blocks it strictly dominates *)
      let positions = Hashtbl.create 16 in
      List.iteri (fun i (b : Block.t) -> Hashtbl.replace positions b.Block.label i) f.Func.blocks;
      List.iter
        (fun (b : Block.t) ->
          List.iter
            (fun (b' : Block.t) ->
              if
                (not (Id.equal b.Block.label b'.Block.label))
                && Dominance.strictly_dominates dom b.Block.label b'.Block.label
                && Hashtbl.find positions b.Block.label > Hashtbl.find positions b'.Block.label
              then
                err ctx fname "block %s appears after a block it dominates (%s)"
                  (Id.to_string b.Block.label) (Id.to_string b'.Block.label))
            f.Func.blocks)
        f.Func.blocks;
      (* id typing environment for this function *)
      let local_types =
        let tbl = Hashtbl.create 64 in
        List.iter (fun (p : Func.param) -> Hashtbl.replace tbl p.Func.param_id p.Func.param_ty) f.Func.params;
        List.iter
          (fun (b : Block.t) ->
            List.iter
              (fun (i : Instr.t) ->
                match (i.Instr.result, i.Instr.ty) with
                | Some r, Some t -> Hashtbl.replace tbl r t
                | _ -> ())
              b.Block.instrs)
          f.Func.blocks;
        tbl
      in
      let ty_of id =
        match Hashtbl.find_opt local_types id with
        | Some t -> Some t
        | None -> (
            match Module_ir.find_constant m id with
            | Some c -> Some c.Module_ir.cd_ty
            | None -> (
                match Module_ir.find_global m id with
                | Some g -> Some g.Module_ir.gd_ty
                | None -> None))
      in
      (* availability (definition sites + the dominance rule, with its
         relaxation in unreachable code) is the shared analysis *)
      let available ~in_block ~at_index id =
        Analysis.available_at an ~block:in_block ~index:at_index id
      in
      (* per-block checks *)
      List.iteri
        (fun block_pos (b : Block.t) ->
          let where =
            Printf.sprintf "%s, block %s" fname (Id.to_string b.Block.label)
          in
          (* phis only at the start *)
          let seen_non_phi = ref false in
          List.iter
            (fun (i : Instr.t) ->
              if Instr.is_phi i then begin
                if !seen_non_phi then err ctx where "phi after non-phi instruction"
              end
              else seen_non_phi := true)
            b.Block.instrs;
          (* variables only in the entry block *)
          if block_pos > 0 then
            List.iter
              (fun (i : Instr.t) ->
                match i.Instr.op with
                | Instr.Variable _ -> err ctx where "variable outside the entry block"
                | _ -> ())
              b.Block.instrs;
          (* entry block may not have phis *)
          if block_pos = 0 then
            List.iter
              (fun (i : Instr.t) ->
                if Instr.is_phi i then err ctx where "phi in entry block")
              b.Block.instrs;
          (* phi incoming blocks = predecessors, when reachable *)
          let preds = Cfg.predecessors cfg b.Block.label in
          List.iter
            (fun (i : Instr.t) ->
              match i.Instr.op with
              | Instr.Phi incoming ->
                  if Cfg.is_reachable cfg b.Block.label then begin
                    let incoming_blocks = List.map snd incoming in
                    let sorted_inc = List.sort_uniq Id.compare incoming_blocks in
                    let sorted_preds = List.sort_uniq Id.compare preds in
                    if List.length incoming_blocks <> List.length sorted_inc then
                      err ctx where "phi has duplicate predecessor entries";
                    if sorted_inc <> sorted_preds then
                      err ctx where "phi predecessors do not match block predecessors";
                    (* each incoming value must be available at the end of its
                       predecessor *)
                    List.iter
                      (fun (v, pred) ->
                        if not (available ~in_block:pred ~at_index:max_int v) then
                          err ctx where "phi value %s unavailable at predecessor %s"
                            (Id.to_string v) (Id.to_string pred))
                      incoming
                  end
              | _ -> ())
            b.Block.instrs;
          (* operand availability and instruction typing *)
          List.iteri
            (fun idx (i : Instr.t) ->
              (match i.Instr.op with
              | Instr.Phi _ -> () (* availability handled above *)
              | Instr.FunctionCall (_, args) ->
                  List.iter
                    (fun u ->
                      if not (available ~in_block:b.Block.label ~at_index:idx u) then
                        err ctx where "use of unavailable id %s" (Id.to_string u))
                    args
              | _ ->
                  List.iter
                    (fun u ->
                      if not (available ~in_block:b.Block.label ~at_index:idx u) then
                        err ctx where "use of unavailable id %s" (Id.to_string u))
                    (Instr.used_ids i));
              check_instr ctx f where ~ty_of i)
            b.Block.instrs;
          (* terminator *)
          (match b.Block.terminator with
          | Block.BranchConditional (c, _, _) -> (
              if not (available ~in_block:b.Block.label ~at_index:max_int c) then
                err ctx where "branch condition %s unavailable" (Id.to_string c);
              match Option.bind (ty_of c) (Module_ir.find_type m) with
              | Some Ty.Bool -> ()
              | Some _ | None -> err ctx where "branch condition must be bool")
          | Block.ReturnValue v -> (
              if not (available ~in_block:b.Block.label ~at_index:max_int v) then
                err ctx where "returned id %s unavailable" (Id.to_string v);
              match Module_ir.find_type m f.Func.fn_ty with
              | Some (Ty.Func (ret, _)) -> (
                  match ty_of v with
                  | Some vt when not (Id.equal vt ret) ->
                      err ctx where "return value type mismatch"
                  | Some _ -> ()
                  | None -> err ctx where "return value has no type")
              | Some _ | None -> ())
          | Block.Return -> (
              match Module_ir.find_type m f.Func.fn_ty with
              | Some (Ty.Func (ret, _)) -> (
                  match Module_ir.find_type m ret with
                  | Some Ty.Void -> ()
                  | Some _ | None -> err ctx where "plain return from non-void function")
              | Some _ | None -> ())
          | Block.Branch _ | Block.Kill | Block.Unreachable -> ());
          (* branch targets may not be the entry block *)
          List.iter
            (fun target ->
              if Id.equal target entry_b.Block.label then
                err ctx where "branch targets the entry block")
            (Block.successors b))
        f.Func.blocks

let check m =
  let ctx = { m; errors = Queue.create () } in
  check_ids ctx;
  check_types ctx;
  check_constants ctx;
  check_globals ctx;
  check_entry ctx;
  check_call_graph ctx;
  List.iter (check_function ctx) m.Module_ir.functions;
  (* the queue is appended in check order, so errors come out in source
     order by construction (regression-tested) *)
  match List.of_seq (Queue.to_seq ctx.errors) with
  | [] -> Ok ()
  | errors -> Error errors

let is_valid m = match check m with Ok () -> true | Error _ -> false

let first_error m =
  match check m with
  | Ok () -> None
  | Error (e :: _) -> Some (error_to_string e)
  | Error [] -> None
