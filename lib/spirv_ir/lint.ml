(** IR lint: structured diagnostics over the shared {!Dataflow} analyses.

    Lint complements {!Validate}: the validator rejects modules that break
    the IR's hard rules, while lint reports both those hard breaks (as
    [Error]s, so the transformation-contract checker can ask "did this
    transformation introduce new errors?") and soft hygiene findings
    ([Warning]s — dead code, write-only locals) that are legal but suspect
    in hand-written or freshly lowered modules.  Lint never raises on
    malformed input. *)

type severity = Error | Warning [@@deriving show { with_path = false }, eq]

type finding = {
  rule : string;  (** stable rule id, e.g. ["undominated-use"] *)
  severity : severity;
  fn : Id.t option;     (** containing function, if any *)
  block : Id.t option;  (** containing block, if any *)
  message : string;
}
[@@deriving show { with_path = false }, eq]

let severity_to_string = function Error -> "error" | Warning -> "warning"

let to_string f =
  let loc =
    match (f.fn, f.block) with
    | Some fn, Some b ->
        Printf.sprintf " %s/%s" (Id.to_string fn) (Id.to_string b)
    | Some fn, None -> " " ^ Id.to_string fn
    | None, _ -> ""
  in
  Printf.sprintf "%s[%s]%s: %s" (severity_to_string f.severity) f.rule loc
    f.message

let errors findings = List.filter (fun f -> f.severity = Error) findings
let error_count findings = List.length (errors findings)

(* ------------------------------------------------------------------ *)
(* Per-function rules                                                  *)

let check_function m (f : Func.t) : finding list =
  let av = Dataflow.Availability.make m f in
  let cfg = Dataflow.Availability.cfg av in
  let dom = Dataflow.Availability.dominance av in
  let live = Dataflow.Liveness.compute f in
  let out = ref [] in
  let report ?block rule severity fmt =
    Printf.ksprintf
      (fun message ->
        out := { rule; severity; fn = Some f.Func.id; block; message } :: !out)
      fmt
  in
  let available ~block ~index id =
    Dataflow.Availability.available_at av ~block ~index id
  in
  (* dead-block: unreachable from the entry block *)
  List.iter
    (fun (b : Block.t) ->
      if not (Cfg.is_reachable cfg b.Block.label) then
        report ~block:b.Block.label "dead-block" Warning
          "block %s is unreachable from the entry block"
          (Id.to_string b.Block.label))
    f.Func.blocks;
  (* block-order: every block must precede the blocks it strictly
     dominates (the canonical SPIR-V layout the validator also enforces) *)
  let positions = Hashtbl.create 16 in
  List.iteri
    (fun i (b : Block.t) -> Hashtbl.replace positions b.Block.label i)
    f.Func.blocks;
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (b' : Block.t) ->
          if
            (not (Id.equal b.Block.label b'.Block.label))
            && Dominance.strictly_dominates dom b.Block.label b'.Block.label
            && Hashtbl.find positions b.Block.label
               > Hashtbl.find positions b'.Block.label
          then
            report ~block:b.Block.label "block-order" Error
              "block %s appears after block %s, which it dominates"
              (Id.to_string b.Block.label) (Id.to_string b'.Block.label))
        f.Func.blocks)
    f.Func.blocks;
  List.iter
    (fun (b : Block.t) ->
      let label = b.Block.label in
      let reachable = Cfg.is_reachable cfg label in
      let preds = Cfg.predecessors cfg label in
      (* phi-arg-mismatch: incoming entries vs. actual predecessors
         (meaningful only where reachability fixes the predecessor set) *)
      List.iter
        (fun (i : Instr.t) ->
          match i.Instr.op with
          | Instr.Phi incoming when reachable ->
              let incoming_blocks = List.map snd incoming in
              let sorted_inc = List.sort_uniq Id.compare incoming_blocks in
              let sorted_preds = List.sort_uniq Id.compare preds in
              if List.length incoming_blocks <> List.length sorted_inc then
                report ~block:label "phi-arg-mismatch" Error
                  "phi %s has duplicate predecessor entries"
                  (match i.Instr.result with
                  | Some r -> Id.to_string r
                  | None -> "<no result>");
              if sorted_inc <> sorted_preds then
                report ~block:label "phi-arg-mismatch" Error
                  "phi %s incoming blocks do not match the predecessors"
                  (match i.Instr.result with
                  | Some r -> Id.to_string r
                  | None -> "<no result>")
          | _ -> ())
        b.Block.instrs;
      (* undominated-use: every value operand must be available at its use
         site (φ values at the end of their predecessor) *)
      List.iteri
        (fun idx (i : Instr.t) ->
          let check_use u =
            if not (available ~block:label ~index:idx u) then
              report ~block:label "undominated-use" Error
                "use of %s is not dominated by its definition"
                (Id.to_string u)
          in
          match i.Instr.op with
          | Instr.Phi incoming ->
              if reachable then
                List.iter
                  (fun (v, pred) ->
                    if not (available ~block:pred ~index:max_int v) then
                      report ~block:label "undominated-use" Error
                        "phi value %s is unavailable at the end of \
                         predecessor %s"
                        (Id.to_string v) (Id.to_string pred))
                  incoming
          | Instr.FunctionCall (_, args) -> List.iter check_use args
          | _ -> List.iter check_use (Instr.used_ids i))
        b.Block.instrs;
      List.iter
        (fun u ->
          if not (available ~block:label ~index:max_int u) then
            report ~block:label "undominated-use" Error
              "terminator use of %s is not dominated by its definition"
              (Id.to_string u))
        (Block.terminator_used_ids b.Block.terminator);
      (* dead-result: a side-effect-free instruction whose result is not
         live after it (reachable blocks only: unreachable ones are already
         reported whole) *)
      if reachable then begin
        let live_after =
          List.fold_left
            (fun s u -> Id.Set.add u s)
            (Dataflow.Liveness.live_out live label)
            (Block.terminator_used_ids b.Block.terminator)
        in
        let _ =
          List.fold_left
            (fun live (i : Instr.t) ->
              (match (i.Instr.result, Instr.has_side_effect i) with
              | Some r, false when not (Id.Set.mem r live) ->
                  report ~block:label "dead-result" Warning
                    "result %s is never used" (Id.to_string r)
              | _ -> ());
              let live =
                match i.Instr.result with
                | Some r -> Id.Set.remove r live
                | None -> live
              in
              let uses =
                match i.Instr.op with
                | Instr.Phi _ -> []  (* φ uses live at predecessor ends *)
                | _ -> Instr.used_ids i
              in
              List.fold_left (fun s u -> Id.Set.add u s) live uses)
            live_after
            (List.rev b.Block.instrs)
        in
        ()
      end)
    f.Func.blocks;
  (* store-never-read: function-local variables whose stores can never be
     observed *)
  Id.Set.iter
    (fun v ->
      let block =
        Option.map fst (Dataflow.Availability.def_site av v)
      in
      report ?block "store-never-read" Warning
        "local %s is stored to but never read" (Id.to_string v))
    (Dataflow.write_only_locals f);
  (* memory rules, over the shared access-path / alias analysis *)
  let mem = Memory.analyze m f ~avail:av in
  let kind_str (a : Memory.access) =
    match a.Memory.a_kind with
    | Memory.ALoad -> "load"
    | Memory.AStore -> "store"
  in
  let path_str (a : Memory.access) =
    match a.Memory.a_path with
    | Some p -> Memory.path_to_string p
    | None -> "<unresolved>"
  in
  (* possible-out-of-bounds: a resolved chain access whose index interval
     is not provably within the composite.  An Error even though the
     runtime clamps: a clamped access aliases a cell the author never
     named, which is exactly how UB-adjacent modules masquerade as
     miscompilations. *)
  List.iter
    (fun (a : Memory.access) ->
      match a.Memory.a_path with
      | Some p when p.Memory.segs <> [] && not a.Memory.in_bounds ->
          report ~block:a.Memory.a_block "possible-out-of-bounds" Error
            "%s through %s may index out of bounds: %s" (kind_str a)
            (Id.to_string a.Memory.a_ptr)
            (Memory.path_to_string p)
      | _ -> ())
    (Memory.accesses mem);
  (* uninitialized-load: the initial-value token reaches the load *)
  List.iter
    (fun (a : Memory.access) ->
      report ~block:a.Memory.a_block "uninitialized-load" Warning
        "load %s may observe the zero-initialized default of %s"
        (Id.to_string a.Memory.a_ptr) (path_str a))
    (Memory.uninitialized_loads mem);
  (* dead-store: no may-aliasing load is reachable from the store (bases
     with no loads at all belong to store-never-read above) *)
  List.iter
    (fun (a : Memory.access) ->
      report ~block:a.Memory.a_block "dead-store" Warning
        "store through %s to %s is never observed by a load"
        (Id.to_string a.Memory.a_ptr) (path_str a))
    (Memory.dead_stores mem);
  (* redundant-load: a same-block must-aliasing reload with no intervening
     may-aliasing store or call *)
  List.iter
    (fun ((first : Memory.access), (again : Memory.access)) ->
      report ~block:again.Memory.a_block "redundant-load" Warning
        "load %s of %s reloads the value of %s in the same block"
        (Id.to_string again.Memory.a_ptr) (path_str again)
        (Id.to_string first.Memory.a_ptr))
    (Memory.redundant_loads mem);
  (* loop rules, over the natural-loop forest *)
  let forest = Loops.analyze cfg dom in
  List.iter
    (fun (u, v) ->
      report ~block:u "irreducible-cfg" Warning
        "retreating edge %s -> %s whose target does not dominate its \
         source: the region is irreducible"
        (Id.to_string u) (Id.to_string v))
    forest.Loops.irreducible;
  List.iter
    (fun (l : Loops.loop) ->
      (* infinite-loop: a natural loop with no exit edge can only spin
         (Return/Kill terminators end a block outside any cycle, so a
         body without exit edges has no way out) *)
      if l.Loops.exits = [] then
        report ~block:l.Loops.header "infinite-loop" Error
          "loop headed at %s has no exit edge"
          (Id.to_string l.Loops.header);
      (* loop-invariant-code: a pure value instruction inside the loop
         whose operands are all defined outside it recomputes the same
         value every iteration *)
      let defined_in_loop id =
        match Dataflow.Availability.def_site av id with
        | Some (bl, _) -> Id.Set.mem bl l.Loops.blocks
        | None -> false
      in
      List.iter
        (fun (b : Block.t) ->
          if Id.Set.mem b.Block.label l.Loops.blocks then
            List.iter
              (fun (i : Instr.t) ->
                match (i.Instr.result, i.Instr.op) with
                | ( Some r,
                    ( Instr.Binop _ | Instr.Unop _ | Instr.Select _
                    | Instr.CompositeConstruct _ | Instr.CompositeExtract _
                    | Instr.CompositeInsert _ ) )
                  when not (List.exists defined_in_loop (Instr.used_ids i))
                  ->
                    report ~block:b.Block.label "loop-invariant-code" Warning
                      "%s is loop-invariant in the loop headed at %s"
                      (Id.to_string r)
                      (Id.to_string l.Loops.header)
                | _ -> ())
              b.Block.instrs)
        f.Func.blocks)
    forest.Loops.loops;
  List.rev !out

let check_module (m : Module_ir.t) : finding list =
  List.concat_map (check_function m) m.Module_ir.functions
