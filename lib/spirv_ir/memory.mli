(** Memory / alias static analysis over [Load], [Store] and [AccessChain].

    Every pointer the function manipulates is resolved to an {e access
    path}: an allocation {!base} (a global or a function-local variable)
    plus one interval-indexed {!seg} per access-chain level, with the index
    intervals sourced from {!Dataflow.Ranges}.  On top of the paths the
    analysis proves three families of facts, all of which are consumed as
    free oracles elsewhere:

    - {b in-bounds} — every segment's interval fits the composite it
      indexes ({!access}.in_bounds), which is what licenses [Symval] to
      fold a dynamic index into an if-then-else over the cells it can
      reach instead of abstaining with [`Dynamic_index];
    - {b aliasing} — a must/may/no-alias {!verdict} for any two accesses.
      Distinct allocations never overlap (each base is its own cell in the
      interpreter), and same-base accesses are disjoint whenever some
      segment level has disjoint (clamped) index intervals;
    - {b memory def-use} — a reaching-stores relation per load (a forward
      may-dataflow over per-component def sets, seeded with an [Init]
      token), from which fall out uninitialized loads, dead stores and
      redundant loads — the memory lint rules and the optimizer's
      DSE cross-check.

    Soundness leans on the IR's total memory semantics: out-of-range
    indices clamp (see [Value.extract_at_path]), so verdicts compare
    {e clamped} intervals and an unprovable bound degrades to [May_alias] /
    not-in-bounds rather than undefined behavior. *)

(** {1 Access paths} *)

type base =
  | Global of Id.t
  | Local of Id.t  (** a [Variable] allocation in this function *)

val base_id : base -> Id.t
val base_equal : base -> base -> bool
val base_to_string : base -> string

type seg = {
  seg_itv : Dataflow.Itv.t;  (** unclamped index interval at this level *)
  seg_len : int;             (** component count of the composite indexed *)
}

type path = {
  base : base;
  segs : seg list;  (** outermost index first; [] is the whole variable *)
  pointee : Id.t;   (** type id the path designates *)
}

val path_to_string : path -> string

type kind = ALoad | AStore

type access = {
  ord : int;           (** position in {!accesses}; the def token of a store *)
  a_kind : kind;
  a_block : Id.t;
  a_index : int;       (** instruction index within the block *)
  a_ptr : Id.t;        (** the pointer operand *)
  a_path : path option;  (** [None]: pointer not resolvable (φ/select/param) *)
  in_bounds : bool;
      (** resolved and every segment interval within [0, seg_len-1] *)
}

(** {1 Analysis} *)

type t

val analyze : Module_ir.t -> Func.t -> avail:Dataflow.Availability.t -> t
(** Resolve every access of [f]'s reachable blocks and solve the
    reaching-stores dataflow.  [avail] is the caller's already-derived
    availability (source of the {!Cfg}), matching the sharing discipline of
    the other analyses. *)

val accesses : t -> access list
(** In block order, instruction order within a block (reachable blocks
    only). *)

val path_of : t -> Id.t -> path option
(** The access path a pointer-typed id resolves to, if any. *)

val chain_segs : t -> Id.t -> seg list option
(** For an [AccessChain] result: the segments contributed by {e its own}
    index operands (the suffix of [path_of]'s segments), in operand order —
    what [Symval]'s symbolic memory model consumes. *)

val escapes : t -> base -> bool
(** The base's address flows into a call argument, φ, select, composite or
    stored value — after which per-function reasoning about who reads or
    writes it is forfeit (calls become weak definitions of its cells). *)

val index_interval : t -> block:Id.t -> Id.t -> Dataflow.Itv.t
(** Sound interval for an index id as observed by a chain in [block]
    (constants fold; otherwise the meet of the block-exit and defining-site
    {!Dataflow.Ranges} bindings). *)

(** {1 Facts} *)

type verdict = Must_alias | May_alias | No_alias

val verdict_to_string : verdict -> string

val alias : t -> access -> access -> verdict
(** [No_alias] is a proof the two accesses touch disjoint cells in every
    execution; [Must_alias] a proof they touch exactly the same cell;
    [May_alias] is the absence of either proof. *)

val reaching_stores : t -> access -> int list
(** Store ordinals whose value the load may observe; [-1] is the
    initial-value token, [-2] an opaque write through a call (globals and
    escaped locals only). *)

val uninitialized_loads : t -> access list
(** Loads of a non-escaping local that may observe the zero-initialized
    default value ([-1] reaches them). *)

val dead_stores : t -> access list
(** Stores to a non-escaping local that {e is} loaded somewhere, but where
    no may-aliasing load is reachable from the store.  Disjoint from the
    [store-never-read] lint domain, which owns bases with no loads at
    all. *)

val redundant_loads : t -> (access * access) list
(** (earlier, later) same-block chain-load pairs that must-alias with no
    intervening may-aliasing store or call — the later load is the
    redundant one. *)

val observable_store : t -> block:Id.t -> index:int -> bool
(** May the store at this position be observed by any later read?  [true]
    conservatively for unresolved pointers, globals and escaped locals.
    The optimizer's DSE cross-check requires [false] before a store may be
    deleted. *)

(** {1 Reporting} *)

type stats = {
  n_loads : int;
  n_stores : int;
  n_resolved : int;
  n_in_bounds : int;
  n_pairs : int;  (** unordered access pairs classified *)
  n_no_alias : int;
  n_may_alias : int;
  n_must_alias : int;
  n_uninitialized : int;
  n_dead_stores : int;
  n_redundant_loads : int;
}

val stats : t -> stats

val access_to_string : t -> access -> string
