(* Hash-consed symbolic value graphs and the module summarizer behind the
   translation validator.  The evaluator mirrors Interp's total reference
   semantics construct for construct (same clamping, same φ-on-the-edge
   discipline, same lookup order env → globals → constants); wherever it
   cannot, it raises Abstain instead of approximating. *)

type reason =
  [ `Loop_unbounded  (** back edge with no provable trip-count bound *)
  | `Budget  (** node / visit / call-depth / unroll budget exhausted *)
  | `Dynamic_index  (** access chain indexed by a symbolic value *)
  | `Forced_unroll  (** a mismatch reached only through forced loop exits *)
  | `Unsupported  (** construct outside the modelled fragment semantics *)
  | `Internal  (** malformed module: the evaluator's invariants broke *) ]

let reason_label : reason -> string = function
  | `Loop_unbounded -> "loop-unbounded"
  | `Budget -> "budget"
  | `Dynamic_index -> "dynamic-index"
  | `Forced_unroll -> "forced-unroll"
  | `Unsupported -> "unsupported"
  | `Internal -> "internal"

let reason_labels =
  List.map reason_label
    [ `Loop_unbounded; `Budget; `Dynamic_index; `Forced_unroll; `Unsupported;
      `Internal ]

exception Abstain of reason * string

let abstain reason fmt =
  Printf.ksprintf (fun s -> raise (Abstain (reason, s))) fmt

type desc =
  | Const of Value.t
  | Source of string  (** uniform / fragment-coordinate input, by name *)
  | Dead
      (** the value of a path that produces no value: a killed fragment's
          result, a void return.  Absorbed by [select] merges — a killed
          arm's values are unobservable. *)
  | App of string * node list  (** operator tag + normalized operands *)
  | Extract of node * int list
  | Insert of node * node * int list  (** inserted value, base, path *)

and node = { nid : int; desc : desc }

type ctx = {
  tbl : (string, node) Hashtbl.t;
  mutable next_id : int;
  mutable visits : int;
  mutable local_serial : int;
  mutable forced_exits : int;
  mutable mem_proofs : int;
  max_visits : int;
  max_nodes : int;
  max_unroll : int;
}

let create ?(max_visits = 20_000) ?(max_nodes = 200_000) ?(max_unroll = 64) () =
  {
    tbl = Hashtbl.create 1024;
    next_id = 0;
    visits = 0;
    local_serial = 0;
    forced_exits = 0;
    mem_proofs = 0;
    max_visits;
    max_nodes;
    max_unroll;
  }

let node_count ctx = ctx.next_id
let forced_exits ctx = ctx.forced_exits
let mem_proofs ctx = ctx.mem_proofs

(* Interning keys use the float's bit pattern, matching Value.equal's
   bit-level comparison (so -0.0 and 0.0 intern to distinct constants,
   exactly as the image diff distinguishes them). *)
let rec value_key = function
  | Value.VBool b -> if b then "T" else "F"
  | Value.VInt i -> "i" ^ Int32.to_string i
  | Value.VFloat f -> "f" ^ Int64.to_string (Int64.bits_of_float f)
  | Value.VComposite xs ->
      let parts = Array.to_list (Array.map value_key xs) in
      "(" ^ String.concat "," parts ^ ")"

let path_key path = String.concat "." (List.map string_of_int path)

let desc_key = function
  | Const v -> "c:" ^ value_key v
  | Source s -> "s:" ^ s
  | Dead -> "d"
  | App (tag, args) ->
      "a:" ^ tag ^ ":"
      ^ String.concat "," (List.map (fun n -> string_of_int n.nid) args)
  | Extract (base, path) -> "x:" ^ string_of_int base.nid ^ ":" ^ path_key path
  | Insert (v, base, path) ->
      "n:" ^ string_of_int v.nid ^ ":" ^ string_of_int base.nid ^ ":"
      ^ path_key path

let mk ctx desc =
  let key = desc_key desc in
  match Hashtbl.find_opt ctx.tbl key with
  | Some n -> n
  | None ->
      if ctx.next_id >= ctx.max_nodes then
        abstain `Budget "node budget exhausted (%d nodes)" ctx.max_nodes;
      let n = { nid = ctx.next_id; desc } in
      ctx.next_id <- ctx.next_id + 1;
      Hashtbl.add ctx.tbl key n;
      n

let const ctx v = mk ctx (Const v)
let source ctx s = mk ctx (Source s)
let dead ctx = mk ctx Dead
let cbool ctx b = const ctx (Value.VBool b)
let equal_node a b = a.nid = b.nid

let is_const_true n =
  match n.desc with Const (Value.VBool true) -> true | _ -> false

let is_dead n = match n.desc with Dead -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Smart constructors: every algebraic normalization lives here, so a
   canonical form is canonical no matter which pass produced it.        *)

let commutative = function
  | Instr.IAdd | Instr.IMul | Instr.FAdd | Instr.FMul | Instr.LogicalAnd
  | Instr.LogicalOr | Instr.IEqual | Instr.INotEqual | Instr.FOrdEqual
  | Instr.FOrdNotEqual ->
      true
  | Instr.ISub | Instr.SDiv | Instr.SMod | Instr.FSub | Instr.FDiv
  | Instr.SLessThan | Instr.SLessThanEqual | Instr.SGreaterThan
  | Instr.SGreaterThanEqual | Instr.FOrdLessThan | Instr.FOrdLessThanEqual
  | Instr.FOrdGreaterThan | Instr.FOrdGreaterThanEqual ->
      false

let binop ctx op a b =
  match (a.desc, b.desc) with
  | Const va, Const vb -> (
      try const ctx (Ops.eval_binop op va vb)
      with Ops.Type_error msg -> abstain `Internal "constant fold: %s" msg)
  | _ -> (
      (* Boolean identity/absorption/idempotence: the kill flag is
         composed with LogicalOr across calls, so these folds keep it in
         the same canonical form on both sides of a pass. *)
      let folded =
        match (op, a.desc, b.desc) with
        | Instr.LogicalAnd, Const (Value.VBool true), _ -> Some b
        | Instr.LogicalAnd, _, Const (Value.VBool true) -> Some a
        | Instr.LogicalAnd, Const (Value.VBool false), _
        | Instr.LogicalAnd, _, Const (Value.VBool false) ->
            Some (cbool ctx false)
        | Instr.LogicalOr, Const (Value.VBool false), _ -> Some b
        | Instr.LogicalOr, _, Const (Value.VBool false) -> Some a
        | Instr.LogicalOr, Const (Value.VBool true), _
        | Instr.LogicalOr, _, Const (Value.VBool true) ->
            Some (cbool ctx true)
        | (Instr.LogicalAnd | Instr.LogicalOr), _, _ when a.nid = b.nid ->
            Some a
        | _ -> None
      in
      match folded with
      | Some n -> n
      | None ->
          let a, b = if commutative op && b.nid < a.nid then (b, a) else (a, b) in
          mk ctx (App (Instr.binop_name op, [ a; b ])))

let unop ctx op a =
  match a.desc with
  | Const v -> (
      try const ctx (Ops.eval_unop op v)
      with Ops.Type_error msg -> abstain `Internal "constant fold: %s" msg)
  | _ -> mk ctx (App (Instr.unop_name op, [ a ]))

let ite ctx c a b =
  match c.desc with
  | Const (Value.VBool cond) -> if cond then a else b
  | Const _ -> abstain `Internal "select condition is not a bool"
  | _ ->
      if a.nid = b.nid then a
      else if is_dead a then b
      else if is_dead b then a
      else mk ctx (App ("select", [ c; a; b ]))

let construct ctx args =
  let rec all_const acc = function
    | [] -> Some (List.rev acc)
    | { desc = Const v; _ } :: tl -> all_const (v :: acc) tl
    | _ -> None
  in
  match all_const [] args with
  | Some vs -> const ctx (Value.VComposite (Array.of_list vs))
  | None -> mk ctx (App ("construct", args))

let clamp_index len i = if i < 0 then 0 else if i >= len then len - 1 else i

let rec extract ctx n path =
  match path with
  | [] -> n
  | i :: rest -> (
      match n.desc with
      | Const v -> const ctx (Value.extract_at_path v (i :: rest))
      | App ("construct", args) ->
          let len = List.length args in
          if len = 0 then n
          else extract ctx (List.nth args (clamp_index len i)) rest
      | Extract (base, p) -> mk ctx (Extract (base, p @ (i :: rest)))
      | _ -> mk ctx (Extract (n, i :: rest)))

(* Functional update at a path, mirroring Value.update_at_path (clamped
   indices, no-op below scalars).  Constant composites decompose into
   construct nodes so that partial stores normalize to the same form
   whether or not a pass folded the surrounding constants. *)
let rec sym_update ctx base path v =
  match path with
  | [] -> v
  | i :: rest -> (
      match base.desc with
      | Const (Value.VBool _ | Value.VInt _ | Value.VFloat _) -> base
      | Const (Value.VComposite elems) ->
          let args = List.map (const ctx) (Array.to_list elems) in
          update_parts ctx args i rest v
      | App ("construct", args) -> update_parts ctx args i rest v
      | _ -> mk ctx (Insert (v, base, i :: rest)))

and update_parts ctx args i rest v =
  let len = List.length args in
  if len = 0 then construct ctx args
  else
    let i = clamp_index len i in
    construct ctx
      (List.mapi (fun j x -> if j = i then sym_update ctx x rest v else x) args)

(* ------------------------------------------------------------------ *)
(* Pretty-printing for mismatch witnesses.                             *)

let rec value_str = function
  | Value.VBool b -> string_of_bool b
  | Value.VInt i -> Int32.to_string i
  | Value.VFloat f -> Printf.sprintf "%g" f
  | Value.VComposite xs ->
      let parts = Array.to_list (Array.map value_str xs) in
      "{" ^ String.concat "," parts ^ "}"

let to_string n =
  let buf = Buffer.create 64 in
  let rec go depth n =
    if depth > 6 then Buffer.add_string buf "..."
    else
      match n.desc with
      | Const v -> Buffer.add_string buf (value_str v)
      | Source s -> Buffer.add_string buf ("<" ^ s ^ ">")
      | Dead -> Buffer.add_string buf "_|_"
      | App (tag, args) ->
          Buffer.add_string buf tag;
          Buffer.add_char buf '(';
          List.iteri
            (fun i a ->
              if i > 0 then Buffer.add_char buf ',';
              go (depth + 1) a)
            args;
          Buffer.add_char buf ')'
      | Extract (base, path) ->
          Buffer.add_string buf ("extract[" ^ path_key path ^ "](");
          go (depth + 1) base;
          Buffer.add_char buf ')'
      | Insert (v, base, path) ->
          Buffer.add_string buf ("insert[" ^ path_key path ^ "](");
          go (depth + 1) v;
          Buffer.add_string buf " into ";
          go (depth + 1) base;
          Buffer.add_char buf ')'
  in
  go 0 n;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* The symbolic evaluator.                                             *)

(* Memory roots: a global variable or one function-local allocation site
   instance.  Roots never appear inside nodes — only as keys of the
   symbolic store — so their serials need not align across modules. *)
module Root = struct
  type t = Rglobal of Id.t | Rlocal of int

  let compare = Stdlib.compare
end

module RootMap = Map.Make (Root)

(* One access-chain level of a symbolic pointer.  A [Pconst] level is a
   literal index (evaluated exactly as before the memory model existed —
   the canonical forms of chain-free and constant-chain modules must not
   move).  A [Psym] level is a dynamic index that [Memory] proved bounded:
   loads and stores through it fold into a select chain over all [len]
   cells, with the edge cells' conditions mirroring the interpreter's
   clamping ([idx <= 0] / [idx >= len-1]).  Folding over the full cell
   range — rather than the proven interval — keeps the canonical form
   independent of {e how tight} each side of a pass proves the range, so
   two modules disagree only if their cell values disagree. *)
type pseg =
  | Pconst of int
  | Psym of { idx : node; len : int }

type sptr = { base : Root.t; rpath : pseg list (* reversed, as in Interp *) }
type rv = Rnode of node | Rptr of sptr

(* Literal index path, if the chain has no symbolic level. *)
let const_psegs psegs =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | Pconst i :: tl -> go (i :: acc) tl
    | Psym _ :: _ -> None
  in
  go [] psegs

let cell_cond ctx idx ~len j =
  let ci v = const ctx (Value.VInt (Int32.of_int v)) in
  if j = 0 then binop ctx Instr.SLessThanEqual idx (ci 0)
  else if j = len - 1 then binop ctx Instr.SGreaterThanEqual idx (ci (len - 1))
  else binop ctx Instr.IEqual idx (ci j)

(* Load through a mixed literal/symbolic path: symbolic levels become a
   right-nested select chain (cell 0 first, last cell unconditional — by
   clamping, an index that matched no earlier condition lands there). *)
let rec extract_psegs ctx n = function
  | [] -> n
  | Pconst i :: rest -> extract_psegs ctx (extract ctx n [ i ]) rest
  | Psym { idx; len } :: rest ->
      if len <= 0 then n
      else
        let arm j = extract_psegs ctx (extract ctx n [ j ]) rest in
        let rec chain j =
          if j >= len - 1 then arm (len - 1)
          else ite ctx (cell_cond ctx idx ~len j) (arm j) (chain (j + 1))
        in
        chain 0

(* Store through a mixed path: each cell a symbolic level can reach is
   rebuilt as [select(idx-matches-j, updated, old)]. *)
let rec update_psegs ctx base psegs v =
  match psegs with
  | [] -> v
  | Pconst i :: [] -> sym_update ctx base [ i ] v
  | Pconst i :: rest ->
      let child = extract ctx base [ i ] in
      sym_update ctx base [ i ] (update_psegs ctx child rest v)
  | Psym { idx; len } :: rest ->
      if len <= 0 then base
      else if len = 1 then
        let child = extract ctx base [ 0 ] in
        sym_update ctx base [ 0 ] (update_psegs ctx child rest v)
      else
        let cell j =
          let old_j = extract ctx base [ j ] in
          let upd_j = update_psegs ctx old_j rest v in
          ite ctx (cell_cond ctx idx ~len j) upd_j old_j
        in
        construct ctx (List.init len cell)

(* Everything observable at a function exit: the composed kill condition,
   the return value (Dead for void / killed paths) and the store. *)
type fexit = { x_kill : node; x_ret : node; x_mem : node RootMap.t }

type menv = {
  m : Module_ir.t;
  avail : (Id.t, Dataflow.Availability.t) Hashtbl.t;
  facts : (Id.t, Loops.forest * int Id.Map.t) Hashtbl.t;
      (** per function: loop forest + proven trip bounds, keyed by header *)
  mems : (Id.t, Memory.t) Hashtbl.t;
      (** per function: the access-path / alias analysis backing the
          symbolic memory model *)
  globals : rv Id.Map.t;
}

let availability_for me (f : Func.t) =
  match Hashtbl.find_opt me.avail f.Func.id with
  | Some a -> a
  | None ->
      let a = Dataflow.Availability.make me.m f in
      Hashtbl.add me.avail f.Func.id a;
      a

(* Loop forest + trip bounds, from the shared Dataflow analyses (never a
   private fixpoint: the CFG and dominator tree come from Availability, the
   bounds from Dataflow.Ranges).  Computed once per function and cached. *)
let loop_facts_for me (f : Func.t) =
  match Hashtbl.find_opt me.facts f.Func.id with
  | Some x -> x
  | None ->
      let av = availability_for me f in
      let cfg = Dataflow.Availability.cfg av in
      let dom = Dataflow.Availability.dominance av in
      let forest = Loops.analyze cfg dom in
      let bounds =
        if forest.Loops.loops = [] then Id.Map.empty
        else
          let ranges = Dataflow.Ranges.compute me.m f ~cfg ~loops:forest in
          List.fold_left
            (fun acc (l : Loops.loop) ->
              match Dataflow.Ranges.trip_bound ranges ~header:l.Loops.header with
              | Some bnd -> Id.Map.add l.Loops.header bnd acc
              | None -> acc)
            Id.Map.empty forest.Loops.loops
      in
      let facts = (forest, bounds) in
      Hashtbl.add me.facts f.Func.id facts;
      facts

(* The per-function memory analysis, computed once and cached — the only
   path by which the evaluator reasons about dynamic access-chain indices
   (CI greps enforce there is no ad-hoc chain walking here). *)
let memory_for me (f : Func.t) =
  match Hashtbl.find_opt me.mems f.Func.id with
  | Some t -> t
  | None ->
      let t = Memory.analyze me.m f ~avail:(availability_for me f) in
      Hashtbl.add me.mems f.Func.id t;
      t

let lookup ctx me env id =
  match Id.Map.find_opt id env with
  | Some rv -> rv
  | None -> (
      match Id.Map.find_opt id me.globals with
      | Some rv -> rv
      | None -> (
          match Module_ir.find_constant me.m id with
          | Some _ -> Rnode (const ctx (Module_ir.const_value me.m id))
          | None -> abstain `Internal "unbound id %s" (Id.to_string id)))

let lookup_val ctx me env id =
  match lookup ctx me env id with
  | Rnode n -> n
  | Rptr _ -> abstain `Internal "id %s is a pointer where a value was expected" (Id.to_string id)

let lookup_ptr ctx me env id =
  match lookup ctx me env id with
  | Rptr p -> p
  | Rnode _ -> abstain `Internal "id %s is a value where a pointer was expected" (Id.to_string id)

let mem_find mem base =
  match RootMap.find_opt base mem with
  | Some n -> n
  | None -> abstain `Internal "load from an unallocated root"

let max_call_depth = 64

(* Cells a single folded dynamic index may fan out over; composites in the
   modelled fragment subset are at most mat4-sized. *)
let max_fold = 16

let rec eval_function ctx me ~depth (f : Func.t) (args : rv list) mem : fexit =
  if depth > max_call_depth then abstain `Budget "call depth exceeded in %s" f.Func.name;
  let env =
    try
      List.fold_left2
        (fun env (p : Func.param) a -> Id.Map.add p.Func.param_id a env)
        Id.Map.empty f.Func.params args
    with Invalid_argument _ -> abstain `Internal "arity mismatch calling %s" f.Func.name
  in
  eval_block ctx me ~depth ~unrolls:Id.Map.empty f env ~pred:None mem
    (Func.entry_block f)

and eval_block ctx me ~depth ~unrolls f env ~pred mem (b : Block.t) : fexit =
  ctx.visits <- ctx.visits + 1;
  if ctx.visits > ctx.max_visits then
    abstain `Budget "evaluation budget exhausted (%d block visits)" ctx.max_visits;
  let phi_instrs, rest =
    let rec split acc = function
      | (i : Instr.t) :: tl when Instr.is_phi i -> split (i :: acc) tl
      | tl -> (List.rev acc, tl)
    in
    split [] b.Block.instrs
  in
  (* φs are evaluated simultaneously against the edge environment. *)
  let env =
    match pred with
    | None ->
        if phi_instrs <> [] then
          abstain `Internal "phi in entry block %s" (Id.to_string b.Block.label);
        env
    | Some pred_label ->
        let bindings =
          List.map
            (fun (i : Instr.t) ->
              match (i.Instr.result, i.Instr.op) with
              | Some r, Instr.Phi incoming -> (
                  match
                    List.find_opt
                      (fun (_, blk) -> Id.equal blk pred_label)
                      incoming
                  with
                  | Some (v, _) -> (r, lookup ctx me env v)
                  | None ->
                      abstain `Internal "phi %s lacks an entry for predecessor %s"
                        (Id.to_string r) (Id.to_string pred_label))
              | _ -> abstain `Internal "malformed phi")
            phi_instrs
        in
        List.fold_left (fun env (r, v) -> Id.Map.add r v env) env bindings
  in
  eval_instrs ctx me ~depth ~unrolls f env mem b rest

and eval_instrs ctx me ~depth ~unrolls f env mem b = function
  | [] -> eval_terminator ctx me ~depth ~unrolls f env mem b
  | (i : Instr.t) :: tl -> (
      let continue_with env mem =
        eval_instrs ctx me ~depth ~unrolls f env mem b tl
      in
      let bind r rv = Id.Map.add r rv env in
      match (i.Instr.result, i.Instr.op) with
      | _, Instr.Nop -> continue_with env mem
      | None, Instr.Store (p, v) ->
          let ptr = lookup_ptr ctx me env p in
          let cur = mem_find mem ptr.base in
          let path = List.rev ptr.rpath in
          let vn = lookup_val ctx me env v in
          let updated =
            match const_psegs path with
            | Some ints -> sym_update ctx cur ints vn
            | None -> update_psegs ctx cur path vn
          in
          continue_with env (RootMap.add ptr.base updated mem)
      | Some r, Instr.Binop (op, a, c) ->
          continue_with
            (bind r
               (Rnode
                  (binop ctx op (lookup_val ctx me env a)
                     (lookup_val ctx me env c))))
            mem
      | Some r, Instr.Unop (op, a) ->
          continue_with
            (bind r (Rnode (unop ctx op (lookup_val ctx me env a))))
            mem
      | Some r, Instr.Select (c, tv, fv) -> (
          let cn = lookup_val ctx me env c in
          match cn.desc with
          | Const (Value.VBool cond) ->
              continue_with
                (bind r (lookup ctx me env (if cond then tv else fv)))
                mem
          | Const _ -> abstain `Internal "select condition is not a bool"
          | _ -> (
              match (lookup ctx me env tv, lookup ctx me env fv) with
              | Rnode tn, Rnode fn ->
                  continue_with (bind r (Rnode (ite ctx cn tn fn))) mem
              | _ -> abstain `Unsupported "pointer select on a symbolic condition"))
      | Some r, Instr.CompositeConstruct parts ->
          continue_with
            (bind r
               (Rnode (construct ctx (List.map (lookup_val ctx me env) parts))))
            mem
      | Some r, Instr.CompositeExtract (c, path) ->
          continue_with
            (bind r (Rnode (extract ctx (lookup_val ctx me env c) path)))
            mem
      | Some r, Instr.CompositeInsert (obj, c, path) ->
          continue_with
            (bind r
               (Rnode
                  (sym_update ctx
                     (lookup_val ctx me env c)
                     path
                     (lookup_val ctx me env obj))))
            mem
      | Some r, Instr.Load p ->
          let ptr = lookup_ptr ctx me env p in
          let cur = mem_find mem ptr.base in
          let path = List.rev ptr.rpath in
          let loaded =
            match const_psegs path with
            | Some ints -> extract ctx cur ints
            | None -> extract_psegs ctx cur path
          in
          continue_with (bind r (Rnode loaded)) mem
      | Some r, Instr.AccessChain (base, idxs) ->
          let ptr = lookup_ptr ctx me env base in
          (* segments (one per index operand, with the proven interval and
             the indexed composite's arity) come from the shared memory
             analysis; a symbolic index is foldable exactly when its range
             is proven finite there *)
          let segs = lazy (Memory.chain_segs (memory_for me f) r) in
          let path =
            List.mapi
              (fun k idx ->
                match (lookup_val ctx me env idx).desc with
                | Const (Value.VInt i) -> Pconst (Int32.to_int i)
                | Const _ -> abstain `Internal "non-integer index in access chain"
                | _ -> (
                    let seg =
                      match Lazy.force segs with
                      | Some ss -> List.nth_opt ss k
                      | None -> None
                    in
                    match seg with
                    | None ->
                        abstain `Dynamic_index
                          "dynamic access-chain index through an unresolved pointer"
                    | Some s ->
                        let len = s.Memory.seg_len in
                        if not (Dataflow.Itv.finite s.Memory.seg_itv) then
                          abstain `Dynamic_index
                            "dynamic access-chain index with an unbounded range"
                        else if len > max_fold then
                          abstain `Dynamic_index
                            "dynamic access-chain index fans out over %d cells"
                            len
                        else begin
                          ctx.mem_proofs <- ctx.mem_proofs + 1;
                          if len = 1 then Pconst 0
                          else Psym { idx = lookup_val ctx me env idx; len }
                        end))
              idxs
          in
          continue_with
            (bind r (Rptr { ptr with rpath = List.rev_append path ptr.rpath }))
            mem
      | res, Instr.FunctionCall (callee, args) -> (
          let g =
            match Module_ir.find_function me.m callee with
            | Some g -> g
            | None -> abstain `Internal "call to unknown function %s" (Id.to_string callee)
          in
          let arg_values = List.map (lookup ctx me env) args in
          let sub = eval_function ctx me ~depth:(depth + 1) g arg_values mem in
          if is_const_true sub.x_kill then
            (* the callee always kills: the rest of this function never
               executes *)
            { x_kill = sub.x_kill; x_ret = dead ctx; x_mem = sub.x_mem }
          else
            let env =
              match res with
              | Some r ->
                  let ret =
                    if is_dead sub.x_ret then const ctx (Value.VComposite [||])
                    else sub.x_ret
                  in
                  bind r (Rnode ret)
              | None -> env
            in
            let rest = eval_instrs ctx me ~depth ~unrolls f env sub.x_mem b tl in
            match rest with
            | { x_kill; x_ret; x_mem } ->
                {
                  x_kill = binop ctx Instr.LogicalOr sub.x_kill x_kill;
                  x_ret;
                  x_mem;
                })
      | Some _, Instr.Phi _ -> abstain `Internal "phi after non-phi instruction"
      | Some r, Instr.CopyObject x ->
          continue_with (bind r (lookup ctx me env x)) mem
      | Some r, Instr.Variable Ty.Function -> (
          match i.Instr.ty with
          | Some ptr_ty -> (
              match Module_ir.find_type me.m ptr_ty with
              | Some (Ty.Pointer (_, pointee)) ->
                  let serial = ctx.local_serial in
                  ctx.local_serial <- serial + 1;
                  let root = Root.Rlocal serial in
                  let mem =
                    RootMap.add root
                      (const ctx (Module_ir.zero_value me.m pointee))
                      mem
                  in
                  continue_with (bind r (Rptr { base = root; rpath = [] })) mem
              | Some _ | None ->
                  abstain `Internal "variable %s has non-pointer type" (Id.to_string r))
          | None -> abstain `Internal "variable without a type")
      | Some _, Instr.Variable _ ->
          abstain `Internal "function-scope variable with bad storage class"
      | Some r, Instr.Undef -> (
          match i.Instr.ty with
          | Some ty ->
              continue_with
                (bind r (Rnode (const ctx (Module_ir.zero_value me.m ty))))
                mem
          | None -> abstain `Internal "undef without a type")
      | None, _ -> abstain `Internal "instruction missing a result id"
      | Some _, Instr.Store _ -> abstain `Internal "store with a result id")

and eval_terminator ctx me ~depth ~unrolls f env mem (b : Block.t) : fexit =
  let forest, bounds = loop_facts_for me f in
  (* Unroll counters are kept per path and keyed by loop header: every
     back-edge traversal (conditional or not) bumps the target header's
     counter; leaving a loop body resets its header's counter so the next
     entry to the loop (e.g. an outer iteration) counts afresh. *)
  let follow target =
    let unrolls =
      if forest.Loops.loops = [] then unrolls
      else
        let u =
          List.fold_left
            (fun u (l : Loops.loop) ->
              if
                Id.Set.mem b.Block.label l.Loops.blocks
                && not (Id.Set.mem target l.Loops.blocks)
              then Id.Map.remove l.Loops.header u
              else u)
            unrolls forest.Loops.loops
        in
        if
          List.exists
            (fun (l : Loops.loop) ->
              Id.equal l.Loops.header target
              && List.exists (Id.equal b.Block.label) l.Loops.latches)
            forest.Loops.loops
        then
          Id.Map.update target
            (function None -> Some 1 | Some n -> Some (n + 1))
            u
        else u
    in
    eval_block ctx me ~depth ~unrolls f env ~pred:(Some b.Block.label) mem
      (Func.block_exn f target)
  in
  match b.Block.terminator with
  | Block.Return -> { x_kill = cbool ctx false; x_ret = dead ctx; x_mem = mem }
  | Block.ReturnValue v ->
      { x_kill = cbool ctx false; x_ret = lookup_val ctx me env v; x_mem = mem }
  | Block.Kill -> { x_kill = cbool ctx true; x_ret = dead ctx; x_mem = mem }
  | Block.Unreachable ->
      abstain `Unsupported "reached OpUnreachable in %s" (Id.to_string b.Block.label)
  | Block.Branch target -> follow target
  | Block.BranchConditional (c, t, fl) -> (
      if Id.equal t fl then follow t
      else
        let cn = lookup_val ctx me env c in
        match cn.desc with
        | Const (Value.VBool cond) ->
            (* concrete edge: this is what unrolls counted loops *)
            follow (if cond then t else fl)
        | Const _ -> abstain `Internal "branch condition is not a bool"
        | _ -> (
            (* A symbolic condition that decides whether a loop keeps
               running is gated by the range analysis: with a proven trip
               bound we fork like any other branch until the counter shows
               the continue arm is statically infeasible, then force the
               exit.  Without a bound, forking would never terminate, so we
               abstain — structurally, not by exhausting the budget. *)
            let dom = Dataflow.Availability.dominance (availability_for me f) in
            let decision =
              if Dominance.dominates dom t b.Block.label then Some (t, fl)
              else if Dominance.dominates dom fl b.Block.label then
                Some (fl, t)
              else
                match Loops.header_of forest b.Block.label with
                | Some l -> (
                    match (Loops.is_in_loop l t, Loops.is_in_loop l fl) with
                    | true, false -> Some (l.Loops.header, fl)
                    | false, true -> Some (l.Loops.header, t)
                    | true, true | false, false -> None)
                | None -> None
            in
            let fork () =
              let t_exit = follow t in
              let f_exit = follow fl in
              merge_exits ctx cn t_exit f_exit
            in
            match decision with
            | None -> fork ()
            | Some (header, exit_arm) -> (
                match Id.Map.find_opt header bounds with
                | None ->
                    abstain `Loop_unbounded
                      "no provable trip bound for the loop at %s in %s"
                      (Id.to_string header) f.Func.name
                | Some bnd ->
                    if bnd > ctx.max_unroll then
                      abstain `Budget
                        "trip bound %d at %s exceeds the unroll budget %d"
                        bnd (Id.to_string header) ctx.max_unroll
                    else if
                      Option.value ~default:0 (Id.Map.find_opt header unrolls)
                      >= bnd
                    then begin
                      (* the proven bound makes the continue arm infeasible
                         on this path: take the exit without forking *)
                      ctx.forced_exits <- ctx.forced_exits + 1;
                      follow exit_arm
                    end
                    else fork ())))

and merge_exits ctx cn t_exit f_exit =
  (* A killed arm's values are unobservable: substituting Dead lets the
     select absorb them, so "store; kill" and "kill" summarize alike. *)
  let t_killed = is_const_true t_exit.x_kill in
  let f_killed = is_const_true f_exit.x_kill in
  let masked killed n = if killed then dead ctx else n in
  let x_kill = ite ctx cn t_exit.x_kill f_exit.x_kill in
  let x_ret =
    ite ctx cn (masked t_killed t_exit.x_ret) (masked f_killed f_exit.x_ret)
  in
  let x_mem =
    RootMap.merge
      (fun _root a b ->
        match (a, b) with
        | Some a, Some b ->
            Some (ite ctx cn (masked t_killed a) (masked f_killed b))
        | Some a, None -> Some a
        | None, Some b -> Some b
        | None, None -> None)
      t_exit.x_mem f_exit.x_mem
  in
  { x_kill; x_ret; x_mem }

(* ------------------------------------------------------------------ *)
(* Whole-module summaries.                                             *)

type summary = { s_kill : node; s_out : node }

let init_globals ctx (m : Module_ir.t) =
  List.fold_left
    (fun (gmap, mem) (g : Module_ir.global_decl) ->
      let sc, pointee =
        match Module_ir.find_type m g.Module_ir.gd_ty with
        | Some (Ty.Pointer (sc, p)) -> (sc, p)
        | Some _ | None ->
            abstain `Internal "global %s has a non-pointer type" g.Module_ir.gd_name
      in
      let initial =
        match sc with
        | Ty.Uniform -> source ctx ("uniform:" ^ g.Module_ir.gd_name)
        | Ty.Input -> source ctx "frag-coord"
        | Ty.Private | Ty.Output | Ty.Function -> (
            match g.Module_ir.gd_init with
            | Some c -> const ctx (Module_ir.const_value m c)
            | None -> const ctx (Module_ir.zero_value m pointee))
      in
      ( Id.Map.add g.Module_ir.gd_id
          (Rptr { base = Root.Rglobal g.Module_ir.gd_id; rpath = [] })
          gmap,
        RootMap.add (Root.Rglobal g.Module_ir.gd_id) initial mem ))
    (Id.Map.empty, RootMap.empty) m.Module_ir.globals

let summarize ctx (m : Module_ir.t) =
  let globals, mem = init_globals ctx m in
  let me =
    {
      m;
      avail = Hashtbl.create 8;
      facts = Hashtbl.create 8;
      mems = Hashtbl.create 8;
      globals;
    }
  in
  let entry = Module_ir.entry_function m in
  let ex = eval_function ctx me ~depth:0 entry [] mem in
  let s_out =
    let output_global =
      List.find_opt
        (fun (g : Module_ir.global_decl) ->
          match Module_ir.find_type m g.Module_ir.gd_ty with
          | Some (Ty.Pointer (Ty.Output, _)) -> true
          | Some _ | None -> false)
        m.Module_ir.globals
    in
    match output_global with
    | Some g -> (
        match RootMap.find_opt (Root.Rglobal g.Module_ir.gd_id) ex.x_mem with
        | Some n -> n
        | None -> abstain `Internal "output global missing from the store summary")
    | None -> const ctx (Value.VComposite [||])
  in
  { s_kill = ex.x_kill; s_out }
