type trap =
  | Step_limit_exceeded
  | Missing_uniform of string
  | Invalid_module of string

let trap_to_string = function
  | Step_limit_exceeded -> "step limit exceeded"
  | Missing_uniform u -> "missing uniform: " ^ u
  | Invalid_module msg -> "invalid module: " ^ msg

type outcome = (Image.pixel, trap) result

exception Trap of trap
exception Kill_fragment

let invalid fmt = Printf.ksprintf (fun s -> raise (Trap (Invalid_module s))) fmt

(* Runtime bindings: SSA values or pointers into allocated cells. *)
type rvalue =
  | Val of Value.t
  | Ptr of ptr

and ptr = { cell : Value.t ref; path : int list; root : Id.t }

type state = {
  m : Module_ir.t;
  mutable steps : int;
  step_limit : int;
  globals : rvalue Id.Map.t;  (* global id -> Ptr *)
  trace : (Id.t -> Value.t -> unit) option;
      (* observation hook: called on every SSA value binding (instruction
         results and φ merges); pointers are not observable values *)
  mem_trace :
    (kind:[ `Load | `Store ] -> ptr:Id.t -> root:Id.t -> path:int list -> unit)
    option;
      (* memory hook: called on every executed Load/Store with the pointer
         operand, the variable the cell was allocated for, and the fully
         resolved (concrete) element path — the ground truth the memory
         analysis' alias verdicts are checked against *)
}

let notify st r rv =
  match (st.trace, rv) with
  | Some f, Val v -> f r v
  | Some _, Ptr _ | None, _ -> ()

let notify_mem st ~kind ~ptr_id (p : ptr) =
  match st.mem_trace with
  | Some f -> f ~kind ~ptr:ptr_id ~root:p.root ~path:(List.rev p.path)
  | None -> ()

let tick st =
  st.steps <- st.steps + 1;
  if st.steps > st.step_limit then raise (Trap Step_limit_exceeded)

let lookup st env id =
  match Id.Map.find_opt id env with
  | Some rv -> rv
  | None -> (
      match Id.Map.find_opt id st.globals with
      | Some rv -> rv
      | None -> (
          match Module_ir.find_constant st.m id with
          | Some _ -> Val (Module_ir.const_value st.m id)
          | None -> invalid "unbound id %s" (Id.to_string id)))

let lookup_val st env id =
  match lookup st env id with
  | Val v -> v
  | Ptr _ -> invalid "id %s is a pointer where a value was expected" (Id.to_string id)

let lookup_ptr st env id =
  match lookup st env id with
  | Ptr p -> p
  | Val _ -> invalid "id %s is a value where a pointer was expected" (Id.to_string id)

let load p = Value.extract_at_path !(p.cell) (List.rev p.path)

let store p v = p.cell := Value.update_at_path !(p.cell) (List.rev p.path) v

let index_of_value = function
  | Value.VInt i -> Int32.to_int i
  | Value.VBool _ | Value.VFloat _ | Value.VComposite _ ->
      raise (Trap (Invalid_module "non-integer index in access chain"))

(* Execute function [f] with arguments bound; returns the return value. *)
let rec exec_function st (f : Func.t) (args : rvalue list) : Value.t option =
  let env =
    try
      List.fold_left2
        (fun env (p : Func.param) a -> Id.Map.add p.Func.param_id a env)
        Id.Map.empty f.Func.params args
    with Invalid_argument _ ->
      invalid "arity mismatch calling %s" f.Func.name
  in
  let entry = Func.entry_block f in
  exec_block st f env ~prev:None entry

and exec_block st f env ~prev (b : Block.t) : Value.t option =
  (* Phis are evaluated simultaneously against the environment at the edge. *)
  let phi_instrs, rest =
    let rec split acc = function
      | (i : Instr.t) :: tl when Instr.is_phi i -> split (i :: acc) tl
      | tl -> (List.rev acc, tl)
    in
    split [] b.Block.instrs
  in
  let env =
    match prev with
    | None ->
        if phi_instrs <> [] then invalid "phi in entry block %s" (Id.to_string b.Block.label);
        env
    | Some pred_label ->
        let bindings =
          List.map
            (fun (i : Instr.t) ->
              match (i.Instr.result, i.Instr.op) with
              | Some r, Instr.Phi incoming -> (
                  match
                    List.find_opt (fun (_, blk) -> Id.equal blk pred_label) incoming
                  with
                  | Some (v, _) -> (r, lookup st env v)
                  | None ->
                      invalid "phi %s lacks an entry for predecessor %s"
                        (Id.to_string r) (Id.to_string pred_label))
              | _ -> invalid "malformed phi")
            phi_instrs
        in
        List.fold_left
          (fun env (r, v) ->
            notify st r v;
            Id.Map.add r v env)
          env bindings
  in
  let env = List.fold_left (exec_instr st f) env rest in
  tick st;
  match b.Block.terminator with
  | Block.Branch target ->
      exec_block st f env ~prev:(Some b.Block.label) (Func.block_exn f target)
  | Block.BranchConditional (c, t_target, f_target) -> (
      match lookup_val st env c with
      | Value.VBool cond ->
          let target = if cond then t_target else f_target in
          exec_block st f env ~prev:(Some b.Block.label) (Func.block_exn f target)
      | _ -> invalid "branch condition %s is not a bool" (Id.to_string c))
  | Block.Return -> None
  | Block.ReturnValue v -> Some (lookup_val st env v)
  | Block.Kill -> raise Kill_fragment
  | Block.Unreachable -> invalid "executed OpUnreachable in %s" (Id.to_string b.Block.label)

and exec_instr st _f env (i : Instr.t) =
  tick st;
  let bind r rv =
    notify st r rv;
    Id.Map.add r rv env
  in
  match (i.Instr.result, i.Instr.op) with
  | _, Instr.Nop -> env
  | None, Instr.Store (p, v) ->
      let ptr = lookup_ptr st env p in
      notify_mem st ~kind:`Store ~ptr_id:p ptr;
      store ptr (lookup_val st env v);
      env
  | Some r, Instr.Binop (op, a, b) -> (
      try bind r (Val (Ops.eval_binop op (lookup_val st env a) (lookup_val st env b)))
      with Ops.Type_error msg -> invalid "%s" msg)
  | Some r, Instr.Unop (op, a) -> (
      try bind r (Val (Ops.eval_unop op (lookup_val st env a)))
      with Ops.Type_error msg -> invalid "%s" msg)
  | Some r, Instr.Select (c, tv, fv) -> (
      match lookup_val st env c with
      | Value.VBool b -> bind r (lookup st env (if b then tv else fv))
      | _ -> invalid "select condition is not a bool")
  | Some r, Instr.CompositeConstruct parts ->
      bind r
        (Val (Value.VComposite (Array.of_list (List.map (lookup_val st env) parts))))
  | Some r, Instr.CompositeExtract (c, path) ->
      bind r (Val (Value.extract_at_path (lookup_val st env c) path))
  | Some r, Instr.CompositeInsert (obj, c, path) ->
      bind r
        (Val
           (Value.update_at_path (lookup_val st env c) path (lookup_val st env obj)))
  | Some r, Instr.Load p ->
      let ptr = lookup_ptr st env p in
      notify_mem st ~kind:`Load ~ptr_id:p ptr;
      bind r (Val (load ptr))
  | Some r, Instr.AccessChain (base, idxs) ->
      let ptr = lookup_ptr st env base in
      let path =
        List.map (fun idx -> index_of_value (lookup_val st env idx)) idxs
      in
      bind r (Ptr { ptr with path = List.rev_append path ptr.path })
  | Some r, Instr.FunctionCall (callee, args) -> (
      let g = match Module_ir.find_function st.m callee with
        | Some g -> g
        | None -> invalid "call to unknown function %s" (Id.to_string callee)
      in
      let arg_values = List.map (lookup st env) args in
      match exec_function st g arg_values with
      | Some v -> bind r (Val v)
      | None -> bind r (Val (Value.VComposite [||])))
  | None, Instr.FunctionCall (callee, args) ->
      let g = match Module_ir.find_function st.m callee with
        | Some g -> g
        | None -> invalid "call to unknown function %s" (Id.to_string callee)
      in
      let arg_values = List.map (lookup st env) args in
      ignore (exec_function st g arg_values);
      env
  | Some _, Instr.Phi _ -> invalid "phi after non-phi instruction"
  | Some r, Instr.CopyObject x -> bind r (lookup st env x)
  | Some r, Instr.Variable Ty.Function -> (
      match i.Instr.ty with
      | Some ptr_ty -> (
          match Module_ir.type_exn st.m ptr_ty with
          | Ty.Pointer (_, pointee) ->
              bind r
                (Ptr
                   { cell = ref (Module_ir.zero_value st.m pointee);
                     path = [];
                     root = r })
          | _ -> invalid "variable %s has non-pointer type" (Id.to_string r))
      | None -> invalid "variable without a type")
  | Some _, Instr.Variable _ -> invalid "function-scope variable with bad storage class"
  | Some r, Instr.Undef -> (
      match i.Instr.ty with
      | Some ty -> bind r (Val (Module_ir.zero_value st.m ty))
      | None -> invalid "undef without a type")
  | None, _ -> invalid "instruction missing a result id"
  | Some _, Instr.Store _ -> invalid "store with a result id"

let make_frag_coord m ~frag_x ~frag_y =
  ignore m;
  Value.VComposite
    [| Value.VFloat (float_of_int frag_x +. 0.5); Value.VFloat (float_of_int frag_y +. 0.5) |]

(* Per-render plan for the globals: the pointee/storage checks, uniform
   resolution and initializer evaluation are done once; between fragments
   only the cells are reset (the Input-class coordinate is the only
   per-fragment value).  Evaluation order per global is unchanged, so trap
   precedence matches the old per-fragment allocation exactly. *)
type global_slot = {
  gs_cell : Value.t ref;
  gs_coord : bool;    (* an Input-class variable: rebuilt per fragment *)
  gs_value : Value.t; (* reset value when not [gs_coord] *)
}

let global_plan m (input : Input.t) =
  let slots = ref [] in
  let globals =
    List.fold_left
      (fun acc (g : Module_ir.global_decl) ->
        let pointee =
          match Module_ir.find_type m g.Module_ir.gd_ty with
          | Some (Ty.Pointer (_, p)) -> p
          | Some _ | None ->
              raise (Trap (Invalid_module ("global with non-pointer type: " ^ g.Module_ir.gd_name)))
        in
        let storage =
          match Module_ir.find_type m g.Module_ir.gd_ty with
          | Some (Ty.Pointer (sc, _)) -> sc
          | Some _ | None -> Ty.Private
        in
        let coord, value =
          match storage with
          | Ty.Uniform -> (
              match Input.find_uniform input g.Module_ir.gd_name with
              | Some v -> (false, v)
              | None -> raise (Trap (Missing_uniform g.Module_ir.gd_name)))
          | Ty.Input -> (true, Value.VComposite [||])
          | Ty.Private | Ty.Output | Ty.Function -> (
              match g.Module_ir.gd_init with
              | Some c -> (false, Module_ir.const_value m c)
              | None -> (false, Module_ir.zero_value m pointee))
        in
        let cell = ref value in
        slots := { gs_cell = cell; gs_coord = coord; gs_value = value } :: !slots;
        Id.Map.add g.Module_ir.gd_id
          (Ptr { cell; path = []; root = g.Module_ir.gd_id })
          acc)
      Id.Map.empty m.Module_ir.globals
  in
  (globals, Array.of_list (List.rev !slots))

let reset_globals m slots ~frag_x ~frag_y =
  Array.iter
    (fun s ->
      s.gs_cell :=
        if s.gs_coord then make_frag_coord m ~frag_x ~frag_y else s.gs_value)
    slots

let allocate_globals m (input : Input.t) ~frag_x ~frag_y =
  let globals, slots = global_plan m input in
  reset_globals m slots ~frag_x ~frag_y;
  globals

let default_step_limit = 100_000

let run_fragment ?(step_limit = default_step_limit) ?trace ?mem_trace m input
    ~frag_x ~frag_y : outcome =
  try
    let globals = allocate_globals m input ~frag_x ~frag_y in
    let st = { m; steps = 0; step_limit; globals; trace; mem_trace } in
    let entry = Module_ir.entry_function m in
    let result =
      try
        ignore (exec_function st entry []);
        let output_global =
          List.find_opt
            (fun (g : Module_ir.global_decl) ->
              match Module_ir.find_type m g.Module_ir.gd_ty with
              | Some (Ty.Pointer (Ty.Output, _)) -> true
              | Some _ | None -> false)
            m.Module_ir.globals
        in
        match output_global with
        | Some g -> (
            match Id.Map.find_opt g.Module_ir.gd_id globals with
            | Some (Ptr p) -> Image.Color (load p)
            | Some (Val _) | None -> raise (Trap (Invalid_module "output not allocated")))
        | None -> Image.Color (Value.VComposite [||])
      with Kill_fragment -> Image.Killed
    in
    Ok result
  with Trap t -> Error t

let render ?(step_limit = default_step_limit) m input =
  let width = input.Input.width and height = input.Input.height in
  let img = Image.create ~width ~height in
  if width <= 0 || height <= 0 then Ok img
  else
    try
      (* Hoisted out of the fragment loop: the globals structure (one set
         of cells, reset between fragments), the entry function and the
         output pointer.  The image stays local to this call, so a trapping
         fragment can never leak a partially-written image. *)
      let globals, slots = global_plan m input in
      let st = { m; steps = 0; step_limit; globals; trace = None; mem_trace = None } in
      let entry = Module_ir.entry_function m in
      let output =
        match
          List.find_opt
            (fun (g : Module_ir.global_decl) ->
              match Module_ir.find_type m g.Module_ir.gd_ty with
              | Some (Ty.Pointer (Ty.Output, _)) -> true
              | Some _ | None -> false)
            m.Module_ir.globals
        with
        | Some g -> (
            match Id.Map.find_opt g.Module_ir.gd_id globals with
            | Some (Ptr p) -> Some p
            | Some (Val _) | None -> raise (Trap (Invalid_module "output not allocated")))
        | None -> None
      in
      for y = 0 to height - 1 do
        for x = 0 to width - 1 do
          reset_globals m slots ~frag_x:x ~frag_y:y;
          st.steps <- 0;
          let px =
            try
              ignore (exec_function st entry []);
              match output with
              | Some p -> Image.Color (load p)
              | None -> Image.Color (Value.VComposite [||])
            with Kill_fragment -> Image.Killed
          in
          Image.set img ~x ~y px
        done
      done;
      Ok img
    with Trap t -> Error t

let run_function ?(step_limit = default_step_limit) ?trace ?mem_trace m ~fn
    ~args =
  try
    let input = Input.make [] in
    let globals = allocate_globals m input ~frag_x:0 ~frag_y:0 in
    let st = { m; steps = 0; step_limit; globals; trace; mem_trace } in
    let f = Module_ir.function_exn m fn in
    let result =
      try exec_function st f (List.map (fun v -> Val v) args)
      with Kill_fragment -> None
    in
    Ok result
  with Trap t -> Error t

let well_defined ?step_limit m input =
  match render ?step_limit m input with Ok _ -> true | Error _ -> false
