(** Reference interpreter: the [Semantics(P, I)] of Definition 2.1.

    A module is executed once per fragment of the input grid; each execution
    binds the module's [Input]-class variable to the fragment coordinate,
    its [Uniform]-class variables to the input's uniform values, runs the
    entry-point function under a step budget, and reads the [Output]-class
    variable as the pixel color.  The result of the whole program is the
    rendered {!Image.t}.

    Execution is deterministic and total up to the step budget; a program
    that exhausts the budget on some fragment is not well-defined with
    respect to that input and is rejected as an original test program. *)

type trap =
  | Step_limit_exceeded
  | Missing_uniform of string
  | Invalid_module of string
      (** internal error: only possible on modules that fail validation *)

val trap_to_string : trap -> string

type outcome = (Image.pixel, trap) result

val default_step_limit : int
(** The step budget applied when [?step_limit] is omitted: 100_000. *)

val run_fragment :
  ?step_limit:int ->
  ?trace:(Id.t -> Value.t -> unit) ->
  ?mem_trace:
    (kind:[ `Load | `Store ] -> ptr:Id.t -> root:Id.t -> path:int list -> unit) ->
  Module_ir.t ->
  Input.t ->
  frag_x:int ->
  frag_y:int ->
  outcome
(** Execute the entry point for one fragment. Default step limit: 100_000.
    [trace] is called on every SSA value binding (instruction results and
    φ merges, across all executed functions) — the hook the range-analysis
    soundness tests use to check every concrete value against its computed
    interval.  Pointer bindings are not reported.
    [mem_trace] is called on every executed Load/Store with the pointer
    operand id, the variable or global the cell was allocated for ([root])
    and the fully resolved concrete element path — the ground truth the
    {!Memory} alias-soundness tests compare [No_alias] verdicts against. *)

val render :
  ?step_limit:int -> Module_ir.t -> Input.t -> (Image.t, trap) result
(** Execute every fragment of the grid. *)

val run_function :
  ?step_limit:int ->
  ?trace:(Id.t -> Value.t -> unit) ->
  ?mem_trace:
    (kind:[ `Load | `Store ] -> ptr:Id.t -> root:Id.t -> path:int list -> unit) ->
  Module_ir.t ->
  fn:Id.t ->
  args:Value.t list ->
  (Value.t option, trap) result
(** Directly evaluate a non-entry function on argument values (pointers not
    supported as arguments here); used by unit tests.  Returns [None] for
    void functions and for executions ending in [OpKill]. *)

val well_defined : ?step_limit:int -> Module_ir.t -> Input.t -> bool
(** True when rendering succeeds, i.e. the (program, input) pair may serve
    as an original test (Definition 2.3 requires well-definedness). *)
