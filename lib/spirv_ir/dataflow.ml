(** Generic worklist dataflow over {!Cfg}, and the standard analyses built
    on it.

    The engine is parameterized by a join-semilattice (bottom, join, equal)
    and a per-block transfer function; direction selects whether states
    propagate along or against control-flow edges.  Everything downstream —
    the validator, the lint suite, the optimizer's checked pipelines and the
    transformation preconditions — consumes these shared analyses instead of
    re-deriving def-use facts privately. *)

type direction = Forward | Backward

type 'a lattice = {
  bottom : 'a;  (* must be the identity of [join] *)
  equal : 'a -> 'a -> bool;
  join : 'a -> 'a -> 'a;
}

type 'a solution = {
  block_in : 'a array;   (* state at block entry, per Cfg position *)
  block_out : 'a array;  (* state at block exit, per Cfg position *)
}

let solve (cfg : Cfg.t) direction lat ~boundary ~transfer =
  let n = Array.length cfg.Cfg.blocks in
  let block_in = Array.make n lat.bottom in
  let block_out = Array.make n lat.bottom in
  if n > 0 then begin
    (* Seed the worklist with every block (unreachable ones included, so
       their facts exist too), in an order that converges quickly: reverse
       post-order along the direction of propagation. *)
    let rpo = Cfg.reverse_postorder cfg in
    let unreachable =
      List.filter (fun i -> not cfg.Cfg.reachable.(i)) (List.init n Fun.id)
    in
    let order =
      match direction with
      | Forward -> rpo @ unreachable
      | Backward -> List.rev rpo @ unreachable
    in
    let queue = Queue.create () in
    let queued = Array.make n false in
    let enqueue i =
      if not queued.(i) then begin
        queued.(i) <- true;
        Queue.add i queue
      end
    in
    List.iter enqueue order;
    (* under the chosen direction: the edges states flow in from, the blocks
       to revisit when a state changes, and which side of the solution each
       plays *)
    let sources, dependents, src_state =
      match direction with
      | Forward -> (cfg.Cfg.preds, cfg.Cfg.succs, block_out)
      | Backward -> (cfg.Cfg.succs, cfg.Cfg.preds, block_in)
    in
    let at_boundary i =
      match direction with
      | Forward -> i = 0
      | Backward -> cfg.Cfg.succs.(i) = []
    in
    while not (Queue.is_empty queue) do
      let i = Queue.pop queue in
      queued.(i) <- false;
      let incoming =
        let base = if at_boundary i then boundary else lat.bottom in
        List.fold_left (fun acc j -> lat.join acc src_state.(j)) base sources.(i)
      in
      let out = transfer i incoming in
      let changed =
        match direction with
        | Forward ->
            block_in.(i) <- incoming;
            not (lat.equal out block_out.(i)) && (block_out.(i) <- out; true)
        | Backward ->
            block_out.(i) <- incoming;
            not (lat.equal out block_in.(i)) && (block_in.(i) <- out; true)
      in
      if changed then List.iter enqueue dependents.(i)
    done
  end;
  { block_in; block_out }

let id_set_lattice =
  { bottom = Id.Set.empty; equal = Id.Set.equal; join = Id.Set.union }

(* result ids defined by a block's instructions *)
let block_defs (b : Block.t) =
  List.fold_left
    (fun s (i : Instr.t) ->
      match i.Instr.result with Some r -> Id.Set.add r s | None -> s)
    Id.Set.empty b.Block.instrs

let all_defs (f : Func.t) =
  List.fold_left
    (fun s b -> Id.Set.union s (block_defs b))
    Id.Set.empty f.Func.blocks

let position_exn cfg label =
  match Cfg.block_index cfg label with
  | Some i -> i
  | None -> invalid_arg ("Dataflow: no block " ^ Id.to_string label)

(* ------------------------------------------------------------------ *)
(* Reaching definitions                                                *)

module Reaching_defs = struct
  type t = { cfg : Cfg.t; sol : Id.Set.t solution }

  (* SSA never redefines an id, so there are no kills: a definition reaches
     every point some path leads to from its block. *)
  let compute (f : Func.t) =
    let cfg = Cfg.of_func f in
    let defs = Array.map block_defs cfg.Cfg.blocks in
    let sol =
      solve cfg Forward id_set_lattice ~boundary:Id.Set.empty
        ~transfer:(fun i s -> Id.Set.union s defs.(i))
    in
    { cfg; sol }

  let at_entry t label = t.sol.block_in.(position_exn t.cfg label)
  let at_exit t label = t.sol.block_out.(position_exn t.cfg label)
end

(* ------------------------------------------------------------------ *)
(* Liveness                                                            *)

module Liveness = struct
  type t = {
    cfg : Cfg.t;
    sol : Id.Set.t solution;
    phi_uses_from : Id.Set.t array;  (* values feeding successor φs, per pred *)
  }

  (* φ semantics: a φ's value operands are uses at the end of the matching
     predecessor, not in the φ's own block; its block-label operands are not
     value uses at all. *)
  let instr_uses (i : Instr.t) =
    match i.Instr.op with Instr.Phi _ -> [] | _ -> Instr.used_ids i

  let transfer_block (b : Block.t) ~live_out =
    let live =
      List.fold_left
        (fun s u -> Id.Set.add u s)
        live_out
        (Block.terminator_used_ids b.Block.terminator)
    in
    List.fold_left
      (fun live (i : Instr.t) ->
        let live =
          match i.Instr.result with
          | Some r -> Id.Set.remove r live
          | None -> live
        in
        List.fold_left (fun s u -> Id.Set.add u s) live (instr_uses i))
      live
      (List.rev b.Block.instrs)

  let compute (f : Func.t) =
    let cfg = Cfg.of_func f in
    let n = Array.length cfg.Cfg.blocks in
    let phi_uses_from = Array.make n Id.Set.empty in
    Array.iteri
      (fun p succs ->
        List.iter
          (fun s ->
            let sb = cfg.Cfg.blocks.(s) in
            List.iter
              (fun (i : Instr.t) ->
                match i.Instr.op with
                | Instr.Phi incoming ->
                    List.iter
                      (fun (v, pred) ->
                        if Id.equal pred cfg.Cfg.blocks.(p).Block.label then
                          phi_uses_from.(p) <- Id.Set.add v phi_uses_from.(p))
                      incoming
                | _ -> ())
              sb.Block.instrs)
          succs)
      cfg.Cfg.succs;
    let sol =
      solve cfg Backward id_set_lattice ~boundary:Id.Set.empty
        ~transfer:(fun i out ->
          transfer_block cfg.Cfg.blocks.(i)
            ~live_out:(Id.Set.union out phi_uses_from.(i)))
    in
    { cfg; sol; phi_uses_from }

  let live_in t label = t.sol.block_in.(position_exn t.cfg label)

  (* live across the outgoing edges, successor-φ uses included *)
  let live_out t label =
    let i = position_exn t.cfg label in
    Id.Set.union t.sol.block_out.(i) t.phi_uses_from.(i)
end

(* ------------------------------------------------------------------ *)
(* Availability (the SSA dominance rule)                               *)

module Availability = struct
  type t = {
    m : Module_ir.t;
    f : Func.t;
    cfg : Cfg.t;
    dom : Dominance.t;
    def_site : (Id.t * int) Id.Map.t;  (* id -> (block label, instr index) *)
    module_level : Id.Set.t;  (* constants, globals, this function's params *)
    must_in : Id.Set.t solution Lazy.t;  (* intersection formulation *)
  }

  let make m (f : Func.t) =
    let cfg = Cfg.of_func f in
    let dom = Dominance.compute cfg in
    let def_site =
      List.fold_left
        (fun acc (b : Block.t) ->
          let acc, _ =
            List.fold_left
              (fun (acc, idx) (i : Instr.t) ->
                let acc =
                  match i.Instr.result with
                  | Some r -> Id.Map.add r (b.Block.label, idx) acc
                  | None -> acc
                in
                (acc, idx + 1))
              (acc, 0) b.Block.instrs
          in
          acc)
        Id.Map.empty f.Func.blocks
    in
    let module_level =
      let s = ref Id.Set.empty in
      List.iter
        (fun (d : Module_ir.const_decl) -> s := Id.Set.add d.Module_ir.cd_id !s)
        m.Module_ir.constants;
      List.iter
        (fun (d : Module_ir.global_decl) -> s := Id.Set.add d.Module_ir.gd_id !s)
        m.Module_ir.globals;
      List.iter
        (fun (p : Func.param) -> s := Id.Set.add p.Func.param_id !s)
        f.Func.params;
      !s
    in
    let must_in =
      lazy
        (let universe = all_defs f in
         let defs = Array.map block_defs cfg.Cfg.blocks in
         (* must-analysis: join is intersection, so the join identity
            ("nothing known yet") is the full universe *)
         let lat =
           { bottom = universe; equal = Id.Set.equal; join = Id.Set.inter }
         in
         solve cfg Forward lat ~boundary:Id.Set.empty ~transfer:(fun i s ->
             Id.Set.union s defs.(i)))
    in
    { m; f; cfg; dom; def_site; module_level; must_in }

  let module_of t = t.m
  let func t = t.f
  let cfg t = t.cfg
  let dominance t = t.dom
  let def_site t id = Id.Map.find_opt id t.def_site
  let is_module_level t id = Id.Set.mem id t.module_level

  (* The validator's rule, including its relaxation inside unreachable
     blocks: uses there only need the id defined somewhere in the
     function. *)
  let available_at t ~block ~index id =
    if Id.Set.mem id t.module_level then true
    else
      match Id.Map.find_opt id t.def_site with
      | None -> false
      | Some (def_block, def_idx) ->
          if not (Cfg.is_reachable t.cfg block) then true
          else if Id.equal def_block block then def_idx < index
          else Dominance.strictly_dominates t.dom def_block block

  let available_at_end t ~block id = available_at t ~block ~index:max_int id

  (* ids guaranteed defined on every path from entry to [block]'s entry —
     the worklist formulation of availability; on a valid module it agrees
     with the dominance rule at block entry (property-tested). *)
  let must_defined_at_entry t ~block =
    (Lazy.force t.must_in).block_in.(position_exn t.cfg block)
end

(* ------------------------------------------------------------------ *)
(* Constant / uniform-value propagation                                *)

module Constprop = struct
  type t = { values : Value.t Id.Map.t }

  (* The environment maps ids to values known constant on all paths.  The
     lattice element is an [option]: [None] is "unvisited" (the join
     identity, top), so unreachable blocks contribute nothing. *)
  let join_env a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some a, Some b ->
        Some
          (Id.Map.merge
             (fun _ va vb ->
               match (va, vb) with
               | Some x, Some y when Value.equal x y -> Some x
               | _ -> None)
             a b)

  let equal_env a b = Option.equal (Id.Map.equal Value.equal) a b

  let rec extract_path v path =
    match (path, v) with
    | [], _ -> Some v
    | i :: rest, Value.VComposite xs when i >= 0 && i < Array.length xs ->
        extract_path xs.(i) rest
    | _ -> None

  let eval_op m input env (i : Instr.t) =
    let lookup x = Id.Map.find_opt x env in
    match i.Instr.op with
    | Instr.CopyObject x -> lookup x
    | Instr.Binop (op, a, b) -> (
        match (lookup a, lookup b) with
        | Some va, Some vb -> (
            try Some (Ops.eval_binop op va vb) with _ -> None)
        | _ -> None)
    | Instr.Unop (op, a) -> (
        match lookup a with
        | Some va -> ( try Some (Ops.eval_unop op va) with _ -> None)
        | None -> None)
    | Instr.Select (c, t, f) -> (
        match lookup c with
        | Some (Value.VBool true) -> lookup t
        | Some (Value.VBool false) -> lookup f
        | _ -> None)
    | Instr.CompositeConstruct xs ->
        let vs = List.map lookup xs in
        if List.for_all Option.is_some vs then
          Some (Value.VComposite (Array.of_list (List.map Option.get vs)))
        else None
    | Instr.CompositeExtract (c, path) -> (
        match lookup c with
        | Some v -> extract_path v path
        | None -> None)
    | Instr.Phi incoming -> (
        (* conservative: the joined entry environment already requires each
           incoming value to be the same constant on every predecessor *)
        match incoming with
        | [] -> None
        | (v0, _) :: rest -> (
            match lookup v0 with
            | Some c
              when List.for_all
                     (fun (v, _) ->
                       match lookup v with
                       | Some c' -> Value.equal c c'
                       | None -> false)
                     rest ->
                Some c
            | _ -> None))
    | Instr.Load p -> (
        (* uniform propagation: loading an unwritten Uniform-class global
           yields the input's value for it *)
        match (input, Module_ir.find_global m p) with
        | Some input, Some g -> (
            match Module_ir.find_type m g.Module_ir.gd_ty with
            | Some (Ty.Pointer (Ty.Uniform, _)) ->
                Input.find_uniform input g.Module_ir.gd_name
            | _ -> None)
        | _ -> None)
    | Instr.CompositeInsert _ | Instr.Store _ | Instr.AccessChain _
    | Instr.FunctionCall _ | Instr.Variable _ | Instr.Undef | Instr.Nop ->
        None

  let transfer_block m input (b : Block.t) env =
    List.fold_left
      (fun env (i : Instr.t) ->
        match i.Instr.result with
        | None -> env
        | Some r -> (
            match eval_op m input env i with
            | Some v -> Id.Map.add r v env
            | None -> env))
      env b.Block.instrs

  let compute ?input m (f : Func.t) =
    let cfg = Cfg.of_func f in
    let initial =
      List.fold_left
        (fun acc (d : Module_ir.const_decl) ->
          match Module_ir.const_value m d.Module_ir.cd_id with
          | v -> Id.Map.add d.Module_ir.cd_id v acc
          | exception _ -> acc)
        Id.Map.empty m.Module_ir.constants
    in
    let lat = { bottom = None; equal = equal_env; join = join_env } in
    let transfer i env =
      Option.map (transfer_block m input cfg.Cfg.blocks.(i)) env
    in
    let sol = solve cfg Forward lat ~boundary:(Some initial) ~transfer in
    (* collect the fixpoint bindings: SSA defines each id once, so the
       per-block environments never disagree on instruction results *)
    let values =
      Array.fold_left
        (fun acc env ->
          match env with
          | None -> acc
          | Some env -> Id.Map.union (fun _ a _ -> Some a) env acc)
        initial sol.block_out
    in
    { values }

  let value_of t id = Id.Map.find_opt id t.values
  let known t = Id.Map.bindings t.values
end

(* ------------------------------------------------------------------ *)
(* Store-only locals                                                   *)

(* Function-local variables whose every use is as a store destination (or
   that are never used at all): their stores can never be observed.  Shared
   by the optimizer's dead-store elimination and the lint suite. *)
let write_only_locals (f : Func.t) =
  let locals =
    List.fold_left
      (fun s (i : Instr.t) ->
        match (i.Instr.result, i.Instr.op) with
        | Some r, Instr.Variable Ty.Function -> Id.Set.add r s
        | _ -> s)
      Id.Set.empty (Func.all_instrs f)
  in
  let used = ref Id.Set.empty in
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (i : Instr.t) ->
          match i.Instr.op with
          | Instr.Store (_, v) -> used := Id.Set.add v !used
          | _ ->
              List.iter (fun u -> used := Id.Set.add u !used) (Instr.used_ids i))
        b.Block.instrs;
      List.iter
        (fun u -> used := Id.Set.add u !used)
        (Block.terminator_used_ids b.Block.terminator))
    f.Func.blocks;
  Id.Set.filter (fun v -> not (Id.Set.mem v !used)) locals
