(** Generic worklist dataflow over {!Cfg}, and the standard analyses built
    on it.

    The engine is parameterized by a join-semilattice (bottom, join, equal)
    and a per-block transfer function; direction selects whether states
    propagate along or against control-flow edges.  Everything downstream —
    the validator, the lint suite, the optimizer's checked pipelines and the
    transformation preconditions — consumes these shared analyses instead of
    re-deriving def-use facts privately. *)

type direction = Forward | Backward

type 'a lattice = {
  bottom : 'a;  (* must be the identity of [join] *)
  equal : 'a -> 'a -> bool;
  join : 'a -> 'a -> 'a;
}

type 'a solution = {
  block_in : 'a array;   (* state at block entry, per Cfg position *)
  block_out : 'a array;  (* state at block exit, per Cfg position *)
}

let solve ?(edge = fun ~src:_ ~dst:_ s -> s) ?(widen = fun _ ~old:_ s -> s)
    (cfg : Cfg.t) direction lat ~boundary ~transfer =
  let n = Array.length cfg.Cfg.blocks in
  let block_in = Array.make n lat.bottom in
  let block_out = Array.make n lat.bottom in
  if n > 0 then begin
    (* Seed the worklist with every block (unreachable ones included, so
       their facts exist too), in an order that converges quickly: reverse
       post-order along the direction of propagation. *)
    let rpo = Cfg.reverse_postorder cfg in
    let unreachable =
      List.filter (fun i -> not cfg.Cfg.reachable.(i)) (List.init n Fun.id)
    in
    let order =
      match direction with
      | Forward -> rpo @ unreachable
      | Backward -> List.rev rpo @ unreachable
    in
    let queue = Queue.create () in
    let queued = Array.make n false in
    let enqueue i =
      if not queued.(i) then begin
        queued.(i) <- true;
        Queue.add i queue
      end
    in
    List.iter enqueue order;
    (* under the chosen direction: the edges states flow in from, the blocks
       to revisit when a state changes, and which side of the solution each
       plays *)
    let sources, dependents, src_state =
      match direction with
      | Forward -> (cfg.Cfg.preds, cfg.Cfg.succs, block_out)
      | Backward -> (cfg.Cfg.succs, cfg.Cfg.preds, block_in)
    in
    let at_boundary i =
      match direction with
      | Forward -> i = 0
      | Backward -> cfg.Cfg.succs.(i) = []
    in
    while not (Queue.is_empty queue) do
      let i = Queue.pop queue in
      queued.(i) <- false;
      let incoming =
        let base = if at_boundary i then boundary else lat.bottom in
        List.fold_left
          (fun acc j -> lat.join acc (edge ~src:j ~dst:i src_state.(j)))
          base sources.(i)
      in
      let incoming =
        let old =
          match direction with
          | Forward -> block_in.(i)
          | Backward -> block_out.(i)
        in
        widen i ~old incoming
      in
      let out = transfer i incoming in
      let changed =
        match direction with
        | Forward ->
            block_in.(i) <- incoming;
            not (lat.equal out block_out.(i)) && (block_out.(i) <- out; true)
        | Backward ->
            block_out.(i) <- incoming;
            not (lat.equal out block_in.(i)) && (block_in.(i) <- out; true)
      in
      if changed then List.iter enqueue dependents.(i)
    done
  end;
  { block_in; block_out }

let id_set_lattice =
  { bottom = Id.Set.empty; equal = Id.Set.equal; join = Id.Set.union }

(* result ids defined by a block's instructions *)
let block_defs (b : Block.t) =
  List.fold_left
    (fun s (i : Instr.t) ->
      match i.Instr.result with Some r -> Id.Set.add r s | None -> s)
    Id.Set.empty b.Block.instrs

let all_defs (f : Func.t) =
  List.fold_left
    (fun s b -> Id.Set.union s (block_defs b))
    Id.Set.empty f.Func.blocks

let position_exn cfg label =
  match Cfg.block_index cfg label with
  | Some i -> i
  | None -> invalid_arg ("Dataflow: no block " ^ Id.to_string label)

(* ------------------------------------------------------------------ *)
(* Reaching definitions                                                *)

module Reaching_defs = struct
  type t = { cfg : Cfg.t; sol : Id.Set.t solution }

  (* SSA never redefines an id, so there are no kills: a definition reaches
     every point some path leads to from its block. *)
  let compute (f : Func.t) =
    let cfg = Cfg.of_func f in
    let defs = Array.map block_defs cfg.Cfg.blocks in
    let sol =
      solve cfg Forward id_set_lattice ~boundary:Id.Set.empty
        ~transfer:(fun i s -> Id.Set.union s defs.(i))
    in
    { cfg; sol }

  let at_entry t label = t.sol.block_in.(position_exn t.cfg label)
  let at_exit t label = t.sol.block_out.(position_exn t.cfg label)
end

(* ------------------------------------------------------------------ *)
(* Liveness                                                            *)

module Liveness = struct
  type t = {
    cfg : Cfg.t;
    sol : Id.Set.t solution;
    phi_uses_from : Id.Set.t array;  (* values feeding successor φs, per pred *)
  }

  (* φ semantics: a φ's value operands are uses at the end of the matching
     predecessor, not in the φ's own block; its block-label operands are not
     value uses at all. *)
  let instr_uses (i : Instr.t) =
    match i.Instr.op with Instr.Phi _ -> [] | _ -> Instr.used_ids i

  let transfer_block (b : Block.t) ~live_out =
    let live =
      List.fold_left
        (fun s u -> Id.Set.add u s)
        live_out
        (Block.terminator_used_ids b.Block.terminator)
    in
    List.fold_left
      (fun live (i : Instr.t) ->
        let live =
          match i.Instr.result with
          | Some r -> Id.Set.remove r live
          | None -> live
        in
        List.fold_left (fun s u -> Id.Set.add u s) live (instr_uses i))
      live
      (List.rev b.Block.instrs)

  let compute (f : Func.t) =
    let cfg = Cfg.of_func f in
    let n = Array.length cfg.Cfg.blocks in
    let phi_uses_from = Array.make n Id.Set.empty in
    Array.iteri
      (fun p succs ->
        List.iter
          (fun s ->
            let sb = cfg.Cfg.blocks.(s) in
            List.iter
              (fun (i : Instr.t) ->
                match i.Instr.op with
                | Instr.Phi incoming ->
                    List.iter
                      (fun (v, pred) ->
                        if Id.equal pred cfg.Cfg.blocks.(p).Block.label then
                          phi_uses_from.(p) <- Id.Set.add v phi_uses_from.(p))
                      incoming
                | _ -> ())
              sb.Block.instrs)
          succs)
      cfg.Cfg.succs;
    let sol =
      solve cfg Backward id_set_lattice ~boundary:Id.Set.empty
        ~transfer:(fun i out ->
          transfer_block cfg.Cfg.blocks.(i)
            ~live_out:(Id.Set.union out phi_uses_from.(i)))
    in
    { cfg; sol; phi_uses_from }

  let live_in t label = t.sol.block_in.(position_exn t.cfg label)

  (* live across the outgoing edges, successor-φ uses included *)
  let live_out t label =
    let i = position_exn t.cfg label in
    Id.Set.union t.sol.block_out.(i) t.phi_uses_from.(i)
end

(* ------------------------------------------------------------------ *)
(* Availability (the SSA dominance rule)                               *)

module Availability = struct
  type t = {
    m : Module_ir.t;
    f : Func.t;
    cfg : Cfg.t;
    dom : Dominance.t;
    def_site : (Id.t * int) Id.Map.t;  (* id -> (block label, instr index) *)
    module_level : Id.Set.t;  (* constants, globals, this function's params *)
    must_in : Id.Set.t solution Lazy.t;  (* intersection formulation *)
  }

  let make m (f : Func.t) =
    let cfg = Cfg.of_func f in
    let dom = Dominance.compute cfg in
    let def_site =
      List.fold_left
        (fun acc (b : Block.t) ->
          let acc, _ =
            List.fold_left
              (fun (acc, idx) (i : Instr.t) ->
                let acc =
                  match i.Instr.result with
                  | Some r -> Id.Map.add r (b.Block.label, idx) acc
                  | None -> acc
                in
                (acc, idx + 1))
              (acc, 0) b.Block.instrs
          in
          acc)
        Id.Map.empty f.Func.blocks
    in
    let module_level =
      let s = ref Id.Set.empty in
      List.iter
        (fun (d : Module_ir.const_decl) -> s := Id.Set.add d.Module_ir.cd_id !s)
        m.Module_ir.constants;
      List.iter
        (fun (d : Module_ir.global_decl) -> s := Id.Set.add d.Module_ir.gd_id !s)
        m.Module_ir.globals;
      List.iter
        (fun (p : Func.param) -> s := Id.Set.add p.Func.param_id !s)
        f.Func.params;
      !s
    in
    let must_in =
      lazy
        (let universe = all_defs f in
         let defs = Array.map block_defs cfg.Cfg.blocks in
         (* must-analysis: join is intersection, so the join identity
            ("nothing known yet") is the full universe *)
         let lat =
           { bottom = universe; equal = Id.Set.equal; join = Id.Set.inter }
         in
         solve cfg Forward lat ~boundary:Id.Set.empty ~transfer:(fun i s ->
             Id.Set.union s defs.(i)))
    in
    { m; f; cfg; dom; def_site; module_level; must_in }

  let module_of t = t.m
  let func t = t.f
  let cfg t = t.cfg
  let dominance t = t.dom
  let def_site t id = Id.Map.find_opt id t.def_site
  let is_module_level t id = Id.Set.mem id t.module_level

  (* The validator's rule, including its relaxation inside unreachable
     blocks: uses there only need the id defined somewhere in the
     function. *)
  let available_at t ~block ~index id =
    if Id.Set.mem id t.module_level then true
    else
      match Id.Map.find_opt id t.def_site with
      | None -> false
      | Some (def_block, def_idx) ->
          if not (Cfg.is_reachable t.cfg block) then true
          else if Id.equal def_block block then def_idx < index
          else Dominance.strictly_dominates t.dom def_block block

  let available_at_end t ~block id = available_at t ~block ~index:max_int id

  (* ids guaranteed defined on every path from entry to [block]'s entry —
     the worklist formulation of availability; on a valid module it agrees
     with the dominance rule at block entry (property-tested). *)
  let must_defined_at_entry t ~block =
    (Lazy.force t.must_in).block_in.(position_exn t.cfg block)
end

(* ------------------------------------------------------------------ *)
(* Constant / uniform-value propagation                                *)

module Constprop = struct
  type t = { values : Value.t Id.Map.t }

  (* The environment maps ids to values known constant on all paths.  The
     lattice element is an [option]: [None] is "unvisited" (the join
     identity, top), so unreachable blocks contribute nothing. *)
  let join_env a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some a, Some b ->
        Some
          (Id.Map.merge
             (fun _ va vb ->
               match (va, vb) with
               | Some x, Some y when Value.equal x y -> Some x
               | _ -> None)
             a b)

  let equal_env a b = Option.equal (Id.Map.equal Value.equal) a b

  let rec extract_path v path =
    match (path, v) with
    | [], _ -> Some v
    | i :: rest, Value.VComposite xs when i >= 0 && i < Array.length xs ->
        extract_path xs.(i) rest
    | _ -> None

  let eval_op m input env (i : Instr.t) =
    let lookup x = Id.Map.find_opt x env in
    match i.Instr.op with
    | Instr.CopyObject x -> lookup x
    | Instr.Binop (op, a, b) -> (
        match (lookup a, lookup b) with
        | Some va, Some vb -> (
            try Some (Ops.eval_binop op va vb) with _ -> None)
        | _ -> None)
    | Instr.Unop (op, a) -> (
        match lookup a with
        | Some va -> ( try Some (Ops.eval_unop op va) with _ -> None)
        | None -> None)
    | Instr.Select (c, t, f) -> (
        match lookup c with
        | Some (Value.VBool true) -> lookup t
        | Some (Value.VBool false) -> lookup f
        | _ -> None)
    | Instr.CompositeConstruct xs ->
        let vs = List.map lookup xs in
        if List.for_all Option.is_some vs then
          Some (Value.VComposite (Array.of_list (List.map Option.get vs)))
        else None
    | Instr.CompositeExtract (c, path) -> (
        match lookup c with
        | Some v -> extract_path v path
        | None -> None)
    | Instr.Phi incoming -> (
        (* conservative: the joined entry environment already requires each
           incoming value to be the same constant on every predecessor *)
        match incoming with
        | [] -> None
        | (v0, _) :: rest -> (
            match lookup v0 with
            | Some c
              when List.for_all
                     (fun (v, _) ->
                       match lookup v with
                       | Some c' -> Value.equal c c'
                       | None -> false)
                     rest ->
                Some c
            | _ -> None))
    | Instr.Load p -> (
        (* uniform propagation: loading an unwritten Uniform-class global
           yields the input's value for it *)
        match (input, Module_ir.find_global m p) with
        | Some input, Some g -> (
            match Module_ir.find_type m g.Module_ir.gd_ty with
            | Some (Ty.Pointer (Ty.Uniform, _)) ->
                Input.find_uniform input g.Module_ir.gd_name
            | _ -> None)
        | _ -> None)
    | Instr.CompositeInsert _ | Instr.Store _ | Instr.AccessChain _
    | Instr.FunctionCall _ | Instr.Variable _ | Instr.Undef | Instr.Nop ->
        None

  let transfer_block m input (b : Block.t) env =
    List.fold_left
      (fun env (i : Instr.t) ->
        match i.Instr.result with
        | None -> env
        | Some r -> (
            match eval_op m input env i with
            | Some v -> Id.Map.add r v env
            | None -> env))
      env b.Block.instrs

  let compute ?input m (f : Func.t) =
    let cfg = Cfg.of_func f in
    let initial =
      List.fold_left
        (fun acc (d : Module_ir.const_decl) ->
          match Module_ir.const_value m d.Module_ir.cd_id with
          | v -> Id.Map.add d.Module_ir.cd_id v acc
          | exception _ -> acc)
        Id.Map.empty m.Module_ir.constants
    in
    let lat = { bottom = None; equal = equal_env; join = join_env } in
    let transfer i env =
      Option.map (transfer_block m input cfg.Cfg.blocks.(i)) env
    in
    let sol = solve cfg Forward lat ~boundary:(Some initial) ~transfer in
    (* collect the fixpoint bindings: SSA defines each id once, so the
       per-block environments never disagree on instruction results *)
    let values =
      Array.fold_left
        (fun acc env ->
          match env with
          | None -> acc
          | Some env -> Id.Map.union (fun _ a _ -> Some a) env acc)
        initial sol.block_out
    in
    { values }

  let value_of t id = Id.Map.find_opt id t.values
  let known t = Id.Map.bindings t.values
end

(* ------------------------------------------------------------------ *)
(* Integer intervals                                                   *)

module Itv = struct
  (* [min_int]/[max_int] are the -oo/+oo sentinels; every finite bound lies
     in the int32 range.  Arithmetic that could leave the int32 range
     returns [top]: module semantics wrap (Int32), so a potentially
     overflowing op really can produce any value. *)
  type t = { lo : int; hi : int }

  let top = { lo = min_int; hi = max_int }
  let is_top t = t.lo = min_int && t.hi = max_int
  let point n = { lo = n; hi = n }
  let make lo hi = { lo; hi }
  let mem n t = n >= t.lo && n <= t.hi
  let equal a b = a.lo = b.lo && a.hi = b.hi
  let join a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

  (* the meet may be empty (lo > hi); callers treat that as infeasible *)
  let meet a b = { lo = max a.lo b.lo; hi = min a.hi b.hi }
  let is_empty t = t.lo > t.hi
  let finite t = t.lo > min_int && t.hi < max_int
  let singleton t = if finite t && t.lo = t.hi then Some t.lo else None

  let widen ~old nw =
    {
      lo = (if nw.lo < old.lo then min_int else old.lo);
      hi = (if nw.hi > old.hi then max_int else old.hi);
    }

  let i32_min = Int32.to_int Int32.min_int
  let i32_max = Int32.to_int Int32.max_int

  (* corners computed in 63-bit arithmetic; any corner outside the int32
     range means the Int32 op could wrap, so the result is unconstrained *)
  let of_corners = function
    | [] -> top
    | c :: cs ->
        let lo = List.fold_left min c cs and hi = List.fold_left max c cs in
        if lo >= i32_min && hi <= i32_max then { lo; hi } else top

  let add a b =
    if finite a && finite b then of_corners [ a.lo + b.lo; a.hi + b.hi ]
    else top

  let sub a b =
    if finite a && finite b then of_corners [ a.lo - b.hi; a.hi - b.lo ]
    else top

  let mul a b =
    if finite a && finite b then
      of_corners [ a.lo * b.lo; a.lo * b.hi; a.hi * b.lo; a.hi * b.hi ]
    else top

  let neg a = if finite a then of_corners [ -a.lo; -a.hi ] else top

  let to_string t =
    let b n =
      if n = min_int then "-oo"
      else if n = max_int then "+oo"
      else string_of_int n
    in
    Printf.sprintf "[%s, %s]" (b t.lo) (b t.hi)
end

(* ------------------------------------------------------------------ *)
(* Interval / value-range analysis                                     *)

module Ranges = struct
  (* The environment maps SSA value ids — and the ids of trackable
     function-local int cells — to intervals; a missing key means top.  The
     lattice element is an [option]: [None] is "unvisited" (the join
     identity), exactly as in [Constprop]. *)
  type env = Itv.t Id.Map.t

  type t = {
    m : Module_ir.t;
    f : Func.t;
    cfg : Cfg.t;
    loops : Loops.forest;
    tracked : Id.Set.t;
    def_instr : Instr.t Id.Map.t;
    def_block : Id.t Id.Map.t;
    sol : env option solution;
  }

  (* Function-local int variables whose every use is a direct [Load]/[Store]
     destination: their contents cannot be aliased (no access chains, no
     escaping into calls or φs), so a store is the only way they change. *)
  let tracked_cells m (f : Func.t) =
    let int_cells =
      List.fold_left
        (fun s (i : Instr.t) ->
          match (i.Instr.result, i.Instr.op, i.Instr.ty) with
          | Some r, Instr.Variable Ty.Function, Some ty -> (
              match Module_ir.find_type m ty with
              | Some (Ty.Pointer (_, p)) -> (
                  match Module_ir.find_type m p with
                  | Some Ty.Int -> Id.Set.add r s
                  | _ -> s)
              | _ -> s)
          | _ -> s)
        Id.Set.empty (Func.all_instrs f)
    in
    let bad = ref Id.Set.empty in
    let disqualify id =
      if Id.Set.mem id int_cells then bad := Id.Set.add id !bad
    in
    List.iter
      (fun (b : Block.t) ->
        List.iter
          (fun (i : Instr.t) ->
            match i.Instr.op with
            | Instr.Load _ -> ()
            | Instr.Store (_, v) -> disqualify v
            | _ -> List.iter disqualify (Instr.used_ids i))
          b.Block.instrs;
        List.iter disqualify (Block.terminator_used_ids b.Block.terminator))
      f.Func.blocks;
    Id.Set.diff int_cells !bad

  let def_maps (f : Func.t) =
    List.fold_left
      (fun (di, db) (b : Block.t) ->
        List.fold_left
          (fun (di, db) (i : Instr.t) ->
            match i.Instr.result with
            | Some r -> (Id.Map.add r i di, Id.Map.add r b.Block.label db)
            | None -> (di, db))
          (di, db) b.Block.instrs)
      (Id.Map.empty, Id.Map.empty) f.Func.blocks

  let lookup m env id =
    match Id.Map.find_opt id env with
    | Some itv -> itv
    | None -> (
        match Module_ir.find_constant m id with
        | Some _ -> (
            match Module_ir.const_value m id with
            | Value.VInt n -> Itv.point (Int32.to_int n)
            | Value.VBool _ | Value.VFloat _ | Value.VComposite _ -> Itv.top
            | exception _ -> Itv.top)
        | None -> Itv.top)

  (* only non-top intervals are stored, so "missing = top" stays consistent *)
  let bind env r itv =
    if Itv.is_top itv then Id.Map.remove r env else Id.Map.add r itv env

  let eval_instr m tracked env (i : Instr.t) =
    let lk x = lookup m env x in
    match (i.Instr.result, i.Instr.op) with
    | None, Instr.Store (p, v) ->
        if Id.Set.mem p tracked then bind env p (lk v) else env
    | None, _ -> env
    | Some r, Instr.Binop (op, a, b) -> (
        match op with
        | Instr.IAdd -> bind env r (Itv.add (lk a) (lk b))
        | Instr.ISub -> bind env r (Itv.sub (lk a) (lk b))
        | Instr.IMul -> bind env r (Itv.mul (lk a) (lk b))
        | Instr.SDiv | Instr.SMod -> (
            match (Itv.singleton (lk a), Itv.singleton (lk b)) with
            | Some x, Some y -> (
                match
                  Ops.eval_binop op
                    (Value.VInt (Int32.of_int x))
                    (Value.VInt (Int32.of_int y))
                with
                | Value.VInt n -> bind env r (Itv.point (Int32.to_int n))
                | Value.VBool _ | Value.VFloat _ | Value.VComposite _ -> env
                | exception Ops.Type_error _ -> env)
            | _, Some m when op = Instr.SMod ->
                (* [Ops.smod] is [Int32.rem] (dividend-signed, and 0 when the
                   divisor is 0), so with a known divisor m <> 0 the result
                   lies in [-(|m|-1), |m|-1], tightened by the dividend's
                   sign; this is what proves the
                   [((x mod n) + n) mod n] in-bounds idiom.  Soundness at
                   the int32 edge: |Int32.rem a m| < |m| for every a,
                   including min_int (rem min_int (-1) = 0). *)
                if m = 0 then bind env r (Itv.point 0)
                else
                  let bound = abs m - 1 in
                  let ia = lk a in
                  let itv =
                    if ia.Itv.lo >= 0 then Itv.make 0 (min ia.Itv.hi bound)
                    else if ia.Itv.hi <= 0 then
                      Itv.make (max ia.Itv.lo (-bound)) 0
                    else Itv.make (-bound) bound
                  in
                  bind env r itv
            | _ -> env)
        | _ -> env)
    | Some r, Instr.Unop (Instr.SNegate, a) -> bind env r (Itv.neg (lk a))
    | Some _, Instr.Unop _ -> env
    | Some r, Instr.Select (_, tv, fv) -> bind env r (Itv.join (lk tv) (lk fv))
    | Some r, Instr.CopyObject x -> bind env r (lk x)
    | Some r, Instr.Phi incoming -> (
        (* the edge transfer binds φs against each predecessor's own
           environment (where a latch-defined operand is finite even
           though it is top on the merged entry state); a binding that
           survived the entry join is exact, so keep it *)
        if Id.Map.mem r env then env
        else
          match incoming with
          | [] -> env
          | (v0, _) :: rest ->
              bind env r
                (List.fold_left (fun acc (v, _) -> Itv.join acc (lk v)) (lk v0) rest))
    | Some r, Instr.Load p ->
        if Id.Set.mem p tracked then bind env r (lk p) else bind env r Itv.top
    | Some r, Instr.Variable Ty.Function ->
        (* interp semantics: a fresh cell is zero-initialized *)
        if Id.Set.mem r tracked then bind env r (Itv.point 0) else env
    | Some _, _ -> env

  let negate_cmp = function
    | Instr.SLessThan -> Some Instr.SGreaterThanEqual
    | Instr.SLessThanEqual -> Some Instr.SGreaterThan
    | Instr.SGreaterThan -> Some Instr.SLessThanEqual
    | Instr.SGreaterThanEqual -> Some Instr.SLessThan
    | Instr.IEqual -> Some Instr.INotEqual
    | Instr.INotEqual -> Some Instr.IEqual
    | _ -> None

  (* intervals implied on x and y by  x `op` y  holding *)
  let cmp_constraints op (ix : Itv.t) (iy : Itv.t) =
    match op with
    | Instr.SLessThan ->
        ( (if iy.Itv.hi = max_int then Itv.top else Itv.make min_int (iy.Itv.hi - 1)),
          if ix.Itv.lo = min_int then Itv.top else Itv.make (ix.Itv.lo + 1) max_int )
    | Instr.SLessThanEqual ->
        (Itv.make min_int iy.Itv.hi, Itv.make ix.Itv.lo max_int)
    | Instr.SGreaterThan ->
        ( (if iy.Itv.lo = min_int then Itv.top else Itv.make (iy.Itv.lo + 1) max_int),
          if ix.Itv.hi = max_int then Itv.top else Itv.make min_int (ix.Itv.hi - 1) )
    | Instr.SGreaterThanEqual ->
        (Itv.make iy.Itv.lo max_int, Itv.make min_int ix.Itv.hi)
    | Instr.IEqual -> (iy, ix)
    | _ -> (Itv.top, Itv.top)

  let chase_copies def_instr id =
    let rec go id n =
      match Id.Map.find_opt id def_instr with
      | Some { Instr.op = Instr.CopyObject y; _ } when n > 0 -> go y (n - 1)
      | d -> d
    in
    go id 8

  (* ids/cells whose value at the end of [b] provably equals [x]'s value:
     CopyObject chains, in-block loads with no later store to their cell,
     and cells whose last in-block store stores a member of the set *)
  let equal_set tracked def_instr (b : Block.t) x =
    let instrs = Array.of_list b.Block.instrs in
    let last_store_to p =
      let r = ref None in
      Array.iteri
        (fun i (ins : Instr.t) ->
          match ins.Instr.op with
          | Instr.Store (p', _) when Id.equal p' p -> r := Some i
          | _ -> ())
        instrs;
      !r
    in
    let pos_of id =
      let r = ref None in
      Array.iteri
        (fun i (ins : Instr.t) ->
          match ins.Instr.result with
          | Some rr when Id.equal rr id -> r := Some i
          | _ -> ())
        instrs;
      !r
    in
    let set = ref (Id.Set.singleton x) in
    let changed = ref true in
    while !changed do
      changed := false;
      let add id =
        if not (Id.Set.mem id !set) then begin
          set := Id.Set.add id !set;
          changed := true
        end
      in
      Id.Set.iter
        (fun id ->
          match Id.Map.find_opt id def_instr with
          | Some { Instr.op = Instr.CopyObject y; _ } -> add y
          | Some { Instr.op = Instr.Load p; _ } when Id.Set.mem p tracked -> (
              match pos_of id with
              | Some lp
                when (match last_store_to p with
                     | Some sp -> sp < lp
                     | None -> true) ->
                  add p
              | _ -> ())
          | _ -> ())
        !set;
      Array.iteri
        (fun i (ins : Instr.t) ->
          match ins.Instr.op with
          | Instr.Store (p, v)
            when Id.Set.mem p tracked && Id.Set.mem v !set
                 && (match last_store_to p with
                    | Some sp -> sp = i
                    | None -> false) ->
              add p
          | _ -> ())
        instrs
    done;
    !set

  (* edge transfer: refine the comparison operands (and everything provably
     equal to them at the source block's exit) along conditional edges; an
     empty meet means the edge is infeasible and contributes nothing *)
  let refine_edge m tracked def_instr (cfg : Cfg.t) ~src ~dst env =
    match env with
    | None -> None
    | Some env0 -> (
        let b = cfg.Cfg.blocks.(src) in
        match b.Block.terminator with
        | Block.BranchConditional (c, tt, ff) when not (Id.equal tt ff) -> (
            let dst_label = cfg.Cfg.blocks.(dst).Block.label in
            let assume =
              if Id.equal dst_label tt then Some true
              else if Id.equal dst_label ff then Some false
              else None
            in
            match (assume, chase_copies def_instr c) with
            | Some assume, Some { Instr.op = Instr.Binop (op, x, y); _ } -> (
                let op = if assume then Some op else negate_cmp op in
                match op with
                | None -> Some env0
                | Some op ->
                    let ix = lookup m env0 x and iy = lookup m env0 y in
                    let cx, cy = cmp_constraints op ix iy in
                    let apply target itv acc =
                      match acc with
                      | None -> None
                      | Some env ->
                          Id.Set.fold
                            (fun id acc ->
                              match acc with
                              | None -> None
                              | Some env ->
                                  let r = Itv.meet (lookup m env id) itv in
                                  if Itv.is_empty r then None
                                  else Some (bind env id r))
                            (equal_set tracked def_instr b target)
                            (Some env)
                    in
                    Some env0 |> apply x cx |> apply y cy)
            | _ -> Some env0)
        | Block.Branch _ | Block.BranchConditional _ | Block.Return
        | Block.ReturnValue _ | Block.Kill | Block.Unreachable ->
            Some env0)

  (* φs evaluated per edge: bind each φ result in [dst] to its incoming
     operand's interval in the (already refined) source-edge environment.
     The merged entry state sees the pointwise join of these exact
     bindings, so a latch-carried induction variable keeps a finite lower
     bound instead of joining with top along the entry edge.  A φ with no
     entry for the edge's predecessor (malformed IR) drops to top. *)
  let eval_phis_on_edge m (cfg : Cfg.t) ~src ~dst env =
    match env with
    | None -> None
    | Some env0 ->
        let src_label = cfg.Cfg.blocks.(src).Block.label in
        let bindings =
          List.filter_map
            (fun (i : Instr.t) ->
              match (i.Instr.result, i.Instr.op) with
              | Some r, Instr.Phi incoming ->
                  let itv =
                    match
                      List.find_opt
                        (fun (_, p) -> Id.equal p src_label)
                        incoming
                    with
                    | Some (v, _) -> lookup m env0 v
                    | None -> Itv.top
                  in
                  Some (r, itv)
              | _ -> None)
            cfg.Cfg.blocks.(dst).Block.instrs
        in
        (* all φs read the pre-φ edge environment, then bind simultaneously *)
        Some (List.fold_left (fun e (r, itv) -> bind e r itv) env0 bindings)

  let join_env a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some a, Some b ->
        Some
          (Id.Map.merge
             (fun _ va vb ->
               match (va, vb) with
               | Some x, Some y ->
                   let j = Itv.join x y in
                   if Itv.is_top j then None else Some j
               | _ -> None)
             a b)

  let equal_env = Option.equal (Id.Map.equal Itv.equal)

  let widen_delay = 3

  module Int_set = Set.Make (Int)

  (* Widening thresholds: the integer constants compared against in [f]
     (± 1 for strictness).  Widening an unstable bound to the nearest
     threshold instead of straight to ±oo lets an outer induction variable
     survive an inner loop's widening point — a plain widen of  i  at the
     inner header tops out  i + 1, and the descending sweeps cannot recover
     through the inner cycle.  The chain per bound is still finite. *)
  let widen_thresholds m (f : Func.t) =
    let cint v =
      match Module_ir.const_value m v with
      | Value.VInt n -> Some (Int32.to_int n)
      | Value.VBool _ | Value.VFloat _ | Value.VComposite _ -> None
      | exception _ -> None
    in
    let add s v =
      match cint v with
      | Some n -> Int_set.add (n - 1) (Int_set.add n (Int_set.add (n + 1) s))
      | None -> s
    in
    let s =
      List.fold_left
        (fun s (i : Instr.t) ->
          match i.Instr.op with
          | Instr.Binop
              ( ( Instr.IEqual | Instr.INotEqual | Instr.SLessThan
                | Instr.SLessThanEqual | Instr.SGreaterThan
                | Instr.SGreaterThanEqual ),
                a,
                b ) ->
              add (add s a) b
          | _ -> s)
        (Int_set.singleton 0) (Func.all_instrs f)
    in
    Int_set.elements s

  let compute m (f : Func.t) ~(cfg : Cfg.t) ~(loops : Loops.forest) =
    let tracked = tracked_cells m f in
    let def_instr, def_block = def_maps f in
    let n = Array.length cfg.Cfg.blocks in
    (* widening points: loop headers plus targets of irreducible retreating
       edges — every CFG cycle passes through one, keeping chains finite *)
    let widen_at = Array.make n false in
    List.iter
      (fun (l : Loops.loop) ->
        match Cfg.block_index cfg l.Loops.header with
        | Some i -> widen_at.(i) <- true
        | None -> ())
      loops.Loops.loops;
    List.iter
      (fun (_, dst) ->
        match Cfg.block_index cfg dst with
        | Some i -> widen_at.(i) <- true
        | None -> ())
      loops.Loops.irreducible;
    let visits = Array.make n 0 in
    let thresholds = widen_thresholds m f in
    let widen_itv ~(old : Itv.t) (nw : Itv.t) =
      let lo =
        if nw.Itv.lo >= old.Itv.lo then old.Itv.lo
        else
          (* largest threshold at or below the new bound, else -oo *)
          List.fold_left
            (fun acc t -> if t <= nw.Itv.lo then t else acc)
            min_int thresholds
      in
      let hi =
        if nw.Itv.hi <= old.Itv.hi then old.Itv.hi
        else
          (* smallest threshold at or above the new bound, else +oo *)
          List.fold_left
            (fun acc t -> if t >= nw.Itv.hi && acc = max_int then t else acc)
            max_int thresholds
      in
      Itv.make lo hi
    in
    let widen i ~old nw =
      if not widen_at.(i) then nw
      else begin
        visits.(i) <- visits.(i) + 1;
        if visits.(i) <= widen_delay then nw
        else
          match (old, nw) with
          | Some o, Some nv ->
              Some
                (Id.Map.merge
                   (fun _ vo vn ->
                     match (vo, vn) with
                     | Some vo, Some vn ->
                         let w = widen_itv ~old:vo vn in
                         if Itv.is_top w then None else Some w
                     | _, _ -> None)
                   o nv)
          | _ -> nw
      end
    in
    let lat = { bottom = None; equal = equal_env; join = join_env } in
    let transfer i env =
      Option.map
        (fun env ->
          List.fold_left (eval_instr m tracked) env
            cfg.Cfg.blocks.(i).Block.instrs)
        env
    in
    let edge ~src ~dst env =
      eval_phis_on_edge m cfg ~src ~dst
        (refine_edge m tracked def_instr cfg ~src ~dst env)
    in
    let sol =
      solve ~edge ~widen cfg Forward lat ~boundary:(Some Id.Map.empty) ~transfer
    in
    (* two descending (narrowing) sweeps: re-propagate from the widened
       post-fixpoint without widening; values only shrink and stay sound *)
    let rpo = Cfg.reverse_postorder cfg in
    for _pass = 1 to 2 do
      List.iter
        (fun i ->
          let incoming =
            let base = if i = 0 then Some Id.Map.empty else None in
            List.fold_left
              (fun acc j -> join_env acc (edge ~src:j ~dst:i sol.block_out.(j)))
              base cfg.Cfg.preds.(i)
          in
          sol.block_in.(i) <- incoming;
          sol.block_out.(i) <- transfer i incoming)
        rpo
    done;
    { m; f; cfg; loops; tracked; def_instr; def_block; sol }

  let interval_at t ~block id =
    match Cfg.block_index t.cfg block with
    | Some i -> (
        match t.sol.block_out.(i) with
        | Some env -> lookup t.m env id
        | None -> Itv.top)
    | None -> Itv.top

  (* sound interval for an SSA value: its binding at its defining block's
     exit covers every execution of the definition *)
  let interval_of t id =
    match Id.Map.find_opt id t.def_block with
    | Some b -> interval_at t ~block:b id
    | None -> lookup t.m Id.Map.empty id

  let known t =
    Id.Map.fold
      (fun id _ acc ->
        let itv = interval_of t id in
        if Itv.is_top itv then acc else (id, itv) :: acc)
      t.def_block []
    |> List.rev

  let const_int t id =
    match Module_ir.find_constant t.m id with
    | Some _ -> (
        match Module_ir.const_value t.m id with
        | Value.VInt n -> Some (Int32.to_int n)
        | Value.VBool _ | Value.VFloat _ | Value.VComposite _ -> None
        | exception _ -> None)
    | None -> None

  (* does [var] advance by exactly +k (k >= 1) on every back-edge
     traversal?  Two shapes: a header φ whose latch operand is var + k, and
     a header load of a tracked cell whose single in-loop store is the
     latch increment  store p ((load p) + k). *)
  let induction_step t (l : Loops.loop) ~header ~latch var =
    let pos_const a b =
      (* a + b where one side is var-ish and the other a positive constant *)
      match const_int t b with Some k when k >= 1 -> Some (a, k) | _ -> None
    in
    match (Id.Map.find_opt var t.def_instr, Id.Map.find_opt var t.def_block) with
    | Some { Instr.op = Instr.Phi incoming; _ }, Some db when Id.equal db header
      -> (
        match List.find_opt (fun (_, p) -> Id.equal p latch) incoming with
        | Some (v_latch, _) -> (
            match chase_copies t.def_instr v_latch with
            | Some { Instr.op = Instr.Binop (Instr.IAdd, a, b); _ } -> (
                let step x k = if Id.equal x var then Some k else None in
                match pos_const a b with
                | Some (x, k) -> step x k
                | None -> (
                    match pos_const b a with
                    | Some (x, k) -> step x k
                    | None -> None))
            | _ -> None)
        | None -> None)
    | Some { Instr.op = Instr.Load p; _ }, Some db
      when Id.equal db header && Id.Set.mem p t.tracked -> (
        let in_loop_stores =
          List.concat_map
            (fun (b : Block.t) ->
              if Id.Set.mem b.Block.label l.Loops.blocks then
                List.filter_map
                  (fun (ins : Instr.t) ->
                    match ins.Instr.op with
                    | Instr.Store (p', v) when Id.equal p' p ->
                        Some (b.Block.label, v)
                    | _ -> None)
                  b.Block.instrs
              else [])
            t.f.Func.blocks
        in
        match in_loop_stores with
        | [ (sb, v) ] when Id.equal sb latch -> (
            let in_loop_load la =
              match
                (Id.Map.find_opt la t.def_instr, Id.Map.find_opt la t.def_block)
              with
              | Some { Instr.op = Instr.Load p'; _ }, Some lb ->
                  Id.equal p' p && Id.Set.mem lb l.Loops.blocks
              | _ -> false
            in
            match chase_copies t.def_instr v with
            | Some { Instr.op = Instr.Binop (Instr.IAdd, a, b); _ } -> (
                match pos_const a b with
                | Some (x, k) when in_loop_load x -> Some k
                | _ -> (
                    match pos_const b a with
                    | Some (x, k) when in_loop_load x -> Some k
                    | _ -> None))
            | _ -> None)
        | _ -> None)
    | _ -> None

  (* A sound upper bound on the number of back-edge traversals for a counted
     loop: the header branch must be an ascending comparison  var < bound
     (or <=) against operands whose header intervals pin  lo(var)  and
     hi(bound); the bound need not be loop-invariant — its header interval
     already covers every iteration. *)
  let trip_bound t ~header =
    match Loops.header_of t.loops header with
    | None -> None
    | Some l -> (
        match l.Loops.latches with
        | [ latch ] -> (
            match Cfg.block_index t.cfg header with
            | None -> None
            | Some hp -> (
                match t.sol.block_out.(hp) with
                | None -> None
                | Some henv -> (
                    match t.cfg.Cfg.blocks.(hp).Block.terminator with
                    | Block.BranchConditional (c, tt, ff) -> (
                        let t_in = Id.Set.mem tt l.Loops.blocks
                        and f_in = Id.Set.mem ff l.Loops.blocks in
                        match (t_in, f_in) with
                        | true, false | false, true -> (
                            match chase_copies t.def_instr c with
                            | Some { Instr.op = Instr.Binop (op, x, y); _ } -> (
                                let op =
                                  if t_in then Some op else negate_cmp op
                                in
                                let norm =
                                  match op with
                                  | Some Instr.SLessThan -> Some (x, y, true)
                                  | Some Instr.SLessThanEqual ->
                                      Some (x, y, false)
                                  | Some Instr.SGreaterThan -> Some (y, x, true)
                                  | Some Instr.SGreaterThanEqual ->
                                      Some (y, x, false)
                                  | Some _ | None -> None
                                in
                                match norm with
                                | None -> None
                                | Some (var, bound, strict) -> (
                                    match
                                      induction_step t l ~header ~latch var
                                    with
                                    | None -> None
                                    | Some k ->
                                        let iv = lookup t.m henv var in
                                        let ib = lookup t.m henv bound in
                                        if
                                          iv.Itv.lo = min_int
                                          || ib.Itv.hi = max_int
                                        then None
                                        else
                                          let span = ib.Itv.hi - iv.Itv.lo in
                                          let trips =
                                            if strict then
                                              if span <= 0 then 0
                                              else (span + k - 1) / k
                                            else if span < 0 then 0
                                            else (span / k) + 1
                                          in
                                          Some trips))
                            | _ -> None)
                        | _ -> None)
                    | Block.Branch _ | Block.Return | Block.ReturnValue _
                    | Block.Kill | Block.Unreachable ->
                        None)))
        | _ -> None)

  let tracked t = t.tracked
  let forest t = t.loops
end

(* ------------------------------------------------------------------ *)
(* Store-only locals                                                   *)

(* Function-local variables whose every use is as a store destination (or
   that are never used at all): their stores can never be observed.  Shared
   by the optimizer's dead-store elimination and the lint suite. *)
let write_only_locals (f : Func.t) =
  let locals =
    List.fold_left
      (fun s (i : Instr.t) ->
        match (i.Instr.result, i.Instr.op) with
        | Some r, Instr.Variable Ty.Function -> Id.Set.add r s
        | _ -> s)
      Id.Set.empty (Func.all_instrs f)
  in
  let used = ref Id.Set.empty in
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (i : Instr.t) ->
          match i.Instr.op with
          | Instr.Store (_, v) -> used := Id.Set.add v !used
          | _ ->
              List.iter (fun u -> used := Id.Set.add u !used) (Instr.used_ids i))
        b.Block.instrs;
      List.iter
        (fun u -> used := Id.Set.add u !used)
        (Block.terminator_used_ids b.Block.terminator))
    f.Func.blocks;
  Id.Set.filter (fun v -> not (Id.Set.mem v !used)) locals
