(* Memory / alias analysis: access-path resolution over
   Load/Store/AccessChain, in-bounds and alias proofs from Ranges
   intervals, and a reaching-stores dataflow per function.  See the
   interface for the fact catalogue; the soundness argument throughout is
   that a base is one interpreter cell, indices clamp at runtime, and
   every interval we consume is a sound over-approximation of the index
   value, so clamped-disjoint intervals really are disjoint cells. *)

module Itv = Dataflow.Itv

type base = Global of Id.t | Local of Id.t

let base_id = function Global g -> g | Local v -> v

let base_equal a b =
  match (a, b) with
  | Global x, Global y | Local x, Local y -> Id.equal x y
  | Global _, Local _ | Local _, Global _ -> false

let base_to_string = function
  | Global g -> "global " ^ Id.to_string g
  | Local v -> "local " ^ Id.to_string v

type seg = { seg_itv : Itv.t; seg_len : int }
type path = { base : base; segs : seg list; pointee : Id.t }

let seg_to_string s =
  match Itv.singleton s.seg_itv with
  | Some i -> Printf.sprintf "[%d]" i
  | None -> Printf.sprintf "[%s/%d]" (Itv.to_string s.seg_itv) s.seg_len

let path_to_string p =
  base_to_string p.base ^ String.concat "" (List.map seg_to_string p.segs)

type kind = ALoad | AStore

type access = {
  ord : int;
  a_kind : kind;
  a_block : Id.t;
  a_index : int;
  a_ptr : Id.t;
  a_path : path option;
  in_bounds : bool;
}

(* Def tokens of the reaching-stores dataflow: store ordinals, plus the
   initial-value token and the opaque-call token. *)
let init_def = -1
let extern_def = -2

module Cell = struct
  type t = Id.t * int

  let compare (a, i) (b, j) =
    match Id.compare a b with 0 -> compare i j | c -> c
end

module CM = Map.Make (Cell)
module IS = Set.Make (Int)

type t = {
  m : Module_ir.t;
  f : Func.t;
  cfg : Cfg.t;
  ranges : Dataflow.Ranges.t;
  defs : (Id.t, Id.t * Instr.t) Hashtbl.t;  (* result id -> (block, instr) *)
  paths : (Id.t, path option) Hashtbl.t;
  escaped : (Id.t, unit) Hashtbl.t;  (* base ids *)
  accs : access array;
  acc_at : (Id.t * int, access) Hashtbl.t;  (* (block, index) -> access *)
  ncells : (Id.t, int) Hashtbl.t;  (* base id -> cell count (1 = whole) *)
  cells : Cell.t list;
  reach_in : IS.t CM.t array;  (* per Cfg position: entry state *)
}

(* ---- access-path resolution ---------------------------------------- *)

let pointee_of m ty_id =
  match Module_ir.find_type m ty_id with
  | Some (Ty.Pointer (_, p)) -> Some p
  | _ -> None

(* Immediate component count and the component type id at [idx]. *)
let level_of m ty_id =
  match Module_ir.find_type m ty_id with
  | Some (Ty.Vector (e, n)) | Some (Ty.Array (e, n)) ->
      Some (n, fun _ -> Some e)
  | Some (Ty.Matrix (c, n)) -> Some (n, fun _ -> Some c)
  | Some (Ty.Struct ms) ->
      Some (List.length ms, fun i -> List.nth_opt ms i)
  | _ -> None

let const_int m id =
  match Module_ir.find_constant m id with
  | None -> None
  | Some _ -> (
      match Module_ir.const_value m id with
      | Value.VInt i -> Some (Int32.to_int i)
      | _ -> None)

let index_interval_raw t ~block id =
  match const_int t.m id with
  | Some i -> Itv.point i
  | None ->
      let at =
        try Dataflow.Ranges.interval_at t.ranges ~block id
        with _ -> Itv.top
      in
      let anywhere =
        try Dataflow.Ranges.interval_of t.ranges id with _ -> Itv.top
      in
      let met = Itv.meet at anywhere in
      (* an empty meet can only come from an unreachable refinement;
         fall back to the defining-site binding, which is total *)
      if Itv.is_empty met then anywhere else met

let rec resolve t id =
  match Hashtbl.find_opt t.paths id with
  | Some r -> r
  | None ->
      (* cycle guard; pointer φ-cycles resolve to None anyway *)
      Hashtbl.replace t.paths id None;
      let r = resolve_fresh t id in
      Hashtbl.replace t.paths id r;
      r

and resolve_fresh t id =
  match Module_ir.find_global t.m id with
  | Some g -> (
      match pointee_of t.m g.Module_ir.gd_ty with
      | Some p -> Some { base = Global id; segs = []; pointee = p }
      | None -> None)
  | None -> (
      match Hashtbl.find_opt t.defs id with
      | None -> None (* parameter or foreign id *)
      | Some (blk, instr) -> (
          match instr.Instr.op with
          | Instr.Variable _ -> (
              match instr.Instr.ty with
              | Some pt -> (
                  match pointee_of t.m pt with
                  | Some p -> Some { base = Local id; segs = []; pointee = p }
                  | None -> None)
              | None -> None)
          | Instr.CopyObject x -> resolve t x
          | Instr.AccessChain (b, idxs) -> (
              match resolve t b with
              | None -> None
              | Some parent -> extend t parent blk idxs)
          | _ -> None))

and extend t parent blk idxs =
  let rec go cur_ty segs = function
    | [] ->
        Some { parent with segs = parent.segs @ List.rev segs; pointee = cur_ty }
    | idx :: rest -> (
        match level_of t.m cur_ty with
        | None -> None
        | Some (len, comp) -> (
            let pick i =
              match comp i with
              | None -> None
              | Some ty ->
                  go ty ({ seg_itv = index_interval_raw t ~block:blk idx; seg_len = len } :: segs) rest
            in
            match Module_ir.find_type t.m cur_ty with
            | Some (Ty.Struct _) -> (
                (* the validator requires literal struct indices *)
                match const_int t.m idx with
                | Some i when i >= 0 && i < len -> pick i
                | _ -> None)
            | _ -> pick 0))
  in
  go parent.pointee [] idxs

let in_bounds_path p =
  List.for_all
    (fun s -> s.seg_itv.Itv.lo >= 0 && s.seg_itv.Itv.hi <= s.seg_len - 1)
    p.segs

(* ---- cells and transfer -------------------------------------------- *)

(* Bases are modelled per top-level component when the pointee is a small
   composite, and as a single "whole" cell otherwise; deep paths write
   their component only partially, so only depth-1 singleton paths (and
   whole-variable stores) kill. *)
let cell_cap = 32

let cells_of_base t b =
  match Hashtbl.find_opt t.ncells b with Some n -> n | None -> 1

let clamp_to n v = max 0 (min (n - 1) v)

(* (covered cell indices, strong) *)
let footprint t p =
  let b = base_id p.base in
  let n = cells_of_base t b in
  match p.segs with
  | [] -> (List.init n (fun i -> i), true)
  | s :: deeper ->
      if n = 1 then ([ 0 ], false)
      else
        let lo = clamp_to n s.seg_itv.Itv.lo
        and hi = clamp_to n s.seg_itv.Itv.hi in
        (List.init (hi - lo + 1) (fun k -> lo + k), lo = hi && deeper = [])

let add_def state cell d =
  let cur = match CM.find_opt cell state with Some s -> s | None -> IS.empty in
  CM.add cell (IS.add d cur) state

let apply_store t state acc =
  match acc.a_path with
  | None ->
      (* a store through an unresolvable pointer may write anything *)
      List.fold_left (fun st c -> add_def st c acc.ord) state t.cells
  | Some p ->
      let b = base_id p.base in
      let covered, strong = footprint t p in
      List.fold_left
        (fun st c ->
          if strong then CM.add (b, c) (IS.singleton acc.ord) st
          else add_def st (b, c) acc.ord)
        state covered

let apply_call t state =
  (* a callee may write any global and any escaped local *)
  List.fold_left
    (fun st ((b, _) as cell) ->
      let opaque =
        Hashtbl.mem t.escaped b || Module_ir.find_global t.m b <> None
      in
      if opaque then add_def st cell extern_def else st)
    state t.cells

let transfer_instr t blk state idx (i : Instr.t) =
  match i.Instr.op with
  | Instr.Store _ -> (
      match Hashtbl.find_opt t.acc_at (blk, idx) with
      | Some acc -> apply_store t state acc
      | None -> state)
  | Instr.FunctionCall _ -> apply_call t state
  | _ -> state

(* ---- construction -------------------------------------------------- *)

(* the pointee type id of a base: its declared pointer type's target *)
let base_pointee t b =
  match Module_ir.find_global t.m b with
  | Some g -> (
      match pointee_of t.m g.Module_ir.gd_ty with Some p -> p | None -> b)
  | None -> (
      match Hashtbl.find_opt t.defs b with
      | Some (_, i) -> (
          match i.Instr.ty with
          | Some pt -> (
              match pointee_of t.m pt with Some p -> p | None -> b)
          | None -> b)
      | None -> b)

let analyze m f ~avail =
  let cfg = Dataflow.Availability.cfg avail in
  let loops = Loops.analyze cfg (Dataflow.Availability.dominance avail) in
  let ranges = Dataflow.Ranges.compute m f ~cfg ~loops in
  let defs = Hashtbl.create 64 in
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (i : Instr.t) ->
          match i.Instr.result with
          | Some r -> Hashtbl.replace defs r (b.Block.label, i)
          | None -> ())
        b.Block.instrs)
    f.Func.blocks;
  let t =
    {
      m;
      f;
      cfg;
      ranges;
      defs;
      paths = Hashtbl.create 64;
      escaped = Hashtbl.create 8;
      accs = [||];
      acc_at = Hashtbl.create 64;
      ncells = Hashtbl.create 8;
      cells = [];
      reach_in = [||];
    }
  in
  (* escapes: any pointer reaching a non-memory operand position *)
  let mark id =
    match resolve t id with
    | Some p -> Hashtbl.replace t.escaped (base_id p.base) ()
    | None -> ()
  in
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (i : Instr.t) ->
          match i.Instr.op with
          | Instr.Store (_, v) -> mark v
          | Instr.FunctionCall (_, args) -> List.iter mark args
          | Instr.Select (_, x, y) ->
              mark x;
              mark y
          | Instr.Phi incoming -> List.iter (fun (v, _) -> mark v) incoming
          | Instr.CompositeConstruct xs -> List.iter mark xs
          | Instr.CompositeInsert (o, c, _) ->
              mark o;
              mark c
          | _ -> ())
        b.Block.instrs;
      match b.Block.terminator with
      | Block.ReturnValue v -> mark v
      | _ -> ())
    f.Func.blocks;
  (* accesses, reachable blocks only (dead blocks are the dead-block
     lint's business and have no Ranges environments) *)
  let accs = ref [] in
  let n = ref 0 in
  List.iter
    (fun (b : Block.t) ->
      if Cfg.is_reachable cfg b.Block.label then
        List.iteri
          (fun idx (i : Instr.t) ->
            let mk kind ptr =
              let p = resolve t ptr in
              let acc =
                {
                  ord = !n;
                  a_kind = kind;
                  a_block = b.Block.label;
                  a_index = idx;
                  a_ptr = ptr;
                  a_path = p;
                  in_bounds =
                    (match p with Some p -> in_bounds_path p | None -> false);
                }
              in
              incr n;
              accs := acc :: !accs;
              Hashtbl.replace t.acc_at (b.Block.label, idx) acc
            in
            match i.Instr.op with
            | Instr.Load ptr -> mk ALoad ptr
            | Instr.Store (ptr, _) -> mk AStore ptr
            | _ -> ())
          b.Block.instrs)
    f.Func.blocks;
  let t = { t with accs = Array.of_list (List.rev !accs) } in
  (* cell universe: every base any access resolves to *)
  Array.iter
    (fun a ->
      match a.a_path with
      | Some p ->
          let b = base_id p.base in
          if not (Hashtbl.mem t.ncells b) then
            let n =
              match level_of t.m (base_pointee t b) with
              | Some (k, _) when k >= 1 && k <= cell_cap -> k
              | _ -> 1
            in
            Hashtbl.replace t.ncells b n
      | None -> ())
    t.accs;
  let cells =
    Hashtbl.fold
      (fun b n acc -> List.init n (fun i -> (b, i)) @ acc)
      t.ncells []
  in
  let t = { t with cells } in
  (* reaching-stores dataflow *)
  let lattice =
    {
      Dataflow.bottom = CM.empty;
      equal = CM.equal IS.equal;
      join = CM.union (fun _ a b -> Some (IS.union a b));
    }
  in
  let boundary =
    List.fold_left
      (fun st c -> CM.add c (IS.singleton init_def) st)
      CM.empty cells
  in
  let transfer pos state =
    let b = cfg.Cfg.blocks.(pos) in
    let state = ref state in
    List.iteri
      (fun idx i -> state := transfer_instr t b.Block.label !state idx i)
      b.Block.instrs;
    !state
  in
  let sol = Dataflow.solve cfg Dataflow.Forward lattice ~boundary ~transfer in
  { t with reach_in = sol.Dataflow.block_in }

let accesses t = Array.to_list t.accs
let path_of t id = resolve t id

let chain_segs t id =
  match Hashtbl.find_opt t.defs id with
  | Some (_, { Instr.op = Instr.AccessChain (b, idxs); _ }) -> (
      match (resolve t id, resolve t b) with
      | Some whole, Some parent ->
          let skip = List.length parent.segs in
          let own =
            List.filteri (fun i _ -> i >= skip) whole.segs
          in
          if List.length own = List.length idxs then Some own else None
      | _ -> None)
  | _ -> None

let escapes t b = Hashtbl.mem t.escaped (base_id b)
let index_interval t ~block id = index_interval_raw t ~block id

(* ---- aliasing ------------------------------------------------------ *)

type verdict = Must_alias | May_alias | No_alias

let verdict_to_string = function
  | Must_alias -> "must-alias"
  | May_alias -> "may-alias"
  | No_alias -> "no-alias"

let alias _t a b =
  match (a.a_path, b.a_path) with
  | Some pa, Some pb ->
      if not (base_equal pa.base pb.base) then
        (* distinct allocations are distinct interpreter cells, escaped
           or not *)
        No_alias
      else
        let rec go sa sb must =
          match (sa, sb) with
          | [], [] -> if must then Must_alias else May_alias
          | [], _ :: _ | _ :: _, [] ->
              (* a whole composite vs one of its components: overlapping
                 but never the same cell *)
              May_alias
          | x :: ra, y :: rb ->
              let len = x.seg_len in
              let cl (i : Itv.t) =
                { Itv.lo = clamp_to len i.Itv.lo; hi = clamp_to len i.Itv.hi }
              in
              let ia = cl x.seg_itv and ib = cl y.seg_itv in
              if Itv.is_empty (Itv.meet ia ib) then No_alias
              else
                go ra rb
                  (must && Itv.equal ia ib && Itv.singleton ia <> None)
        in
        go pa.segs pb.segs true
  | _ -> May_alias

(* ---- reaching stores ----------------------------------------------- *)

let state_before t acc =
  match Cfg.block_index t.cfg acc.a_block with
  | None -> CM.empty
  | Some pos ->
      let b = t.cfg.Cfg.blocks.(pos) in
      let state = ref t.reach_in.(pos) in
      List.iteri
        (fun idx i ->
          if idx < acc.a_index then
            state := transfer_instr t b.Block.label !state idx i)
        b.Block.instrs;
      !state

let reaching_stores t acc =
  let state = state_before t acc in
  let union_cells cells =
    List.fold_left
      (fun s c ->
        match CM.find_opt c state with
        | Some d -> IS.union d s
        | None -> s)
      IS.empty cells
  in
  let defs =
    match acc.a_path with
    | None -> union_cells t.cells
    | Some p ->
        let b = base_id p.base in
        let covered, _ = footprint t p in
        union_cells (List.map (fun c -> (b, c)) covered)
  in
  IS.elements defs

let uninitialized_loads t =
  Array.to_list t.accs
  |> List.filter (fun a ->
         a.a_kind = ALoad
         &&
         match a.a_path with
         | Some { base = Local v; _ } ->
             (not (Hashtbl.mem t.escaped v))
             && List.mem init_def (reaching_stores t a)
         | _ -> false)

(* ---- dead stores / redundant loads --------------------------------- *)

(* transitive "strictly after" block reachability: [reaches i j] iff some
   path of >= 1 edge leads from block position i to j *)
let block_reaches t =
  let n = Array.length t.cfg.Cfg.blocks in
  let reach = Array.init n (fun _ -> Array.make n false) in
  for i = 0 to n - 1 do
    let seen = Array.make n false in
    let rec dfs j =
      List.iter
        (fun s ->
          if not seen.(s) then (
            seen.(s) <- true;
            reach.(i).(s) <- true;
            dfs s))
        t.cfg.Cfg.succs.(j)
    in
    dfs i
  done;
  reach

let observers t store =
  match store.a_path with
  | None -> Array.to_list t.accs |> List.filter (fun a -> a.a_kind = ALoad)
  | Some p ->
      let reach = block_reaches t in
      let spos =
        match Cfg.block_index t.cfg store.a_block with
        | Some i -> i
        | None -> 0
      in
      let b = base_id p.base in
      Array.to_list t.accs
      |> List.filter (fun a ->
             a.a_kind = ALoad
             && (match a.a_path with
                | Some lp -> Id.equal (base_id lp.base) b
                | None -> false)
             && alias t store a <> No_alias
             &&
             let lpos =
               match Cfg.block_index t.cfg a.a_block with
               | Some i -> i
               | None -> 0
             in
             if Id.equal a.a_block store.a_block then
               a.a_index > store.a_index || reach.(spos).(spos)
             else reach.(spos).(lpos))

let store_unobservable t store =
  match store.a_path with
  | None -> false
  | Some { base = Global _; _ } -> false
  | Some { base = Local v; _ } ->
      (not (Hashtbl.mem t.escaped v)) && observers t store = []

let dead_stores t =
  let has_load b =
    Array.exists
      (fun a ->
        a.a_kind = ALoad
        &&
        match a.a_path with
        | Some p -> Id.equal (base_id p.base) b
        | None -> false)
      t.accs
  in
  Array.to_list t.accs
  |> List.filter (fun a ->
         a.a_kind = AStore
         && store_unobservable t a
         &&
         match a.a_path with
         | Some { base = Local v; _ } -> has_load v
         | _ -> false)

let redundant_loads t =
  let out = ref [] in
  List.iter
    (fun (b : Block.t) ->
      if Cfg.is_reachable t.cfg b.Block.label then begin
        let avail = ref [] in
        List.iteri
          (fun idx (i : Instr.t) ->
            match i.Instr.op with
            | Instr.Load _ -> (
                match Hashtbl.find_opt t.acc_at (b.Block.label, idx) with
                | None -> ()
                | Some acc -> (
                    match acc.a_path with
                    | Some p when p.segs <> [] ->
                        (match
                           List.find_opt
                             (fun prev -> alias t prev acc = Must_alias)
                             !avail
                         with
                        | Some prev -> out := (prev, acc) :: !out
                        | None -> ());
                        avail := acc :: !avail
                    | _ -> ()))
            | Instr.Store _ -> (
                match Hashtbl.find_opt t.acc_at (b.Block.label, idx) with
                | None -> avail := []
                | Some st -> (
                    match st.a_path with
                    | None -> avail := []
                    | Some _ ->
                        avail :=
                          List.filter
                            (fun l -> alias t l st = No_alias)
                            !avail))
            | Instr.FunctionCall _ -> avail := []
            | _ -> ())
          b.Block.instrs
      end)
    t.f.Func.blocks;
  List.rev !out

let observable_store t ~block ~index =
  match Hashtbl.find_opt t.acc_at (block, index) with
  | Some ({ a_kind = AStore; _ } as acc) -> not (store_unobservable t acc)
  | _ -> true

(* ---- reporting ----------------------------------------------------- *)

type stats = {
  n_loads : int;
  n_stores : int;
  n_resolved : int;
  n_in_bounds : int;
  n_pairs : int;
  n_no_alias : int;
  n_may_alias : int;
  n_must_alias : int;
  n_uninitialized : int;
  n_dead_stores : int;
  n_redundant_loads : int;
}

let stats t =
  let accs = Array.to_list t.accs in
  let count p = List.length (List.filter p accs) in
  let no_alias = ref 0 and may = ref 0 and must = ref 0 and pairs = ref 0 in
  let n = Array.length t.accs in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      incr pairs;
      match alias t t.accs.(i) t.accs.(j) with
      | No_alias -> incr no_alias
      | May_alias -> incr may
      | Must_alias -> incr must
    done
  done;
  {
    n_loads = count (fun a -> a.a_kind = ALoad);
    n_stores = count (fun a -> a.a_kind = AStore);
    n_resolved = count (fun a -> a.a_path <> None);
    n_in_bounds = count (fun a -> a.in_bounds);
    n_pairs = !pairs;
    n_no_alias = !no_alias;
    n_may_alias = !may;
    n_must_alias = !must;
    n_uninitialized = List.length (uninitialized_loads t);
    n_dead_stores = List.length (dead_stores t);
    n_redundant_loads = List.length (redundant_loads t);
  }

let access_to_string _t acc =
  Printf.sprintf "%s %s @%s#%d: %s%s"
    (match acc.a_kind with ALoad -> "load" | AStore -> "store")
    (Id.to_string acc.a_ptr)
    (Id.to_string acc.a_block)
    acc.a_index
    (match acc.a_path with
    | Some p -> path_to_string p
    | None -> "<unresolved>")
    (if acc.in_bounds then " (in-bounds)"
     else
       match acc.a_path with
       | Some p when p.segs <> [] -> " (bounds unproven)"
       | _ -> "")
