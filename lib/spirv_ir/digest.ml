(** Canonical content digests for modules and inputs.

    The digest of a module is computed over its exact textual disassembly,
    which {!Disasm} guarantees to be precisely invertible by {!Asm} (floats
    are printed in hexadecimal notation), so two modules digest equally iff
    their listings coincide.  Notably the digest ignores [id_bound]: fuzzers
    burn ids on proposals that fail their preconditions, so replaying a
    recorded transformation sequence reproduces a variant's {e contents}
    with a possibly smaller bound — such replays must (and do) share a
    digest, which is what lets the execution engine memoize the repeated
    prefix replays of delta debugging. *)

let hex s = Stdlib.Digest.to_hex (Stdlib.Digest.string s)

let of_module (m : Module_ir.t) : string = hex (Disasm.to_string m)

let of_input (input : Input.t) : string = hex (Input.to_string input)

let of_run (m : Module_ir.t) (input : Input.t) : string =
  hex (of_module m ^ ":" ^ of_input input)
