(** IR lint: structured diagnostics over the shared {!Dataflow} analyses.

    Complements {!Validate}: hard IR breaks surface as [Error] findings
    (the transformation-contract checker asks "did this transformation
    introduce new errors?"), legal-but-suspect hygiene issues as
    [Warning]s.  Rules:

    - [dead-block] (warning): block unreachable from the entry block
    - [dead-result] (warning): side-effect-free instruction whose result is
      never used (liveness-based)
    - [phi-arg-mismatch] (error): φ incoming entries duplicate or fail to
      match the block's predecessors
    - [undominated-use] (error): an operand, φ value or terminator use not
      dominated by its definition
    - [store-never-read] (warning): function-local variable whose stores
      can never be observed
    - [block-order] (error): a block appears after a block it strictly
      dominates (non-canonical layout)
    - [infinite-loop] (error): a natural loop ({!Loops}) with no exit edge
      — a body without exit edges has no way out
    - [irreducible-cfg] (warning): a retreating edge whose target does not
      dominate its source (the loop analyses will not cover the region)
    - [loop-invariant-code] (warning): a pure value instruction inside a
      loop whose operands are all defined outside it

    Memory rules, over the {!Memory} access-path / alias analysis:

    - [possible-out-of-bounds] (error): a resolved chain access whose
      index interval is not provably within the composite it indexes —
      the runtime clamps, so the access silently aliases a cell the
      author never named
    - [uninitialized-load] (warning): a load of a non-escaping local that
      the initial-value token still reaches (may observe the
      zero-initialized default)
    - [dead-store] (warning): a store to a non-escaping local that is
      loaded elsewhere, but from which no may-aliasing load is reachable
    - [redundant-load] (warning): a same-block must-aliasing chain reload
      with no intervening may-aliasing store or call

    Lint never raises on malformed input, so it can run on modules the
    validator rejects. *)

type severity = Error | Warning

val pp_severity : Format.formatter -> severity -> unit
val show_severity : severity -> string
val equal_severity : severity -> severity -> bool
val severity_to_string : severity -> string

type finding = {
  rule : string;  (** stable rule id, e.g. ["undominated-use"] *)
  severity : severity;
  fn : Id.t option;     (** containing function, if any *)
  block : Id.t option;  (** containing block, if any *)
  message : string;
}

val pp_finding : Format.formatter -> finding -> unit
val show_finding : finding -> string
val equal_finding : finding -> finding -> bool

val to_string : finding -> string
(** One line: [severity[rule] fn/block: message]. *)

val check_function : Module_ir.t -> Func.t -> finding list
val check_module : Module_ir.t -> finding list
(** Findings in source order (function order, then rule/block order within
    a function). *)

val errors : finding list -> finding list
(** The [Error]-severity findings only. *)

val error_count : finding list -> int
