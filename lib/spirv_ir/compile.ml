(* Flat compiled execution kernel.

   [lower] translates a module once into a flat program: ids resolved to
   dense integer register slots, constants pre-materialized, blocks
   flattened into arrays of instruction records with pre-resolved φ move
   lists and jump targets.  [render_batch] then executes the whole fragment
   grid against one reused globals/locals arena, writing into one flat
   pixel array.

   The kernel is a drop-in replacement for {!Interp.render} and must be
   observably bit-identical to it: same images, same traps (message and
   all), same trap ordering, same step accounting.  Where the interpreter
   defers an error to execution time (a constant that fails to materialize,
   a branch to a missing block, a call to the entry of a block-less
   function), lowering captures the exact exception and re-raises it at the
   same execution point instead of failing eagerly.  [lower] itself never
   raises: any module the interpreter accepts or rejects at runtime lowers
   to a program that reproduces that behaviour.

   The interpreter's operand lookup falls through env → globals → constants
   per operand, so an id that names an instruction result is still visible
   as a global or constant before its defining instruction has executed.
   Register operands therefore carry a fallback consulted when the slot is
   still [RUnbound]. *)

(* What an operand compiles to.  The id is kept for exact trap messages. *)
type operand =
  | OReg of int * fallback * Id.t  (* register slot; fallback when unbound *)
  | OGlobal of int * Id.t          (* global slot *)
  | OConst of Value.t * Id.t       (* pre-materialized constant *)
  | OUnbound of Id.t               (* always traps "unbound id" *)
  | ORaise of exn * Id.t           (* constant that fails to materialize *)

and fallback =
  | FGlobal of int
  | FConst of Value.t
  | FRaise of exn
  | FUnbound

(* Runtime register contents.  [RUnbound] is the reset sentinel: reading it
   reproduces the interpreter's "unbound id" trap (modulo fallback). *)
type rv =
  | RUnbound
  | RVal of Value.t
  | RPtr of pptr

and pptr = { cell : Value.t ref; path : int list; root : Id.t }

(* A φ move on a CFG edge: destination register and source operand, or the
   trap the interpreter would raise while evaluating that φ's binding. *)
type move =
  | Move of int * operand
  | Move_trap of string

(* A resolved jump: target block index plus the edge's φ moves, or the
   exception [Func.block_exn] raises for a missing target. *)
type goto =
  | Goto of int * move array
  | Goto_raise of exn

type callsite =
  | Known of int       (* function index *)
  | Unknown_fn of Id.t (* traps "call to unknown function" before args *)

(* Pre-computed initializer for function-scope variables and Undef. *)
type vinit =
  | VOk of Value.t
  | VTrap of string
  | VRaise of exn

type cinstr =
  | CNop
  | CBinop of int * Instr.binop * operand * operand
  | CUnop of int * Instr.unop * operand
  | CSelect of int * operand * operand * operand
  | CConstruct of int * operand array
  | CExtract of int * operand * int list
  | CInsert of int * operand * operand * int list
      (* dest, object, composite, path *)
  | CLoad of int * operand
  | CStore of operand * operand
  | CChain of int * operand * operand array
  | CCall of int * callsite * operand array
  | CCallVoid of callsite * operand array
  | CCopy of int * operand
  | CVar of int * Id.t * vinit  (* fresh cell per execution; root = result id *)
  | CUndef of int * vinit
  | CTrap of string

type cterm =
  | TBranch of goto
  | TCond of operand * goto * goto
  | TReturn
  | TReturnValue of operand
  | TKill
  | TUnreachable of string

type cblock = { bi : cinstr array; bterm : cterm }

type cfun = {
  cf_name : string;
  cf_nparams : int;
  cf_nregs : int;
  cf_blocks : cblock array; (* index 0 = entry block *)
  cf_entry_trap : string option; (* "phi in entry block …" on initial entry *)
  cf_no_blocks : exn option; (* Func.entry_block's exception, deferred *)
}

(* Global slot: name and how to (re)initialize its cell. *)
type ginit =
  | GUniform               (* resolved once per render from the input *)
  | GCoord                 (* rebuilt per fragment *)
  | GValue of Value.t      (* constant / zero initializer, shared *)
  | GTrapInit of Interp.trap (* e.g. global with non-pointer type *)
  | GFail of exn           (* initializer that fails to materialize *)

type gslot = { cg_id : Id.t; cg_name : string; cg_init : ginit }

type t = {
  p_funcs : cfun array;
  p_entry : int;             (* meaningless when [p_entry_exn] is set *)
  p_entry_exn : exn option;  (* Module_ir.entry_function's exception *)
  p_globals : gslot array;
  p_output : int option;     (* slot of the first Output-class global *)
  p_max_moves : int;         (* scratch size for simultaneous φ moves *)
}

(* ------------------------------------------------------------------ *)
(* Lowering                                                            *)
(* ------------------------------------------------------------------ *)

let split_phis instrs =
  let rec split acc = function
    | (i : Instr.t) :: tl when Instr.is_phi i -> split (i :: acc) tl
    | tl -> (List.rev acc, tl)
  in
  split [] instrs

let lower (m : Module_ir.t) : t =
  (* Globals: slot per declaration; duplicate ids resolve to the last slot,
     matching Id.Map.add in the interpreter's allocate_globals. *)
  let globals = Array.of_list m.Module_ir.globals in
  let gindex : (Id.t, int) Hashtbl.t = Hashtbl.create 16 in
  Array.iteri
    (fun i (g : Module_ir.global_decl) ->
      Hashtbl.replace gindex g.Module_ir.gd_id i)
    globals;
  let gslots =
    Array.map
      (fun (g : Module_ir.global_decl) ->
        let init =
          match Module_ir.find_type m g.Module_ir.gd_ty with
          | Some (Ty.Pointer (sc, pointee)) -> (
              match sc with
              | Ty.Uniform -> GUniform
              | Ty.Input -> GCoord
              | Ty.Private | Ty.Output | Ty.Function -> (
                  match g.Module_ir.gd_init with
                  | Some c -> (
                      match Module_ir.const_value m c with
                      | v -> GValue v
                      | exception e -> GFail e)
                  | None -> (
                      match Module_ir.zero_value m pointee with
                      | v -> GValue v
                      | exception e -> GFail e)))
          | Some _ | None ->
              GTrapInit
                (Interp.Invalid_module
                   ("global with non-pointer type: " ^ g.Module_ir.gd_name))
        in
        { cg_id = g.Module_ir.gd_id; cg_name = g.Module_ir.gd_name;
          cg_init = init })
      globals
  in
  let p_output =
    match
      List.find_opt
        (fun (g : Module_ir.global_decl) ->
          match Module_ir.find_type m g.Module_ir.gd_ty with
          | Some (Ty.Pointer (Ty.Output, _)) -> true
          | Some _ | None -> false)
        m.Module_ir.globals
    with
    | Some g -> Hashtbl.find_opt gindex g.Module_ir.gd_id
    | None -> None
  in
  (* Constants: first declaration wins, matching find_constant. *)
  let ctable : (Id.t, (Value.t, exn) result) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (c : Module_ir.const_decl) ->
      if not (Hashtbl.mem ctable c.Module_ir.cd_id) then
        Hashtbl.add ctable c.Module_ir.cd_id
          (match Module_ir.const_value m c.Module_ir.cd_id with
          | v -> Ok v
          | exception e -> Error e))
    m.Module_ir.constants;
  (* Functions: first declaration wins, matching find_function. *)
  let funcs = Array.of_list m.Module_ir.functions in
  let findex : (Id.t, int) Hashtbl.t = Hashtbl.create 8 in
  Array.iteri
    (fun i (f : Func.t) ->
      if not (Hashtbl.mem findex f.Func.id) then Hashtbl.add findex f.Func.id i)
    funcs;
  let max_moves = ref 0 in
  let compile_fun (f : Func.t) : cfun =
    (* Registers: params positionally first (so the caller can blit its
       argument array), then instruction results in program order.  An id
       that is redefined reuses its slot — Id.Map.add overwrite semantics. *)
    let regs : (Id.t, int) Hashtbl.t = Hashtbl.create 32 in
    let nparams = List.length f.Func.params in
    List.iteri
      (fun i (p : Func.param) -> Hashtbl.replace regs p.Func.param_id i)
      f.Func.params;
    let next = ref nparams in
    List.iter
      (fun (b : Block.t) ->
        List.iter
          (fun (i : Instr.t) ->
            match i.Instr.result with
            | Some r ->
                if not (Hashtbl.mem regs r) then begin
                  Hashtbl.add regs r !next;
                  incr next
                end
            | None -> ())
          b.Block.instrs)
      f.Func.blocks;
    let plain_of id =
      match Hashtbl.find_opt gindex id with
      | Some s -> OGlobal (s, id)
      | None -> (
          match Hashtbl.find_opt ctable id with
          | Some (Ok v) -> OConst (v, id)
          | Some (Error e) -> ORaise (e, id)
          | None -> OUnbound id)
    in
    let resolve id =
      match Hashtbl.find_opt regs id with
      | Some r ->
          let fb =
            match plain_of id with
            | OGlobal (s, _) -> FGlobal s
            | OConst (v, _) -> FConst v
            | ORaise (e, _) -> FRaise e
            | OUnbound _ | OReg _ -> FUnbound
          in
          OReg (r, fb, id)
      | None -> plain_of id
    in
    let resolve_list ids = Array.of_list (List.map resolve ids) in
    (* Block labels: first match wins, matching Func.find_block. *)
    let btbl : (Id.t, int) Hashtbl.t = Hashtbl.create 16 in
    List.iteri
      (fun i (b : Block.t) ->
        if not (Hashtbl.mem btbl b.Block.label) then
          Hashtbl.add btbl b.Block.label i)
      f.Func.blocks;
    let compile_move ~pred (i : Instr.t) =
      match (i.Instr.result, i.Instr.op) with
      | Some r, Instr.Phi incoming -> (
          match
            List.find_opt (fun (_, blk) -> Id.equal blk pred) incoming
          with
          | Some (v, _) -> Move (Hashtbl.find regs r, resolve v)
          | None ->
              Move_trap
                (Printf.sprintf "phi %s lacks an entry for predecessor %s"
                   (Id.to_string r) (Id.to_string pred)))
      | _ -> Move_trap "malformed phi"
    in
    let goto_of ~pred target =
      match Func.block_exn f target with
      | tb ->
          let phis, _ = split_phis tb.Block.instrs in
          let moves = Array.of_list (List.map (compile_move ~pred) phis) in
          if Array.length moves > !max_moves then
            max_moves := Array.length moves;
          Goto (Hashtbl.find btbl target, moves)
      | exception e -> Goto_raise e
    in
    let vinit_of_ty ty_opt ~no_ty_msg ~bad_ty_msg =
      match ty_opt with
      | Some ty_id -> (
          match Module_ir.type_exn m ty_id with
          | Ty.Pointer (_, pointee) -> (
              match Module_ir.zero_value m pointee with
              | v -> VOk v
              | exception e -> VRaise e)
          | _ -> VTrap bad_ty_msg
          | exception e -> VRaise e)
      | None -> VTrap no_ty_msg
    in
    (* Mirrors the arm order of Interp.exec_instr exactly. *)
    let compile_instr (i : Instr.t) : cinstr =
      match (i.Instr.result, i.Instr.op) with
      | _, Instr.Nop -> CNop
      | None, Instr.Store (p, v) -> CStore (resolve p, resolve v)
      | Some r, Instr.Binop (op, a, b) ->
          CBinop (Hashtbl.find regs r, op, resolve a, resolve b)
      | Some r, Instr.Unop (op, a) -> CUnop (Hashtbl.find regs r, op, resolve a)
      | Some r, Instr.Select (c, tv, fv) ->
          CSelect (Hashtbl.find regs r, resolve c, resolve tv, resolve fv)
      | Some r, Instr.CompositeConstruct parts ->
          CConstruct (Hashtbl.find regs r, resolve_list parts)
      | Some r, Instr.CompositeExtract (c, path) ->
          CExtract (Hashtbl.find regs r, resolve c, path)
      | Some r, Instr.CompositeInsert (obj, c, path) ->
          CInsert (Hashtbl.find regs r, resolve obj, resolve c, path)
      | Some r, Instr.Load p -> CLoad (Hashtbl.find regs r, resolve p)
      | Some r, Instr.AccessChain (base, idxs) ->
          CChain (Hashtbl.find regs r, resolve base, resolve_list idxs)
      | Some r, Instr.FunctionCall (callee, args) ->
          let site =
            match Hashtbl.find_opt findex callee with
            | Some i -> Known i
            | None -> Unknown_fn callee
          in
          CCall (Hashtbl.find regs r, site, resolve_list args)
      | None, Instr.FunctionCall (callee, args) ->
          let site =
            match Hashtbl.find_opt findex callee with
            | Some i -> Known i
            | None -> Unknown_fn callee
          in
          CCallVoid (site, resolve_list args)
      | Some _, Instr.Phi _ -> CTrap "phi after non-phi instruction"
      | Some r, Instr.CopyObject x -> CCopy (Hashtbl.find regs r, resolve x)
      | Some r, Instr.Variable Ty.Function ->
          CVar
            ( Hashtbl.find regs r,
              r,
              vinit_of_ty i.Instr.ty ~no_ty_msg:"variable without a type"
                ~bad_ty_msg:
                  (Printf.sprintf "variable %s has non-pointer type"
                     (Id.to_string r)) )
      | Some _, Instr.Variable _ ->
          CTrap "function-scope variable with bad storage class"
      | Some r, Instr.Undef ->
          CUndef
            ( Hashtbl.find regs r,
              vinit_of_ty i.Instr.ty ~no_ty_msg:"undef without a type"
                ~bad_ty_msg:"" )
      | None, _ -> CTrap "instruction missing a result id"
      | Some _, Instr.Store _ -> CTrap "store with a result id"
    in
    let compile_block (b : Block.t) : cblock =
      (* Leading φs execute on the incoming edge, not here. *)
      let _phis, rest = split_phis b.Block.instrs in
      let bi = Array.of_list (List.map compile_instr rest) in
      let pred = b.Block.label in
      let bterm =
        match b.Block.terminator with
        | Block.Branch target -> TBranch (goto_of ~pred target)
        | Block.BranchConditional (c, t_target, f_target) ->
            TCond (resolve c, goto_of ~pred t_target, goto_of ~pred f_target)
        | Block.Return -> TReturn
        | Block.ReturnValue v -> TReturnValue (resolve v)
        | Block.Kill -> TKill
        | Block.Unreachable ->
            TUnreachable
              (Printf.sprintf "executed OpUnreachable in %s"
                 (Id.to_string b.Block.label))
      in
      { bi; bterm }
    in
    let cf_no_blocks =
      match Func.entry_block f with _ -> None | exception e -> Some e
    in
    let cf_entry_trap =
      match f.Func.blocks with
      | [] -> None
      | entry :: _ -> (
          match split_phis entry.Block.instrs with
          | [], _ -> None
          | _ :: _, _ ->
              Some
                (Printf.sprintf "phi in entry block %s"
                   (Id.to_string entry.Block.label)))
    in
    {
      cf_name = f.Func.name;
      cf_nparams = nparams;
      cf_nregs = !next;
      cf_blocks = Array.of_list (List.map compile_block f.Func.blocks);
      cf_entry_trap;
      cf_no_blocks;
    }
  in
  let p_funcs = Array.map compile_fun funcs in
  let p_entry, p_entry_exn =
    match Module_ir.entry_function m with
    | _f -> (Hashtbl.find findex m.Module_ir.entry, None)
    | exception e -> (-1, Some e)
  in
  {
    p_funcs;
    p_entry;
    p_entry_exn;
    p_globals = gslots;
    p_output;
    p_max_moves = !max_moves;
  }

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

exception Ctrap of Interp.trap
exception Ckill

let invalid fmt =
  Printf.ksprintf (fun s -> raise (Ctrap (Interp.Invalid_module s))) fmt

(* The arena: allocated once per render, reused by every fragment.  Each
   function has a primary frame; a [busy] flag guards against (invalid but
   expressible) reentrant calls, which fall back to a fresh frame. *)
type ctx = {
  prog : t;
  frames : rv array array;
  busy : bool array;
  gcells : pptr array;
  scratch : rv array;
  mutable steps : int;
  step_limit : int;
}

let make_ctx prog step_limit =
  {
    prog;
    frames =
      Array.map (fun cf -> Array.make (max cf.cf_nregs 1) RUnbound) prog.p_funcs;
    busy = Array.make (max (Array.length prog.p_funcs) 1) false;
    gcells =
      Array.map
        (fun g -> { cell = ref (Value.VComposite [||]); path = []; root = g.cg_id })
        prog.p_globals;
    scratch = Array.make (max prog.p_max_moves 1) RUnbound;
    steps = 0;
    step_limit;
  }

let tick ctx =
  ctx.steps <- ctx.steps + 1;
  if ctx.steps > ctx.step_limit then raise (Ctrap Interp.Step_limit_exceeded)

let operand_id = function
  | OReg (_, _, id) | OGlobal (_, id) | OConst (_, id)
  | OUnbound id | ORaise (_, id) ->
      id

let read_rv ctx frame = function
  | OReg (r, fb, id) -> (
      match Array.unsafe_get frame r with
      | RUnbound -> (
          match fb with
          | FGlobal s -> RPtr ctx.gcells.(s)
          | FConst v -> RVal v
          | FRaise e -> raise e
          | FUnbound -> invalid "unbound id %s" (Id.to_string id))
      | v -> v)
  | OGlobal (s, _) -> RPtr ctx.gcells.(s)
  | OConst (v, _) -> RVal v
  | OUnbound id -> invalid "unbound id %s" (Id.to_string id)
  | ORaise (e, _) -> raise e

let read_val ctx frame o =
  match read_rv ctx frame o with
  | RVal v -> v
  | RPtr _ ->
      invalid "id %s is a pointer where a value was expected"
        (Id.to_string (operand_id o))
  | RUnbound -> assert false

let read_ptr ctx frame o =
  match read_rv ctx frame o with
  | RPtr p -> p
  | RVal _ ->
      invalid "id %s is a value where a pointer was expected"
        (Id.to_string (operand_id o))
  | RUnbound -> assert false

let apply_goto ctx frame = function
  | Goto_raise e -> raise e
  | Goto (target, moves) ->
      let n = Array.length moves in
      (* φ moves are simultaneous: read everything against the pre-edge
         frame, then write. *)
      for i = 0 to n - 1 do
        ctx.scratch.(i) <-
          (match moves.(i) with
          | Move (_, src) -> read_rv ctx frame src
          | Move_trap msg -> invalid "%s" msg)
      done;
      for i = 0 to n - 1 do
        match moves.(i) with
        | Move (dst, _) -> frame.(dst) <- ctx.scratch.(i)
        | Move_trap _ -> ()
      done;
      target

let rec exec_call ctx fidx (args : rv array) : Value.t option =
  let cf = ctx.prog.p_funcs.(fidx) in
  if ctx.busy.(fidx) then
    exec_in_frame ctx cf (Array.make (max cf.cf_nregs 1) RUnbound) args
  else begin
    ctx.busy.(fidx) <- true;
    let frame = ctx.frames.(fidx) in
    Array.fill frame 0 (Array.length frame) RUnbound;
    Fun.protect
      ~finally:(fun () -> ctx.busy.(fidx) <- false)
      (fun () -> exec_in_frame ctx cf frame args)
  end

and exec_in_frame ctx cf frame args : Value.t option =
  if Array.length args <> cf.cf_nparams then
    invalid "arity mismatch calling %s" cf.cf_name;
  Array.blit args 0 frame 0 cf.cf_nparams;
  (match cf.cf_no_blocks with Some e -> raise e | None -> ());
  (match cf.cf_entry_trap with Some msg -> invalid "%s" msg | None -> ());
  let pc = ref 0 in
  let ret = ref None in
  let running = ref true in
  while !running do
    let b = Array.unsafe_get cf.cf_blocks !pc in
    let instrs = b.bi in
    for i = 0 to Array.length instrs - 1 do
      exec_instr ctx frame (Array.unsafe_get instrs i)
    done;
    tick ctx;
    match b.bterm with
    | TBranch g -> pc := apply_goto ctx frame g
    | TCond (c, gt, gf) -> (
        match read_val ctx frame c with
        | Value.VBool cond -> pc := apply_goto ctx frame (if cond then gt else gf)
        | _ ->
            invalid "branch condition %s is not a bool"
              (Id.to_string (operand_id c)))
    | TReturn -> running := false
    | TReturnValue o ->
        ret := Some (read_val ctx frame o);
        running := false
    | TKill -> raise Ckill
    | TUnreachable msg -> invalid "%s" msg
  done;
  !ret

and exec_instr ctx frame ci =
  tick ctx;
  match ci with
  | CNop -> ()
  | CBinop (dst, op, a, b) ->
      (* Operand evaluation order mirrors the interpreter's right-to-left
         application order: b's trap fires before a's. *)
      let vb = read_val ctx frame b in
      let va = read_val ctx frame a in
      let v =
        match Ops.eval_binop op va vb with
        | v -> v
        | exception Ops.Type_error msg -> invalid "%s" msg
      in
      frame.(dst) <- RVal v
  | CUnop (dst, op, a) ->
      let va = read_val ctx frame a in
      let v =
        match Ops.eval_unop op va with
        | v -> v
        | exception Ops.Type_error msg -> invalid "%s" msg
      in
      frame.(dst) <- RVal v
  | CSelect (dst, c, tv, fv) -> (
      match read_val ctx frame c with
      | Value.VBool b -> frame.(dst) <- read_rv ctx frame (if b then tv else fv)
      | _ -> invalid "select condition is not a bool")
  | CConstruct (dst, ops) ->
      let n = Array.length ops in
      let vals = Array.make n (Value.VBool false) in
      for i = 0 to n - 1 do
        vals.(i) <- read_val ctx frame ops.(i)
      done;
      frame.(dst) <- RVal (Value.VComposite vals)
  | CExtract (dst, c, path) ->
      frame.(dst) <- RVal (Value.extract_at_path (read_val ctx frame c) path)
  | CInsert (dst, obj, c, path) ->
      (* Right-to-left: the inserted object is evaluated first. *)
      let vobj = read_val ctx frame obj in
      let vc = read_val ctx frame c in
      frame.(dst) <- RVal (Value.update_at_path vc path vobj)
  | CLoad (dst, p) ->
      let ptr = read_ptr ctx frame p in
      frame.(dst) <- RVal (Value.extract_at_path !(ptr.cell) (List.rev ptr.path))
  | CStore (p, v) ->
      let ptr = read_ptr ctx frame p in
      let value = read_val ctx frame v in
      ptr.cell := Value.update_at_path !(ptr.cell) (List.rev ptr.path) value
  | CChain (dst, base, idxs) ->
      let ptr = read_ptr ctx frame base in
      let path = ref ptr.path in
      for i = 0 to Array.length idxs - 1 do
        (match read_val ctx frame idxs.(i) with
        | Value.VInt n -> path := Int32.to_int n :: !path
        | Value.VBool _ | Value.VFloat _ | Value.VComposite _ ->
            raise (Ctrap (Interp.Invalid_module "non-integer index in access chain")))
      done;
      frame.(dst) <- RPtr { cell = ptr.cell; path = !path; root = ptr.root }
  | CCall (dst, site, argops) -> (
      let fidx =
        match site with
        | Known i -> i
        | Unknown_fn id -> invalid "call to unknown function %s" (Id.to_string id)
      in
      let n = Array.length argops in
      let args = Array.make n RUnbound in
      for i = 0 to n - 1 do
        args.(i) <- read_rv ctx frame argops.(i)
      done;
      match exec_call ctx fidx args with
      | Some v -> frame.(dst) <- RVal v
      | None -> frame.(dst) <- RVal (Value.VComposite [||]))
  | CCallVoid (site, argops) ->
      let fidx =
        match site with
        | Known i -> i
        | Unknown_fn id -> invalid "call to unknown function %s" (Id.to_string id)
      in
      let n = Array.length argops in
      let args = Array.make n RUnbound in
      for i = 0 to n - 1 do
        args.(i) <- read_rv ctx frame argops.(i)
      done;
      ignore (exec_call ctx fidx args)
  | CCopy (dst, src) -> frame.(dst) <- read_rv ctx frame src
  | CVar (dst, root, init) -> (
      match init with
      | VOk v -> frame.(dst) <- RPtr { cell = ref v; path = []; root }
      | VTrap msg -> invalid "%s" msg
      | VRaise e -> raise e)
  | CUndef (dst, init) -> (
      match init with
      | VOk v -> frame.(dst) <- RVal v
      | VTrap msg -> invalid "%s" msg
      | VRaise e -> raise e)
  | CTrap msg -> invalid "%s" msg

(* Per-render global resolution: uniforms and initializer values, in
   declaration order so trap precedence matches the interpreter. *)
let resolve_globals prog (input : Input.t) : (Value.t array, Interp.trap) result =
  let n = Array.length prog.p_globals in
  let init = Array.make n (Value.VComposite [||]) in
  try
    for i = 0 to n - 1 do
      let g = prog.p_globals.(i) in
      init.(i) <-
        (match g.cg_init with
        | GTrapInit t -> raise (Ctrap t)
        | GFail e -> raise e
        | GUniform -> (
            match Input.find_uniform input g.cg_name with
            | Some v -> v
            | None -> raise (Ctrap (Interp.Missing_uniform g.cg_name)))
        | GCoord -> Value.VComposite [||] (* overwritten per fragment *)
        | GValue v -> v)
    done;
    Ok init
  with Ctrap t -> Error t

let exec_fragment ctx (rinit : Value.t array) ~frag_x ~frag_y : Image.pixel =
  ctx.steps <- 0;
  let prog = ctx.prog in
  let n = Array.length prog.p_globals in
  for i = 0 to n - 1 do
    let g = prog.p_globals.(i) in
    ctx.gcells.(i).cell :=
      (match g.cg_init with
      | GCoord ->
          Value.VComposite
            [|
              Value.VFloat (float_of_int frag_x +. 0.5);
              Value.VFloat (float_of_int frag_y +. 0.5);
            |]
      | _ -> rinit.(i))
  done;
  try
    ignore (exec_call ctx prog.p_entry [||]);
    match prog.p_output with
    | Some s -> Image.Color !(ctx.gcells.(s).cell)
    | None -> Image.Color (Value.VComposite [||])
  with Ckill -> Image.Killed

let render_batch ?(step_limit = Interp.default_step_limit) prog
    (input : Input.t) : (Image.t, Interp.trap) result =
  let width = input.Input.width and height = input.Input.height in
  let img = Image.create ~width ~height in
  if width <= 0 || height <= 0 then Ok img
  else
    match resolve_globals prog input with
    | Error t -> Error t
    | Ok rinit -> (
        (match prog.p_entry_exn with Some e -> raise e | None -> ());
        let ctx = make_ctx prog step_limit in
        try
          for y = 0 to height - 1 do
            for x = 0 to width - 1 do
              Image.set img ~x ~y (exec_fragment ctx rinit ~frag_x:x ~frag_y:y)
            done
          done;
          Ok img
        with Ctrap t -> Error t)

let run_fragment ?(step_limit = Interp.default_step_limit) prog
    (input : Input.t) ~frag_x ~frag_y : Interp.outcome =
  match resolve_globals prog input with
  | Error t -> Error t
  | Ok rinit -> (
      (match prog.p_entry_exn with Some e -> raise e | None -> ());
      let ctx = make_ctx prog step_limit in
      try Ok (exec_fragment ctx rinit ~frag_x ~frag_y) with Ctrap t -> Error t)

let render ?step_limit m input = render_batch ?step_limit (lower m) input

let func_count prog = Array.length prog.p_funcs

let instr_count prog =
  Array.fold_left
    (fun acc cf ->
      Array.fold_left (fun acc b -> acc + Array.length b.bi + 1) acc cf.cf_blocks)
    0 prog.p_funcs
