(** Natural-loop forest.

    Back edges are recovered from the dominator tree ([u -> v] is a back edge
    when [v] dominates [u]); each back-edge target is a loop header and the
    loop body is the header plus everything that reaches a latch without
    passing through the header.  Retreating edges whose target does {e not}
    dominate their source witness an irreducible region.

    The analysis is a pure function of an already-computed [Cfg.t] and
    [Dominance.t] (it never derives its own — callers are expected to source
    both from [Dataflow.Availability]). *)

type loop = {
  header : Id.t;
  latches : Id.t list;  (** back-edge sources, in block order *)
  blocks : Id.Set.t;  (** body, including the header *)
  exits : (Id.t * Id.t) list;  (** (in-loop block, out-of-loop target) edges *)
  depth : int;  (** nesting depth; 1 = outermost *)
  parent : Id.t option;  (** header of the innermost enclosing loop *)
}

type forest = {
  loops : loop list;  (** outermost-first (sorted by increasing depth) *)
  irreducible : (Id.t * Id.t) list;
      (** retreating edges that are not back edges *)
}

let analyze (cfg : Cfg.t) (dom : Dominance.t) : forest =
  let n = Array.length cfg.Cfg.blocks in
  let label i = cfg.Cfg.blocks.(i).Block.label in
  (* RPO ranks for retreating-edge detection; unreachable blocks keep rank
     max_int so their edges are never classified. *)
  let rank = Array.make n max_int in
  List.iteri (fun r i -> rank.(i) <- r) (Cfg.reverse_postorder cfg);
  let back_edges = ref [] and irreducible = ref [] in
  for u = 0 to n - 1 do
    if cfg.Cfg.reachable.(u) then
      List.iter
        (fun v ->
          if cfg.Cfg.reachable.(v) && rank.(v) <= rank.(u) then
            if Dominance.dominates dom (label v) (label u) then
              back_edges := (u, v) :: !back_edges
            else irreducible := (label u, label v) :: !irreducible)
        cfg.Cfg.succs.(u)
  done;
  (* Group latches by header position, preserving block order. *)
  let headers = ref [] in
  let latches_of = Hashtbl.create 8 in
  List.iter
    (fun (u, v) ->
      if not (Hashtbl.mem latches_of v) then headers := v :: !headers;
      Hashtbl.replace latches_of v (u :: Option.value ~default:[] (Hashtbl.find_opt latches_of v)))
    (List.sort compare !back_edges);
  let headers = List.sort compare !headers in
  let body_of h latches =
    (* header + blocks that reach a latch backwards without passing [h] *)
    let in_body = Array.make n false in
    in_body.(h) <- true;
    let rec visit u =
      if not in_body.(u) then begin
        in_body.(u) <- true;
        List.iter visit cfg.Cfg.preds.(u)
      end
    in
    List.iter visit latches;
    in_body
  in
  let raw =
    List.map
      (fun h ->
        let latches = List.rev (Option.value ~default:[] (Hashtbl.find_opt latches_of h)) in
        let in_body = body_of h latches in
        let blocks = ref Id.Set.empty and exits = ref [] in
        for u = 0 to n - 1 do
          if in_body.(u) then begin
            blocks := Id.Set.add (label u) !blocks;
            List.iter
              (fun v -> if not in_body.(v) then exits := (label u, label v) :: !exits)
              cfg.Cfg.succs.(u)
          end
        done;
        (h, latches, !blocks, List.rev !exits))
      headers
  in
  (* Nesting: loop A encloses loop B when B's header lies in A's body (and
     they are distinct); the innermost such A is B's parent. *)
  let enclosing (h, _, _, _) =
    List.filter
      (fun (h', _, blocks', _) -> h' <> h && Id.Set.mem (label h) blocks')
      raw
  in
  let loops =
    List.map
      (fun ((h, latches, blocks, exits) as l) ->
        let encl = enclosing l in
        let depth = 1 + List.length encl in
        let parent =
          List.fold_left
            (fun acc (h', _, blocks', _) ->
              match acc with
              | Some (_, best) when Id.Set.cardinal best <= Id.Set.cardinal blocks' -> acc
              | _ -> Some (label h', blocks'))
            None encl
          |> Option.map fst
        in
        {
          header = label h;
          latches = List.map label latches;
          blocks;
          exits;
          depth;
          parent;
        })
      raw
  in
  let loops = List.stable_sort (fun a b -> compare a.depth b.depth) loops in
  { loops; irreducible = List.rev !irreducible }

let header_of forest label =
  List.find_opt (fun l -> Id.equal l.header label) forest.loops

let is_in_loop l label = Id.Set.mem label l.blocks

(** Innermost loop whose body contains [label]. *)
let innermost_containing forest label =
  List.fold_left
    (fun acc l ->
      if Id.Set.mem label l.blocks then
        match acc with
        | Some best when best.depth >= l.depth -> acc
        | _ -> Some l
      else acc)
    None forest.loops

let is_reducible forest = forest.irreducible = []
