(** Generic worklist dataflow over {!Cfg}, and the standard analyses built
    on it: reaching definitions, liveness, dominance-aware availability and
    constant/uniform-value propagation.

    These are the {e shared} def-use analyses: the validator, the lint
    suite ({!Lint}), the optimizer's checked pipelines and the
    transformation layer (via {!Analysis}) all consume them rather than
    re-deriving definition sites or dominance privately — CI greps enforce
    this. *)

(** {1 The engine} *)

type direction = Forward | Backward

type 'a lattice = {
  bottom : 'a;
      (** least element; must be the identity of [join] (for must-analyses
          whose join is intersection, this is the {e universe}) *)
  equal : 'a -> 'a -> bool;
  join : 'a -> 'a -> 'a;
}

type 'a solution = {
  block_in : 'a array;   (** state at block entry, indexed by Cfg position *)
  block_out : 'a array;  (** state at block exit, indexed by Cfg position *)
}

val solve :
  Cfg.t ->
  direction ->
  'a lattice ->
  boundary:'a ->
  transfer:(int -> 'a -> 'a) ->
  'a solution
(** Iterate [transfer] (given a block's Cfg position and its incoming
    state) to a fixpoint over the worklist, seeding reachable blocks in
    reverse post-order along the propagation direction.  [boundary] is the
    state at the entry block (forward) or at exit blocks (backward).
    Unreachable blocks are solved too, over whatever edges they have; a
    predecessor-less non-entry block sees [bottom].  Termination requires
    the usual monotone-transfer / finite-height conditions. *)

(** {1 Analyses} *)

module Reaching_defs : sig
  type t

  val compute : Func.t -> t

  val at_entry : t -> Id.t -> Id.Set.t
  (** Definitions reaching the labelled block's entry ({e may} along some
      path; SSA has no kills).  @raise Invalid_argument on unknown labels. *)

  val at_exit : t -> Id.t -> Id.Set.t
end

module Liveness : sig
  type t

  val compute : Func.t -> t

  val live_in : t -> Id.t -> Id.Set.t
  (** Ids live at the labelled block's entry.  φ-instructions follow SSA
      convention: their value operands are uses at the end of the matching
      predecessor, not in the φ's own block. *)

  val live_out : t -> Id.t -> Id.Set.t
  (** Ids live across the block's outgoing edges, successor-φ uses
      included. *)
end

(** Dominance-aware def-use availability — {e the} shared answer to "may
    this id be referenced at this program point?", consumed by the
    validator, the lint suite and (via {!Analysis}) the transformation
    preconditions. *)
module Availability : sig
  type t

  val make : Module_ir.t -> Func.t -> t

  val module_of : t -> Module_ir.t
  val func : t -> Func.t
  val cfg : t -> Cfg.t
  val dominance : t -> Dominance.t

  val def_site : t -> Id.t -> (Id.t * int) option
  (** (block label, instruction index) of the id's definition, if it is
      defined by an instruction of this function. *)

  val is_module_level : t -> Id.t -> bool
  (** Constants, globals, or this function's parameters. *)

  val available_at : t -> block:Id.t -> index:int -> Id.t -> bool
  (** May [id] be used by the instruction at position [index] of [block]?
      ([index] may be one past the last instruction to mean the
      terminator.)  The SSA dominance rule, with the validator's relaxation
      inside unreachable blocks: uses there only need the id defined
      somewhere in the function. *)

  val available_at_end : t -> block:Id.t -> Id.t -> bool

  val must_defined_at_entry : t -> block:Id.t -> Id.Set.t
  (** The worklist (intersection-join) formulation: ids defined on {e
      every} path from entry.  On valid modules it agrees with
      [available_at] at block entries; exposed for cross-checking. *)
end

(** Constant and uniform-value propagation: ids whose value is the same
    constant on every path, seeded from the module's constant table and —
    when an input is supplied — from loads of Uniform-class globals. *)
module Constprop : sig
  type t

  val compute : ?input:Input.t -> Module_ir.t -> Func.t -> t

  val value_of : t -> Id.t -> Value.t option
  (** The id's propagated constant, if any.  φs whose incoming values agree
      on all predecessors propagate; definitions in unreachable blocks do
      not. *)

  val known : t -> (Id.t * Value.t) list
end

val write_only_locals : Func.t -> Id.Set.t
(** Function-local variables whose every use is as a store destination (or
    that are never used at all) — their stores can never be observed.
    Shared by the optimizer's dead-store elimination and the lint rule
    [store-never-read]. *)
