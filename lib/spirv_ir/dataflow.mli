(** Generic worklist dataflow over {!Cfg}, and the standard analyses built
    on it: reaching definitions, liveness, dominance-aware availability and
    constant/uniform-value propagation.

    These are the {e shared} def-use analyses: the validator, the lint
    suite ({!Lint}), the optimizer's checked pipelines and the
    transformation layer (via {!Analysis}) all consume them rather than
    re-deriving definition sites or dominance privately — CI greps enforce
    this. *)

(** {1 The engine} *)

type direction = Forward | Backward

type 'a lattice = {
  bottom : 'a;
      (** least element; must be the identity of [join] (for must-analyses
          whose join is intersection, this is the {e universe}) *)
  equal : 'a -> 'a -> bool;
  join : 'a -> 'a -> 'a;
}

type 'a solution = {
  block_in : 'a array;   (** state at block entry, indexed by Cfg position *)
  block_out : 'a array;  (** state at block exit, indexed by Cfg position *)
}

val solve :
  ?edge:(src:int -> dst:int -> 'a -> 'a) ->
  ?widen:(int -> old:'a -> 'a -> 'a) ->
  Cfg.t ->
  direction ->
  'a lattice ->
  boundary:'a ->
  transfer:(int -> 'a -> 'a) ->
  'a solution
(** Iterate [transfer] (given a block's Cfg position and its incoming
    state) to a fixpoint over the worklist, seeding reachable blocks in
    reverse post-order along the propagation direction.  [boundary] is the
    state at the entry block (forward) or at exit blocks (backward).
    Unreachable blocks are solved too, over whatever edges they have; a
    predecessor-less non-entry block sees [bottom].  Termination requires
    the usual monotone-transfer / finite-height conditions.

    [edge], when given, transforms each source state as it flows across a
    specific edge before joining (path-sensitive refinement; [src]/[dst]
    are Cfg positions oriented along the propagation direction).  [widen],
    when given, is applied to a block's freshly-joined incoming state
    against the previous one ([old]) — infinite-height lattices (intervals)
    use it at loop headers to force termination.  Both default to the
    identity. *)

(** {1 Analyses} *)

module Reaching_defs : sig
  type t

  val compute : Func.t -> t

  val at_entry : t -> Id.t -> Id.Set.t
  (** Definitions reaching the labelled block's entry ({e may} along some
      path; SSA has no kills).  @raise Invalid_argument on unknown labels. *)

  val at_exit : t -> Id.t -> Id.Set.t
end

module Liveness : sig
  type t

  val compute : Func.t -> t

  val live_in : t -> Id.t -> Id.Set.t
  (** Ids live at the labelled block's entry.  φ-instructions follow SSA
      convention: their value operands are uses at the end of the matching
      predecessor, not in the φ's own block. *)

  val live_out : t -> Id.t -> Id.Set.t
  (** Ids live across the block's outgoing edges, successor-φ uses
      included. *)
end

(** Dominance-aware def-use availability — {e the} shared answer to "may
    this id be referenced at this program point?", consumed by the
    validator, the lint suite and (via {!Analysis}) the transformation
    preconditions. *)
module Availability : sig
  type t

  val make : Module_ir.t -> Func.t -> t

  val module_of : t -> Module_ir.t
  val func : t -> Func.t
  val cfg : t -> Cfg.t
  val dominance : t -> Dominance.t

  val def_site : t -> Id.t -> (Id.t * int) option
  (** (block label, instruction index) of the id's definition, if it is
      defined by an instruction of this function. *)

  val is_module_level : t -> Id.t -> bool
  (** Constants, globals, or this function's parameters. *)

  val available_at : t -> block:Id.t -> index:int -> Id.t -> bool
  (** May [id] be used by the instruction at position [index] of [block]?
      ([index] may be one past the last instruction to mean the
      terminator.)  The SSA dominance rule, with the validator's relaxation
      inside unreachable blocks: uses there only need the id defined
      somewhere in the function. *)

  val available_at_end : t -> block:Id.t -> Id.t -> bool

  val must_defined_at_entry : t -> block:Id.t -> Id.Set.t
  (** The worklist (intersection-join) formulation: ids defined on {e
      every} path from entry.  On valid modules it agrees with
      [available_at] at block entries; exposed for cross-checking. *)
end

(** Constant and uniform-value propagation: ids whose value is the same
    constant on every path, seeded from the module's constant table and —
    when an input is supplied — from loads of Uniform-class globals. *)
module Constprop : sig
  type t

  val compute : ?input:Input.t -> Module_ir.t -> Func.t -> t

  val value_of : t -> Id.t -> Value.t option
  (** The id's propagated constant, if any.  φs whose incoming values agree
      on all predecessors propagate; definitions in unreachable blocks do
      not. *)

  val known : t -> (Id.t * Value.t) list
end

(** Integer intervals over the module's Int32 scalars.  [min_int]/[max_int]
    (OCaml's) are the -oo/+oo sentinels; arithmetic that could leave the
    int32 range returns {!Itv.top} because Int32 ops wrap. *)
module Itv : sig
  type t = { lo : int; hi : int }

  val top : t
  val is_top : t -> bool
  val point : int -> t
  val make : int -> int -> t
  val mem : int -> t -> bool
  val equal : t -> t -> bool
  val join : t -> t -> t

  val meet : t -> t -> t
  (** May be empty ([lo > hi]); see {!is_empty}. *)

  val is_empty : t -> bool
  val finite : t -> bool
  val singleton : t -> int option
  val widen : old:t -> t -> t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val neg : t -> t
  val to_string : t -> string
end

(** Interval / value-range abstract interpretation: a [solve] instance over
    per-id interval environments, with conditional-edge refinement,
    delayed widening at loop headers (and at irreducible retreating-edge
    targets) and two descending narrowing sweeps.  Tracks SSA int values
    plus unaliased function-local int cells; everything else is top.
    [Symval] consumes {!trip_bound} to unroll counted loops soundly. *)
module Ranges : sig
  type t

  val compute : Module_ir.t -> Func.t -> cfg:Cfg.t -> loops:Loops.forest -> t
  (** [cfg]/[loops] are the caller's already-derived facts (source them
      from {!Availability} and {!Loops.analyze}). *)

  val interval_of : t -> Id.t -> Itv.t
  (** Sound interval for an SSA value (its binding at its defining block's
      exit, which covers every execution), or for a constant. *)

  val interval_at : t -> block:Id.t -> Id.t -> Itv.t
  (** The id's interval in the labelled block's exit environment. *)

  val known : t -> (Id.t * Itv.t) list
  (** All function-defined ids with a non-top interval. *)

  val trip_bound : t -> header:Id.t -> int option
  (** A proven upper bound on the number of back-edge traversals of the
      loop headed at [header]: requires a single latch, a header branch on
      an ascending comparison ([var < bound] / [<=], possibly negated), a
      var that advances by a positive constant per iteration (φ-carried or
      an unaliased memory cell), a finite lower bound for [var] and a
      finite upper bound for [bound] at the header. *)

  val tracked : t -> Id.Set.t
  (** The unaliased function-local int cells the analysis tracks. *)

  val forest : t -> Loops.forest
end

val write_only_locals : Func.t -> Id.Set.t
(** Function-local variables whose every use is as a store destination (or
    that are never used at all) — their stores can never be observed.
    Shared by the optimizer's dead-store elimination and the lint rule
    [store-never-read]. *)
