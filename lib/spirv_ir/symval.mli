(** Symbolic values: a hash-consed, normalized expression DAG over one
    module's SSA value graph, and a symbolic evaluator that canonicalizes a
    whole module into a {e summary} — the symbolic kill condition and the
    symbolic value left in the output global.

    Two modules with equal summaries (node identity — hash-consing makes
    semantic equality after normalization a pointer comparison) render the
    same image on {e every} input, so the translation validator ({!Tv} in
    the compilers library) can compare a pass's input and output without
    picking a fragment grid.  The evaluator is {e path-sensitive}: constant
    branch conditions are followed concretely (which unrolls the
    generator's counted loops exactly), symbolic conditions fork both arms
    to function exit and merge them with [select] nodes.

    Loops with a {e proven} trip bound (from {!Dataflow.Ranges.trip_bound}
    over the {!Loops} forest) unroll soundly even when their condition
    stays symbolic: the evaluator forks each loop-deciding branch until
    the per-path back-edge counter reaches the bound, at which point the
    continue arm is statically infeasible and the exit arm is followed
    directly (counted in {!forced_exits}; {!Tv} downgrades any mismatch
    witnessed under forcing to an abstention).

    Dynamic access-chain indices fold rather than abstain: when the
    {!Memory} analysis proves the index's range finite, a load or store
    through it becomes a select chain over the composite's cells whose
    edge conditions mirror the interpreter's clamping, so modules that
    index arrays with computed values stay inside the translation
    validator instead of falling back to the render oracle.

    Soundness discipline: whenever the evaluator cannot prove what a
    construct denotes — a back edge without a trip bound, a dynamic
    access-chain index with no provable range, a pointer-valued select on
    a symbolic condition, an exhausted budget — it raises {!Abstain}
    rather than guessing.  Callers must never report an abstention as a
    bug.

    Reachability, dominance, the loop forest, value ranges and access
    paths all come from the shared {!Dataflow}/{!Memory} analyses (CI
    greps enforce that this module neither rebuilds a CFG nor walks
    access chains privately). *)

type reason =
  [ `Loop_unbounded  (** back edge with no provable trip-count bound *)
  | `Budget  (** node / visit / call-depth / unroll budget exhausted *)
  | `Dynamic_index  (** access chain indexed by a symbolic value *)
  | `Forced_unroll  (** a mismatch reached only through forced loop exits *)
  | `Unsupported  (** construct outside the modelled fragment semantics *)
  | `Internal  (** malformed module: the evaluator's invariants broke *) ]
(** Why a summary could not be built — bucketed by {!Engine} stats and
    surfaced through [tbct tv --json].  [`Forced_unroll] is never raised
    here; {!Tv} uses it when discarding a mismatch seen under forcing. *)

val reason_label : reason -> string
(** Stable kebab-case label ("loop-unbounded", "budget", …). *)

val reason_labels : string list
(** All labels, in declaration order — for stats headers. *)

exception Abstain of reason * string
(** The construct named in the payload is beyond the analysis. *)

type node
(** A hash-consed symbolic value.  Within one {!ctx}, structural equality
    after normalization coincides with {!equal_node}. *)

type ctx
(** Hash-consing arena and evaluation budgets.  Summaries are only
    comparable when built in the {e same} context. *)

val create : ?max_visits:int -> ?max_nodes:int -> ?max_unroll:int -> unit -> ctx
(** [max_visits] bounds block visits across all [summarize] calls on the
    context (loop unrolling and branch forking both consume it);
    [max_nodes] bounds distinct DAG nodes; [max_unroll] (default 64) caps
    the proven trip bound a loop may have and still be unrolled.
    Exhaustion raises {!Abstain} with reason [`Budget]. *)

val node_count : ctx -> int
(** Distinct nodes interned so far — a measure of summary sharing. *)

val forced_exits : ctx -> int
(** How many times the evaluator forced a loop exit because the per-path
    unroll counter reached the proven trip bound.  A mismatch between two
    summaries built under forcing is not trustworthy (the two modules may
    have proved different bounds); {!Tv} downgrades it to an abstention. *)

val mem_proofs : ctx -> int
(** How many dynamic access-chain indices were folded into select chains
    over their cells instead of abstaining, each licensed by a
    {!Memory.chain_segs} finite-range proof.  Surfaced as the engine's
    [mem-proofs] counter. *)

type summary = {
  s_kill : node;  (** symbolic "fragment was killed" condition *)
  s_out : node;   (** final symbolic value of the first Output global *)
}

val summarize : ctx -> Module_ir.t -> summary
(** Evaluate the entry function against symbolic inputs (uniforms and the
    fragment coordinate become opaque sources, exactly one per name, so
    they meet across modules).
    @raise Abstain when any reached construct is beyond the analysis. *)

val equal_node : node -> node -> bool
(** Semantic equality of two nodes from the same context. *)

val is_const_true : node -> bool

val to_string : node -> string
(** Depth-limited rendering for mismatch witnesses. *)
