(** Symbolic values: a hash-consed, normalized expression DAG over one
    module's SSA value graph, and a symbolic evaluator that canonicalizes a
    whole module into a {e summary} — the symbolic kill condition and the
    symbolic value left in the output global.

    Two modules with equal summaries (node identity — hash-consing makes
    semantic equality after normalization a pointer comparison) render the
    same image on {e every} input, so the translation validator ({!Tv} in
    the compilers library) can compare a pass's input and output without
    picking a fragment grid.  The evaluator is {e path-sensitive}: constant
    branch conditions are followed concretely (which unrolls the
    generator's counted loops exactly), symbolic conditions fork both arms
    to function exit and merge them with [select] nodes.

    Soundness discipline: whenever the evaluator cannot prove what a
    construct denotes — a data-dependent back edge, a dynamic access-chain
    index, a pointer-valued select on a symbolic condition, an exhausted
    budget — it raises {!Abstain} rather than guessing.  Callers must
    never report an abstention as a bug.

    Reachability and dominance come from the shared
    {!Dataflow.Availability} analysis (CI greps enforce that this module
    neither rebuilds a CFG nor calls [Dominance.compute] itself). *)

exception Abstain of string
(** The construct named in the payload is beyond the analysis. *)

type node
(** A hash-consed symbolic value.  Within one {!ctx}, structural equality
    after normalization coincides with {!equal_node}. *)

type ctx
(** Hash-consing arena and evaluation budgets.  Summaries are only
    comparable when built in the {e same} context. *)

val create : ?max_visits:int -> ?max_nodes:int -> unit -> ctx
(** [max_visits] bounds block visits across all [summarize] calls on the
    context (loop unrolling and branch forking both consume it);
    [max_nodes] bounds distinct DAG nodes.  Exhaustion raises {!Abstain}. *)

val node_count : ctx -> int
(** Distinct nodes interned so far — a measure of summary sharing. *)

type summary = {
  s_kill : node;  (** symbolic "fragment was killed" condition *)
  s_out : node;   (** final symbolic value of the first Output global *)
}

val summarize : ctx -> Module_ir.t -> summary
(** Evaluate the entry function against symbolic inputs (uniforms and the
    fragment coordinate become opaque sources, exactly one per name, so
    they meet across modules).
    @raise Abstain when any reached construct is beyond the analysis. *)

val equal_node : node -> node -> bool
(** Semantic equality of two nodes from the same context. *)

val is_const_true : node -> bool

val to_string : node -> string
(** Depth-limited rendering for mismatch witnesses. *)
