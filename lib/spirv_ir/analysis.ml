(** Availability and use-site analysis over one function — the
    transformation layer's façade over the shared {!Dataflow} analyses.

    Transformations use this to decide whether an id may be referenced at a
    given program point (the SSA dominance rule), and to enumerate the use
    sites eligible for id-replacing transformations. *)

type t = {
  m : Module_ir.t;
  f : Func.t;
  av : Dataflow.Availability.t;
}

let make m (f : Func.t) = { m; f; av = Dataflow.Availability.make m f }

let cfg t = Dataflow.Availability.cfg t.av
let dominance t = Dataflow.Availability.dominance t.av

let available_at t ~block ~index id =
  Dataflow.Availability.available_at t.av ~block ~index id

let available_at_end t ~block id =
  Dataflow.Availability.available_at_end t.av ~block id

(** Ids of every value available at position [index] of [block] whose type
    id is [ty] — candidates for id-replacement transformations. *)
let available_ids_of_type t ~block ~index ~ty =
  let of_module =
    List.filter_map
      (fun (d : Module_ir.const_decl) ->
        if Id.equal d.Module_ir.cd_ty ty then Some d.Module_ir.cd_id else None)
      t.m.Module_ir.constants
    @ List.filter_map
        (fun (d : Module_ir.global_decl) ->
          if Id.equal d.Module_ir.gd_ty ty then Some d.Module_ir.gd_id else None)
        t.m.Module_ir.globals
    @ List.filter_map
        (fun (p : Func.param) ->
          if Id.equal p.Func.param_ty ty then Some p.Func.param_id else None)
        t.f.Func.params
  in
  let of_instrs =
    List.concat_map
      (fun (b : Block.t) ->
        List.filter_map
          (fun (i : Instr.t) ->
            match (i.Instr.result, i.Instr.ty) with
            | Some r, Some rt when Id.equal rt ty -> Some r
            | _ -> None)
          b.Block.instrs)
      t.f.Func.blocks
  in
  List.filter (available_at t ~block ~index) (of_module @ of_instrs)

(** A use of an id inside a function, precise enough to parametrize a
    replacement transformation: [instr_index] is the position within the
    block's instruction list, or the instruction count to denote the
    terminator; [operand_index] is the position within {!Instr.used_ids}. *)
type use_site = {
  fn : Id.t;
  block : Id.t;
  instr_index : int;
  operand_index : int;
}

let use_sites_in_function m (f : Func.t) ~of_id =
  ignore m;
  List.concat_map
    (fun (b : Block.t) ->
      let n = List.length b.Block.instrs in
      let in_instrs =
        List.concat
          (List.mapi
             (fun idx (i : Instr.t) ->
               List.concat
                 (List.mapi
                    (fun op_idx u ->
                      if Id.equal u of_id then
                        [ { fn = f.Func.id; block = b.Block.label; instr_index = idx; operand_index = op_idx } ]
                      else [])
                    (Instr.used_ids i)))
             b.Block.instrs)
      in
      let in_term =
        List.concat
          (List.mapi
             (fun op_idx u ->
               if Id.equal u of_id then
                 [ { fn = f.Func.id; block = b.Block.label; instr_index = n; operand_index = op_idx } ]
               else [])
             (Block.terminator_used_ids b.Block.terminator))
      in
      in_instrs @ in_term)
    f.Func.blocks
