type stats = { queries : int; kept : int; initial : int }

(* Remove the half-open index range [start, stop) from a list. *)
let remove_range xs start stop =
  List.filteri (fun i _ -> i < start || i >= stop) xs

let reduce_generic ~test xs =
  if not (test xs) then
    invalid_arg "Reducer.reduce: input sequence is not interesting";
  let n0 = List.length xs in
  (* One backwards sweep at chunk size [c]; returns the (possibly shorter)
     sequence and whether any chunk was removed. *)
  let sweep c xs =
    let removed_any = ref false in
    let current = ref xs in
    let stop = ref (List.length xs) in
    while !stop > 0 do
      let start = max 0 (!stop - c) in
      let candidate = remove_range !current start !stop in
      if test candidate then begin
        current := candidate;
        removed_any := true
      end;
      stop := start
    done;
    (!current, !removed_any)
  in
  let rec at_size c xs =
    let xs, removed = sweep c xs in
    if removed then at_size c xs
    else if c = 1 then xs
    else at_size (max 1 (c / 2)) xs
  in
  let result = if n0 = 0 then [] else at_size (max 1 (n0 / 2)) xs in
  (result, n0)

let reduce_linear ~is_interesting xs =
  let queries = ref 0 in
  let test ys =
    incr queries;
    is_interesting ys
  in
  if not (test xs) then
    invalid_arg "Reducer.reduce: input sequence is not interesting";
  let n0 = List.length xs in
  (* [n] is threaded through the sweep (decremented on each removal) so the
     loop bound costs O(1) per step instead of a full List.length traversal *)
  let rec sweep n xs =
    let removed = ref false in
    let rec go i n xs =
      if i >= n then (n, xs)
      else begin
        let candidate = List.filteri (fun j _ -> j <> i) xs in
        if test candidate then begin
          removed := true;
          go i (n - 1) candidate
        end
        else go (i + 1) n xs
      end
    in
    let n, xs = go 0 n xs in
    if !removed then sweep n xs else (n, xs)
  in
  let kept, result = sweep n0 xs in
  (result, { queries = !queries; kept; initial = n0 })

let reduce ~is_interesting xs =
  let queries = ref 0 in
  let test ys =
    incr queries;
    is_interesting ys
  in
  let result, initial = reduce_generic ~test xs in
  (result, { queries = !queries; kept = List.length result; initial })

let reduce_with_cache ~key ~is_interesting xs =
  let queries = ref 0 in
  let cache : (string, bool) Hashtbl.t = Hashtbl.create 64 in
  let test ys =
    let k = key ys in
    match Hashtbl.find_opt cache k with
    | Some r -> r
    | None ->
        incr queries;
        let r = is_interesting ys in
        Hashtbl.add cache k r;
        r
  in
  let result, initial = reduce_generic ~test xs in
  (result, { queries = !queries; kept = List.length result; initial })
