(** Pretty-printer for MiniGLSL source, in a GLSL-like concrete syntax.

    Marker nodes render as comment-annotated constructs so that fuzzed
    programs remain readable and source-level deltas (what a glsl-fuzz-style
    bug report contains) can be eyeballed. *)

let ty_to_string = function
  | Ast.TBool -> "bool"
  | Ast.TInt -> "int"
  | Ast.TFloat -> "float"
  | Ast.TVec n -> Printf.sprintf "vec%d" n
  | Ast.TMat n -> Printf.sprintf "mat%d" n

let binop_to_string = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"
  | Ast.Mod -> "%"
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="
  | Ast.Eq -> "=="
  | Ast.Ne -> "!="
  | Ast.And -> "&&"
  | Ast.Or -> "||"

let component_name = function 0 -> "x" | 1 -> "y" | 2 -> "z" | _ -> "w"

let rec expr_to_string (e : Ast.expr) =
  match e with
  | Ast.Bool_lit b -> string_of_bool b
  | Ast.Int_lit i -> string_of_int i
  | Ast.Float_lit f ->
      let s = Printf.sprintf "%.12g" f in
      if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
      then s
      else s ^ ".0"
  | Ast.Var x -> x
  | Ast.Binop (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (expr_to_string a) (binop_to_string op)
        (expr_to_string b)
  | Ast.Unop (Ast.Neg, a) -> Printf.sprintf "(-%s)" (expr_to_string a)
  | Ast.Unop (Ast.Not, a) -> Printf.sprintf "(!%s)" (expr_to_string a)
  | Ast.Unop (Ast.Int_to_float, a) -> Printf.sprintf "float(%s)" (expr_to_string a)
  | Ast.Unop (Ast.Float_to_int, a) -> Printf.sprintf "int(%s)" (expr_to_string a)
  | Ast.Call (f, args) ->
      Printf.sprintf "%s(%s)" f (String.concat ", " (List.map expr_to_string args))
  | Ast.Vec parts ->
      Printf.sprintf "vec%d(%s)" (List.length parts)
        (String.concat ", " (List.map expr_to_string parts))
  | Ast.Mat cols ->
      Printf.sprintf "mat%d(%s)" (List.length cols)
        (String.concat ", " (List.map expr_to_string cols))
  | Ast.Component (v, i) -> Printf.sprintf "%s.%s" (expr_to_string v) (component_name i)
  | Ast.Column (m, i) -> Printf.sprintf "%s[%d]" (expr_to_string m) i
  | Ast.Mat_vec (m, v) ->
      Printf.sprintf "(%s * %s)" (expr_to_string m) (expr_to_string v)
  | Ast.Identity (marker, kind, inner) ->
      let rendered =
        match kind with
        | Ast.Plus_zero -> Printf.sprintf "(%s + 0)" (expr_to_string inner)
        | Ast.Times_one -> Printf.sprintf "(%s * 1)" (expr_to_string inner)
        | Ast.Double_not -> Printf.sprintf "(!!%s)" (expr_to_string inner)
      in
      Printf.sprintf "%s/*id:%d*/" rendered marker

let rec stmt_lines indent (s : Ast.stmt) =
  let pad = String.make (indent * 2) ' ' in
  match s with
  | Ast.Declare (ty, x, e) ->
      [ Printf.sprintf "%s%s %s = %s;" pad (ty_to_string ty) x (expr_to_string e) ]
  | Ast.Assign (x, e) -> [ Printf.sprintf "%s%s = %s;" pad x (expr_to_string e) ]
  | Ast.If (c, t, []) ->
      (Printf.sprintf "%sif (%s) {" pad (expr_to_string c) :: stmts_lines (indent + 1) t)
      @ [ pad ^ "}" ]
  | Ast.If (c, t, f) ->
      (Printf.sprintf "%sif (%s) {" pad (expr_to_string c) :: stmts_lines (indent + 1) t)
      @ [ pad ^ "} else {" ]
      @ stmts_lines (indent + 1) f
      @ [ pad ^ "}" ]
  | Ast.For (i, lo, hi, body) ->
      (Printf.sprintf "%sfor (int %s = %d; %s < %d; %s++) {" pad i lo i hi i
       :: stmts_lines (indent + 1) body)
      @ [ pad ^ "}" ]
  | Ast.For_to (i, lo, bound, body) ->
      (Printf.sprintf "%sfor (int %s = %d; %s < %s; %s++) {" pad i lo i
         (expr_to_string bound) i
       :: stmts_lines (indent + 1) body)
      @ [ pad ^ "}" ]
  | Ast.Set_color (r, g, b) ->
      [ Printf.sprintf "%sgl_FragColor = vec4(%s, %s, %s, 1.0);" pad (expr_to_string r)
          (expr_to_string g) (expr_to_string b) ]
  | Ast.Discard -> [ pad ^ "discard;" ]
  | Ast.Return e -> [ Printf.sprintf "%sreturn %s;" pad (expr_to_string e) ]
  | Ast.Injected (m, body) ->
      (Printf.sprintf "%sif (false) { /*injected:%d*/" pad m
       :: stmts_lines (indent + 1) body)
      @ [ pad ^ "}" ]
  | Ast.Wrap_if (m, c, body) ->
      (Printf.sprintf "%sif (%s) { /*wrap:%d*/" pad (expr_to_string c) m
       :: stmts_lines (indent + 1) body)
      @ [ pad ^ "}" ]
  | Ast.Wrap_loop (m, i, body) ->
      (Printf.sprintf "%sfor (int %s = 0; %s < 1; %s++) { /*loop:%d*/" pad i i i m
       :: stmts_lines (indent + 1) body)
      @ [ pad ^ "}" ]

and stmts_lines indent ss = List.concat_map (stmt_lines indent) ss

let fn_lines (f : Ast.fn) =
  let params =
    String.concat ", "
      (List.map (fun (ty, x) -> ty_to_string ty ^ " " ^ x) f.Ast.fn_params)
  in
  (Printf.sprintf "%s %s(%s) {" (ty_to_string f.Ast.fn_ret) f.Ast.fn_name params
   :: stmts_lines 1 f.Ast.fn_body)
  @ [ "}" ]

let program_to_string (p : Ast.program) =
  let uniforms =
    List.map
      (fun (ty, name) -> Printf.sprintf "uniform %s %s;" (ty_to_string ty) name)
      p.Ast.uniforms
  in
  let fns = List.concat_map (fun f -> fn_lines f @ [ "" ]) p.Ast.functions in
  let main = ("void main() {" :: stmts_lines 1 p.Ast.main) @ [ "}" ] in
  String.concat "\n" (uniforms @ [ "" ] @ fns @ main) ^ "\n"

(** Line-level diff between two programs, in the style of {!Spirv_ir.Disasm.diff}. *)
let diff a b =
  let la = Array.of_list (String.split_on_char '\n' (program_to_string a)) in
  let lb = Array.of_list (String.split_on_char '\n' (program_to_string b)) in
  let n = Array.length la and p = Array.length lb in
  let dp = Array.make_matrix (n + 1) (p + 1) 0 in
  for i = n - 1 downto 0 do
    for j = p - 1 downto 0 do
      dp.(i).(j) <-
        (if String.equal la.(i) lb.(j) then 1 + dp.(i + 1).(j + 1)
         else max dp.(i + 1).(j) dp.(i).(j + 1))
    done
  done;
  let removed = ref [] and added = ref [] in
  let i = ref 0 and j = ref 0 in
  while !i < n && !j < p do
    if String.equal la.(!i) lb.(!j) then begin incr i; incr j end
    else if dp.(!i + 1).(!j) >= dp.(!i).(!j + 1) then begin
      removed := la.(!i) :: !removed;
      incr i
    end
    else begin
      added := lb.(!j) :: !added;
      incr j
    end
  done;
  while !i < n do removed := la.(!i) :: !removed; incr i done;
  while !j < p do added := lb.(!j) :: !added; incr j done;
  (List.rev !removed, List.rev !added)

let diff_to_string a b =
  let removed, added = diff a b in
  String.concat "\n"
    (List.map (fun l -> "- " ^ l) removed @ List.map (fun l -> "+ " ^ l) added)
