(** The glsl-fuzz-style baseline fuzzer: coarse semantics-preserving
    transformations applied at the {e source} level, before lowering.

    Four transformation families, as in GLFuzz (section 1: "such as wrapping
    a block of code in a single-iteration loop"):
    - wrapping consecutive statements in an always-true conditional;
    - wrapping them in a single-iteration loop;
    - injecting dead code (guarded by a false condition), optionally with a
      [discard];
    - identity mutations on expressions (e + 0, e * 1, !!e).

    Every application leaves a marker in the AST; the hand-crafted reducer
    ({!Source_reducer}) reverts markers one at a time. *)

type state = {
  rng : Tbct.Rng.t;
  mutable next_marker : int;
  mutable fresh_var : int;
  mutable applied : int;
  budget : int;
}

let marker st =
  let m = st.next_marker in
  st.next_marker <- m + 1;
  st.applied <- st.applied + 1;
  m

let fresh_var st prefix =
  let n = st.fresh_var in
  st.fresh_var <- n + 1;
  Printf.sprintf "_%s%d" prefix n

let exhausted st = st.applied >= st.budget

(* guards that are true but not literally [true] half the time *)
let true_guard st =
  match Tbct.Rng.int st.rng 3 with
  | 0 -> Ast.Bool_lit true
  | 1 -> Ast.Binop (Ast.Gt, Ast.Var "u_one", Ast.Var "u_zero")
  | _ -> Ast.Binop (Ast.Le, Ast.Int_lit 0, Ast.Var "u_steps")

(* a small nugget of dead code over fresh variables *)
let dead_code st ~in_main =
  let x = fresh_var st "dead" in
  let y = fresh_var st "dead" in
  let base =
    [
      Ast.Declare (Ast.TFloat, x, Ast.Float_lit 0.25);
      Ast.Declare
        (Ast.TFloat, y, Ast.Binop (Ast.Mul, Ast.Var x, Ast.Binop (Ast.Add, Ast.Var x, Ast.Float_lit 1.5)));
      Ast.Assign (x, Ast.Binop (Ast.Sub, Ast.Var y, Ast.Var x));
    ]
  in
  if in_main && Tbct.Rng.chance st.rng ~num:1 ~den:3 then base @ [ Ast.Discard ]
  else base

(* identity mutation on an expression, type-directed *)
let mutate_expr st (ty_hint : [ `Num | `Bool | `Other ]) e =
  match ty_hint with
  | `Num ->
      let kind = if Tbct.Rng.bool st.rng then Ast.Plus_zero else Ast.Times_one in
      Ast.Identity (marker st, kind, e)
  | `Bool -> Ast.Identity (marker st, Ast.Double_not, e)
  | `Other -> e

(* crude type hints sufficient for choosing identity kinds *)
let rec hint_of (e : Ast.expr) : [ `Num | `Bool | `Other ] =
  match e with
  | Ast.Int_lit _ | Ast.Float_lit _ -> `Num
  | Ast.Bool_lit _ -> `Bool
  | Ast.Binop ((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne | Ast.And | Ast.Or), _, _) ->
      `Bool
  | Ast.Binop (_, _, _) -> `Num
  | Ast.Unop (Ast.Not, _) -> `Bool
  | Ast.Unop (_, _) -> `Num
  | Ast.Component (_, _) -> `Num
  | Ast.Identity (_, _, inner) -> hint_of inner
  | Ast.Var _ | Ast.Call _ | Ast.Vec _ | Ast.Mat _ | Ast.Column _ | Ast.Mat_vec _ ->
      `Other

let rec fuzz_expr st e =
  if exhausted st then e
  else begin
    let e =
      match e with
      | Ast.Binop (op, a, b) -> Ast.Binop (op, fuzz_expr st a, fuzz_expr st b)
      | Ast.Unop (op, a) -> Ast.Unop (op, fuzz_expr st a)
      | Ast.Call (f, args) -> Ast.Call (f, List.map (fuzz_expr st) args)
      | Ast.Vec parts -> Ast.Vec (List.map (fuzz_expr st) parts)
      | Ast.Mat cols -> Ast.Mat (List.map (fuzz_expr st) cols)
      | Ast.Component (v, i) -> Ast.Component (fuzz_expr st v, i)
      | Ast.Column (m, i) -> Ast.Column (fuzz_expr st m, i)
      | Ast.Mat_vec (m, v) -> Ast.Mat_vec (fuzz_expr st m, fuzz_expr st v)
      | Ast.Identity (m, k, inner) -> Ast.Identity (m, k, fuzz_expr st inner)
      | (Ast.Bool_lit _ | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Var _) as leaf -> leaf
    in
    match hint_of e with
    | (`Num | `Bool) as h when Tbct.Rng.chance st.rng ~num:1 ~den:8 -> mutate_expr st h e
    | _ -> e
  end

let rec fuzz_stmts st ~in_main (ss : Ast.stmt list) =
  let ss = List.map (fuzz_stmt st ~in_main) ss in
  if exhausted st then ss
  else if ss <> [] && Tbct.Rng.chance st.rng ~num:1 ~den:4 then begin
    (* wrap a random contiguous run of statements, or inject dead code *)
    let n = List.length ss in
    let start = Tbct.Rng.int st.rng n in
    let len = 1 + Tbct.Rng.int st.rng (n - start) in
    let before = List.filteri (fun i _ -> i < start) ss in
    let middle = List.filteri (fun i _ -> i >= start && i < start + len) ss in
    let after = List.filteri (fun i _ -> i >= start + len) ss in
    (* wrapping is only sound when the wrapped region does not declare
       variables used later (scoping) and cannot return/discard on any path
       (a wrapped body may not terminate the enclosing function) *)
    let declares =
      List.exists (function Ast.Declare _ -> true | _ -> false) middle
    in
    let rec stmt_terminates = function
      | Ast.Return _ | Ast.Discard -> true
      | Ast.If (_, t, f) -> stmts_terminate t && stmts_terminate f
      | Ast.Declare _ | Ast.Assign _ | Ast.For _ | Ast.For_to _
      | Ast.Set_color _ | Ast.Injected _ | Ast.Wrap_if _ | Ast.Wrap_loop _ ->
          false
    and stmts_terminate ss = List.exists stmt_terminates ss in
    let terminates = stmts_terminate middle in
    match Tbct.Rng.int st.rng 3 with
    | 0 when not (declares || terminates) ->
        before @ [ Ast.Wrap_if (marker st, true_guard st, middle) ] @ after
    | 1 when not (declares || terminates) ->
        before @ [ Ast.Wrap_loop (marker st, fresh_var st "loop", middle) ] @ after
    | _ ->
        let inject = Ast.Injected (marker st, dead_code st ~in_main) in
        before @ (inject :: middle) @ after
  end
  else ss

and fuzz_stmt st ~in_main (s : Ast.stmt) =
  if exhausted st then s
  else
    match s with
    | Ast.Declare (ty, x, e) -> Ast.Declare (ty, x, fuzz_expr st e)
    | Ast.Assign (x, e) -> Ast.Assign (x, fuzz_expr st e)
    | Ast.If (c, t, f) ->
        Ast.If (fuzz_expr st c, fuzz_stmts st ~in_main t, fuzz_stmts st ~in_main f)
    | Ast.For (i, lo, hi, body) -> Ast.For (i, lo, hi, fuzz_stmts st ~in_main body)
    | Ast.For_to (i, lo, bound, body) ->
        Ast.For_to (i, lo, fuzz_expr st bound, fuzz_stmts st ~in_main body)
    | Ast.Set_color (r, g, b) ->
        Ast.Set_color (fuzz_expr st r, fuzz_expr st g, fuzz_expr st b)
    | Ast.Discard -> Ast.Discard
    | Ast.Return e -> Ast.Return (fuzz_expr st e)
    | Ast.Injected (m, body) -> Ast.Injected (m, body)
    | Ast.Wrap_if (m, c, body) -> Ast.Wrap_if (m, c, fuzz_stmts st ~in_main body)
    | Ast.Wrap_loop (m, i, body) -> Ast.Wrap_loop (m, i, fuzz_stmts st ~in_main body)

type result = {
  program : Ast.program;
  applied : int;  (** number of transformations (markers) applied *)
}

(** Apply several sweeps of source transformations.  [budget] bounds the
    number of markers introduced. *)
let fuzz ?(budget = 40) ?(sweeps = 4) ~seed (p : Ast.program) : result =
  let st =
    {
      rng = Tbct.Rng.make seed;
      next_marker = 1 + List.fold_left max 0 (Ast.program_markers p);
      fresh_var = 0;
      applied = 0;
      budget;
    }
  in
  let run_sweep (p : Ast.program) =
    {
      p with
      Ast.functions =
        List.map
          (fun (f : Ast.fn) ->
            { f with Ast.fn_body = fuzz_stmts st ~in_main:false f.Ast.fn_body })
          p.Ast.functions;
      Ast.main = fuzz_stmts st ~in_main:true p.Ast.main;
    }
  in
  let rec go p n = if n = 0 || exhausted st then p else go (run_sweep p) (n - 1) in
  let program = go p sweeps in
  { program; applied = st.applied }
