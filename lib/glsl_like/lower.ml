(** Lowering MiniGLSL to the SPIR-V-like IR — the glslang analog.

    Deliberately naive, as front-ends are before optimization: every source
    variable becomes an [OpVariable] allocation, every read a load and every
    write a store, and fresh ids are drawn in program order.  This is what
    makes reduction-by-reverting-source-transformations lose precision at
    the IR level (re-lowering a reverted program shifts every id), the
    effect quantified in the paper's RQ2 comparison. *)

open Spirv_ir

type env = {
  b : Builder.t;
  fb : Builder.fn;
  vars : (string * Id.t) list;  (** source variable -> pointer id *)
  fns : (string * Id.t) list;   (** source function -> function id *)
  output : Id.t option;         (** output color global (main only) *)
}

let lower_ty b = function
  | Ast.TBool -> Builder.bool_ty b
  | Ast.TInt -> Builder.int_ty b
  | Ast.TFloat -> Builder.float_ty b
  | Ast.TVec n -> Builder.vector_ty b ~scalar:(Builder.float_ty b) ~size:n
  | Ast.TMat n ->
      let column = Builder.vector_ty b ~scalar:(Builder.float_ty b) ~size:n in
      Builder.matrix_ty b ~column ~count:n

let binop_ir (op : Ast.binop) (ty : Ast.ty) : Instr.binop =
  match (op, ty) with
  | Ast.Add, Ast.TInt -> Instr.IAdd
  | Ast.Sub, Ast.TInt -> Instr.ISub
  | Ast.Mul, Ast.TInt -> Instr.IMul
  | Ast.Div, Ast.TInt -> Instr.SDiv
  | Ast.Mod, Ast.TInt -> Instr.SMod
  | Ast.Add, Ast.TFloat -> Instr.FAdd
  | Ast.Sub, Ast.TFloat -> Instr.FSub
  | Ast.Mul, Ast.TFloat -> Instr.FMul
  | Ast.Div, Ast.TFloat -> Instr.FDiv
  | Ast.Lt, Ast.TInt -> Instr.SLessThan
  | Ast.Le, Ast.TInt -> Instr.SLessThanEqual
  | Ast.Gt, Ast.TInt -> Instr.SGreaterThan
  | Ast.Ge, Ast.TInt -> Instr.SGreaterThanEqual
  | Ast.Eq, Ast.TInt -> Instr.IEqual
  | Ast.Ne, Ast.TInt -> Instr.INotEqual
  | Ast.Lt, Ast.TFloat -> Instr.FOrdLessThan
  | Ast.Le, Ast.TFloat -> Instr.FOrdLessThanEqual
  | Ast.Gt, Ast.TFloat -> Instr.FOrdGreaterThan
  | Ast.Ge, Ast.TFloat -> Instr.FOrdGreaterThanEqual
  | Ast.Eq, Ast.TFloat -> Instr.FOrdEqual
  | Ast.Ne, Ast.TFloat -> Instr.FOrdNotEqual
  | Ast.Eq, Ast.TBool -> Instr.IEqual (* unused: equality on bools lowers via select *)
  | Ast.And, _ -> Instr.LogicalAnd
  | Ast.Or, _ -> Instr.LogicalOr
  | _ -> invalid_arg "binop_ir: ill-typed operation (typecheck first)"

(* Infer the MiniGLSL type of an expression; lowering runs after the type
   checker, so failures are programming errors. *)
let rec ty_of env (e : Ast.expr) : Ast.ty =
  match e with
  | Ast.Bool_lit _ -> Ast.TBool
  | Ast.Int_lit _ -> Ast.TInt
  | Ast.Float_lit _ -> Ast.TFloat
  | Ast.Var x -> (
      (* the pointer's pointee type determines it *)
      match List.assoc_opt x env.vars with
      | Some ptr -> (
          match Module_ir.find_type (Builder.module_ env.b) (Builder.type_of env.fb ptr) with
          | Some (Ty.Pointer (_, pointee)) -> (
              match Module_ir.find_type (Builder.module_ env.b) pointee with
              | Some Ty.Bool -> Ast.TBool
              | Some Ty.Int -> Ast.TInt
              | Some Ty.Float -> Ast.TFloat
              | Some (Ty.Vector (_, n)) -> Ast.TVec n
              | Some (Ty.Matrix (_, n)) -> Ast.TMat n
              | _ -> invalid_arg "ty_of: unsupported variable type")
          | _ -> invalid_arg ("ty_of: not a pointer for " ^ x))
      | None -> invalid_arg ("ty_of: unbound " ^ x))
  | Ast.Binop (op, a, _) -> (
      match op with
      | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne -> Ast.TBool
      | Ast.And | Ast.Or -> Ast.TBool
      | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod -> ty_of env a)
  | Ast.Unop (op, a) -> (
      match op with
      | Ast.Neg -> ty_of env a
      | Ast.Not -> Ast.TBool
      | Ast.Int_to_float -> Ast.TFloat
      | Ast.Float_to_int -> Ast.TInt)
  | Ast.Call (name, _) -> (
      match List.assoc_opt name env.fns with
      | Some _ -> (
          (* look up the source function's return type via the name table
             kept alongside *)
          invalid_arg "ty_of: calls resolved via ret_tys")
      | None -> invalid_arg ("ty_of: unknown function " ^ name))
  | Ast.Vec parts -> Ast.TVec (List.length parts)
  | Ast.Mat cols -> Ast.TMat (List.length cols)
  | Ast.Component _ -> Ast.TFloat
  | Ast.Column (m, _) -> (
      match ty_of env m with
      | Ast.TMat n -> Ast.TVec n
      | _ -> invalid_arg "ty_of: column of non-matrix")
  | Ast.Mat_vec (m, _) -> (
      match ty_of env m with
      | Ast.TMat n -> Ast.TVec n
      | _ -> invalid_arg "ty_of: mat_vec of non-matrix")
  | Ast.Identity (_, _, inner) -> ty_of env inner

(* Return types of source functions, tracked separately so [ty_of] stays
   total for calls. *)
type tables = { ret_tys : (string * Ast.ty) list }

let rec ty_of_full tables env e =
  match e with
  | Ast.Call (name, _) -> (
      match List.assoc_opt name tables.ret_tys with
      | Some t -> t
      | None -> invalid_arg ("ty_of_full: unknown function " ^ name))
  | Ast.Binop (op, a, _) -> (
      match op with
      | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne | Ast.And | Ast.Or -> Ast.TBool
      | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod -> ty_of_full tables env a)
  | Ast.Unop (Ast.Neg, a) -> ty_of_full tables env a
  | Ast.Identity (_, _, inner) -> ty_of_full tables env inner
  | Ast.Column (m, _) -> (
      match ty_of_full tables env m with
      | Ast.TMat n -> Ast.TVec n
      | _ -> invalid_arg "ty_of_full: column of non-matrix")
  | Ast.Mat_vec (m, _) -> (
      match ty_of_full tables env m with
      | Ast.TMat n -> Ast.TVec n
      | _ -> invalid_arg "ty_of_full: mat_vec of non-matrix")
  | _ -> ty_of env e

let rec lower_expr tables env (e : Ast.expr) : Id.t =
  let b = env.b and fb = env.fb in
  match e with
  | Ast.Bool_lit v -> Builder.cbool b v
  | Ast.Int_lit v -> Builder.cint b v
  | Ast.Float_lit v -> Builder.cfloat b v
  | Ast.Var x -> (
      match List.assoc_opt x env.vars with
      | Some ptr -> Builder.load fb ptr
      | None -> invalid_arg ("lower_expr: unbound " ^ x))
  | Ast.Binop (op, a, c) ->
      let ta = ty_of_full tables env a in
      let ia = lower_expr tables env a in
      let ic = lower_expr tables env c in
      Builder.binop fb (binop_ir op ta) ia ic
  | Ast.Unop (op, a) -> (
      let ia = lower_expr tables env a in
      match (op, ty_of_full tables env a) with
      | Ast.Neg, Ast.TInt -> Builder.unop fb Instr.SNegate ia
      | Ast.Neg, _ -> Builder.unop fb Instr.FNegate ia
      | Ast.Not, _ -> Builder.lnot fb ia
      | Ast.Int_to_float, _ -> Builder.s_to_f fb ia
      | Ast.Float_to_int, _ -> Builder.f_to_s fb ia)
  | Ast.Call (name, args) -> (
      let arg_ids = List.map (lower_expr tables env) args in
      match List.assoc_opt name env.fns with
      | Some fn_id -> Builder.call fb fn_id arg_ids
      | None -> invalid_arg ("lower_expr: unknown function " ^ name))
  | Ast.Vec parts ->
      let ids = List.map (lower_expr tables env) parts in
      let ty = Builder.vector_ty b ~scalar:(Builder.float_ty b) ~size:(List.length parts) in
      Builder.composite fb ~ty ids
  | Ast.Mat cols ->
      let n = List.length cols in
      let ids = List.map (lower_expr tables env) cols in
      let column = Builder.vector_ty b ~scalar:(Builder.float_ty b) ~size:n in
      let ty = Builder.matrix_ty b ~column ~count:n in
      Builder.composite fb ~ty ids
  | Ast.Component (v, i) ->
      let iv = lower_expr tables env v in
      Builder.extract fb iv [ i ]
  | Ast.Column (m, i) ->
      let im = lower_expr tables env m in
      Builder.extract fb im [ i ]
  | Ast.Mat_vec (m, v) ->
      (* no matrix-multiply instruction in the IR: expand to per-row dot
         products, extracting columns first (as glslang does) so original
         programs contain only single-index extractions *)
      let n = match ty_of_full tables env m with
        | Ast.TMat n -> n
        | _ -> invalid_arg "lower: mat_vec"
      in
      let im = lower_expr tables env m in
      let iv = lower_expr tables env v in
      let columns = List.init n (fun c -> Builder.extract fb im [ c ]) in
      let v_elems = List.init n (fun c -> Builder.extract fb iv [ c ]) in
      let rows =
        List.init n (fun r ->
            let terms =
              List.map2
                (fun col vc ->
                  let m_cr = Builder.extract fb col [ r ] in
                  Builder.fmul fb m_cr vc)
                columns v_elems
            in
            match terms with
            | [] -> invalid_arg "lower: empty matrix"
            | t0 :: rest -> List.fold_left (Builder.fadd fb) t0 rest)
      in
      let ty = Builder.vector_ty b ~scalar:(Builder.float_ty b) ~size:n in
      Builder.composite fb ~ty rows
  | Ast.Identity (_, kind, inner) -> (
      let ii = lower_expr tables env inner in
      match (kind, ty_of_full tables env inner) with
      | Ast.Plus_zero, Ast.TInt -> Builder.iadd fb ii (Builder.cint b 0)
      | Ast.Plus_zero, _ -> Builder.fadd fb ii (Builder.cfloat b 0.0)
      | Ast.Times_one, Ast.TInt -> Builder.imul fb ii (Builder.cint b 1)
      | Ast.Times_one, _ -> Builder.fmul fb ii (Builder.cfloat b 1.0)
      | Ast.Double_not, _ -> Builder.lnot fb (Builder.lnot fb ii))

(* Lower statements.  Returns [true] when the current block has been
   terminated (Return/Discard), in which case no successor branch must be
   emitted. *)
let rec lower_stmts tables env (ss : Ast.stmt list) : env * bool =
  match ss with
  | [] -> (env, false)
  | s :: rest ->
      let env, terminated = lower_stmt tables env s in
      if terminated then (env, true) else lower_stmts tables env rest

and lower_stmt tables env (s : Ast.stmt) : env * bool =
  let b = env.b and fb = env.fb in
  match s with
  | Ast.Declare (ty, x, e) ->
      let v = lower_expr tables env e in
      let ptr = Builder.hoisted_var fb ~pointee:(lower_ty b ty) in
      Builder.store fb ptr v;
      ({ env with vars = (x, ptr) :: env.vars }, false)
  | Ast.Assign (x, e) -> (
      let v = lower_expr tables env e in
      match List.assoc_opt x env.vars with
      | Some ptr ->
          Builder.store fb ptr v;
          (env, false)
      | None -> invalid_arg ("lower_stmt: unbound " ^ x))
  | Ast.If (c, t, f) ->
      let ic = lower_expr tables env c in
      let l_then = Builder.new_label fb in
      let l_else = Builder.new_label fb in
      let l_merge = Builder.new_label fb in
      Builder.branch_cond fb ic l_then l_else;
      Builder.start_block fb l_then;
      let _, term_t = lower_stmts tables env t in
      if not term_t then Builder.branch fb l_merge;
      Builder.start_block fb l_else;
      let _, term_f = lower_stmts tables env f in
      if not term_f then Builder.branch fb l_merge;
      if term_t && term_f then
        (* both arms returned/discarded: no merge block is emitted (it would
           be unreachable) and this path is terminated *)
        (env, true)
      else begin
        Builder.start_block fb l_merge;
        (env, false)
      end
  | Ast.For (i, lo, hi, body) ->
      let ptr = Builder.hoisted_var fb ~pointee:(Builder.int_ty b) in
      Builder.store fb ptr (Builder.cint b lo);
      let env_body = { env with vars = (i, ptr) :: env.vars } in
      let l_header = Builder.new_label fb in
      let l_body = Builder.new_label fb in
      let l_latch = Builder.new_label fb in
      let l_exit = Builder.new_label fb in
      Builder.branch fb l_header;
      Builder.start_block fb l_header;
      let iv = Builder.load fb ptr in
      let cond = Builder.slt fb iv (Builder.cint b hi) in
      Builder.branch_cond fb cond l_body l_exit;
      Builder.start_block fb l_body;
      let _, term = lower_stmts tables env_body body in
      if not term then Builder.branch fb l_latch;
      Builder.start_block fb l_latch;
      let iv' = Builder.load fb ptr in
      Builder.store fb ptr (Builder.iadd fb iv' (Builder.cint b 1));
      Builder.branch fb l_header;
      Builder.start_block fb l_exit;
      (env, false)
  | Ast.For_to (i, lo, bound, body) ->
      (* like For, but the bound is an expression evaluated once before the
         loop: its SSA value dominates the header, so the header compare is
         [iv < bound_v] with a loop-invariant right-hand side — the shape
         the interval analysis proves trip bounds for *)
      let bound_v = lower_expr tables env bound in
      let ptr = Builder.hoisted_var fb ~pointee:(Builder.int_ty b) in
      Builder.store fb ptr (Builder.cint b lo);
      let env_body = { env with vars = (i, ptr) :: env.vars } in
      let l_header = Builder.new_label fb in
      let l_body = Builder.new_label fb in
      let l_latch = Builder.new_label fb in
      let l_exit = Builder.new_label fb in
      Builder.branch fb l_header;
      Builder.start_block fb l_header;
      let iv = Builder.load fb ptr in
      let cond = Builder.slt fb iv bound_v in
      Builder.branch_cond fb cond l_body l_exit;
      Builder.start_block fb l_body;
      let _, term = lower_stmts tables env_body body in
      if not term then Builder.branch fb l_latch;
      Builder.start_block fb l_latch;
      let iv' = Builder.load fb ptr in
      Builder.store fb ptr (Builder.iadd fb iv' (Builder.cint b 1));
      Builder.branch fb l_header;
      Builder.start_block fb l_exit;
      (env, false)
  | Ast.Set_color (r, g, bl) -> (
      let ir = lower_expr tables env r in
      let ig = lower_expr tables env g in
      let ib = lower_expr tables env bl in
      let one = Builder.cfloat b 1.0 in
      let color = Builder.composite fb ~ty:(Builder.vec4f b) [ ir; ig; ib; one ] in
      match env.output with
      | Some out ->
          Builder.store fb out color;
          (env, false)
      | None -> invalid_arg "lower_stmt: set_color outside main")
  | Ast.Discard ->
      Builder.kill fb;
      (env, true)
  | Ast.Return e ->
      let v = lower_expr tables env e in
      Builder.ret_value fb v;
      (env, true)
  | Ast.Injected (_, body) ->
      (* dead code behind a guard the compiler cannot see through: compare
         a uniform-like always-false condition; we use a literal false
         obfuscated as (0 > 1) so constant folding has work to do *)
      let cond = Builder.sgt fb (Builder.cint b 0) (Builder.cint b 1) in
      let l_dead = Builder.new_label fb in
      let l_merge = Builder.new_label fb in
      Builder.branch_cond fb cond l_dead l_merge;
      Builder.start_block fb l_dead;
      let _, term = lower_stmts tables env body in
      if not term then Builder.branch fb l_merge;
      Builder.start_block fb l_merge;
      (env, false)
  | Ast.Wrap_if (_, c, body) ->
      let ic = lower_expr tables env c in
      let l_then = Builder.new_label fb in
      let l_merge = Builder.new_label fb in
      Builder.branch_cond fb ic l_then l_merge;
      Builder.start_block fb l_then;
      let _, term = lower_stmts tables env body in
      if not term then Builder.branch fb l_merge;
      Builder.start_block fb l_merge;
      (env, false)
  | Ast.Wrap_loop (_, i, body) ->
      lower_stmt tables env (Ast.For (i, 0, 1, body))

let lower_function tables b fns ~uniform_globals (f : Ast.fn) =
  let ret = lower_ty b f.Ast.fn_ret in
  let param_tys = List.map (fun (ty, _) -> lower_ty b ty) f.Ast.fn_params in
  let fb, fn_id, param_ids = Builder.begin_function b ~name:f.Ast.fn_name ~ret ~params:param_tys in
  let entry = Builder.new_label fb in
  Builder.start_block fb entry;
  (* spill parameters into locals so assignments to them work *)
  let vars =
    List.map2
      (fun (ty, name) pid ->
        let ptr = Builder.hoisted_var fb ~pointee:(lower_ty b ty) in
        Builder.store fb ptr pid;
        (name, ptr))
      f.Ast.fn_params param_ids
  in
  (* uniforms are module-scope in GLSL: helpers read them directly from the
     Uniform-class globals *)
  let env = { b; fb; vars = vars @ uniform_globals; fns; output = None } in
  let _, terminated = lower_stmts tables env f.Ast.fn_body in
  if not terminated then
    invalid_arg ("lower_function: " ^ f.Ast.fn_name ^ " does not return (typecheck first)");
  ignore (Builder.end_function fb);
  fn_id

(** Lower a checked program to a module.  @raise Invalid_argument on
    ill-typed input — run {!Typecheck.check} first. *)
let lower (p : Ast.program) : Module_ir.t =
  let b = Builder.create () in
  let void_t = Builder.void_ty b in
  let frag = Builder.frag_coord b in
  let out = Builder.output_color b in
  let uniforms =
    List.map
      (fun (ty, name) -> (name, Builder.uniform b ~pointee:(lower_ty b ty) ~name))
      p.Ast.uniforms
  in
  let tables =
    { ret_tys = List.map (fun (f : Ast.fn) -> (f.Ast.fn_name, f.Ast.fn_ret)) p.Ast.functions }
  in
  let fns =
    List.fold_left
      (fun fns f ->
        (f.Ast.fn_name, lower_function tables b fns ~uniform_globals:uniforms f) :: fns)
      [] p.Ast.functions
  in
  let fb, main_id, _ = Builder.begin_function b ~name:"main" ~ret:void_t ~params:[] in
  let entry = Builder.new_label fb in
  Builder.start_block fb entry;
  (* bind builtins: gl_x/gl_y from the fragment coordinate *)
  let fc = Builder.load fb frag in
  let bind_builtin idx name =
    let v = Builder.extract fb fc [ idx ] in
    let ptr = Builder.hoisted_var fb ~pointee:(Builder.float_ty b) in
    Builder.store fb ptr v;
    (name, ptr)
  in
  let builtin_vars = [ bind_builtin 0 "gl_x"; bind_builtin 1 "gl_y" ] in
  (* uniforms are spilled into locals too, keeping variable reads uniform *)
  let uniform_vars =
    List.map
      (fun (name, global) ->
        let v = Builder.load fb global in
        let pointee =
          match
            Module_ir.find_type (Builder.module_ b) (Builder.type_of fb global)
          with
          | Some (Ty.Pointer (_, pt)) -> pt
          | _ -> Builder.float_ty b
        in
        let ptr = Builder.hoisted_var fb ~pointee in
        Builder.store fb ptr v;
        (name, ptr))
      uniforms
  in
  let env = { b; fb; vars = builtin_vars @ uniform_vars; fns; output = Some out } in
  let _, terminated = lower_stmts tables env p.Ast.main in
  if not terminated then Builder.ret fb;
  ignore (Builder.end_function fb);
  Builder.finish b ~entry:main_id
