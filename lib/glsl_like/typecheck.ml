(** Type checker for MiniGLSL.

    Enforces the well-formedness rules the lowering relies on: variables
    declared before use, no shadowing across a scope chain, built-in
    variables only in [main], [Discard] only as the final statement of a
    branch, helper functions returning on every path, declaration-before-use
    of functions (hence no recursion), and [Set_color] only in [main]. *)

type error = string

let ( let* ) r f = Result.bind r f
let fail fmt = Printf.ksprintf (fun s -> Error s) fmt

type env = {
  vars : (string * Ast.ty) list;
  functions : Ast.fn list;  (** functions declared so far *)
  in_main : bool;
}

let rec infer_expr env (e : Ast.expr) : (Ast.ty, error) result =
  match e with
  | Ast.Bool_lit _ -> Ok Ast.TBool
  | Ast.Int_lit _ -> Ok Ast.TInt
  | Ast.Float_lit _ -> Ok Ast.TFloat
  | Ast.Var x -> (
      match List.assoc_opt x env.vars with
      | Some t -> Ok t
      | None -> fail "unbound variable %s" x)
  | Ast.Binop (op, a, b) -> (
      let* ta = infer_expr env a in
      let* tb = infer_expr env b in
      if not (Ast.equal_ty ta tb) then fail "binop operand types differ"
      else
        match op with
        | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div -> (
            match ta with
            | Ast.TInt | Ast.TFloat -> Ok ta
            | Ast.TBool | Ast.TVec _ | Ast.TMat _ -> fail "arithmetic on non-numeric")
        | Ast.Mod -> if ta = Ast.TInt then Ok Ast.TInt else fail "mod on non-int"
        | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> (
            match ta with
            | Ast.TInt | Ast.TFloat -> Ok Ast.TBool
            | Ast.TBool | Ast.TVec _ | Ast.TMat _ -> fail "comparison on non-numeric")
        | Ast.Eq | Ast.Ne -> (
            match ta with
            | Ast.TInt | Ast.TFloat | Ast.TBool -> Ok Ast.TBool
            | Ast.TVec _ | Ast.TMat _ -> fail "equality on aggregates")
        | Ast.And | Ast.Or ->
            if ta = Ast.TBool then Ok Ast.TBool else fail "logic on non-bool")
  | Ast.Unop (op, a) -> (
      let* ta = infer_expr env a in
      match (op, ta) with
      | Ast.Neg, (Ast.TInt | Ast.TFloat) -> Ok ta
      | Ast.Not, Ast.TBool -> Ok Ast.TBool
      | Ast.Int_to_float, Ast.TInt -> Ok Ast.TFloat
      | Ast.Float_to_int, Ast.TFloat -> Ok Ast.TInt
      | _ -> fail "ill-typed unary operation")
  | Ast.Call (name, args) -> (
      match List.find_opt (fun (f : Ast.fn) -> String.equal f.Ast.fn_name name) env.functions with
      | None -> fail "call to undeclared function %s" name
      | Some f ->
          if List.length args <> List.length f.Ast.fn_params then
            fail "call arity mismatch for %s" name
          else
            let* () =
              List.fold_left2
                (fun acc arg (pty, _) ->
                  let* () = acc in
                  let* ta = infer_expr env arg in
                  if Ast.equal_ty ta pty then Ok () else fail "argument type mismatch")
                (Ok ()) args f.Ast.fn_params
            in
            Ok f.Ast.fn_ret)
  | Ast.Vec parts ->
      let n = List.length parts in
      if n < 2 || n > 4 then fail "vec arity must be 2..4"
      else
        let* () =
          List.fold_left
            (fun acc p ->
              let* () = acc in
              let* t = infer_expr env p in
              if t = Ast.TFloat then Ok () else fail "vec components must be float")
            (Ok ()) parts
        in
        Ok (Ast.TVec n)
  | Ast.Mat cols ->
      let n = List.length cols in
      if n < 2 || n > 4 then fail "mat dimension must be 2..4"
      else
        let* () =
          List.fold_left
            (fun acc c ->
              let* () = acc in
              let* t = infer_expr env c in
              if Ast.equal_ty t (Ast.TVec n) then Ok ()
              else fail "mat columns must be vec%d" n)
            (Ok ()) cols
        in
        Ok (Ast.TMat n)
  | Ast.Component (v, i) -> (
      let* tv = infer_expr env v in
      match tv with
      | Ast.TVec n when i >= 0 && i < n -> Ok Ast.TFloat
      | Ast.TVec _ -> fail "component index out of range"
      | _ -> fail "component access on non-vector")
  | Ast.Column (m, i) -> (
      let* tm = infer_expr env m in
      match tm with
      | Ast.TMat n when i >= 0 && i < n -> Ok (Ast.TVec n)
      | Ast.TMat _ -> fail "column index out of range"
      | _ -> fail "column access on non-matrix")
  | Ast.Mat_vec (m, v) -> (
      let* tm = infer_expr env m in
      let* tv = infer_expr env v in
      match (tm, tv) with
      | Ast.TMat n, Ast.TVec n' when n = n' -> Ok (Ast.TVec n)
      | Ast.TMat _, Ast.TVec _ -> fail "matrix-vector dimension mismatch"
      | _ -> fail "mat_vec requires a matrix and a vector")
  | Ast.Identity (_, kind, inner) -> (
      let* ti = infer_expr env inner in
      match (kind, ti) with
      | Ast.Plus_zero, (Ast.TInt | Ast.TFloat) -> Ok ti
      | Ast.Times_one, (Ast.TInt | Ast.TFloat) -> Ok ti
      | Ast.Double_not, Ast.TBool -> Ok ti
      | _ -> fail "identity mutation on incompatible type")

(* Check a statement list; returns the environment extension and whether all
   paths terminated (via Return or Discard). *)
let rec check_stmts env ~ret (ss : Ast.stmt list) : (bool, error) result =
  match ss with
  | [] -> Ok false
  | s :: rest -> (
      let continue_with env' =
        let* terminated = check_stmt env' ~ret s in
        if terminated && rest <> [] then fail "unreachable statements after terminator"
        else if terminated then Ok true
        else check_stmts env' ~ret rest
      in
      match s with
      | Ast.Declare (ty, x, e) ->
          if List.mem_assoc x env.vars then fail "redeclaration of %s" x
          else
            let* te = infer_expr env e in
            if Ast.equal_ty te ty then
              check_stmts { env with vars = (x, ty) :: env.vars } ~ret rest
            else fail "declaration type mismatch for %s" x
      | _ -> continue_with env)

and check_stmt env ~ret (s : Ast.stmt) : (bool, error) result =
  match s with
  | Ast.Declare _ -> Ok false (* handled in check_stmts *)
  | Ast.Assign (x, e) -> (
      match List.assoc_opt x env.vars with
      | None -> fail "assignment to undeclared variable %s" x
      | Some tx ->
          let* te = infer_expr env e in
          if Ast.equal_ty te tx then Ok false else fail "assignment type mismatch for %s" x)
  | Ast.If (c, t, f) ->
      let* tc = infer_expr env c in
      if tc <> Ast.TBool then fail "if condition must be bool"
      else
        let* term_t = check_stmts env ~ret t in
        let* term_f = check_stmts env ~ret f in
        Ok (term_t && term_f)
  | Ast.For (i, lo, hi, body) ->
      if List.mem_assoc i env.vars then fail "loop variable %s shadows" i
      else if lo > hi then fail "descending loop bounds"
      else
        let env' = { env with vars = (i, Ast.TInt) :: env.vars } in
        let* term = check_stmts env' ~ret body in
        if term then fail "loop body may not terminate the shader" else Ok false
  | Ast.For_to (i, _, bound, body) ->
      if List.mem_assoc i env.vars then fail "loop variable %s shadows" i
      else
        let* tb = infer_expr env bound in
        if tb <> Ast.TInt then fail "for_to bound must be an int expression"
        else
          let env' = { env with vars = (i, Ast.TInt) :: env.vars } in
          let* term = check_stmts env' ~ret body in
          if term then fail "loop body may not terminate the shader" else Ok false
  | Ast.Set_color (r, g, b) ->
      if not env.in_main then fail "set_color outside main"
      else
        let* tr = infer_expr env r in
        let* tg = infer_expr env g in
        let* tb = infer_expr env b in
        if tr = Ast.TFloat && tg = Ast.TFloat && tb = Ast.TFloat then Ok false
        else fail "set_color arguments must be floats"
  | Ast.Discard -> if env.in_main then Ok true else fail "discard outside main"
  | Ast.Return e -> (
      match ret with
      | None -> fail "return in main"
      | Some rty ->
          let* te = infer_expr env e in
          if Ast.equal_ty te rty then Ok true else fail "return type mismatch")
  | Ast.Injected (_, body) ->
      (* dead code: checked in the same scope, may not fall out of it *)
      let* _ = check_stmts env ~ret body in
      Ok false
  | Ast.Wrap_if (_, c, body) ->
      let* tc = infer_expr env c in
      if tc <> Ast.TBool then fail "wrap_if guard must be bool"
      else
        let* term = check_stmts env ~ret body in
        Ok term
  | Ast.Wrap_loop (i, _, body) ->
      ignore i;
      let* term = check_stmts env ~ret body in
      if term then fail "wrapped loop body may not terminate" else Ok false

let check_function ~uniforms functions (f : Ast.fn) =
  let env =
    {
      vars =
        List.map (fun (ty, x) -> (x, ty)) f.Ast.fn_params
        @ List.map (fun (ty, x) -> (x, ty)) uniforms;
      functions;
      in_main = false;
    }
  in
  let* terminated = check_stmts env ~ret:(Some f.Ast.fn_ret) f.Ast.fn_body in
  if terminated then Ok () else fail "function %s may fall off the end" f.Ast.fn_name

let check (p : Ast.program) : (unit, error) result =
  (* unique names *)
  let names = List.map (fun (f : Ast.fn) -> f.Ast.fn_name) p.Ast.functions in
  if List.length (List.sort_uniq String.compare names) <> List.length names then
    fail "duplicate function names"
  else
    (* declaration order: each function may call only earlier ones *)
    let* _ =
      List.fold_left
        (fun acc f ->
          let* declared = acc in
          let* () = check_function ~uniforms:p.Ast.uniforms declared f in
          Ok (declared @ [ f ]))
        (Ok []) p.Ast.functions
    in
    let env =
      {
        vars =
          Ast.builtin_vars @ List.map (fun (ty, x) -> (x, ty)) p.Ast.uniforms;
        functions = p.Ast.functions;
        in_main = true;
      }
    in
    let* _ = check_stmts env ~ret:None p.Ast.main in
    Ok ()
