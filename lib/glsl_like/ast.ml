(** MiniGLSL: the small structured shader language used as the front-end for
    our glsl-fuzz baseline and as the source of the reference/donor corpus.

    Marker nodes ([Injected], [Wrap_if], [Wrap_loop], [Identity]) carry the
    syntactic trail that the baseline's hand-crafted reducer uses to revert
    transformations, mirroring how glsl-fuzz leaves "a trail of syntactic
    markers in the transformed program" (section 6 of the paper). *)

type ty =
  | TBool
  | TInt
  | TFloat
  | TVec of int  (** float vector, size 2..4 *)
  | TMat of int  (** square float matrix, dimension 2..4, column-major *)
[@@deriving show { with_path = false }, eq]

type binop =
  | Add | Sub | Mul | Div | Mod
  | Lt | Le | Gt | Ge | Eq | Ne
  | And | Or
[@@deriving show { with_path = false }, eq]

type unop = Neg | Not | Int_to_float | Float_to_int
[@@deriving show { with_path = false }, eq]

(** Kinds of identity mutation the baseline fuzzer applies to expressions. *)
type identity_kind =
  | Plus_zero      (** e + 0 (int) *)
  | Times_one      (** e * 1 / e * 1.0 *)
  | Double_not     (** !!e *)
[@@deriving show { with_path = false }, eq]

type expr =
  | Bool_lit of bool
  | Int_lit of int
  | Float_lit of float
  | Var of string
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Call of string * expr list
  | Vec of expr list               (** vecN constructor from floats *)
  | Mat of expr list               (** matN constructor from N column vecNs *)
  | Component of expr * int        (** v.x / v.y / ... *)
  | Column of expr * int           (** m[i]: column i of a matrix, a vecN *)
  | Mat_vec of expr * expr         (** m * v: matrix-vector product, a vecN *)
  | Identity of int * identity_kind * expr
      (** marker: semantically the inner expression *)
[@@deriving show { with_path = false }, eq]

type stmt =
  | Declare of ty * string * expr
  | Assign of string * expr
  | If of expr * stmt list * stmt list
  | For of string * int * int * stmt list
      (** [For (i, lo, hi, body)]: i from lo inclusive to hi exclusive *)
  | For_to of string * int * expr * stmt list
      (** [For_to (i, lo, bound, body)]: i from lo inclusive up to the value
          of [bound] (an int expression, evaluated once before the loop)
          exclusive *)
  | Set_color of expr * expr * expr  (** write the fragment color (r, g, b) *)
  | Discard                          (** OpKill *)
  | Return of expr
  | Injected of int * stmt list      (** marker: dead code behind a false guard *)
  | Wrap_if of int * expr * stmt list   (** marker: body behind an always-true guard *)
  | Wrap_loop of int * string * stmt list  (** marker: body in a 1-iteration loop *)
[@@deriving show { with_path = false }, eq]

type fn = {
  fn_name : string;
  fn_params : (ty * string) list;
  fn_ret : ty;
  fn_body : stmt list;  (** must end in [Return] on every path *)
}
[@@deriving show { with_path = false }, eq]

type program = {
  uniforms : (ty * string) list;
  functions : fn list;
  main : stmt list;
}
[@@deriving show { with_path = false }, eq]

(** Built-in per-fragment float variables bound by the lowering. *)
let builtin_vars = [ ("gl_x", TFloat); ("gl_y", TFloat) ]

let find_function p name =
  List.find_opt (fun f -> String.equal f.fn_name name) p.functions

(* ------------------------------------------------------------------ *)
(* Traversals over markers                                             *)

let rec expr_markers e =
  match e with
  | Bool_lit _ | Int_lit _ | Float_lit _ | Var _ -> []
  | Binop (_, a, b) -> expr_markers a @ expr_markers b
  | Unop (_, a) -> expr_markers a
  | Call (_, args) -> List.concat_map expr_markers args
  | Vec parts -> List.concat_map expr_markers parts
  | Mat cols -> List.concat_map expr_markers cols
  | Component (v, _) -> expr_markers v
  | Column (m, _) -> expr_markers m
  | Mat_vec (m, v) -> expr_markers m @ expr_markers v
  | Identity (m, _, inner) -> m :: expr_markers inner

let rec stmt_markers s =
  match s with
  | Declare (_, _, e) | Assign (_, e) | Return e -> expr_markers e
  | If (c, t, f) -> expr_markers c @ stmts_markers t @ stmts_markers f
  | For (_, _, _, body) -> stmts_markers body
  | For_to (_, _, bound, body) -> expr_markers bound @ stmts_markers body
  | Set_color (r, g, b) -> expr_markers r @ expr_markers g @ expr_markers b
  | Discard -> []
  | Injected (m, body) -> m :: stmts_markers body
  | Wrap_if (m, c, body) -> (m :: expr_markers c) @ stmts_markers body
  | Wrap_loop (m, _, body) -> m :: stmts_markers body

and stmts_markers ss = List.concat_map stmt_markers ss

let program_markers p =
  List.concat_map (fun f -> stmts_markers f.fn_body) p.functions @ stmts_markers p.main

(** Revert the transformation identified by [marker]: remove injections,
    splice wrapped bodies, strip identities. *)
let rec revert_expr marker e =
  match e with
  | Bool_lit _ | Int_lit _ | Float_lit _ | Var _ -> e
  | Binop (op, a, b) -> Binop (op, revert_expr marker a, revert_expr marker b)
  | Unop (op, a) -> Unop (op, revert_expr marker a)
  | Call (f, args) -> Call (f, List.map (revert_expr marker) args)
  | Vec parts -> Vec (List.map (revert_expr marker) parts)
  | Mat cols -> Mat (List.map (revert_expr marker) cols)
  | Component (v, i) -> Component (revert_expr marker v, i)
  | Column (m, i) -> Column (revert_expr marker m, i)
  | Mat_vec (m, v) -> Mat_vec (revert_expr marker m, revert_expr marker v)
  | Identity (m, k, inner) ->
      let inner = revert_expr marker inner in
      if m = marker then inner else Identity (m, k, inner)

let rec revert_stmt marker s =
  match s with
  | Declare (ty, x, e) -> [ Declare (ty, x, revert_expr marker e) ]
  | Assign (x, e) -> [ Assign (x, revert_expr marker e) ]
  | Return e -> [ Return (revert_expr marker e) ]
  | If (c, t, f) ->
      [ If (revert_expr marker c, revert_stmts marker t, revert_stmts marker f) ]
  | For (i, lo, hi, body) -> [ For (i, lo, hi, revert_stmts marker body) ]
  | For_to (i, lo, bound, body) ->
      [ For_to (i, lo, revert_expr marker bound, revert_stmts marker body) ]
  | Set_color (r, g, b) ->
      [ Set_color (revert_expr marker r, revert_expr marker g, revert_expr marker b) ]
  | Discard -> [ Discard ]
  | Injected (m, body) ->
      if m = marker then [] else [ Injected (m, revert_stmts marker body) ]
  | Wrap_if (m, c, body) ->
      if m = marker then revert_stmts marker body
      else [ Wrap_if (m, revert_expr marker c, revert_stmts marker body) ]
  | Wrap_loop (m, i, body) ->
      if m = marker then revert_stmts marker body
      else [ Wrap_loop (m, i, revert_stmts marker body) ]

and revert_stmts marker ss = List.concat_map (revert_stmt marker) ss

let revert_program marker p =
  {
    p with
    functions =
      List.map (fun f -> { f with fn_body = revert_stmts marker f.fn_body }) p.functions;
    main = revert_stmts marker p.main;
  }

(** Fully reverted program (all markers removed) — what the program would
    have been before any baseline transformation. *)
let strip_all_markers p =
  List.fold_left (fun p m -> revert_program m p) p (program_markers p)
