(** Campaign persistence: the glue between {!Experiments.run_campaign} and
    the {!Tbct_store} subsystem (see the interface).  This module does no
    file I/O of its own — every byte flows through [Tbct_store], which is a
    CI-enforced invariant of the harness. *)

module Cas = Tbct_store.Cas
module Journal = Tbct_store.Journal
module Bugbank = Tbct_store.Bugbank

(* ------------------------------------------------------------------ *)
(* Store layout *)

let cas_dir dir = Filename.concat dir "cas"
let journal_path dir = Filename.concat dir "journal.log"
let bugbank_dir dir = dir

let open_cas ?fsync ?max_bytes ~dir () =
  Cas.open_ ?fsync ?max_bytes ~root:(cas_dir dir) ()

(* ------------------------------------------------------------------ *)
(* Record codecs.  Every variable-content field is %S-quoted, so fields
   never contain raw tabs or newlines and records stay single lines. *)

let header_tag = "campaign"
let header_version = "v1"

let encode_header ~tool ~targets ~(scale : Experiments.scale) =
  String.concat "\t"
    [
      header_tag;
      header_version;
      Pipeline.tool_name tool;
      Printf.sprintf "%S"
        (String.concat ","
           (List.map (fun (t : Compilers.Target.t) -> t.Compilers.Target.name) targets));
      string_of_int scale.Experiments.seeds;
    ]

let unquote s = try Some (Scanf.sscanf s "%S%!" Fun.id) with _ -> None

(* A scale record re-states the campaign's seed count when a resume extends
   it past the header's figure (seeds 0..N -> 0..M).  Decoders that predate
   the record shape skip it like any other unparseable-but-checksummed
   record, so extended journals stay readable everywhere. *)
let scale_tag = "scale"

let encode_scale_record seeds =
  String.concat "\t" [ scale_tag; header_version; string_of_int seeds ]

let decode_scale_record record =
  match String.split_on_char '\t' record with
  | [ tag; version; seeds ]
    when String.equal tag scale_tag && String.equal version header_version ->
      int_of_string_opt seeds
  | _ -> None

type header = { h_tool : Pipeline.tool; h_targets : string list; h_seeds : int }

let decode_header record =
  match String.split_on_char '\t' record with
  | [ tag; version; tool; targets; seeds ]
    when String.equal tag header_tag && String.equal version header_version -> (
      match (Pipeline.tool_of_name tool, unquote targets, int_of_string_opt seeds) with
      | Some h_tool, Some targets, Some h_seeds ->
          Some
            {
              h_tool;
              h_targets =
                (if String.equal targets "" then []
                 else String.split_on_char ',' targets);
              h_seeds;
            }
      | _ -> None)
  | _ -> None

let encode_seed_record seed (hits : Experiments.hit list) =
  let hit_fields (h : Experiments.hit) =
    [
      Printf.sprintf "%S" h.Experiments.hit_ref;
      Printf.sprintf "%S" h.Experiments.hit_target;
      Printf.sprintf "%S" h.Experiments.hit_detection.Pipeline.signature;
      (if h.Experiments.hit_detection.Pipeline.via_opt then "1" else "0");
    ]
  in
  String.concat "\t"
    ("seed" :: string_of_int seed
    :: string_of_int (List.length hits)
    :: List.concat_map hit_fields hits)

let decode_seed_record ~tool record : (int * Experiments.hit list) option =
  match String.split_on_char '\t' record with
  | "seed" :: seed :: count :: fields -> (
      match (int_of_string_opt seed, int_of_string_opt count) with
      | Some seed, Some count when List.length fields = 4 * count ->
          let rec hits acc = function
            | [] -> Some (List.rev acc)
            | ref_ :: target :: signature :: via_opt :: rest -> (
                match (unquote ref_, unquote target, unquote signature, via_opt) with
                | Some hit_ref, Some hit_target, Some signature, ("0" | "1") ->
                    hits
                      ({
                         Experiments.hit_tool = tool;
                         hit_seed = seed;
                         hit_ref;
                         hit_target;
                         hit_detection =
                           {
                             Pipeline.signature;
                             via_opt = String.equal via_opt "1";
                           };
                       }
                      :: acc)
                      rest
                | _ -> None)
            | _ -> None
          in
          Option.map (fun hs -> (seed, hs)) (hits [] fields)
      | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Campaign journals *)

type campaign = {
  dir : string;
  journal : Journal.t;
  completed : (int, Experiments.hit list) Hashtbl.t;
  recovered_seeds : int;
  journal_dropped : bool;
  prior_seeds : int option;
      (** the seed count the resumed journal was recorded at (header, or
          the last scale record); [None] for a fresh campaign *)
}

let open_campaign ?(resume = false) ?(fsync = false) ~dir ~tool ~targets
    ~(scale : Experiments.scale) () : (campaign, string) result =
  let path = journal_path dir in
  let completed = Hashtbl.create 256 in
  let fresh () =
    (* a non-resume run starts a new journal: drop any previous one so the
       header and seed records describe exactly this campaign *)
    Tbct_store.Fsio.remove_if_exists path;
    let journal = Journal.open_append ~fsync ~path () in
    Journal.append journal (encode_header ~tool ~targets ~scale);
    Ok
      {
        dir;
        journal;
        completed;
        recovered_seeds = 0;
        journal_dropped = false;
        prior_seeds = None;
      }
  in
  if not resume then fresh ()
  else
    let replay = Journal.replay ~path in
    match replay.Journal.records with
    | [] -> fresh () (* nothing recoverable: behave like a fresh start *)
    | header :: seed_records -> (
        match decode_header header with
        | None -> Error (path ^ ": journal does not start with a campaign header")
        | Some h ->
            let target_names =
              List.map (fun (t : Compilers.Target.t) -> t.Compilers.Target.name) targets
            in
            if h.h_tool <> tool then
              Error
                (Printf.sprintf
                   "%s: journal belongs to a %s campaign, not %s — refusing \
                    to mix hit lists"
                   path (Pipeline.tool_name h.h_tool) (Pipeline.tool_name tool))
            else if h.h_targets <> target_names then
              Error
                (Printf.sprintf
                   "%s: journal targets (%s) differ from this campaign's (%s)"
                   path
                   (String.concat "," h.h_targets)
                   (String.concat "," target_names))
            else begin
              (* the journal's recorded extent: the header's seed count,
                 superseded by any later scale record *)
              let recorded_seeds = ref h.h_seeds in
              List.iter
                (fun record ->
                  match decode_seed_record ~tool record with
                  | Some (seed, hits) -> Hashtbl.replace completed seed hits
                  | None -> (
                      match decode_scale_record record with
                      | Some n -> recorded_seeds := n
                      | None -> () (* checksummed but unparseable: recompute *)))
                seed_records;
              (* cut off the torn suffix before appending, or the first new
                 record is glued onto the half-written line and lost *)
              if replay.Journal.dropped then
                Journal.truncate ~path ~bytes:replay.Journal.valid_bytes;
              let journal = Journal.open_append ~fsync ~path () in
              (* resuming at a different scale (extending a finished
                 campaign 0..N to 0..M, or shrinking): re-state the extent
                 so the journal self-describes what it now covers *)
              if scale.Experiments.seeds <> !recorded_seeds then
                Journal.append journal
                  (encode_scale_record scale.Experiments.seeds);
              Ok
                {
                  dir;
                  journal;
                  completed;
                  recovered_seeds = Hashtbl.length completed;
                  journal_dropped = replay.Journal.dropped;
                  prior_seeds = Some !recorded_seeds;
                }
            end)

let skip c seed = Hashtbl.find_opt c.completed seed

let on_seed c seed hits =
  (* called from worker domains; Journal.append is thread-safe and writes
     each record with a single write(2) *)
  Journal.append c.journal (encode_seed_record seed hits)

let close c = Journal.close c.journal

(* alias: [run_campaign]'s ?on_seed parameter shadows the hook above *)
let on_seed_journal = on_seed

(* ------------------------------------------------------------------ *)
(* The one-call wrapper the CLI and tests use *)

type outcome = {
  hits : Experiments.hit list;
  seeds_skipped : int;  (** seeds served from the journal *)
  seeds_run : int;      (** seeds actually executed this invocation *)
  completed : bool;
      (** every seed is now journaled; [false] only when a [?stop] hook
          cancelled the campaign mid-flight (the hit list is then partial
          and a later [~resume:true] run finishes the job) *)
  journal_dropped : bool;
      (** the journal ended in a truncated/corrupted record (the crash
          signature of a killed campaign) that was discarded *)
  extended_from : int option;
      (** [Some n]: the resumed journal was recorded at [n] seeds and this
          invocation grew the campaign past it *)
}

(* the canonical one-line hit encoding: what [campaign --hits-out] writes
   and what the service's [hits] verb streams, so the two are
   byte-comparable by construction *)
let hit_line (h : Experiments.hit) =
  Printf.sprintf "%d\t%s\t%s\t%S\t%s" h.Experiments.hit_seed
    h.Experiments.hit_ref h.Experiments.hit_target
    h.Experiments.hit_detection.Pipeline.signature
    (if h.Experiments.hit_detection.Pipeline.via_opt then "opt" else "direct")

let run_campaign ?(scale = Experiments.default_scale)
    ?(targets = Compilers.Target.all) ?domains ?pool ?engine ?check_contracts
    ?tv ?weights ?(resume = false) ?(fsync = false) ?stop
    ?(on_seed = fun (_ : int) (_ : Experiments.hit list) -> ()) ~dir tool :
    (outcome, string) result =
  match open_campaign ~resume ~fsync ~dir ~tool ~targets ~scale () with
  | Error _ as e -> e
  | Ok c ->
      (* the journal fd is closed (flushing the fsync-when-asked tail) even
         when a worker — or the user's on_seed hook — raises mid-campaign;
         everything appended before the raise stays replayable *)
      Fun.protect
        ~finally:(fun () -> close c)
        (fun () ->
          (* counted with Atomics: both hooks run on worker domains *)
          let skipped = Atomic.make 0 in
          let fresh = Atomic.make 0 in
          let skip_hook seed =
            match skip c seed with
            | Some hits ->
                Atomic.incr skipped;
                Some hits
            | None -> None
          in
          (* journal first, user hook second: a raising user hook still
             leaves the seed it saw recorded *)
          let seed_hook seed hits =
            on_seed_journal c seed hits;
            Atomic.incr fresh;
            on_seed seed hits
          in
          let hits =
            Experiments.run_campaign ~scale ~targets ?domains ?pool ?engine
              ?check_contracts ?tv ?weights ~skip:skip_hook ?stop
              ~on_seed:seed_hook tool
          in
          let seeds_skipped = Atomic.get skipped in
          (* counted, not inferred: with a [?stop] hook some seeds are
             neither skipped nor run, and the difference is exactly what
             [completed] reports *)
          let seeds_run = Atomic.get fresh in
          Ok
            {
              hits;
              seeds_skipped;
              seeds_run;
              completed = seeds_skipped + seeds_run >= scale.Experiments.seeds;
              journal_dropped = c.journal_dropped;
              extended_from =
                (match c.prior_seeds with
                | Some n when n < scale.Experiments.seeds -> Some n
                | _ -> None);
            })
