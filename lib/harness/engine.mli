(** The execution engine: every compile-and-execute of the harness flows
    through an explicit [Engine.t] instead of calling
    {!Compilers.Backend.run} directly.

    The engine holds a content-addressed memo table mapping
    [(target, module digest, input digest)] to the backend's run result,
    plus the baseline cache for original-program runs (keyed by
    [(target, reference name)]) and a memo table for the clean [-O]
    optimization step (module digest -> optimized module).  All stores are
    guarded by a mutex, so one engine may be shared by several OCaml 5
    domains — the domain-parallel campaigns of {!Experiments} do exactly
    that.

    The in-memory tables are bounded: {!create}'s [memo_capacity] caps the
    entry count and least-recently-used entries are evicted past it
    (surfaced as [memo_evictions] in {!stats}), so a long-running service
    no longer grows without bound.

    With [?store] the engine becomes durable: misses read through to a
    {!Tbct_store.Cas} on disk, and fresh results are written through, so a
    later campaign — or the same one resumed after a crash — replays
    previously-executed variants at disk-read cost.  Corrupt store objects
    decode to [None] and are treated as misses.

    Memoization (memory or disk) is sound because {!Compilers.Backend.run}
    is a deterministic function of its arguments and the codecs are exact
    (see DESIGN.md §5 and §7): a cached result is structurally identical to
    a recomputed one, so the §3.4 interestingness tests — and therefore the
    set of transformations delta debugging keeps — cannot be affected by
    cache hits.

    The engine also keeps per-stage wall-clock accounting: {!run} bills
    backend executions to the ["execute"] stage, {!optimize} bills actual
    optimizer work to ["optimize"], and callers wrap other phases with
    {!timed}. *)

open Spirv_ir

type t

type stats = {
  runs_executed : int;   (** backend executions actually performed *)
  cache_hits : int;      (** in-memory content-addressed memo hits *)
  baseline_hits : int;   (** baseline (target, reference) cache hits *)
  opt_runs : int;        (** clean [-O] optimizations actually performed *)
  opt_hits : int;        (** optimize-step hits (memory or disk) *)
  store_hits : int;      (** run results served from the disk store *)
  store_writes : int;    (** objects written through to the disk store *)
  tv_checks : int;       (** translation-validation checks requested *)
  tv_hits : int;         (** TV verdicts served without re-validating *)
  compiles : int;        (** modules lowered by the flat execution kernel *)
  compile_hits : int;    (** renders served by an already-lowered program *)
  memo_entries : int;    (** current entries across the memo tables *)
  memo_capacity : int;   (** the per-table LRU entry cap *)
  memo_evictions : int;  (** entries evicted by the LRU bound *)
  runs_saved : int;      (** [cache_hits + baseline_hits + store_hits] *)
  hit_rate : float;      (** [runs_saved / (runs_saved + runs_executed)] *)
  execute_wall : float;  (** seconds spent inside the backend *)
  stages : (string * float) list;
      (** cumulative wall-clock per stage, sorted by stage name;
          ["execute"] is maintained by {!run}, ["optimize"] by
          {!optimize}, others by {!timed} *)
  per_domain_runs : (int * int) list;
      (** backend executions per OCaml domain id, sorted by id — how
          evenly a {!Pool}'s workers shared the execute load; summed it
          equals [runs_executed].  A single entry means a sequential
          run. *)
  counters : (string * int) list;
      (** caller-defined named tallies ({!bump_counter}), sorted by name —
          e.g. the per-transformation-type [proposed/*] and [applied/*]
          counts campaign drivers accumulate from fuzzer results *)
}

val default_memo_capacity : int

val create :
  ?store:Tbct_store.Cas.t -> ?memo_capacity:int -> ?compiled:bool -> unit -> t
(** A fresh engine with empty caches and zeroed counters.  [store] makes
    the run cache and the optimize cache read-through/write-through to the
    given on-disk CAS; [memo_capacity] (default
    {!default_memo_capacity}) bounds each in-memory table.

    [compiled] (default [true]) selects the execution kernel for the hot
    path: modules are lowered once by {!Spirv_ir.Compile.lower} into flat
    programs, cached per module digest in an LRU ([compiles] /
    [compile_hits] in {!stats}), and executed with
    {!Spirv_ir.Compile.render_batch} — observably bit-identical to the
    reference interpreter.  [~compiled:false] keeps every render on
    {!Spirv_ir.Interp.render}: the reference-interpreter mode the CI
    byte-equality gate runs campaigns under (the differential oracle for
    the kernel itself). *)

val cas : t -> Tbct_store.Cas.t option
(** The disk store this engine is backed by, if any. *)

val run : t -> Compilers.Target.t -> Module_ir.t -> Input.t ->
  Compilers.Backend.run_result
(** Content-addressed [Backend.run]: memory memo, then the disk store,
    then execute-and-record (billing the ["execute"] stage).  The mutex is
    not held during execution, so concurrent misses proceed in parallel. *)

val baseline : t -> Compilers.Target.t -> ref_name:string ->
  Module_ir.t -> Input.t -> Compilers.Backend.run_result
(** The original program's behaviour on a target, cached per
    [(target, reference name)].  Misses fall through to {!run}, so
    baselines also populate the content-addressed store. *)

val optimize : t -> Module_ir.t -> (Module_ir.t, string) result
(** The clean [-O] pipeline, memoized by module digest through the same
    memory/disk path as runs — closing the ROADMAP item.  Only actual
    optimizer work is billed to the ["optimize"] stage; errors are not
    cached. *)

val tv_check : t -> before:Module_ir.t -> after:Module_ir.t ->
  Compilers.Tv.verdict
(** Translation validation ({!Compilers.Tv.check_pass}), memoized by the
    [(digest before, digest after)] pair: equal digests short-circuit to
    [Equivalent], then the in-memory LRU, then the disk store (if any),
    then symbolic validation billed to the ["tv"] stage and written
    through.  Sound for the same reason run memoization is: [check_pass]
    is a deterministic function of the two modules and the verdict codec
    is exact. *)

val timed : t -> stage:string -> (unit -> 'a) -> 'a
(** Run a thunk and add its wall-clock time to the named stage. *)

val bump_counter : t -> string -> int -> unit
(** [bump_counter e name n] adds [n] to the named tally (creating it at 0).
    Mutex-guarded, so domains may bump concurrently. *)

val stats : t -> stats
(** A consistent snapshot of the engine's counters. *)

val reset : t -> unit
(** Clear every cache and zero every counter and stage clock.  The disk
    store (if any) is left untouched. *)

val pp_stats : Format.formatter -> stats -> unit
(** Human-readable rendering of {!stats}. *)

val stats_to_string : stats -> string
