(** The execution engine: every compile-and-execute of the harness flows
    through an explicit [Engine.t] instead of calling
    {!Compilers.Backend.run} directly.

    The engine holds a content-addressed memo table mapping
    [(target, module digest, input digest)] to the backend's run result,
    plus the baseline cache for original-program runs (keyed by
    [(target, reference name)], formerly a global in [Pipeline]).  Both
    stores are guarded by a mutex, so one engine may be shared by several
    OCaml 5 domains — the domain-parallel campaigns of {!Experiments} do
    exactly that.

    Memoization is sound because {!Compilers.Backend.run} is a
    deterministic function of its arguments (see DESIGN.md, "The Engine
    layer"): a cached result is bit-identical to a recomputed one, so the
    §3.4 interestingness tests — and therefore the set of transformations
    delta debugging keeps — cannot be affected by cache hits.

    The engine also keeps per-stage wall-clock accounting: {!run} bills
    backend executions to the ["execute"] stage, and callers wrap other
    phases (generation, optimization, reduction) with {!timed}. *)

open Spirv_ir

type t

type stats = {
  runs_executed : int;  (** backend executions actually performed *)
  cache_hits : int;     (** content-addressed memo hits *)
  baseline_hits : int;  (** baseline (target, reference) cache hits *)
  runs_saved : int;     (** [cache_hits + baseline_hits] *)
  hit_rate : float;     (** [runs_saved / (runs_saved + runs_executed)] *)
  execute_wall : float; (** seconds spent inside the backend *)
  stages : (string * float) list;
      (** cumulative wall-clock per stage, sorted by stage name;
          ["execute"] is maintained by {!run}, others by {!timed} *)
}

val create : unit -> t
(** A fresh engine with empty caches and zeroed counters. *)

val run : t -> Compilers.Target.t -> Module_ir.t -> Input.t ->
  Compilers.Backend.run_result
(** Content-addressed [Backend.run]: returns the memoized result when the
    [(target, module, input)] triple has been executed before, otherwise
    executes, records the result and bills the ["execute"] stage.  The
    mutex is not held during execution, so concurrent misses proceed in
    parallel. *)

val baseline : t -> Compilers.Target.t -> ref_name:string ->
  Module_ir.t -> Input.t -> Compilers.Backend.run_result
(** The original program's behaviour on a target, cached per
    [(target, reference name)] — the replacement for the old global
    baseline cache.  Misses fall through to {!run}, so baselines also
    populate the content-addressed store. *)

val timed : t -> stage:string -> (unit -> 'a) -> 'a
(** Run a thunk and add its wall-clock time to the named stage. *)

val stats : t -> stats
(** A consistent snapshot of the engine's counters. *)

val reset : t -> unit
(** Clear both caches and zero every counter and stage clock. *)

val pp_stats : Format.formatter -> stats -> unit
(** One-paragraph human-readable rendering of {!stats}. *)

val stats_to_string : stats -> string
