(** The gfauto-analog test pipeline (section 3.2).

    A fuzzer configuration turns (reference, seed) into a variant module; the
    pipeline runs the variant on a target, detects crashes by signature and
    miscompilations by image comparison against the {e original} program run
    on the same target, and — when no bug is detected — optimizes the variant
    with the clean [-O] pipeline and tries again ("If no bug is detected,
    gfauto applies spirv-opt with the -O argument, then runs the optimized
    test, again checking to see whether a bug is triggered"). *)

open Spirv_ir

type tool = Spirv_fuzz_tool | Spirv_fuzz_simple | Glsl_fuzz_tool

let tool_name = function
  | Spirv_fuzz_tool -> "spirv-fuzz"
  | Spirv_fuzz_simple -> "spirv-fuzz-simple"
  | Glsl_fuzz_tool -> "glsl-fuzz"

let tool_of_name = function
  | "spirv-fuzz" -> Some Spirv_fuzz_tool
  | "spirv-fuzz-simple" -> Some Spirv_fuzz_simple
  | "glsl-fuzz" -> Some Glsl_fuzz_tool
  | _ -> None

type detection = {
  signature : Signature.t;
  via_opt : bool;  (** detected only on the additionally-optimized variant *)
}

(* Every compile-and-execute below flows through an explicit [Engine.t]
   (content-addressed run cache + baseline cache + instrumentation); there
   is deliberately no module-level mutable state in this file. *)

(** Compare a variant's run against the original's run on the same target.
    Returns a detection if the variant exposes a bug.  Crashes of the
    original mask that (target, reference) pair, as in practice. *)
let compare_runs ~original ~variant : detection option =
  match (original, variant) with
  | _, Compilers.Backend.Crashed signature -> Some { signature; via_opt = false }
  | Compilers.Backend.Rendered img0, Compilers.Backend.Rendered img1 ->
      if Image.equal img0 img1 then None
      else Some { signature = Signature.miscompilation; via_opt = false }
  | (Compilers.Backend.Crashed _ | Compilers.Backend.Compiled_ok),
    Compilers.Backend.Rendered _ ->
      None
  | _, Compilers.Backend.Compiled_ok -> None

(** Translation-validate the target's own optimizer pipeline (with the
    target's injected-bug flags) on a module, via the engine's memoized
    checker.  [Some signature] when some pass provably miscompiles — the
    pass-granular ["miscompile:<target>:<pass>"] bucket; [None] when every
    step is [Equivalent] or [Abstained] (abstention is never reported as a
    bug, DESIGN.md §8) or when a pass crashes (the crash signature is the
    dynamic oracle's business). *)
let tv_signature (engine : Engine.t) (t : Compilers.Target.t)
    (m : Module_ir.t) : Signature.t option =
  match
    Compilers.Optimizer.run_tv ~flags:t.Compilers.Target.opt_flags
      ~check:(fun before after -> Engine.tv_check engine ~before ~after)
      t.Compilers.Target.pipeline m
  with
  | Error _ -> None
  | Ok report -> (
      match report.Compilers.Optimizer.tv_guilty with
      | Some p -> Some (Signature.miscompile ~target:t ~pass:(Some p))
      | None -> None)

(** Run one variant module against one target, including the
    optimize-and-retry step.  All executions go through [engine].

    With [~tv:true] the translation validator runs alongside the image
    oracle: a dynamically-detected miscompilation is refined to a
    pass-granular signature (or blamed on the backend when the optimizer
    validates clean), and a TV mismatch with {e no} dynamic symptom is
    reported as a detection in its own right — which is how
    miscompilations become visible on [executes = false] targets. *)
let run_variant ?(tv = false) (engine : Engine.t) (t : Compilers.Target.t)
    ~ref_name ~(original : Module_ir.t) ?variant_input
    ~(variant : Module_ir.t) (input : Input.t) : detection option =
  let variant_input = Option.value ~default:input variant_input in
  let refine (d : detection) (m : Module_ir.t) : detection =
    if tv && Signature.is_miscompilation d.signature then
      match tv_signature engine t m with
      | Some s -> { d with signature = s }
      | None ->
          { d with signature = Signature.miscompile ~target:t ~pass:None }
    else d
  in
  let orig_run = Engine.baseline engine t ~ref_name original input in
  let var_run = Engine.run engine t variant variant_input in
  match compare_runs ~original:orig_run ~variant:var_run with
  | Some d -> Some (refine d variant)
  | None -> (
      match (if tv then tv_signature engine t variant else None) with
      | Some signature -> Some { signature; via_opt = false }
      | None -> (
          (* no bug: optimize the variant with the (engine-memoized) clean
             -O pipeline and re-run *)
          match Engine.optimize engine variant with
          | Error _ ->
              None (* the clean optimizer never crashes in our build *)
          | Ok optimized_variant -> (
              let var_run' =
                Engine.run engine t optimized_variant variant_input
              in
              match compare_runs ~original:orig_run ~variant:var_run' with
              | Some d -> Some { (refine d optimized_variant) with via_opt = true }
              | None -> (
                  match
                    (if tv then tv_signature engine t optimized_variant
                     else None)
                  with
                  | Some signature -> Some { signature; via_opt = true }
                  | None -> None))))

(* ------------------------------------------------------------------ *)
(* Variant generation per tool                                         *)

type generated = {
  gen_variant : Module_ir.t;
  gen_input : Input.t;
      (** the variant's input: transformations may extend it in sync with
          the module (AddUniform), so "execute both programs on their
          respective inputs" *)
  (* reduction payload: how to replay/reduce the variant *)
  gen_reduce :
    is_interesting:(Module_ir.t -> Input.t -> bool) ->
    [ `Spirv of Spirv_fuzz.Transformation.t list * Spirv_fuzz.Context.t
    | `Glsl of Glsl_like.Ast.program ];
  gen_transformation_count : int;
  gen_counters : (string * int * int) list;
      (** per-transformation-type (type_id, proposed, applied) tallies from
          the fuzzer's emitter; empty for the glsl-fuzz tool *)
}

let donors = lazy (List.map snd (Lazy.force Corpus.lowered_donors))

(** Force the lazily-lowered corpus before spawning domains: concurrently
    forcing a shared lazy from two domains raises [Lazy.Undefined]. *)
let warmup () =
  ignore (Lazy.force donors);
  ignore (Lazy.force Corpus.lowered_references)

let fuzz_config ?(check_contracts = false) ?(weights = []) ~recommendations ()
    =
  {
    Spirv_fuzz.Fuzzer.default_config with
    Spirv_fuzz.Fuzzer.donors = Lazy.force donors;
    Spirv_fuzz.Fuzzer.use_recommendations = recommendations;
    Spirv_fuzz.Fuzzer.check_contracts = check_contracts;
    Spirv_fuzz.Fuzzer.weights = weights;
  }

(** Generate the variant a tool produces for (reference, seed).  For
    spirv-fuzz the reference is the lowered module; for glsl-fuzz the source
    program is fuzzed and then lowered.  [check_contracts] (spirv tools
    only) runs the {!Spirv_fuzz.Contract} checker after every applied
    transformation; it never changes which variant is generated. *)
let generate ?(check_contracts = false) ?(weights = []) (tool : tool)
    ~(ref_source : Glsl_like.Ast.program) ~(ref_module : Module_ir.t) ~seed
    ~input : generated =
  match tool with
  | Spirv_fuzz_tool | Spirv_fuzz_simple ->
      let ctx = Spirv_fuzz.Context.make ref_module input in
      let config =
        fuzz_config ~check_contracts ~weights
          ~recommendations:(tool = Spirv_fuzz_tool) ()
      in
      let result = Spirv_fuzz.Fuzzer.run ~config ~seed ctx in
      {
        gen_variant = result.Spirv_fuzz.Fuzzer.final.Spirv_fuzz.Context.m;
        gen_input = result.Spirv_fuzz.Fuzzer.final.Spirv_fuzz.Context.input;
        gen_transformation_count = List.length result.Spirv_fuzz.Fuzzer.transformations;
        gen_counters = result.Spirv_fuzz.Fuzzer.counters;
        gen_reduce =
          (fun ~is_interesting ->
            let test (c : Spirv_fuzz.Context.t) =
              is_interesting c.Spirv_fuzz.Context.m c.Spirv_fuzz.Context.input
            in
            let r =
              Spirv_fuzz.Reducer.reduce ~original:ctx ~is_interesting:test
                result.Spirv_fuzz.Fuzzer.transformations
            in
            (* the spirv-reduce analog: shrink surviving AddFunction bodies *)
            let kept =
              Spirv_fuzz.Reducer.shrink_add_functions ~original:ctx
                ~is_interesting:test r.Spirv_fuzz.Reducer.transformations
            in
            `Spirv (kept, Spirv_fuzz.Lang.replay ctx kept));
      }
  | Glsl_fuzz_tool ->
      let fuzzed = Glsl_like.Source_fuzzer.fuzz ~seed ref_source in
      let program = fuzzed.Glsl_like.Source_fuzzer.program in
      {
        gen_variant = Glsl_like.Lower.lower program;
        gen_input = input;
        gen_transformation_count = fuzzed.Glsl_like.Source_fuzzer.applied;
        gen_counters = [];
        gen_reduce =
          (fun ~is_interesting ->
            let test p = is_interesting (Glsl_like.Lower.lower p) input in
            let reduced, _ = Glsl_like.Source_reducer.reduce ~is_interesting:test program in
            `Glsl reduced);
      }

(** Interestingness test for reductions: the variant still produces the same
    signature on the target (crash signature match, or still-mismatching
    image for miscompilations) — section 3.4's interestingness tests.

    For a pass-blamed TV signature the test re-validates instead of
    re-rendering: the candidate is interesting iff the translation
    validator still blames the {e same} pass.  That keeps the reduced test
    case tied to the optimizer bug it witnesses, and it is completely
    input-independent. *)
let interestingness (engine : Engine.t) (t : Compilers.Target.t) ~ref_name
    ~(original : Module_ir.t) ~(detection : detection) input (m : Module_ir.t)
    (m_input : Input.t) : bool =
  let orig_run = Engine.baseline engine t ~ref_name original input in
  let with_or_without_opt check =
    let direct = Engine.run engine t m m_input in
    if check direct then true
    else if detection.via_opt then
      match Engine.optimize engine m with
      | Ok optimized -> check (Engine.run engine t optimized m_input)
      | Error _ -> false
    else false
  in
  if Option.is_some (Signature.blamed_pass detection.signature) then
    let same_blame candidate =
      match tv_signature engine t candidate with
      | Some s -> String.equal s detection.signature
      | None -> false
    in
    same_blame m
    || (detection.via_opt
       &&
       match Engine.optimize engine m with
       | Ok optimized -> same_blame optimized
       | Error _ -> false)
  else if Signature.is_miscompilation detection.signature then
    with_or_without_opt (fun run ->
        match (orig_run, run) with
        | Compilers.Backend.Rendered img0, Compilers.Backend.Rendered img1 ->
            not (Image.equal img0 img1)
        | _ -> false)
  else
    with_or_without_opt (fun run ->
        match run with
        | Compilers.Backend.Crashed s -> String.equal s detection.signature
        | _ -> false)
