(** Bug signatures (section 3.4).

    A bug signature is either the crash signature extracted from a compiler
    crash, the paper's single catch-all miscompilation signature, or — with
    the translation validator in the loop — a pass-granular
    ["miscompile:<target>:<pass>"] bucket.  The type is deliberately a
    plain string: signatures flow through journals, sockets and bug banks
    unchanged, and equality is string equality. *)

type t = string

val miscompilation : t
(** The paper's single signature for every dynamically-detected
    miscompilation ("all miscompilations contribute the same bug
    signature"). *)

val miscompile :
  target:Compilers.Target.t ->
  pass:Compilers.Optimizer.pass_name option ->
  t
(** Pass-granular miscompilation signature, the refinement the translation
    validator makes possible: a TV [Mismatch] names the guilty pass, so
    miscompilations on the same target split into per-pass buckets
    ["miscompile:<target>:<pass>"].  [pass = None] means the optimizer was
    validated clean and the blame lies downstream (["...:backend"]). *)

val is_miscompilation : t -> bool
(** [true] for {!miscompilation} and for every {!miscompile} bucket. *)

val blamed_pass : t -> string option
(** The pass name of a pass-granular TV signature, or [None] for the
    [":backend"] fallback and every non-TV signature.  Pass-blamed
    signatures are reproducible without executing anything — the
    interestingness test can re-validate instead of re-rendering. *)

val bug_id_of_signature : t -> string
(** Ground-truth bug id behind a signature (for the Table 4 baseline,
    where "a set of bugs known to be distinct" is required).  Derived
    signatures (validation failures, device hangs) are canonicalised by
    prefix; every miscompilation bucket maps to the single
    ["miscompilation"] phenomenon. *)
