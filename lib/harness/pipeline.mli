(** The gfauto-analog test pipeline (section 3.2) — the harness's public
    surface for turning (tool, reference, seed) into a variant and testing
    it on a target.

    This interface is what {!Experiments}, the campaign service and the
    CLI build on: a fuzzer configuration turns (reference, seed) into a
    variant module; the pipeline runs the variant on a target, detects
    crashes by signature and miscompilations by image comparison against
    the {e original} program run on the same target, and — when no bug is
    detected — optimizes the variant with the clean [-O] pipeline and
    tries again.  Every compile-and-execute flows through an explicit
    {!Engine.t}; there is deliberately no module-level mutable state. *)

open Spirv_ir

(** {1 Tool configurations} *)

type tool = Spirv_fuzz_tool | Spirv_fuzz_simple | Glsl_fuzz_tool

val tool_name : tool -> string
(** ["spirv-fuzz"], ["spirv-fuzz-simple"], ["glsl-fuzz"] — the stable
    names used by the CLI, the campaign journal header and the service's
    wire protocol. *)

val tool_of_name : string -> tool option

(** {1 Detections} *)

type detection = {
  signature : Signature.t;
  via_opt : bool;  (** detected only on the additionally-optimized variant *)
}

val run_variant :
  ?tv:bool ->
  Engine.t ->
  Compilers.Target.t ->
  ref_name:string ->
  original:Module_ir.t ->
  ?variant_input:Input.t ->
  variant:Module_ir.t ->
  Input.t ->
  detection option
(** Run one variant module against one target, including the
    optimize-and-retry step.  All executions go through the engine.  With
    [~tv:true] the translation validator runs alongside the image oracle:
    a dynamically-detected miscompilation is refined to a pass-granular
    signature (or blamed on the backend when the optimizer validates
    clean), and a TV mismatch with no dynamic symptom is reported as a
    detection in its own right — which is how miscompilations become
    visible on non-executing targets. *)

(** {1 Variant generation} *)

type generated = {
  gen_variant : Module_ir.t;
  gen_input : Input.t;
      (** the variant's input: transformations may extend it in sync with
          the module (AddUniform), so "execute both programs on their
          respective inputs" *)
  gen_reduce :
    is_interesting:(Module_ir.t -> Input.t -> bool) ->
    [ `Spirv of Spirv_fuzz.Transformation.t list * Spirv_fuzz.Context.t
    | `Glsl of Glsl_like.Ast.program ];
      (** reduction payload: how to replay/reduce the variant *)
  gen_transformation_count : int;
  gen_counters : (string * int * int) list;
      (** per-transformation-type (type_id, proposed, applied) tallies from
          the fuzzer's emitter; empty for the glsl-fuzz tool *)
}

val generate :
  ?check_contracts:bool ->
  ?weights:(Spirv_fuzz.Registry.family * int) list ->
  tool ->
  ref_source:Glsl_like.Ast.program ->
  ref_module:Module_ir.t ->
  seed:int ->
  input:Input.t ->
  generated
(** Generate the variant a tool produces for (reference, seed).  For
    spirv-fuzz the reference is the lowered module; for glsl-fuzz the
    source program is fuzzed and then lowered.  [check_contracts] (spirv
    tools only) runs the {!Spirv_fuzz.Contract} checker after every
    applied transformation; it never changes which variant is generated. *)

val warmup : unit -> unit
(** Force the lazily-lowered corpus before spawning domains: concurrently
    forcing a shared lazy from two domains raises [Lazy.Undefined]. *)

(** {1 Reduction interestingness} *)

val interestingness :
  Engine.t ->
  Compilers.Target.t ->
  ref_name:string ->
  original:Module_ir.t ->
  detection:detection ->
  Input.t ->
  Module_ir.t ->
  Input.t ->
  bool
(** Interestingness test for reductions: the variant still produces the
    same signature on the target (crash signature match, or
    still-mismatching image for miscompilations) — section 3.4.  For a
    pass-blamed TV signature the test re-validates instead of
    re-rendering: the candidate is interesting iff the translation
    validator still blames the {e same} pass. *)
