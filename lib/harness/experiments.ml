(** Experiment drivers for every table and figure of the paper's evaluation
    (section 4), at a configurable scale.

    The paper ran 10,000 seeds per tool configuration; the default scale
    here is laptop-sized but preserves the comparisons: the same seeds are
    split into disjoint groups for the Mann-Whitney U analysis, the same
    per-target bookkeeping feeds Table 3, Figure 7, the RQ2 reduction-
    quality medians and the Table 4 deduplication study. *)

open Spirv_ir

type scale = {
  seeds : int;        (** tests per tool configuration (paper: 10,000) *)
  groups : int;       (** disjoint groups for MWU (paper: 10) *)
  max_reductions_per_signature : int;  (** cap (paper: 100 / 20) *)
}

let default_scale = { seeds = 400; groups = 10; max_reductions_per_signature = 5 }

(* ------------------------------------------------------------------ *)
(* Campaigns                                                           *)

type hit = {
  hit_tool : Pipeline.tool;
  hit_seed : int;
  hit_ref : string;
  hit_target : string;
  hit_detection : Pipeline.detection;
}

(** All references available to a tool: glsl-fuzz sees the source programs;
    the spirv tools see the lowered modules plus [-O]-optimized copies
    (section 4: "We also provided spirv-fuzz with an optimized version of
    each shader ... We could not provide optimized shaders to glsl-fuzz"). *)
let spirv_references =
  lazy
    (let lowered = Lazy.force Corpus.lowered_references in
     let optimized =
       List.filter_map
         (fun (name, m) ->
           match Compilers.Optimizer.optimize m with
           | Ok m' -> Some (name ^ "+opt", m')
           | Error _ -> None)
         lowered
     in
     lowered @ optimized)

(* a tool's reference list as (name, source program, module) triples; for
   optimized references the source is the unoptimized one (glsl-fuzz never
   sees them) *)
let references_for (tool : Pipeline.tool) =
  match tool with
  | Pipeline.Glsl_fuzz_tool ->
      List.map
        (fun (name, p) -> (name, p, Glsl_like.Lower.lower p))
        Corpus.references
  | Pipeline.Spirv_fuzz_tool | Pipeline.Spirv_fuzz_simple ->
      let sources = Corpus.references in
      List.map
        (fun (name, m) ->
          let base = try List.hd (String.split_on_char '+' name) with Failure _ -> name in
          let src =
            match List.assoc_opt base sources with
            | Some p -> p
            | None -> snd (List.hd sources)
          in
          (name, src, m))
        (Lazy.force spirv_references)

(** Run a fuzzing campaign: for each seed, generate one variant from a
    round-robin reference and test it against every target.

    Parallelism goes through {!Pool}: one task per seed, so a seed whose
    targets happen to be slow no longer stalls a whole static chunk —
    idle workers steal the remaining seeds instead.  [?pool] reuses a
    caller-owned pool (the CLI shares one pool between the campaign and
    the reduction phase); otherwise [?domains] sizes a temporary pool,
    clamped to the seed count so more domains than seeds never spawn
    idle workers.  Hits are merged in seed order whatever worker ran
    which seed, so the result is bit-identical to the sequential run at
    any worker count.

    [?skip] and [?on_seed] are the persistence hooks {!Persist} plugs a
    campaign journal into: a seed for which [skip seed] returns hits is not
    re-executed (its recorded hits are spliced into the list unchanged, so
    a resumed campaign reproduces the uninterrupted hit list bit for bit),
    and every freshly computed seed is reported to [on_seed] — possibly
    from a worker domain, so the hook must be thread-safe. *)
let run_campaign ?(scale = default_scale) ?(targets = Compilers.Target.all)
    ?(domains = 1) ?pool ?engine ?(check_contracts = false) ?(tv = false)
    ?(weights = []) ?(skip = fun (_ : int) -> (None : hit list option))
    ?(stop = fun () -> false)
    ?(on_seed = fun (_ : int) (_ : hit list) -> ()) tool : hit list =
  let engine = match engine with Some e -> e | None -> Engine.create () in
  let refs = Array.of_list (references_for tool) in
  let hits_for_seed seed =
    let ref_name, ref_source, ref_module = refs.(seed mod Array.length refs) in
    (* contract checking is billed as its own stage: generation runs under
       "generate" as always, and the checker's extra work is the delta the
       bench's oracle section reports *)
    let stage = if check_contracts then "generate+contract-check" else "generate" in
    let generated =
      Engine.timed engine ~stage (fun () ->
          Pipeline.generate ~check_contracts ~weights tool ~ref_source
            ~ref_module ~seed ~input:Corpus.default_input)
    in
    (* per-transformation-type tallies roll up into the engine so
       [--stats] can report the campaign-wide catalogue activity *)
    List.iter
      (fun (type_id, proposed, applied) ->
        if proposed > 0 then
          Engine.bump_counter engine ("proposed/" ^ type_id) proposed;
        if applied > 0 then
          Engine.bump_counter engine ("applied/" ^ type_id) applied)
      generated.Pipeline.gen_counters;
    List.filter_map
      (fun (t : Compilers.Target.t) ->
        match
          Pipeline.run_variant ~tv engine t ~ref_name ~original:ref_module
            ~variant_input:generated.Pipeline.gen_input
            ~variant:generated.Pipeline.gen_variant Corpus.default_input
        with
        | Some detection ->
            Some
              {
                hit_tool = tool;
                hit_seed = seed;
                hit_ref = ref_name;
                hit_target = t.Compilers.Target.name;
                hit_detection = detection;
              }
        | None -> None)
      targets
  in
  let total = scale.seeds in
  let run_in pool =
    if Pool.workers pool > 1 then begin
      (* lowering the corpus is lazy and lazies must not be forced
         concurrently; do it once before the workers start *)
      Pipeline.warmup ();
      ignore (Lazy.force spirv_references)
    end;
    (* honest progress: a global completion count plus per-worker seed and
       detection counters, so the log never phrases one worker's tally as
       the whole campaign's *)
    let done_seeds = Atomic.make 0 in
    let nworkers = Pool.workers pool in
    let worker_seeds = Array.init nworkers (fun _ -> Atomic.make 0) in
    let worker_hits = Array.init nworkers (fun _ -> Atomic.make 0) in
    let seed_hits =
      Pool.map_worker pool total (fun ~worker seed ->
          let hits =
            match skip seed with
            | Some recorded -> recorded
            | None ->
                (* a cancelled seed is neither executed nor reported to
                   [on_seed]: the journal records only finished seeds, so a
                   later resume recomputes exactly the missing ones *)
                if stop () then []
                else begin
                  let computed = hits_for_seed seed in
                  on_seed seed computed;
                  computed
                end
          in
          Atomic.incr worker_seeds.(worker);
          ignore
            (Atomic.fetch_and_add worker_hits.(worker) (List.length hits));
          let completed = 1 + Atomic.fetch_and_add done_seeds 1 in
          if completed mod 50 = 0 then
            Log.info (fun k ->
                k "%s: %d of %d seeds done; worker %d has run %d seed(s), %d detection(s)"
                  (Pipeline.tool_name tool) completed total worker
                  (Atomic.get worker_seeds.(worker))
                  (Atomic.get worker_hits.(worker)));
          hits)
    in
    (* seed-ordered merge: slot [i] is seed [i]'s hits whatever worker ran
       it, so the concatenation is the sequential hit list bit for bit *)
    List.concat (Array.to_list seed_hits)
  in
  match pool with
  | Some pool -> run_in pool
  | None ->
      (* clamp: more workers than seeds would only spawn domains with
         nothing to do *)
      let workers = max 1 (min domains total) in
      Pool.with_pool ~workers run_in

(* ------------------------------------------------------------------ *)
(* Table 3: bug-finding ability                                        *)

module String_set = Set.Make (String)

let signatures_of hits ~target =
  List.fold_left
    (fun acc h ->
      if String.equal h.hit_target target then
        String_set.add h.hit_detection.Pipeline.signature acc
      else acc)
    String_set.empty hits

let group_of ~scale seed = seed * scale.groups / scale.seeds

type table3_row = {
  t3_target : string;
  t3_total : int array;    (** per tool: distinct signatures over all seeds *)
  t3_median : float array; (** per tool: median distinct signatures per group *)
  t3_vs_simple : string;   (** MWU verdict: spirv-fuzz beats spirv-fuzz-simple? *)
  t3_vs_glsl : string;
}

let tools = [| Pipeline.Spirv_fuzz_tool; Pipeline.Spirv_fuzz_simple; Pipeline.Glsl_fuzz_tool |]

type table3 = { rows : table3_row list; all_row : table3_row }

let table3 ?(scale = default_scale) ~(hits : hit list array) () : table3 =
  (* hits.(i) corresponds to tools.(i) *)
  let per_group_counts tool_idx target =
    (* distinct signatures within each seed group *)
    Array.init scale.groups (fun g ->
        List.fold_left
          (fun acc h ->
            if
              String.equal h.hit_target target
              && group_of ~scale h.hit_seed = g
            then String_set.add h.hit_detection.Pipeline.signature acc
            else acc)
          String_set.empty hits.(tool_idx)
        |> String_set.cardinal |> float_of_int)
  in
  let row target =
    let totals =
      Array.init 3 (fun i -> String_set.cardinal (signatures_of hits.(i) ~target))
    in
    let groups = Array.init 3 (fun i -> per_group_counts i target) in
    let medians = Array.map (fun g -> Stats.median (Array.to_list g)) groups in
    let mwu_simple =
      Stats.mann_whitney_u (Array.to_list groups.(0)) (Array.to_list groups.(1))
    in
    let mwu_glsl =
      Stats.mann_whitney_u (Array.to_list groups.(0)) (Array.to_list groups.(2))
    in
    {
      t3_target = target;
      t3_total = totals;
      t3_median = medians;
      t3_vs_simple = Stats.verdict mwu_simple.Stats.confidence_a_greater;
      t3_vs_glsl = Stats.verdict mwu_glsl.Stats.confidence_a_greater;
    }
  in
  let rows = List.map (fun (t : Compilers.Target.t) -> row t.Compilers.Target.name) Compilers.Target.all in
  (* the All row: signatures qualified by target, groupwise sums *)
  let all_row =
    let totals =
      Array.init 3 (fun i ->
          List.fold_left (fun acc r -> acc + r.t3_total.(i)) 0 rows |> fun x -> x)
    in
    let per_group tool_idx =
      Array.init scale.groups (fun g ->
          List.fold_left
            (fun acc (t : Compilers.Target.t) ->
              let s =
                List.fold_left
                  (fun acc h ->
                    if
                      String.equal h.hit_target t.Compilers.Target.name
                      && group_of ~scale h.hit_seed = g
                    then String_set.add h.hit_detection.Pipeline.signature acc
                    else acc)
                  String_set.empty hits.(tool_idx)
              in
              acc + String_set.cardinal s)
            0 Compilers.Target.all
          |> float_of_int)
    in
    let groups = Array.init 3 (fun i -> per_group i) in
    let medians = Array.map (fun g -> Stats.median (Array.to_list g)) groups in
    let mwu_simple = Stats.mann_whitney_u (Array.to_list groups.(0)) (Array.to_list groups.(1)) in
    let mwu_glsl = Stats.mann_whitney_u (Array.to_list groups.(0)) (Array.to_list groups.(2)) in
    {
      t3_target = "All";
      t3_total = totals;
      t3_median = medians;
      t3_vs_simple = Stats.verdict mwu_simple.Stats.confidence_a_greater;
      t3_vs_glsl = Stats.verdict mwu_glsl.Stats.confidence_a_greater;
    }
  in
  { rows; all_row }

(* ------------------------------------------------------------------ *)
(* Figure 7: complementarity                                           *)

let figure7 ~(hits : hit list array) () =
  let per_target =
    List.map
      (fun (t : Compilers.Target.t) ->
        let name = t.Compilers.Target.name in
        let set i =
          signatures_of hits.(i) ~target:name
          |> String_set.elements |> Venn.String_set.of_list
        in
        (name, Venn.partition ~a:(set 0) ~b:(set 1) ~c:(set 2)))
      Compilers.Target.all
  in
  let all =
    let qualified i =
      List.fold_left
        (fun acc h ->
          Venn.String_set.add
            (h.hit_target ^ "/" ^ h.hit_detection.Pipeline.signature)
            acc)
        Venn.String_set.empty hits.(i)
    in
    Venn.partition ~a:(qualified 0) ~b:(qualified 1) ~c:(qualified 2)
  in
  (per_target, all)

(* ------------------------------------------------------------------ *)
(* RQ2: reduction quality                                              *)

type reduction_outcome = {
  red_tool : Pipeline.tool;
  red_target : string;
  red_signature : string;
  red_delta : int;            (** |instructions(reduced) - instructions(original)| *)
  red_kept : int;             (** surviving transformations / markers *)
  red_initial : int;
}

(* regenerate the variant for a hit and reduce it against its target; the
   engine memoizes the repeated prefix replays of ddmin's interestingness
   queries, so reduction no longer pays one full compile-and-execute per
   query *)
let reduce_hit (engine : Engine.t) (h : hit) : reduction_outcome option =
  match Compilers.Target.find h.hit_target with
  | None -> None
  | Some t ->
      let refs = references_for h.hit_tool in
      let ref_name, ref_source, ref_module =
        match List.find_opt (fun (n, _, _) -> String.equal n h.hit_ref) refs with
        | Some r -> r
        | None -> List.hd refs
      in
      let generated =
        Engine.timed engine ~stage:"generate" (fun () ->
            Pipeline.generate h.hit_tool ~ref_source ~ref_module ~seed:h.hit_seed
              ~input:Corpus.default_input)
      in
      let is_interesting =
        Pipeline.interestingness engine t ~ref_name ~original:ref_module
          ~detection:h.hit_detection Corpus.default_input
      in
      (* the recorded detection must reproduce (it does, deterministically) *)
      if not (is_interesting generated.Pipeline.gen_variant generated.Pipeline.gen_input)
      then None
      else
        let original_size = Module_ir.instruction_count ref_module in
        match generated.Pipeline.gen_reduce ~is_interesting with
        | `Spirv (kept, reduced_ctx) ->
            let reduced_size =
              Module_ir.instruction_count reduced_ctx.Spirv_fuzz.Context.m
            in
            Some
              {
                red_tool = h.hit_tool;
                red_target = h.hit_target;
                red_signature = h.hit_detection.Pipeline.signature;
                red_delta = abs (reduced_size - original_size);
                red_kept = List.length kept;
                red_initial = generated.Pipeline.gen_transformation_count;
              }
        | `Glsl reduced_program ->
            let reduced_size =
              Module_ir.instruction_count (Glsl_like.Lower.lower reduced_program)
            in
            Some
              {
                red_tool = h.hit_tool;
                red_target = h.hit_target;
                red_signature = h.hit_detection.Pipeline.signature;
                red_delta = abs (reduced_size - original_size);
                red_kept = List.length (Glsl_like.Ast.program_markers reduced_program);
                red_initial = generated.Pipeline.gen_transformation_count;
              }

(* cap hits per (target, signature) before reducing, as the paper does *)
let cap_hits ~per_signature hits =
  let seen = Hashtbl.create 32 in
  List.filter
    (fun h ->
      let key = (h.hit_target, h.hit_detection.Pipeline.signature) in
      let n = Option.value ~default:0 (Hashtbl.find_opt seen key) in
      if n < per_signature then begin
        Hashtbl.replace seen key (n + 1);
        true
      end
      else false)
    hits

(** Reduce a list of independent hits, one pool task per hit, against the
    shared (mutex-guarded) engine: ddmin's interestingness replays go
    through the same memo/CAS/TV layers from any worker, and since the
    backend is deterministic a memo hit returns exactly what a fresh run
    would, so outcome [i] is hit [i]'s outcome bit for bit at any worker
    count.  Slots where the hit no longer reproduces (or its target is
    unknown) are [None], mirroring the sequential [List.filter_map]. *)
let reduce_hits ?pool (engine : Engine.t) (hits : hit list) :
    reduction_outcome option list =
  match pool with
  | None -> List.map (reduce_hit engine) hits
  | Some pool ->
      if Pool.workers pool > 1 then begin
        Pipeline.warmup ();
        ignore (Lazy.force spirv_references)
      end;
      Pool.map_list pool (reduce_hit engine) hits

type rq2 = {
  rq2_spirv : reduction_outcome list;
  rq2_glsl : reduction_outcome list;
  rq2_median_spirv : float;
  rq2_median_glsl : float;
}

let rq2 ?(scale = default_scale) ?engine ?pool ~(hits : hit list array) () : rq2 =
  let engine = match engine with Some e -> e | None -> Engine.create () in
  let study_targets =
    List.map (fun (t : Compilers.Target.t) -> t.Compilers.Target.name)
      Compilers.Target.reduction_study
  in
  let eligible tool_hits =
    List.filter (fun h -> List.mem h.hit_target study_targets) tool_hits
    |> cap_hits ~per_signature:scale.max_reductions_per_signature
  in
  let reduce_all tool_hits =
    List.filter_map Fun.id (reduce_hits ?pool engine (eligible tool_hits))
  in
  let spirv = reduce_all hits.(0) in
  let glsl = reduce_all hits.(2) in
  {
    rq2_spirv = spirv;
    rq2_glsl = glsl;
    rq2_median_spirv = Stats.median (List.map (fun r -> float_of_int r.red_delta) spirv);
    rq2_median_glsl = Stats.median (List.map (fun r -> float_of_int r.red_delta) glsl);
  }

(* ------------------------------------------------------------------ *)
(* Table 4: deduplication effectiveness                                *)

type table4_row = {
  t4_target : string;
  t4_tests : int;     (** reduced test cases fed to the dedup algorithm *)
  t4_sigs : int;      (** distinct underlying bugs these tests trigger *)
  t4_reports : int;   (** test cases the algorithm recommends *)
  t4_distinct : int;  (** distinct bugs covered by the recommendations *)
  t4_dups : int;
}

(* a reduced spirv-fuzz test: the minimized sequence's transformation type
   ids (ordered, duplicates preserved — all Figure 6 consumes) plus the
   minimized module itself, so callers (the CLI's bug bank) can persist the
   test case and recall it without replaying the reduction *)
type dedup_test = {
  dd_bug_id : string;
  dd_types : string list;
  dd_module : Module_ir.t;
}

(* reduce one crash hit to its minimized transformation sequence (the
   per-task body of [reduced_crash_tests]; safe to run from any pool
   worker against the shared engine).  [known] is the bug-bank shortcut: a
   test recalled for this (target, bug id) is reused verbatim instead of
   regenerating and re-reducing the hit. *)
let reduce_crash_hit ?(known = fun ~target:_ ~bug_id:_ -> None)
    (engine : Engine.t) (h : hit) : (string * dedup_test) option =
  match Compilers.Target.find h.hit_target with
  | None -> None
  | Some t -> (
      let bug_id =
        Signature.bug_id_of_signature h.hit_detection.Pipeline.signature
      in
      match known ~target:h.hit_target ~bug_id with
      | Some (d : dedup_test) -> Some (h.hit_target, d)
      | None -> (
          let refs = references_for h.hit_tool in
          let ref_name, ref_source, ref_module =
            match List.find_opt (fun (n, _, _) -> String.equal n h.hit_ref) refs with
            | Some r -> r
            | None -> List.hd refs
          in
          let generated =
            Engine.timed engine ~stage:"generate" (fun () ->
                Pipeline.generate h.hit_tool ~ref_source ~ref_module
                  ~seed:h.hit_seed ~input:Corpus.default_input)
          in
          let is_interesting =
            Pipeline.interestingness engine t ~ref_name ~original:ref_module
              ~detection:h.hit_detection Corpus.default_input
          in
          if
            not (is_interesting generated.Pipeline.gen_variant generated.Pipeline.gen_input)
          then None
          else
            match generated.Pipeline.gen_reduce ~is_interesting with
            | `Spirv (kept, reduced_ctx) ->
                Some
                  ( h.hit_target,
                    {
                      dd_bug_id = bug_id;
                      dd_types =
                        List.map Spirv_fuzz.Transformation.type_id kept;
                      dd_module = reduced_ctx.Spirv_fuzz.Context.m;
                    } )
            | `Glsl _ -> None))

(** Reduce every capped crash hit of the dedup study down to its minimized
    transformation sequence — the input of Table 4, [tbct dedup] and the
    cross-campaign bug bank.  With [?pool], hits reduce concurrently (one
    task per hit, hit-ordered merge, same list as sequential).  [?known]
    short-circuits hits whose (target, bug id) already has a banked
    reduced test. *)
let reduced_crash_tests ?(scale = default_scale) ?engine ?pool ?known
    ~(hits : hit list) () : (string * dedup_test) list =
  let engine = match engine with Some e -> e | None -> Engine.create () in
  let study =
    List.map (fun (t : Compilers.Target.t) -> t.Compilers.Target.name)
      Compilers.Target.dedup_study
  in
  (* crash bugs only (reliable signatures), spirv-fuzz tests only *)
  let crash_hits =
    List.filter
      (fun h ->
        List.mem h.hit_target study
        && not (Signature.is_miscompilation h.hit_detection.Pipeline.signature))
      hits
    |> cap_hits ~per_signature:scale.max_reductions_per_signature
  in
  match pool with
  | None -> List.filter_map (reduce_crash_hit ?known engine) crash_hits
  | Some pool ->
      if Pool.workers pool > 1 then begin
        Pipeline.warmup ();
        ignore (Lazy.force spirv_references)
      end;
      Pool.map_list pool (reduce_crash_hit ?known engine) crash_hits
      |> List.filter_map Fun.id

let table4 ?(scale = default_scale) ?ignored ?engine ?pool ?tests
    ~(hits : hit list array) () : table4_row list * table4_row =
  let study =
    List.map (fun (t : Compilers.Target.t) -> t.Compilers.Target.name)
      Compilers.Target.dedup_study
  in
  let reduced_tests =
    match tests with
    | Some tests -> tests
    | None -> reduced_crash_tests ~scale ?engine ?pool ~hits:hits.(0) ()
  in
  let row target =
    let tests = List.filter_map (fun (t, d) -> if String.equal t target then Some d else None) reduced_tests in
    let sigs =
      List.fold_left (fun acc d -> String_set.add d.dd_bug_id acc) String_set.empty tests
      |> String_set.cardinal
    in
    let selected =
      (* Figure 6 over the recorded type-id lists directly: reduced tests
         recalled from the bug bank carry no transformation payloads *)
      Tbct.Dedup.select
        {
          Tbct.Dedup.types_of =
            (fun d -> Tbct.Dedup.String_set.of_list d.dd_types);
          Tbct.Dedup.ignored =
            (match ignored with
            | Some s -> s
            | None -> Spirv_fuzz.Dedup.default_ignored);
        }
        tests
    in
    let distinct =
      List.fold_left
        (fun acc d -> String_set.add d.dd_bug_id acc)
        String_set.empty selected
      |> String_set.cardinal
    in
    {
      t4_target = target;
      t4_tests = List.length tests;
      t4_sigs = sigs;
      t4_reports = List.length selected;
      t4_distinct = distinct;
      t4_dups = List.length selected - distinct;
    }
  in
  let rows = List.map row study in
  let total =
    List.fold_left
      (fun acc r ->
        {
          t4_target = "Total";
          t4_tests = acc.t4_tests + r.t4_tests;
          t4_sigs = acc.t4_sigs + r.t4_sigs;
          t4_reports = acc.t4_reports + r.t4_reports;
          t4_distinct = acc.t4_distinct + r.t4_distinct;
          t4_dups = acc.t4_dups + r.t4_dups;
        })
      { t4_target = "Total"; t4_tests = 0; t4_sigs = 0; t4_reports = 0; t4_distinct = 0; t4_dups = 0 }
      rows
  in
  (rows, total)

(* ------------------------------------------------------------------ *)
(* Figure 3: the one-instruction DontInline delta                      *)

type figure3 = {
  fig3_original_size : int;
  fig3_variant_size : int;
  fig3_reduced_size : int;
  fig3_signature : string;
  fig3_kept : Spirv_fuzz.Transformation.t list;
  fig3_delta : string;
}

(** Reproduce the Figure 3 scenario deterministically: fuzz a reference that
    has helper functions until SwiftShader's DontInline bug fires, then
    reduce; the minimized sequence is the single SetFunctionControl and the
    delta one instruction. *)
let figure3 () : figure3 option =
  let _, ref_module =
    List.find
      (fun (n, _) -> String.equal n "helper_distance")
      (Lazy.force Corpus.lowered_references)
  in
  let t = Compilers.Target.swiftshader in
  let input = Corpus.default_input in
  let engine = Engine.create () in
  let rec hunt seed =
    if seed > 400 then None
    else begin
      let ctx = Spirv_fuzz.Context.make ref_module input in
      let config =
        {
          Spirv_fuzz.Fuzzer.default_config with
          Spirv_fuzz.Fuzzer.donors = List.map snd (Lazy.force Corpus.lowered_donors);
        }
      in
      let result = Spirv_fuzz.Fuzzer.run ~config ~seed ctx in
      let variant = result.Spirv_fuzz.Fuzzer.final.Spirv_fuzz.Context.m in
      match Engine.run engine t variant input with
      | Compilers.Backend.Crashed s
        when String.equal (Signature.bug_id_of_signature s) "dontinline-call" ->
          let is_interesting (c : Spirv_fuzz.Context.t) =
            match Engine.run engine t c.Spirv_fuzz.Context.m input with
            | Compilers.Backend.Crashed s' -> String.equal s s'
            | _ -> false
          in
          let r =
            Spirv_fuzz.Reducer.reduce ~original:ctx ~is_interesting
              result.Spirv_fuzz.Fuzzer.transformations
          in
          Some
            {
              fig3_original_size = Module_ir.instruction_count ref_module;
              fig3_variant_size = Module_ir.instruction_count variant;
              fig3_reduced_size =
                Module_ir.instruction_count r.Spirv_fuzz.Reducer.reduced.Spirv_fuzz.Context.m;
              fig3_signature = s;
              fig3_kept = r.Spirv_fuzz.Reducer.transformations;
              fig3_delta =
                Spirv_fuzz.Reducer.delta_listing ~original:ctx r.Spirv_fuzz.Reducer.reduced;
            }
      | _ -> hunt (seed + 1)
    end
  in
  hunt 0

(* ------------------------------------------------------------------ *)
(* Figure 8: the two miscompilation walkthroughs                       *)

type figure8 = {
  fig8a_images_differ : bool;
  fig8a_original_ascii : string;
  fig8a_variant_ascii : string;
  fig8b_images_differ : bool;
  fig8b_original_ascii : string;
  fig8b_variant_ascii : string;
}

(* Figure 8a: a counted loop whose condition ends up in a φ after
   PropagateInstructionUp; Mesa's phi-condition bug then mis-branches. *)
let fig8a_module () =
  let b = Builder.create () in
  let void_t = Builder.void_ty b in
  let int_t = Builder.int_ty b in
  let frag = Builder.frag_coord b in
  let out = Builder.output_color b in
  let fb, main, _ = Builder.begin_function b ~name:"main" ~ret:void_t ~params:[] in
  let l0 = Builder.new_label fb in
  let header = Builder.new_label fb in
  let body = Builder.new_label fb in
  let exit = Builder.new_label fb in
  let zero = Builder.cint b 0 in
  let limit = Builder.cint b 4 in
  let one = Builder.cint b 1 in
  Builder.start_block fb l0;
  let fc = Builder.load fb frag in
  let x = Builder.extract fb fc [ 0 ] in
  Builder.branch fb header;
  Builder.start_block fb header;
  let i = Builder.phi fb ~ty:int_t [ (zero, l0); (0, body) ] in
  let acc = Builder.phi fb ~ty:(Builder.float_ty b) [ (Builder.cfloat b 0.0, l0); (0, body) ] in
  let c = Builder.sle fb i limit in
  Builder.branch_cond fb c body exit;
  Builder.start_block fb body;
  let acc' = Builder.fadd fb acc (Builder.fmul fb x (Builder.cfloat b 0.02)) in
  let i' = Builder.iadd fb i one in
  Builder.patch_phi fb ~phi:i ~pred:body ~value:i';
  Builder.patch_phi fb ~phi:acc ~pred:body ~value:acc';
  Builder.branch fb header;
  Builder.start_block fb exit;
  let onef = Builder.cfloat b 1.0 in
  let color = Builder.composite fb ~ty:(Builder.vec4f b) [ acc; acc; acc; onef ] in
  Builder.store fb out color;
  Builder.ret fb;
  ignore (Builder.end_function fb);
  (Builder.finish b ~entry:main, header)

let figure8 () : figure8 =
  let input = Input.make ~width:8 ~height:8 [] in
  (* 8a *)
  let m_a, header = fig8a_module () in
  let ctx = Spirv_fuzz.Context.make m_a input in
  let main_fn = (Module_ir.entry_function m_a).Func.id in
  (* propagate the loop condition computation up into the predecessors,
     exactly the Figure 8a transformation *)
  let f = Module_ir.entry_function m_a in
  let cfg = Cfg.of_func f in
  let preds = Cfg.predecessors cfg header in
  let m_tmp, fresh = Module_ir.fresh_many m_a (List.length preds) in
  let ctx = { ctx with Spirv_fuzz.Context.m = m_tmp } in
  let t =
    Spirv_fuzz.Transformation.Propagate_instruction_up
      { fn = main_fn; block = header; fresh_per_pred = List.combine preds fresh }
  in
  let ctx' =
    if Spirv_fuzz.Registry.precondition ctx t then Spirv_fuzz.Registry.apply ctx t else ctx
  in
  let variant_a = ctx'.Spirv_fuzz.Context.m in
  let mesa = Compilers.Target.mesa in
  let img_of m =
    match Compilers.Backend.run mesa m input with
    | Compilers.Backend.Rendered img -> Some img
    | _ -> None
  in
  let orig_a = img_of m_a and var_a = img_of variant_a in
  (* 8b: MoveBlockDown on a diamond; Pixel-5's block-order bug mis-branches *)
  let b = Builder.create () in
  let void_t = Builder.void_ty b in
  let frag = Builder.frag_coord b in
  let out = Builder.output_color b in
  let fb, main, _ = Builder.begin_function b ~name:"main" ~ret:void_t ~params:[] in
  let la = Builder.new_label fb in
  let lb = Builder.new_label fb in
  let lc = Builder.new_label fb in
  let ld = Builder.new_label fb in
  Builder.start_block fb la;
  let fc = Builder.load fb frag in
  let x = Builder.extract fb fc [ 0 ] in
  let c = Builder.flt fb x (Builder.cfloat b 4.0) in
  Builder.branch_cond fb c lb lc;
  Builder.start_block fb lb;
  let vb = Builder.cfloat b 1.0 in
  Builder.branch fb ld;
  Builder.start_block fb lc;
  let vc = Builder.cfloat b 0.25 in
  let vc2 = Builder.fadd fb vc (Builder.cfloat b 0.0) in
  Builder.branch fb ld;
  Builder.start_block fb ld;
  let phi = Builder.phi fb ~ty:(Builder.float_ty b) [ (vb, lb); (vc2, lc) ] in
  let onef = Builder.cfloat b 1.0 in
  let color = Builder.composite fb ~ty:(Builder.vec4f b) [ phi; phi; phi; onef ] in
  Builder.store fb out color;
  Builder.ret fb;
  ignore (Builder.end_function fb);
  let m_b = Builder.finish b ~entry:main in
  let ctx_b = Spirv_fuzz.Context.make m_b input in
  let t_move = Spirv_fuzz.Transformation.Move_block_down { fn = main; block = lb } in
  let ctx_b' =
    if Spirv_fuzz.Registry.precondition ctx_b t_move then Spirv_fuzz.Registry.apply ctx_b t_move
    else ctx_b
  in
  let variant_b = ctx_b'.Spirv_fuzz.Context.m in
  let pixel5 = Compilers.Target.pixel5 in
  let img_of_p5 m =
    match Compilers.Backend.run pixel5 m input with
    | Compilers.Backend.Rendered img -> Some img
    | _ -> None
  in
  let orig_b = img_of_p5 m_b and var_b = img_of_p5 variant_b in
  let ascii = function Some img -> Image.to_ascii img | None -> "(no image)\n" in
  let differ a bimg =
    match (a, bimg) with Some x, Some y -> not (Image.equal x y) | _ -> false
  in
  {
    fig8a_images_differ = differ orig_a var_a;
    fig8a_original_ascii = ascii orig_a;
    fig8a_variant_ascii = ascii var_a;
    fig8b_images_differ = differ orig_b var_b;
    fig8b_original_ascii = ascii orig_b;
    fig8b_variant_ascii = ascii var_b;
  }
