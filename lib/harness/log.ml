(** Log source for the experiment harness ("tbct.harness").

    Messages are emitted whole-line-atomically: the message is rendered to
    a string off-lock, then handed to the [Logs] reporter as one ["%s"]
    under a single mutex, so lines from concurrent pool workers can never
    interleave mid-line.  The wrappers keep the usual
    [Log.info (fun k -> k fmt ...)] calling convention. *)

let src = Logs.Src.create "tbct.harness" ~doc:"experiment harness events"

let emit_lock = Mutex.create ()

let emit level f =
  f (fun fmt ->
      Format.kasprintf
        (fun line ->
          Mutex.lock emit_lock;
          Fun.protect
            ~finally:(fun () -> Mutex.unlock emit_lock)
            (fun () -> Logs.msg ~src level (fun m -> m "%s" line)))
        fmt)

let debug f = emit Logs.Debug f
let info f = emit Logs.Info f
let warn f = emit Logs.Warning f
let err f = emit Logs.Error f
