(** Experiment drivers for every table and figure of the paper's evaluation
    (section 4), at a configurable scale.

    The paper ran 10,000 seeds per tool configuration; the default scale is
    laptop-sized but preserves every comparison: seeds split into disjoint
    groups for the Mann-Whitney U analysis (Table 3), per-target signature
    sets (Figure 7), reduction-quality medians (RQ2) and the deduplication
    study (Table 4).  Everything is deterministic in the seeds. *)

open Spirv_ir

type scale = {
  seeds : int;   (** tests per tool configuration (paper: 10,000) *)
  groups : int;  (** disjoint groups for MWU (paper: 10) *)
  max_reductions_per_signature : int;  (** cap (paper: 100 / 20) *)
}

val default_scale : scale

(** {1 Campaigns} *)

type hit = {
  hit_tool : Pipeline.tool;
  hit_seed : int;
  hit_ref : string;
  hit_target : string;
  hit_detection : Pipeline.detection;
}

val references_for :
  Pipeline.tool -> (string * Glsl_like.Ast.program * Module_ir.t) list
(** The references a tool fuzzes: glsl-fuzz sees the source programs; the
    spirv tools additionally get [-O]-optimized copies, as in the paper. *)

val run_campaign :
  ?scale:scale ->
  ?targets:Compilers.Target.t list ->
  ?domains:int ->
  ?pool:Pool.t ->
  ?engine:Engine.t ->
  ?check_contracts:bool ->
  ?tv:bool ->
  ?weights:(Spirv_fuzz.Registry.family * int) list ->
  ?skip:(int -> hit list option) ->
  ?stop:(unit -> bool) ->
  ?on_seed:(int -> hit list -> unit) ->
  Pipeline.tool ->
  hit list
(** For each seed, generate one variant from a round-robin reference and
    test it against every target (with the optimize-and-retry step).  Every
    execution flows through the engine ([?engine] defaults to a fresh one).
    Parallelism goes through {!Pool}, one task per seed: [?pool] reuses a
    caller-owned pool (so one pool serves campaign and reduction);
    otherwise [?domains] (default 1) sizes a temporary pool, clamped to
    the seed count so more domains than seeds never spawn idle workers.
    All workers share the engine; hits are merged in seed order, so the
    hit list is guaranteed identical to the sequential one at any worker
    count.  [?check_contracts]
    (default false) runs the {!Spirv_fuzz.Contract} checker after every
    applied transformation — hits are unchanged (the checker consumes no
    randomness); a contract breach raises {!Spirv_fuzz.Contract.Violation}.
    Generation is then billed to the engine stage
    ["generate+contract-check"] instead of ["generate"].  [?tv] (default
    false) runs the translation validator as a second oracle on every
    variant (see {!Pipeline.run_variant}), refining miscompilation
    signatures to per-pass buckets and detecting optimizer miscompilations
    on targets that cannot render.

    [?weights] (default [[]]) rescales the fuzzer's per-family sampling
    weights ({!Spirv_fuzz.Registry.parse_weights} parses the CLI syntax);
    the default keeps the historical uniform draw bit for bit.  Per-type
    proposed/applied tallies from every generated variant are rolled into
    the engine's named counters (["proposed/<TypeId>"],
    ["applied/<TypeId>"]), surfaced by {!Engine.stats}.

    [?skip] and [?on_seed] are the campaign-journal hooks (see {!Persist}):
    a seed with recorded hits is spliced in without re-execution, and every
    freshly computed seed is reported (from its worker domain — the hook
    must be thread-safe).  The returned list is always in canonical
    (seed-ascending) order, whatever mix of recorded and fresh seeds
    produced it.

    [?stop] (default [fun () -> false]) is the cancellation hook the
    campaign service and the batch CLI's SIGINT handler plug in: it is
    polled (possibly from worker domains) before each fresh seed, and a
    seed observed after it returns [true] is neither executed nor reported
    to [on_seed] — it contributes nothing to the returned list.  A stopped
    campaign therefore returns a {e partial} hit list; callers that
    journal through {!Persist} get an exact [completed] flag and can
    resume later, bit-identical to an uninterrupted run. *)

val tools : Pipeline.tool array
(** The three configurations, in Table 3 column order. *)

(** {1 Table 3} *)

type table3_row = {
  t3_target : string;
  t3_total : int array;     (** per tool: distinct signatures over all seeds *)
  t3_median : float array;  (** per tool: median distinct signatures per group *)
  t3_vs_simple : string;    (** MWU verdict: beats spirv-fuzz-simple? *)
  t3_vs_glsl : string;
}

type table3 = { rows : table3_row list; all_row : table3_row }

val table3 : ?scale:scale -> hits:hit list array -> unit -> table3

(** {1 Figure 7} *)

val figure7 : hits:hit list array -> unit -> (string * Venn.t) list * Venn.t
(** Per-target Venn partitions plus the all-targets panel (signatures
    qualified by target). *)

(** {1 RQ2: reduction quality} *)

type reduction_outcome = {
  red_tool : Pipeline.tool;
  red_target : string;
  red_signature : string;
  red_delta : int;    (** |instructions(reduced) - instructions(original)| *)
  red_kept : int;     (** surviving transformations / markers *)
  red_initial : int;
}

val reduce_hit : Engine.t -> hit -> reduction_outcome option
(** Regenerate the hit's variant deterministically and reduce it against its
    target; [None] when the detection does not reproduce (does not happen
    for campaign hits).  The engine's content-addressed cache absorbs the
    repeated prefix replays of the ddmin interestingness queries. *)

val cap_hits : per_signature:int -> hit list -> hit list
(** Keep at most N hits per (target, signature), preserving order — the
    paper's reduction caps. *)

val reduce_hits :
  ?pool:Pool.t -> Engine.t -> hit list -> reduction_outcome option list
(** {!reduce_hit} over a list of independent hits — with [?pool], one pool
    task per hit, all against the shared engine (ddmin's interestingness
    replays hit the same memo/CAS/TV layers from any worker).  Outcomes
    come back in hit order, so the list is identical to the sequential
    [List.map] at any worker count. *)

type rq2 = {
  rq2_spirv : reduction_outcome list;
  rq2_glsl : reduction_outcome list;
  rq2_median_spirv : float;
  rq2_median_glsl : float;
}

val rq2 :
  ?scale:scale -> ?engine:Engine.t -> ?pool:Pool.t -> hits:hit list array ->
  unit -> rq2

(** {1 Table 4: deduplication} *)

type dedup_test = {
  dd_bug_id : string;  (** ground-truth bug the reduced test triggers *)
  dd_types : string list;
      (** the minimized sequence's transformation type ids, in sequence
          order with duplicates preserved — the dedup signature's raw
          material (all the Figure 6 algorithm consumes) *)
  dd_module : Module_ir.t;
      (** the minimized module itself, so the bug bank can persist the
          reduced test case and later re-emit it without re-reducing *)
}

val reduced_crash_tests :
  ?scale:scale -> ?engine:Engine.t -> ?pool:Pool.t ->
  ?known:(target:string -> bug_id:string -> dedup_test option) ->
  hits:hit list ->
  unit -> (string * dedup_test) list
(** Reduce every capped crash hit of the dedup study (spirv-fuzz tests,
    crash bugs, NVIDIA excluded) to its minimized transformation sequence,
    tagged with its target.  With [?pool] the hits reduce concurrently,
    merged in hit order (same list as sequential).  [?known] is the
    bug-bank shortcut: a hit whose (target, bug id) it recalls reuses the
    banked reduced test verbatim instead of regenerating and re-reducing
    (thread-safe if a pool is supplied).  This is the input of {!table4}
    and of the cross-campaign bug bank ([tbct dedup --bank]). *)

type table4_row = {
  t4_target : string;
  t4_tests : int;     (** reduced test cases fed to the algorithm *)
  t4_sigs : int;      (** distinct underlying bugs those tests trigger *)
  t4_reports : int;   (** test cases recommended for investigation *)
  t4_distinct : int;  (** distinct bugs covered by the recommendations *)
  t4_dups : int;
}

val table4 :
  ?scale:scale ->
  ?ignored:Tbct.Dedup.String_set.t ->
  ?engine:Engine.t ->
  ?pool:Pool.t ->
  ?tests:(string * dedup_test) list ->
  hits:hit list array ->
  unit ->
  table4_row list * table4_row
(** Crash bugs only, spirv-fuzz tests only, NVIDIA excluded — the paper's
    setup.  [?ignored] overrides the section 3.5 ignore list (used by the
    ablation); [?tests] supplies precomputed {!reduced_crash_tests} so a
    caller that also feeds the bug bank reduces each hit only once. *)

(** {1 Deterministic figures} *)

type figure3 = {
  fig3_original_size : int;
  fig3_variant_size : int;
  fig3_reduced_size : int;
  fig3_signature : string;
  fig3_kept : Spirv_fuzz.Transformation.t list;
  fig3_delta : string;
}

val figure3 : unit -> figure3 option
(** Hunt for the DontInline SwiftShader crash and reduce it — the Figure 3
    scenario, ending in a one-line-pair module delta. *)

type figure8 = {
  fig8a_images_differ : bool;
  fig8a_original_ascii : string;
  fig8a_variant_ascii : string;
  fig8b_images_differ : bool;
  fig8b_original_ascii : string;
  fig8b_variant_ascii : string;
}

val figure8 : unit -> figure8
(** The two miscompilation walkthroughs: PropagateInstructionUp vs the Mesa
    phi-condition bug (8a) and MoveBlockDown vs the Pixel-5 layout bug
    (8b). *)
