(** Work-stealing domain pool (see the interface for the full story).

    Layout: a batch of [n] tasks is split into [min workers n] contiguous
    id blocks, one per deque.  A deque is two indices into its block —
    [lo] (the owner pops here, ascending) and [hi] (thieves decrement
    here) — under its own mutex, so the steal path contends on one deque,
    never on the pool.  Completion is an atomic count; the last finished
    task broadcasts the caller awake.  Worker domains park between
    batches on [work] and are handed batches by generation number, so a
    straggler from batch [g] can never re-enter [g] once [g+1] starts. *)

type deque = {
  d_lock : Mutex.t;
  mutable d_lo : int;  (* owner pops here: ascending task ids *)
  mutable d_hi : int;  (* thieves steal here: descending task ids *)
}

type batch = {
  b_gen : int;
  b_total : int;
  b_run : worker:int -> int -> unit;  (* never raises (wrapped by map) *)
  b_deques : deque array;
  b_completed : int Atomic.t;
}

type t = {
  nworkers : int;
  lock : Mutex.t;
  work : Condition.t;      (* workers park here between batches *)
  finished : Condition.t;  (* the caller parks here awaiting the batch *)
  mutable batch : batch option;
  mutable gen : int;
  mutable shutting_down : bool;
  mutable domains : unit Domain.t list;
  tasks_run : int Atomic.t array;
  steals : int Atomic.t array;
}

type worker_stats = { ws_tasks : int; ws_steals : int }

let workers t = t.nworkers

let pop_own d =
  Mutex.lock d.d_lock;
  let r =
    if d.d_lo < d.d_hi then begin
      let id = d.d_lo in
      d.d_lo <- d.d_lo + 1;
      Some id
    end
    else None
  in
  Mutex.unlock d.d_lock;
  r

let steal_from d =
  Mutex.lock d.d_lock;
  let r =
    if d.d_lo < d.d_hi then begin
      d.d_hi <- d.d_hi - 1;
      Some d.d_hi
    end
    else None
  in
  Mutex.unlock d.d_lock;
  r

(* Participate in [b] as worker [w] until no task is left anywhere: own
   deque front-to-back first, then one-task steals from the other deques'
   backs, victims scanned round-robin starting at the right neighbour. *)
let work_batch t w (b : batch) =
  let n = Array.length b.b_deques in
  let run id =
    b.b_run ~worker:w id;
    Atomic.incr t.tasks_run.(w);
    if 1 + Atomic.fetch_and_add b.b_completed 1 = b.b_total then begin
      (* last task of the batch: the caller may be parked on [finished];
         take the lock so the broadcast cannot race its predicate check *)
      Mutex.lock t.lock;
      Condition.broadcast t.finished;
      Mutex.unlock t.lock
    end
  in
  let rec steal_sweep k =
    if k >= n - 1 then None
    else
      match steal_from b.b_deques.((w + 1 + k) mod n) with
      | Some id ->
          Atomic.incr t.steals.(w);
          Some id
      | None -> steal_sweep (k + 1)
  in
  let rec drain () =
    match pop_own b.b_deques.(w) with
    | Some id ->
        run id;
        drain ()
    | None -> (
        match steal_sweep 0 with
        | Some id ->
            run id;
            drain ()
        | None -> ())
  in
  drain ()

let rec worker_loop t w last_gen =
  Mutex.lock t.lock;
  let rec await () =
    if t.shutting_down then None
    else
      match t.batch with
      | Some b when b.b_gen > last_gen -> Some b
      | _ ->
          Condition.wait t.work t.lock;
          await ()
  in
  let next = await () in
  Mutex.unlock t.lock;
  match next with
  | None -> ()
  | Some b ->
      work_batch t w b;
      worker_loop t w b.b_gen

let create ~workers () =
  let nworkers = max 1 workers in
  let t =
    {
      nworkers;
      lock = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      batch = None;
      gen = 0;
      shutting_down = false;
      domains = [];
      tasks_run = Array.init nworkers (fun _ -> Atomic.make 0);
      steals = Array.init nworkers (fun _ -> Atomic.make 0);
    }
  in
  t.domains <-
    List.init (nworkers - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop t (i + 1) 0));
  t

let map_worker t total f =
  if total = 0 then [||]
  else begin
    let results = Array.make total None in
    (* first failure by task id, whatever order tasks actually raise in *)
    let fail_lock = Mutex.create () in
    let failure = ref None in
    let b_run ~worker id =
      match f ~worker id with
      | v -> results.(id) <- Some v
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          Mutex.lock fail_lock;
          (match !failure with
          | Some (id0, _, _) when id0 <= id -> ()
          | _ -> failure := Some (id, e, bt));
          Mutex.unlock fail_lock
    in
    (* contiguous blocks over the occupied deques; a batch smaller than
       the pool leaves the surplus workers with empty deques (they go
       straight to stealing) rather than refusing to run *)
    let occupied = min t.nworkers total in
    let base = total / occupied and rem = total mod occupied in
    let deques =
      Array.init t.nworkers (fun i ->
          if i >= occupied then
            { d_lock = Mutex.create (); d_lo = 0; d_hi = 0 }
          else
            let lo = (i * base) + min i rem in
            let hi = lo + base + (if i < rem then 1 else 0) in
            { d_lock = Mutex.create (); d_lo = lo; d_hi = hi })
    in
    Mutex.lock t.lock;
    (match t.batch with
    | Some _ ->
        Mutex.unlock t.lock;
        invalid_arg "Pool.map: a batch is already running on this pool"
    | None -> ());
    if t.shutting_down then begin
      Mutex.unlock t.lock;
      invalid_arg "Pool.map: the pool has been shut down"
    end;
    t.gen <- t.gen + 1;
    let b =
      {
        b_gen = t.gen;
        b_total = total;
        b_run;
        b_deques = deques;
        b_completed = Atomic.make 0;
      }
    in
    t.batch <- Some b;
    Condition.broadcast t.work;
    Mutex.unlock t.lock;
    (* the caller is worker 0 *)
    work_batch t 0 b;
    Mutex.lock t.lock;
    while Atomic.get b.b_completed < total do
      Condition.wait t.finished t.lock
    done;
    t.batch <- None;
    Mutex.unlock t.lock;
    match !failure with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
        Array.map (function Some v -> v | None -> assert false) results
  end

let map t total f = map_worker t total (fun ~worker:_ id -> f id)

let map_list t f xs =
  let arr = Array.of_list xs in
  Array.to_list (map t (Array.length arr) (fun i -> f arr.(i)))

let stats t =
  Array.init t.nworkers (fun i ->
      {
        ws_tasks = Atomic.get t.tasks_run.(i);
        ws_steals = Atomic.get t.steals.(i);
      })

let stats_to_string t =
  let per_worker =
    Array.to_list (stats t)
    |> List.mapi (fun i s -> Printf.sprintf "w%d:%d(%d)" i s.ws_tasks s.ws_steals)
  in
  Printf.sprintf "pool: %d worker(s), tasks(steals) %s" t.nworkers
    (String.concat " " per_worker)

let shutdown t =
  Mutex.lock t.lock;
  if t.shutting_down then Mutex.unlock t.lock
  else begin
    t.shutting_down <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.lock;
    List.iter Domain.join t.domains;
    t.domains <- []
  end

let with_pool ~workers f =
  let t = create ~workers () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
