(** Bug signatures (section 3.4).

    A bug signature is either the crash signature extracted from a compiler
    crash, or the single special signature used for all miscompilations
    ("Because all miscompilations contribute the same bug signature, the
    results do not provide insight into how many different miscompilations
    the tools can detect").  *)

type t = string

let miscompilation : t = "miscompilation"

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

(** Pass-granular miscompilation signature, the refinement the translation
    validator makes possible: where the paper lumps every miscompilation
    under one signature, a TV [Mismatch] names the guilty pass, so
    miscompilations on the same target split into per-pass buckets
    ["miscompile:<target>:<pass>"].  [pass = None] means the optimizer was
    validated clean and the blame lies downstream (["...:backend"]). *)
let miscompile ~(target : Compilers.Target.t)
    ~(pass : Compilers.Optimizer.pass_name option) : t =
  let where =
    match pass with
    | Some p -> Compilers.Optimizer.show_pass_name p
    | None -> "backend"
  in
  Printf.sprintf "miscompile:%s:%s" target.Compilers.Target.name where

let is_miscompilation s =
  String.equal s miscompilation || has_prefix "miscompile:" s

(** The pass name of a pass-granular TV signature, or [None] for the
    [":backend"] fallback and every non-TV signature.  Pass-blamed
    signatures are reproducible without executing anything — the
    interestingness test can re-validate instead of re-rendering. *)
let blamed_pass (s : t) : string option =
  if not (has_prefix "miscompile:" s) then None
  else
    match String.rindex_opt s ':' with
    | None -> None
    | Some i ->
        let p = String.sub s (i + 1) (String.length s - i - 1) in
        if String.equal p "backend" then None else Some p

(** Ground-truth bug id behind a signature (for the Table 4 baseline, where
    "a set of bugs known to be distinct" is required).  Derived signatures
    (validation failures, device hangs) are canonicalised by prefix. *)
let bug_id_of_signature (s : t) : string =
  let has_prefix p = has_prefix p s in
  match
    List.find_opt
      (fun (spec : Compilers.Bug.crash_spec) -> String.equal spec.Compilers.Bug.signature s)
      Compilers.Bug.all_crash_bugs
  with
  | Some spec -> spec.Compilers.Bug.bug_id
  | None ->
      if has_prefix "optimizer emitted invalid module" then "opt-invalid-output"
      else if has_prefix "device lost" then "device-lost"
      else if has_prefix "constant folder: integer division" then "fold-div-crash"
      else if is_miscompilation s then
        (* every pass-granular miscompile:<target>:<pass> bucket is the same
           ground-truth phenomenon for the Table 4 baseline *)
        "miscompilation"
      else s
