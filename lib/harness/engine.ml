(** The execution engine (see the interface for the full story): a
    mutex-guarded, content-addressed memo table over
    {!Compilers.Backend.run}, the baseline cache, counters and per-stage
    wall-clock accounting.  One engine may be shared across domains. *)

open Spirv_ir

type t = {
  lock : Mutex.t;
  memo : (string * string * string, Compilers.Backend.run_result) Hashtbl.t;
      (* (target name, module digest, input digest) -> result *)
  baselines : (string * string, Compilers.Backend.run_result) Hashtbl.t;
      (* (target name, reference name) -> result *)
  stage_wall : (string, float) Hashtbl.t;
  mutable runs_executed : int;
  mutable cache_hits : int;
  mutable baseline_hits : int;
}

type stats = {
  runs_executed : int;
  cache_hits : int;
  baseline_hits : int;
  runs_saved : int;
  hit_rate : float;
  execute_wall : float;
  stages : (string * float) list;
}

let create () =
  {
    lock = Mutex.create ();
    memo = Hashtbl.create 256;
    baselines = Hashtbl.create 64;
    stage_wall = Hashtbl.create 8;
    runs_executed = 0;
    cache_hits = 0;
    baseline_hits = 0;
  }

let locked e f =
  Mutex.lock e.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock e.lock) f

let add_stage_locked e stage dt =
  Hashtbl.replace e.stage_wall stage
    (dt +. Option.value ~default:0.0 (Hashtbl.find_opt e.stage_wall stage))

let execute_stage = "execute"

(* The mutex is released while the backend runs: two domains missing on the
   same key may both execute, but [Backend.run] is deterministic, so the
   duplicate [replace] is harmless and the table stays consistent. *)
let run e (t : Compilers.Target.t) (m : Module_ir.t) (input : Input.t) :
    Compilers.Backend.run_result =
  let key = (t.Compilers.Target.name, Digest.of_module m, Digest.of_input input) in
  let cached = locked e (fun () -> Hashtbl.find_opt e.memo key) in
  match cached with
  | Some r ->
      locked e (fun () -> e.cache_hits <- e.cache_hits + 1);
      r
  | None ->
      let t0 = Unix.gettimeofday () in
      let r = Compilers.Backend.run t m input in
      let dt = Unix.gettimeofday () -. t0 in
      locked e (fun () ->
          Hashtbl.replace e.memo key r;
          e.runs_executed <- e.runs_executed + 1;
          add_stage_locked e execute_stage dt);
      r

let baseline e (t : Compilers.Target.t) ~ref_name (m : Module_ir.t)
    (input : Input.t) : Compilers.Backend.run_result =
  let key = (t.Compilers.Target.name, ref_name) in
  let cached = locked e (fun () -> Hashtbl.find_opt e.baselines key) in
  match cached with
  | Some r ->
      locked e (fun () -> e.baseline_hits <- e.baseline_hits + 1);
      r
  | None ->
      let r = run e t m input in
      locked e (fun () -> Hashtbl.replace e.baselines key r);
      r

let timed e ~stage f =
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      let dt = Unix.gettimeofday () -. t0 in
      locked e (fun () -> add_stage_locked e stage dt))
    f

let stats e : stats =
  locked e (fun () ->
      let runs_saved = e.cache_hits + e.baseline_hits in
      let looked_up = runs_saved + e.runs_executed in
      {
        runs_executed = e.runs_executed;
        cache_hits = e.cache_hits;
        baseline_hits = e.baseline_hits;
        runs_saved;
        hit_rate =
          (if looked_up = 0 then 0.0
           else float_of_int runs_saved /. float_of_int looked_up);
        execute_wall =
          Option.value ~default:0.0 (Hashtbl.find_opt e.stage_wall execute_stage);
        stages =
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) e.stage_wall []
          |> List.sort (fun (a, _) (b, _) -> String.compare a b);
      })

let reset e =
  locked e (fun () ->
      Hashtbl.reset e.memo;
      Hashtbl.reset e.baselines;
      Hashtbl.reset e.stage_wall;
      e.runs_executed <- 0;
      e.cache_hits <- 0;
      e.baseline_hits <- 0)

let pp_stats fmt (s : stats) =
  Format.fprintf fmt
    "engine: %d runs executed, %d saved by caching (%d memo + %d baseline, \
     %.1f%% hit rate)"
    s.runs_executed s.runs_saved s.cache_hits s.baseline_hits
    (100.0 *. s.hit_rate);
  if s.stages <> [] then begin
    Format.fprintf fmt "@\nstage wall-clock:";
    List.iter (fun (k, v) -> Format.fprintf fmt "@\n  %-10s %8.3fs" k v) s.stages
  end

let stats_to_string s = Format.asprintf "%a" pp_stats s
