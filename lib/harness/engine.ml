(** The execution engine (see the interface for the full story): a
    mutex-guarded, content-addressed memo table over
    {!Compilers.Backend.run} with a bounded LRU eviction policy, an
    optional persistent {!Tbct_store.Cas} backend (read-through /
    write-through), the baseline cache, the memoized clean [-O] step,
    counters and per-stage wall-clock accounting.  One engine may be
    shared across domains. *)

open Spirv_ir
module Lru = Tbct_store.Lru
module Cas = Tbct_store.Cas
module Run_codec = Tbct_store.Run_codec

let default_memo_capacity = 65536

type t = {
  lock : Mutex.t;
  mutable memo :
    (string * string * string, Compilers.Backend.run_result) Lru.t;
      (* (target name, module digest, input digest) -> result *)
  mutable opt_memo : (string, Module_ir.t) Lru.t;
      (* module digest -> clean -O optimized module *)
  mutable tv_memo : (string * string, Compilers.Tv.verdict) Lru.t;
      (* (before digest, after digest) -> translation-validation verdict *)
  mutable compile_memo : (string, Compile.t) Lru.t;
      (* module digest -> lowered program for the flat execution kernel *)
  use_compiled : bool;
      (* false: reference-interpreter mode (the differential oracle) *)
  memo_capacity : int;
  baselines : (string * string, Compilers.Backend.run_result) Hashtbl.t;
      (* (target name, reference name) -> result *)
  store : Cas.t option;
  stage_wall : (string, float) Hashtbl.t;
  domain_runs : (int, int) Hashtbl.t;
      (* domain id -> backend executions performed by that domain; shows
         how evenly the pool's workers shared the execute load *)
  named_counters : (string, int) Hashtbl.t;
      (* caller-defined tallies, e.g. per-transformation-type
         proposed/applied counts bumped by campaign drivers *)
  mutable runs_executed : int;
  mutable cache_hits : int;
  mutable baseline_hits : int;
  mutable opt_runs : int;
  mutable opt_hits : int;
  mutable store_hits : int;
  mutable store_writes : int;
  mutable tv_checks : int;
  mutable tv_hits : int;
  mutable compiles : int;
  mutable compile_hits : int;
}

type stats = {
  runs_executed : int;
  cache_hits : int;
  baseline_hits : int;
  opt_runs : int;
  opt_hits : int;
  store_hits : int;
  store_writes : int;
  tv_checks : int;
  tv_hits : int;
  compiles : int;
  compile_hits : int;
  memo_entries : int;
  memo_capacity : int;
  memo_evictions : int;
  runs_saved : int;
  hit_rate : float;
  execute_wall : float;
  stages : (string * float) list;
  per_domain_runs : (int * int) list;
  counters : (string * int) list;
}

let create ?store ?(memo_capacity = default_memo_capacity) ?(compiled = true)
    () =
  {
    lock = Mutex.create ();
    memo = Lru.create ~capacity:memo_capacity;
    opt_memo = Lru.create ~capacity:memo_capacity;
    tv_memo = Lru.create ~capacity:memo_capacity;
    compile_memo = Lru.create ~capacity:memo_capacity;
    use_compiled = compiled;
    memo_capacity;
    baselines = Hashtbl.create 64;
    store;
    stage_wall = Hashtbl.create 8;
    domain_runs = Hashtbl.create 8;
    named_counters = Hashtbl.create 64;
    runs_executed = 0;
    cache_hits = 0;
    baseline_hits = 0;
    opt_runs = 0;
    opt_hits = 0;
    store_hits = 0;
    store_writes = 0;
    tv_checks = 0;
    tv_hits = 0;
    compiles = 0;
    compile_hits = 0;
  }

let cas e = e.store

let bump_counter e name n =
  Mutex.lock e.lock;
  Hashtbl.replace e.named_counters name
    (n + Option.value ~default:0 (Hashtbl.find_opt e.named_counters name));
  Mutex.unlock e.lock

let locked e f =
  Mutex.lock e.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock e.lock) f

let add_stage_locked e stage dt =
  Hashtbl.replace e.stage_wall stage
    (dt +. Option.value ~default:0.0 (Hashtbl.find_opt e.stage_wall stage))

let execute_stage = "execute"
let optimize_stage = "optimize"
let tv_stage = "tv"

(* disk keys: the namespaced cache key digested into a CAS key *)
let run_store_key (target, mdigest, idigest) =
  Cas.key_of_string (Printf.sprintf "run:%s:%s:%s" target mdigest idigest)

let opt_store_key mdigest = Cas.key_of_string ("opt:" ^ mdigest)
let tv_store_key (d1, d2) = Cas.key_of_string (Printf.sprintf "tv:%s:%s" d1 d2)

(* The flat compiled kernel behind a per-digest program cache.  Lowered
   programs are immutable and freely shareable across domains; the LRU is
   consulted and updated under the engine lock, and the (pure) lowering
   itself runs unlocked — a racing duplicate lowering is harmless. *)
let compiled_program e (m : Module_ir.t) : Compile.t =
  let d = Digest.of_module m in
  let cached = locked e (fun () -> Lru.find e.compile_memo d) in
  match cached with
  | Some p ->
      locked e (fun () -> e.compile_hits <- e.compile_hits + 1);
      p
  | None ->
      let p = Compile.lower m in
      locked e (fun () ->
          Lru.set e.compile_memo d p;
          e.compiles <- e.compiles + 1);
      p

(* The render hook handed to [Backend.run]: it receives the post-miscompile
   module, which differs from the module the engine was asked about, so it
   is digested and lowered (through the cache) on its own. *)
let compiled_render e m input = Compile.render_batch (compiled_program e m) input

(* The mutex is released while the backend runs: two domains missing on the
   same key may both execute, but [Backend.run] is deterministic, so the
   duplicate insertion is harmless and the table stays consistent.  With a
   disk store the lookup order is memory -> disk -> execute; results read
   from or computed past the disk layer are promoted into memory, and fresh
   executions are written through (decode failures on corrupt objects are
   treated as misses and overwritten). *)
let run e (t : Compilers.Target.t) (m : Module_ir.t) (input : Input.t) :
    Compilers.Backend.run_result =
  let key = (t.Compilers.Target.name, Digest.of_module m, Digest.of_input input) in
  let cached = locked e (fun () -> Lru.find e.memo key) in
  match cached with
  | Some r ->
      locked e (fun () -> e.cache_hits <- e.cache_hits + 1);
      r
  | None -> (
      let from_disk =
        match e.store with
        | None -> None
        | Some cas ->
            Option.bind
              (Cas.get cas ~key:(run_store_key key))
              Run_codec.decode_run
      in
      match from_disk with
      | Some r ->
          locked e (fun () ->
              Lru.set e.memo key r;
              e.store_hits <- e.store_hits + 1);
          r
      | None ->
          let t0 = Unix.gettimeofday () in
          let r =
            if e.use_compiled then
              Compilers.Backend.run ~render:(compiled_render e) t m input
            else Compilers.Backend.run t m input
          in
          let dt = Unix.gettimeofday () -. t0 in
          let did = (Domain.self () :> int) in
          locked e (fun () ->
              Lru.set e.memo key r;
              e.runs_executed <- e.runs_executed + 1;
              Hashtbl.replace e.domain_runs did
                (1 + Option.value ~default:0 (Hashtbl.find_opt e.domain_runs did));
              add_stage_locked e execute_stage dt);
          (match e.store with
          | None -> ()
          | Some cas ->
              Cas.put cas ~key:(run_store_key key) (Run_codec.encode_run r);
              locked e (fun () -> e.store_writes <- e.store_writes + 1));
          r)

let baseline e (t : Compilers.Target.t) ~ref_name (m : Module_ir.t)
    (input : Input.t) : Compilers.Backend.run_result =
  let key = (t.Compilers.Target.name, ref_name) in
  let cached = locked e (fun () -> Hashtbl.find_opt e.baselines key) in
  match cached with
  | Some r ->
      locked e (fun () -> e.baseline_hits <- e.baseline_hits + 1);
      r
  | None ->
      let r = run e t m input in
      locked e (fun () -> Hashtbl.replace e.baselines key r);
      r

(** The memoized clean [-O] step (a ROADMAP item): digest -> optimized
    module, through memory and then the disk store.  Only the actual
    optimizer work is billed to the ["optimize"] stage, so the stage clock
    keeps measuring real optimization time.  Errors are not cached (the
    clean pipeline never fails in this build). *)
let optimize e (m : Module_ir.t) : (Module_ir.t, string) result =
  let d = Digest.of_module m in
  let cached = locked e (fun () -> Lru.find e.opt_memo d) in
  match cached with
  | Some m' ->
      locked e (fun () -> e.opt_hits <- e.opt_hits + 1);
      Ok m'
  | None -> (
      let from_disk =
        match e.store with
        | None -> None
        | Some cas ->
            Option.bind
              (Cas.get cas ~key:(opt_store_key d))
              Run_codec.decode_module
      in
      match from_disk with
      | Some m' ->
          (* counted under [opt_hits]: [store_hits] tracks run results only,
             so [runs_saved]/[hit_rate] keep meaning backend executions *)
          locked e (fun () ->
              Lru.set e.opt_memo d m';
              e.opt_hits <- e.opt_hits + 1);
          Ok m'
      | None -> (
          let t0 = Unix.gettimeofday () in
          let r = Compilers.Optimizer.optimize m in
          let dt = Unix.gettimeofday () -. t0 in
          locked e (fun () ->
              e.opt_runs <- e.opt_runs + 1;
              add_stage_locked e optimize_stage dt);
          match r with
          | Ok m' ->
              locked e (fun () -> Lru.set e.opt_memo d m');
              (match e.store with
              | None -> ()
              | Some cas ->
                  Cas.put cas ~key:(opt_store_key d) (Run_codec.encode_module m');
                  locked e (fun () -> e.store_writes <- e.store_writes + 1));
              Ok m'
          | Error _ as err -> err))

(** Memoized translation validation, keyed by the (before, after) module
    digest pair through memory and then the disk store.  Verdict soundness
    under memoization: {!Compilers.Tv.check_pass} is a deterministic
    function of the two modules, the codec round-trips exactly, and
    content-addressing makes the digest pair a faithful key — so a cached
    verdict is the verdict.  Equal digests short-circuit to [Equivalent]
    (a pass that changed nothing proved itself). *)
let tv_check_uncounted e ~(before : Module_ir.t) ~(after : Module_ir.t) :
    Compilers.Tv.verdict =
  let d1 = Digest.of_module before in
  let d2 = Digest.of_module after in
  locked e (fun () -> e.tv_checks <- e.tv_checks + 1);
  if String.equal d1 d2 then begin
    locked e (fun () -> e.tv_hits <- e.tv_hits + 1);
    Compilers.Tv.Equivalent
  end
  else
    let key = (d1, d2) in
    let cached = locked e (fun () -> Lru.find e.tv_memo key) in
    match cached with
    | Some v ->
        locked e (fun () -> e.tv_hits <- e.tv_hits + 1);
        v
    | None -> (
        let from_disk =
          match e.store with
          | None -> None
          | Some cas ->
              Option.bind
                (Cas.get cas ~key:(tv_store_key key))
                Run_codec.decode_verdict
        in
        match from_disk with
        | Some v ->
            locked e (fun () ->
                Lru.set e.tv_memo key v;
                e.tv_hits <- e.tv_hits + 1);
            v
        | None ->
            let t0 = Unix.gettimeofday () in
            let v, proofs = Compilers.Tv.check_pass_counted before after in
            let dt = Unix.gettimeofday () -. t0 in
            (* fresh computes only: a memoized verdict re-proves nothing *)
            if proofs > 0 then bump_counter e "mem-proofs" proofs;
            locked e (fun () ->
                Lru.set e.tv_memo key v;
                add_stage_locked e tv_stage dt);
            (match e.store with
            | None -> ()
            | Some cas ->
                Cas.put cas ~key:(tv_store_key key) (Run_codec.encode_verdict v);
                locked e (fun () -> e.store_writes <- e.store_writes + 1));
            v)

let tv_check e ~(before : Module_ir.t) ~(after : Module_ir.t) :
    Compilers.Tv.verdict =
  let v = tv_check_uncounted e ~before ~after in
  (* bucket abstentions by their structured Symval reason (the payload's
     label prefix); bump_counter takes the engine lock itself, so this
     must stay outside any [locked] block *)
  (match Compilers.Tv.abstain_label v with
  | Some label -> bump_counter e ("tv-abstain:" ^ label) 1
  | None -> ());
  v

let timed e ~stage f =
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      let dt = Unix.gettimeofday () -. t0 in
      locked e (fun () -> add_stage_locked e stage dt))
    f

let stats e : stats =
  locked e (fun () ->
      let runs_saved = e.cache_hits + e.baseline_hits + e.store_hits in
      let looked_up = runs_saved + e.runs_executed in
      {
        runs_executed = e.runs_executed;
        cache_hits = e.cache_hits;
        baseline_hits = e.baseline_hits;
        opt_runs = e.opt_runs;
        opt_hits = e.opt_hits;
        store_hits = e.store_hits;
        store_writes = e.store_writes;
        tv_checks = e.tv_checks;
        tv_hits = e.tv_hits;
        compiles = e.compiles;
        compile_hits = e.compile_hits;
        memo_entries =
          Lru.length e.memo + Lru.length e.opt_memo + Lru.length e.tv_memo
          + Lru.length e.compile_memo;
        memo_capacity = e.memo_capacity;
        memo_evictions =
          Lru.evictions e.memo + Lru.evictions e.opt_memo
          + Lru.evictions e.tv_memo + Lru.evictions e.compile_memo;
        runs_saved;
        hit_rate =
          (if looked_up = 0 then 0.0
           else float_of_int runs_saved /. float_of_int looked_up);
        execute_wall =
          Option.value ~default:0.0 (Hashtbl.find_opt e.stage_wall execute_stage);
        stages =
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) e.stage_wall []
          |> List.sort (fun (a, _) (b, _) -> String.compare a b);
        per_domain_runs =
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) e.domain_runs []
          |> List.sort (fun (a, _) (b, _) -> compare a b);
        counters =
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) e.named_counters []
          |> List.sort (fun (a, _) (b, _) -> String.compare a b);
      })

let reset e =
  locked e (fun () ->
      e.memo <- Lru.create ~capacity:e.memo_capacity;
      e.opt_memo <- Lru.create ~capacity:e.memo_capacity;
      e.tv_memo <- Lru.create ~capacity:e.memo_capacity;
      e.compile_memo <- Lru.create ~capacity:e.memo_capacity;
      Hashtbl.reset e.baselines;
      Hashtbl.reset e.stage_wall;
      Hashtbl.reset e.domain_runs;
      Hashtbl.reset e.named_counters;
      e.runs_executed <- 0;
      e.cache_hits <- 0;
      e.baseline_hits <- 0;
      e.opt_runs <- 0;
      e.opt_hits <- 0;
      e.store_hits <- 0;
      e.store_writes <- 0;
      e.tv_checks <- 0;
      e.tv_hits <- 0;
      e.compiles <- 0;
      e.compile_hits <- 0)

let pp_stats fmt (s : stats) =
  Format.fprintf fmt
    "engine: %d runs executed, %d saved by caching (%d memo + %d baseline + \
     %d store, %.1f%% hit rate)"
    s.runs_executed s.runs_saved s.cache_hits s.baseline_hits s.store_hits
    (100.0 *. s.hit_rate);
  Format.fprintf fmt
    "@\noptimize: %d executed, %d memo hits; memo tables: %d entries (cap \
     %d), %d evictions; store: %d hits, %d writes"
    s.opt_runs s.opt_hits s.memo_entries s.memo_capacity s.memo_evictions
    s.store_hits s.store_writes;
  if s.tv_checks > 0 then
    Format.fprintf fmt "@\ntv: %d checks, %d memoized (%.1f%% hit rate)"
      s.tv_checks s.tv_hits
      (100.0 *. float_of_int s.tv_hits /. float_of_int s.tv_checks);
  if s.compiles > 0 || s.compile_hits > 0 then
    Format.fprintf fmt "@\ncompile: %d modules lowered, %d program-cache hits"
      s.compiles s.compile_hits;
  if s.stages <> [] then begin
    Format.fprintf fmt "@\nstage wall-clock:";
    List.iter (fun (k, v) -> Format.fprintf fmt "@\n  %-10s %8.3fs" k v) s.stages
  end;
  (match s.per_domain_runs with
  | [] | [ _ ] -> ()  (* single-domain runs need no breakdown *)
  | per_domain ->
      Format.fprintf fmt "@\nruns per domain:";
      List.iter
        (fun (d, n) -> Format.fprintf fmt " d%d:%d" d n)
        per_domain);
  if s.counters <> [] then begin
    Format.fprintf fmt "@\ncounters:";
    List.iter (fun (k, v) -> Format.fprintf fmt "@\n  %-40s %8d" k v) s.counters
  end

let stats_to_string s = Format.asprintf "%a" pp_stats s
