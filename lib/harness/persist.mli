(** Campaign persistence: crash-resumable campaigns over a store directory.

    A store directory [DIR] holds everything a campaign leaves behind:

    - [DIR/cas/] — the content-addressed run cache ({!Tbct_store.Cas}),
      shared by the engine's read-through/write-through backend;
    - [DIR/journal.log] — the campaign journal ({!Tbct_store.Journal}):
      one checksummed header record naming the tool, target list and seed
      count, then one record per completed seed with its hits;
    - [DIR/bugbank.txt] — the cross-campaign bug bank
      ({!Tbct_store.Bugbank}), fed by [tbct dedup --bank].

    Resume contract: {!run_campaign} with [~resume:true] replays the
    journal's valid prefix (a killed campaign's torn trailing record is
    discarded), re-executes only the missing seeds, and returns a hit list
    {e bit-identical} to the uninterrupted run — recorded seeds are spliced
    in unchanged and fresh seeds are recomputed deterministically, in
    canonical seed order either way.  A journal written by a different
    tool or target list is refused rather than silently mixed.

    This module performs no file I/O of its own; every byte goes through
    {!Tbct_store} (a CI-enforced harness invariant). *)

(** {1 Store layout} *)

val cas_dir : string -> string       (** [DIR/cas] *)

val journal_path : string -> string  (** [DIR/journal.log] *)

val bugbank_dir : string -> string
(** Where {!Tbct_store.Bugbank.load} should look (currently [DIR]
    itself). *)

val open_cas :
  ?fsync:bool -> ?max_bytes:int -> dir:string -> unit -> Tbct_store.Cas.t
(** Open the store directory's CAS (for {!Engine.create}'s [?store]). *)

(** {1 Campaign journals} *)

type campaign = {
  dir : string;
  journal : Tbct_store.Journal.t;
  completed : (int, Experiments.hit list) Hashtbl.t;
      (** seeds recovered from the journal *)
  recovered_seeds : int;
  journal_dropped : bool;
      (** the journal ended in a truncated/corrupted record *)
  prior_seeds : int option;
      (** the seed count the resumed journal was recorded at (its header,
          or its last scale record); [None] for a fresh campaign *)
}

val open_campaign :
  ?resume:bool ->
  ?fsync:bool ->
  dir:string ->
  tool:Pipeline.tool ->
  targets:Compilers.Target.t list ->
  scale:Experiments.scale ->
  unit ->
  (campaign, string) result
(** Without [resume], any existing journal is discarded and a fresh one is
    started (header record included).  With [resume], the valid prefix is
    replayed into [completed]; mismatched tool/targets are an error.

    Resuming at a {e different} seed count is not an error but an
    extension (or shrink): the journal header records the scale it was
    started at, and a resume whose scale differs appends a scale record
    re-stating the new extent.  Extending a finished campaign from [N] to
    [M] seeds therefore replays seeds [0..N-1] from the journal, computes
    only [N..M-1], and returns a hit list bit-identical to a fresh
    [M]-seed run (tested). *)

val skip : campaign -> int -> Experiments.hit list option
(** The [?skip] hook for {!Experiments.run_campaign}. *)

val on_seed : campaign -> int -> Experiments.hit list -> unit
(** The [?on_seed] hook: appends one journal record (thread-safe). *)

val close : campaign -> unit

(** {1 One-call wrapper} *)

type outcome = {
  hits : Experiments.hit list;
  seeds_skipped : int;  (** seeds served from the journal *)
  seeds_run : int;      (** seeds executed by this invocation *)
  completed : bool;
      (** every seed is journaled; [false] only when [?stop] cancelled the
          campaign mid-flight (the hit list is then partial and a later
          [~resume:true] run finishes the job) *)
  journal_dropped : bool;
  extended_from : int option;
      (** [Some n]: a resume grew the campaign past the [n] seeds the
          journal had recorded *)
}

val hit_line : Experiments.hit -> string
(** The canonical one-line encoding of a hit
    ([seed TAB ref TAB target TAB quoted-signature TAB opt|direct]) shared
    by [tbct campaign --hits-out] and the campaign service's [hits] verb,
    so their outputs are byte-comparable by construction. *)

val run_campaign :
  ?scale:Experiments.scale ->
  ?targets:Compilers.Target.t list ->
  ?domains:int ->
  ?pool:Pool.t ->
  ?engine:Engine.t ->
  ?check_contracts:bool ->
  ?tv:bool ->
  ?weights:(Spirv_fuzz.Registry.family * int) list ->
  ?resume:bool ->
  ?fsync:bool ->
  ?stop:(unit -> bool) ->
  ?on_seed:(int -> Experiments.hit list -> unit) ->
  dir:string ->
  Pipeline.tool ->
  (outcome, string) result
(** Open (or resume) the campaign journal in [dir], run the campaign with
    the journal hooks plugged in, close the journal.  The hit list is
    bit-identical to an uninterrupted {!Experiments.run_campaign} at the
    same scale.

    [?domains]/[?pool] parallelize exactly as in
    {!Experiments.run_campaign}.  [?on_seed] is an extra user hook called
    after each fresh seed's journal record is appended (so a raising hook
    loses nothing already recorded); like the journal hook it may run on
    any worker domain and must be thread-safe.

    [?stop] is the graceful-cancellation hook ({!Experiments.run_campaign}):
    once it returns [true], remaining fresh seeds are neither executed nor
    journaled, the call returns promptly with [completed = false], and —
    because every {e finished} seed was journaled before the hook fired —
    a later [~resume:true] invocation completes the campaign bit-identical
    to an uninterrupted run.  This is the checkpoint path shared by the
    campaign service's scheduler quanta, its graceful shutdown, and the
    batch CLI's SIGINT handler.

    The journal fd is closed — via [Fun.protect] — even when a worker or
    the user hook raises mid-campaign, so an aborted run always leaves a
    replayable journal behind for [~resume:true]. *)
