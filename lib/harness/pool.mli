(** A reusable work-stealing domain pool with a deterministic merge.

    The pool closes the oldest ROADMAP item: instead of the hand-rolled
    static [Domain.spawn] chunking the campaign used to do, callers submit
    a batch of [n] independent tasks identified by ids [0..n-1] and get
    back an array where slot [i] holds task [i]'s result — whatever worker
    happened to run it.  Scheduling is work stealing:

    - every worker owns a deque, seeded with a contiguous block of task
      ids so a balanced batch runs without any cross-worker traffic;
    - a worker pops its own deque from the front (ascending ids — the
      canonical order, which keeps cache-warm prefixes together);
    - a worker whose deque is empty steals from the {e back} of a
      victim's deque, scanning victims round-robin from its right
      neighbour.  Each deque is guarded by its own mutex (mutex-striped:
      contention is per-deque, not pool-global), and a steal moves
      exactly one task, so tail latency from one slow task no longer
      idles every other worker the way static chunking did.

    Determinism: results are keyed by task id, never by worker or
    completion order, so for pure (or commutatively-effectful) tasks the
    result of {!map} is bit-identical at any worker count — the property
    the campaign's hit lists and the reducer's outcome lists are CI-gated
    on.

    Worker 0 is the {e calling} domain: [create ~workers:n] spawns only
    [n - 1] domains, and a 1-worker pool runs every batch inline with no
    domain spawned at all.  Workers persist across batches (that is the
    "reusable" part: one pool serves the campaign phase and then the
    reduction phase), parked on a condition variable between batches.

    Exceptions: a raising task never wedges the pool.  The batch is
    drained to the end, the exception of the {e smallest} raising task id
    is re-raised in the caller (deterministic at any worker count), and
    the pool remains usable for further batches.

    One batch at a time: {!map} from two domains concurrently, or from
    inside a task of the same pool, is a programming error
    ([Invalid_argument]). *)

type t

val create : workers:int -> unit -> t
(** A pool of [max 1 workers] workers.  Worker 0 is the calling domain;
    [workers - 1] domains are spawned eagerly and parked.  Callers sizing
    a pool for a known task count should clamp — [workers] beyond the
    number of pending tasks only park idle domains (see
    {!Experiments.run_campaign}). *)

val workers : t -> int
(** The worker count (including the calling domain). *)

val map : t -> int -> (int -> 'a) -> 'a array
(** [map pool n f] evaluates [f i] for every [i] in [0..n-1] across the
    pool's workers and returns [[| f 0; ...; f (n-1) |]] — slot [i] is
    task [i]'s result regardless of which worker ran it or when.  Blocks
    until the whole batch is done.  If any task raised, the exception of
    the smallest raising id is re-raised (with its backtrace) after the
    batch drains.  [map pool 0 f] is [[||]]. *)

val map_worker : t -> int -> (worker:int -> int -> 'a) -> 'a array
(** {!map}, with each task told which worker ([0..workers-1]) is running
    it — for per-worker accounting such as the campaign's honest progress
    counters.  Results are still keyed by task id only. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map_list pool f xs]: {!map} over a list, preserving order. *)

type worker_stats = {
  ws_tasks : int;   (** tasks this worker executed (own + stolen) *)
  ws_steals : int;  (** tasks it stole from other workers' deques *)
}

val stats : t -> worker_stats array
(** Per-worker counters, cumulative since {!create}; slot [i] is worker
    [i] (worker 0 = the calling domain). *)

val stats_to_string : t -> string
(** One line per the whole pool: worker count plus each worker's
    [tasks(steals)]. *)

val shutdown : t -> unit
(** Park-then-join every spawned domain.  Idempotent; the pool must not
    be used afterwards. *)

val with_pool : workers:int -> (t -> 'a) -> 'a
(** [with_pool ~workers f]: {!create}, run [f], always {!shutdown} —
    even when [f] raises. *)
