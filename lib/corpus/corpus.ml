(** The reference and donor shader corpus.

    Plays the role of the 21 numerically-stable GraphicsFuzz reference
    shaders and the 43-shader donor set (section 4, "References, donors and
    test execution").  Every program type-checks, lowers to a valid module,
    and renders deterministically on the default input. *)

module Dsl = Dsl
(** Re-exported so downstream code (tests, examples) can write corpus-style
    programs with the same combinators. *)

open Glsl_like
open Dsl

(* The uniforms shared by all corpus programs; several values coincide with
   common literal constants so that ReplaceConstantWithUniform has material
   to work with. *)
let uniforms =
  [
    (Ast.TFloat, "u_zero");
    (Ast.TFloat, "u_one");
    (Ast.TFloat, "u_half");
    (Ast.TFloat, "u_scale");
    (Ast.TInt, "u_steps");
    (Ast.TInt, "u_mode");
    (Ast.TBool, "u_true");
    (Ast.TBool, "u_false");
  ]

let default_input =
  Spirv_ir.Input.make ~width:8 ~height:8
    [
      ("u_zero", Spirv_ir.Value.VFloat 0.0);
      ("u_one", Spirv_ir.Value.VFloat 1.0);
      ("u_half", Spirv_ir.Value.VFloat 0.5);
      ("u_scale", Spirv_ir.Value.VFloat 8.0);
      ("u_steps", Spirv_ir.Value.VInt 4l);
      ("u_mode", Spirv_ir.Value.VInt 2l);
      ("u_true", Spirv_ir.Value.VBool true);
      ("u_false", Spirv_ir.Value.VBool false);
    ]

let mk name main = (name, program ~uniforms main)
let mk_fns name functions main = (name, program ~uniforms ~functions main)

(* 1. horizontal gradient *)
let gradient = mk "gradient" [ color nx ny (v "u_half") ]

(* 2. checkerboard via integer mod *)
let checkerboard =
  mk "checkerboard"
    [
      dint "cx" (f2i (v "gl_x"));
      dint "cy" (f2i (v "gl_y"));
      dint "parity" (md (add (v "cx") (v "cy")) (il 2));
      if_ (eq (v "parity") (il 0))
        [ color (v "u_one") (v "u_one") (v "u_one") ]
        [ color (v "u_zero") (v "u_zero") (v "u_zero") ];
    ]

(* 3. bounded loop accumulation *)
let loop_sum =
  mk "loop_sum"
    [
      dfloat "acc" (fl 0.0);
      for_ "i" 0 4 [ set "acc" (add (v "acc") (mul nx (fl 0.2))) ];
      color (v "acc") ny (v "u_half");
    ]

(* 4. nested conditionals *)
let nested_if =
  mk "nested_if"
    [
      dfloat "r" (fl 0.1);
      if_ (gt nx (fl 0.5))
        [ if_ (gt ny (fl 0.5)) [ set "r" (fl 0.9) ] [ set "r" (fl 0.6) ] ]
        [ if_ (gt ny (fl 0.5)) [ set "r" (fl 0.4) ] [ set "r" (fl 0.2) ] ];
      color (v "r") (v "r") (v "r");
    ]

(* 5. helper function: scaled distance *)
let helper_distance =
  mk_fns "helper_distance"
    [
      fn "dist2" [ (Ast.TFloat, "a"); (Ast.TFloat, "b") ] ~ret:Ast.TFloat
        [ ret (add (mul (v "a") (v "a")) (mul (v "b") (v "b"))) ];
    ]
    [
      dfloat "d" (call "dist2" [ sub nx (fl 0.5); sub ny (fl 0.5) ]);
      if_ (lt (v "d") (fl 0.1))
        [ color (v "u_one") (v "u_zero") (v "u_zero") ]
        [ color (v "u_zero") (v "d") (v "u_half") ];
    ]

(* 6. loop with early saturation via conditional *)
let saturate =
  mk "saturate"
    [
      dfloat "acc" nx;
      for_ "i" 0 6
        [
          set "acc" (add (v "acc") (fl 0.15));
          if_ (gt (v "acc") (fl 1.0)) [ set "acc" (fl 1.0) ] [];
        ];
      color (v "acc") (sub (fl 1.0) (v "acc")) ny;
    ]

(* 7. vector construction and extraction *)
let vector_mix =
  mk "vector_mix"
    [
      decl (Ast.TVec 3) "c" (vec [ nx; ny; v "u_half" ]);
      dfloat "lum"
        (dvd (add (add (comp (v "c") 0) (comp (v "c") 1)) (comp (v "c") 2)) (fl 3.0));
      color (v "lum") (comp (v "c") 0) (comp (v "c") 2);
    ]

(* 8. integer mode dispatch (uniform-controlled) *)
let mode_dispatch =
  mk "mode_dispatch"
    [
      dfloat "r" (fl 0.0);
      if_ (eq (v "u_mode") (il 0)) [ set "r" nx ] [];
      if_ (eq (v "u_mode") (il 1)) [ set "r" ny ] [];
      if_ (eq (v "u_mode") (il 2)) [ set "r" (mul nx ny) ] [];
      if_ (ge (v "u_mode") (il 3)) [ set "r" (v "u_one") ] [];
      color (v "r") (v "r") (v "u_half");
    ]

(* 9. two helpers, one calling pattern shared *)
let two_helpers =
  mk_fns "two_helpers"
    [
      fn "bump" [ (Ast.TFloat, "x") ] ~ret:Ast.TFloat
        [ ret (mul (v "x") (sub (fl 1.0) (v "x"))) ];
      fn "avg" [ (Ast.TFloat, "a"); (Ast.TFloat, "b") ] ~ret:Ast.TFloat
        [ ret (dvd (add (v "a") (v "b")) (fl 2.0)) ];
    ]
    [
      dfloat "bx" (call "bump" [ nx ]);
      dfloat "by" (call "bump" [ ny ]);
      color (call "avg" [ v "bx"; v "by" ]) (v "bx") (v "by");
    ]

(* 10. loop over uniform-bounded steps: staircase *)
let staircase =
  mk "staircase"
    [
      dfloat "level" (fl 0.0);
      dint "band" (f2i (mul nx (fl 4.0)));
      for_ "i" 0 4
        [ if_ (lt (v "i") (v "band")) [ set "level" (add (v "level") (fl 0.25)) ] [] ];
      color (v "level") (v "level") ny;
    ]

(* 11. rings by squared distance bands *)
let rings =
  mk "rings"
    [
      dfloat "dx" (sub nx (v "u_half"));
      dfloat "dy" (sub ny (v "u_half"));
      dfloat "d" (add (mul (v "dx") (v "dx")) (mul (v "dy") (v "dy")));
      dint "band" (f2i (mul (v "d") (fl 16.0)));
      dint "p" (md (v "band") (il 2));
      if_ (eq (v "p") (il 0))
        [ color (v "u_one") (v "d") (v "u_zero") ]
        [ color (v "u_zero") (v "d") (v "u_one") ];
    ]

(* 12. boolean algebra on regions *)
let regions =
  mk "regions"
    [
      dbool "left" (lt nx (fl 0.5));
      dbool "top" (lt ny (fl 0.5));
      dbool "stripe" (eq (md (f2i (v "gl_x")) (il 3)) (il 0));
      if_ (and_ (v "left") (or_ (v "top") (v "stripe")))
        [ color (fl 0.8) (fl 0.3) (fl 0.1) ]
        [ color (fl 0.1) (fl 0.3) (fl 0.8) ];
    ]

(* 13. nested loops: multiplication table shading *)
let nested_loops =
  mk "nested_loops"
    [
      dfloat "acc" (fl 0.0);
      for_ "i" 0 3
        [ for_ "j" 0 3 [ set "acc" (add (v "acc") (mul (i2f (v "i")) (fl 0.02))) ] ];
      color (v "acc") (mul (v "acc") nx) (mul (v "acc") ny);
    ]

(* 14. helper with conditional return paths *)
let step_helper =
  mk_fns "step_helper"
    [
      fn "step" [ (Ast.TFloat, "edge"); (Ast.TFloat, "x") ] ~ret:Ast.TFloat
        [ if_ (ge (v "x") (v "edge")) [ ret (fl 1.0) ] [ ret (fl 0.0) ] ];
    ]
    [
      dfloat "s1" (call "step" [ fl 0.25; v "gl_x" ]);
      dfloat "s2" (call "step" [ fl 0.5; ny ]);
      color (v "s1") (v "s2") (mul (v "s1") (v "s2"));
    ]

(* 15. integer bit-ish patterns with division *)
let int_pattern =
  mk "int_pattern"
    [
      dint "xi" (f2i (v "gl_x"));
      dint "yi" (f2i (v "gl_y"));
      dint "q" (dvd (mul (v "xi") (add (v "yi") (il 1))) (il 3));
      dfloat "shade" (dvd (i2f (md (v "q") (il 5))) (fl 4.0));
      color (v "shade") (sub (fl 1.0) (v "shade")) (v "u_half");
    ]

(* 16. chained helper calls *)
let chained_helpers =
  mk_fns "chained_helpers"
    [
      fn "clamp01" [ (Ast.TFloat, "x") ] ~ret:Ast.TFloat
        [
          dfloat "r" (v "x");
          if_ (lt (v "r") (fl 0.0)) [ set "r" (fl 0.0) ] [];
          if_ (gt (v "r") (fl 1.0)) [ set "r" (fl 1.0) ] [];
          ret (v "r");
        ];
      fn "tri" [ (Ast.TFloat, "x") ] ~ret:Ast.TFloat
        [ ret (call "clamp01" [ sub (fl 1.0) (mul (fl 2.0) (v "x")) ]) ];
    ]
    [
      dfloat "a" (call "tri" [ nx ]);
      dfloat "b" (call "tri" [ ny ]);
      color (v "a") (v "b") (call "clamp01" [ add (v "a") (v "b") ]);
    ]

(* 17. accumulating vector via components *)
let vec_accumulate =
  mk "vec_accumulate"
    [
      decl (Ast.TVec 2) "p" (vec [ nx; ny ]);
      dfloat "acc" (fl 0.0);
      for_ "i" 0 3
        [ set "acc" (add (v "acc") (mul (comp (v "p") 0) (comp (v "p") 1))) ];
      color (v "acc") (comp (v "p") 0) (comp (v "p") 1);
    ]

(* 18. diagonal bands with negation *)
let diagonal =
  mk "diagonal"
    [
      dfloat "d" (sub nx ny);
      dfloat "ad" (v "d");
      if_ (lt (v "ad") (fl 0.0)) [ set "ad" (neg (v "ad")) ] [];
      dint "band" (f2i (mul (v "ad") (fl 6.0)));
      if_ (eq (md (v "band") (il 2)) (il 0))
        [ color (v "ad") (v "u_one") (v "u_zero") ]
        [ color (v "u_one") (v "ad") (v "u_half") ];
    ]

(* 19. uniform-scaled plasma-like mix *)
let plasma =
  mk "plasma"
    [
      dfloat "t" (dvd (v "gl_x") (v "u_scale"));
      dfloat "s" (dvd (v "gl_y") (v "u_scale"));
      dfloat "w" (mul (v "t") (sub (fl 1.0) (v "s")));
      dfloat "q" (mul (v "s") (sub (fl 1.0) (v "t")));
      color (add (v "w") (v "q")) (sub (v "w") (v "q")) (mul (v "w") (v "q"));
    ]

(* 20. loop with conditional discard-free masking *)
let masked_sum =
  mk "masked_sum"
    [
      dfloat "acc" (fl 0.0);
      dint "limit" (v "u_steps");
      for_ "i" 0 8
        [
          if_ (lt (v "i") (v "limit"))
            [ set "acc" (add (v "acc") (fl 0.1)) ]
            [ set "acc" (add (v "acc") (fl 0.01)) ];
        ];
      color (v "acc") (mul (v "acc") nx) (v "u_half");
    ]

(* 21. everything combined: helpers + loops + vectors + modes *)
let kitchen_sink =
  mk_fns "kitchen_sink"
    [
      fn "mixf" [ (Ast.TFloat, "a"); (Ast.TFloat, "b"); (Ast.TFloat, "t") ] ~ret:Ast.TFloat
        [ ret (add (mul (v "a") (sub (fl 1.0) (v "t"))) (mul (v "b") (v "t"))) ];
      fn "fold" [ (Ast.TInt, "n"); (Ast.TFloat, "seed") ] ~ret:Ast.TFloat
        [
          dfloat "acc" (v "seed");
          for_ "k" 0 4
            [ if_ (lt (v "k") (v "n")) [ set "acc" (mul (v "acc") (fl 0.8)) ] [] ];
          ret (v "acc");
        ];
    ]
    [
      dfloat "base" (call "fold" [ v "u_steps"; add nx (fl 0.2) ]);
      decl (Ast.TVec 3) "c"
        (vec [ v "base"; call "mixf" [ nx; ny; v "u_half" ]; v "u_half" ]);
      dfloat "r" (comp (v "c") 0);
      if_ (eq (v "u_mode") (il 2))
        [ set "r" (call "mixf" [ comp (v "c") 0; comp (v "c") 2; fl 0.25 ]) ]
        [];
      color (v "r") (comp (v "c") 1) (comp (v "c") 2);
    ]

(* 22. matrix transform: a fixed 2x2 shear applied to the fragment position *)
let matrix_shear =
  mk "matrix_shear"
    [
      decl (Ast.TMat 2) "m"
        (mat [ vec [ fl 1.0; fl 0.25 ]; vec [ fl 0.5; fl 1.0 ] ]);
      decl (Ast.TVec 2) "p" (vec [ nx; ny ]);
      decl (Ast.TVec 2) "q" (matvec (v "m") (v "p"));
      color (comp (v "q") 0) (comp (v "q") 1) (v "u_half");
    ]

(* 23. matrix columns drive a banded pattern *)
let matrix_bands =
  mk_fns "matrix_bands"
    [
      fn "mix2" [ (Ast.TVec 2, "a"); (Ast.TFloat, "t") ] ~ret:Ast.TFloat
        [
          ret
            (add
               (mul (comp (v "a") 0) (sub (fl 1.0) (v "t")))
               (mul (comp (v "a") 1) (v "t")));
        ];
    ]
    [
      decl (Ast.TMat 2) "basis"
        (mat [ vec [ v "u_one"; v "u_zero" ]; vec [ v "u_half"; v "u_one" ] ]);
      dfloat "w" (call "mix2" [ col (v "basis") 0; nx ]);
      dfloat "q" (call "mix2" [ col (v "basis") 1; ny ]);
      if_ (gt (v "w") (v "q"))
        [ color (v "w") (v "q") (v "u_zero") ]
        [ color (v "q") (v "w") (v "u_one") ];
    ]

let references =
  [
    gradient; checkerboard; loop_sum; nested_if; helper_distance; saturate;
    vector_mix; mode_dispatch; two_helpers; staircase; rings; regions;
    nested_loops; step_helper; int_pattern; chained_helpers; vec_accumulate;
    diagonal; plasma; masked_sum; kitchen_sink; matrix_shear; matrix_bands;
  ]

(* Extra donor-only programs: rich in leaf helper functions for AddFunction. *)
let donor_extra =
  [
    mk_fns "donor_polys"
      [
        fn "poly2" [ (Ast.TFloat, "x") ] ~ret:Ast.TFloat
          [ ret (add (mul (v "x") (v "x")) (mul (fl 0.5) (v "x"))) ];
        fn "poly3" [ (Ast.TFloat, "x"); (Ast.TFloat, "k") ] ~ret:Ast.TFloat
          [ ret (add (mul (mul (v "x") (v "x")) (v "x")) (v "k")) ];
        fn "hat" [ (Ast.TFloat, "x") ] ~ret:Ast.TFloat
          [
            dfloat "y" (v "x");
            if_ (gt (v "y") (fl 0.5)) [ set "y" (sub (fl 1.0) (v "y")) ] [];
            ret (mul (fl 2.0) (v "y"));
          ];
      ]
      [ color (call "poly2" [ nx ]) (call "hat" [ ny ]) (fl 0.5) ];
    mk_fns "donor_ints"
      [
        fn "gcd_ish" [ (Ast.TInt, "a"); (Ast.TInt, "b") ] ~ret:Ast.TInt
          [
            dint "x" (v "a");
            dint "y" (v "b");
            for_ "i" 0 6
              [ if_ (gt (v "y") (il 0))
                  [ dint "t" (md (v "x") (add (v "y") (il 1))); set "x" (v "y"); set "y" (v "t") ]
                  [] ];
            ret (v "x");
          ];
        fn "scalei" [ (Ast.TInt, "n") ] ~ret:Ast.TFloat
          [ ret (dvd (i2f (v "n")) (fl 7.0)) ];
      ]
      [
        dint "g" (call "gcd_ish" [ f2i (v "gl_x"); f2i (v "gl_y") ]);
        color (call "scalei" [ v "g" ]) nx ny;
      ];
    mk_fns "donor_bools"
      [
        fn "xor" [ (Ast.TBool, "a"); (Ast.TBool, "b") ] ~ret:Ast.TBool
          [ ret (or_ (and_ (v "a") (not_ (v "b"))) (and_ (not_ (v "a")) (v "b"))) ];
        fn "pick" [ (Ast.TBool, "c"); (Ast.TFloat, "x"); (Ast.TFloat, "y") ] ~ret:Ast.TFloat
          [ if_ (v "c") [ ret (v "x") ] [ ret (v "y") ] ];
      ]
      [
        dbool "a" (lt nx (fl 0.5));
        dbool "b" (lt ny (fl 0.5));
        color (call "pick" [ call "xor" [ v "a"; v "b" ]; fl 0.9; fl 0.2 ]) nx ny;
      ];
  ]

let donors = references @ donor_extra

(* ------------------------------------------------------------------ *)
(* Loop corpus: counted, nested, uniform-bounded and genuinely unbounded
   loops exercising the loop-aware TV pipeline.  Kept separate from
   [references] so the campaign composition, golden counts and RNG
   streams of the earlier experiments stay byte-identical. *)

(* L1. constant-bound accumulation: concretely unrollable *)
let loop_counted =
  mk "loop_counted"
    [
      dfloat "acc" (fl 0.0);
      for_ "i" 0 5 [ set "acc" (add (v "acc") (mul nx (fl 0.15))) ];
      color (v "acc") ny (v "u_half");
    ]

(* L2. nested constant loops *)
let loop_nested_counted =
  mk "loop_nested_counted"
    [
      dfloat "acc" (fl 0.0);
      for_ "i" 0 2
        [ for_ "j" 0 3 [ set "acc" (add (v "acc") (mul nx (fl 0.05))) ] ];
      color (v "acc") (mul (v "acc") ny) (v "u_half");
    ]

(* L3. for-to against a constant expression bound *)
let loop_to_counted =
  mk "loop_to_counted"
    [
      dfloat "acc" ny;
      for_to "i" 0 (il 6) [ set "acc" (add (v "acc") (fl 0.1)) ];
      color nx (v "acc") (v "u_half");
    ]

(* L4. uniform bound clamped to [0, 8]: the trip count is not concrete,
   but the range analysis proves the bound, so TV unrolls under forced
   exits instead of abstaining *)
let loop_uniform_clamped =
  mk "loop_uniform_clamped"
    [
      dint "n" (v "u_steps");
      if_ (lt (v "n") (il 0)) [ set "n" (il 0) ] [];
      if_ (gt (v "n") (il 8)) [ set "n" (il 8) ] [];
      dfloat "acc" (fl 0.0);
      for_to "i" 0 (v "n") [ set "acc" (add (v "acc") (fl 0.11)) ];
      color (v "acc") nx (v "u_half");
    ]

(* L5. second clamped-uniform loop with a multiplicative body *)
let loop_mode_clamped =
  mk "loop_mode_clamped"
    [
      dint "k" (v "u_mode");
      if_ (lt (v "k") (il 1)) [ set "k" (il 1) ] [];
      if_ (gt (v "k") (il 4)) [ set "k" (il 4) ] [];
      dfloat "acc" (v "u_one");
      for_to "j" 0 (v "k") [ set "acc" (mul (v "acc") (fl 0.7)) ];
      color (v "acc") (sub (fl 1.0) (v "acc")) ny;
    ]

(* L6. genuinely unbounded for the analysis: the raw uniform bound has no
   provable range, so TV abstains (loop-unbounded) while the interpreter
   still runs fine on the default input (u_steps = 4) *)
let loop_uniform_raw =
  mk "loop_uniform_raw"
    [
      dfloat "acc" (fl 0.0);
      for_to "i" 0 (v "u_steps") [ set "acc" (add (v "acc") (fl 0.2)) ];
      color (v "acc") ny nx;
    ]

let loop_references =
  [
    loop_counted; loop_nested_counted; loop_to_counted; loop_uniform_clamped;
    loop_mode_clamped; loop_uniform_raw;
  ]

(* The counted subset: loops whose trip-count bound the range analysis is
   expected to prove (the CI gate demands >= 90% non-Abstained TV
   verdicts here). *)
let counted_loop_names =
  [
    "loop_counted"; "loop_nested_counted"; "loop_to_counted";
    "loop_uniform_clamped"; "loop_mode_clamped";
  ]

(* ------------------------------------------------------------------ *)
(* Lowered forms                                                       *)

let lower_checked (name, p) =
  match Typecheck.check p with
  | Error e -> invalid_arg (Printf.sprintf "corpus program %s: %s" name e)
  | Ok () -> (name, Lower.lower p)

let lowered_references = lazy (List.map lower_checked references)
let lowered_donors = lazy (List.map lower_checked donors)
let lowered_loop_references = lazy (List.map lower_checked loop_references)

(** The lowered reference set paired with the input — what spirv-fuzz
    consumes; the paper additionally feeds spirv-opt-optimized copies of
    each shader, which [Compilers.Optimizer] provides. *)
let reference_contexts () =
  List.map
    (fun (name, m) -> (name, Spirv_fuzz.Context.make m default_input))
    (Lazy.force lowered_references)

(* ------------------------------------------------------------------ *)
(* Memory corpus: modules that index composites with computed values,
   exercising the {!Spirv_ir.Memory} access-path analysis and the
   symbolic memory model that folds proven-finite dynamic indices.  The
   MiniGLSL surface language has no arrays, so these are built directly
   with {!Spirv_ir.Builder}.  Kept separate from [references] so the
   campaign composition, golden counts and RNG streams of the earlier
   experiments stay byte-identical. *)

module B = Spirv_ir.Builder

(* [0, n) index from an arbitrary int: ((i mod n) + n) mod n.  The range
   analysis proves the result in-bounds even though the dividend has no
   bound: a singleton divisor n caps the remainder at |n|-1 in magnitude,
   and the non-negative dividend of the outer mod pins the sign. *)
let clamped_index b fb ~n i =
  let cn = B.cint b n in
  B.smod fb (B.iadd fb (B.smod fb i cn) cn) cn

(* Shared preamble: one function, one open block, the fragment coordinate
   split into components, and a float array local of length [len] with
   every cell initialised (constant-index stores strongly kill the
   initial-value token per cell, keeping the uninitialized-load rule
   quiet). *)
let mem_prologue b ~len ~init =
  let out = B.output_color b in
  let fc = B.frag_coord b in
  let fb, main, _ =
    B.begin_function b ~name:"main" ~ret:(B.void_ty b) ~params:[]
  in
  let l = B.new_label fb in
  B.start_block fb l;
  let xy = B.load fb fc in
  let x = B.extract fb xy [ 0 ] in
  let y = B.extract fb xy [ 1 ] in
  let arr_ty = B.array_ty b ~elem:(B.float_ty b) ~len in
  let a = B.hoisted_var fb ~pointee:arr_ty in
  List.iteri
    (fun j v ->
      B.store fb (B.access_chain fb a [ B.cint b j ]) (B.cfloat b v))
    init;
  (out, fb, main, x, y, a)

let mem_epilogue b fb main ~out (r, g, bl) =
  let v4 =
    B.composite fb ~ty:(B.vec4f b) [ r; g; bl; B.cfloat b 1.0 ]
  in
  B.store fb out v4;
  B.ret fb;
  ignore (B.end_function fb);
  B.finish b ~entry:main

(* M1. two dynamic loads through proven-in-bounds rotating indices: the
   symbolic memory model folds each into a select chain over the four
   cells instead of abstaining *)
let mem_rotate =
  let b = B.create () in
  let out, fb, main, x, y, a =
    mem_prologue b ~len:4 ~init:[ 0.1; 0.35; 0.6; 0.85 ]
  in
  let ix = B.f_to_s fb x in
  let j = clamped_index b fb ~n:4 ix in
  let j2 = clamped_index b fb ~n:4 (B.iadd fb j (B.cint b 1)) in
  let r = B.load fb (B.access_chain fb a [ j ]) in
  let g = B.load fb (B.access_chain fb a [ j2 ]) in
  ("mem_rotate", mem_epilogue b fb main ~out (r, g, B.fmul fb y (B.cfloat b 0.5)))

(* M2. a dynamic store followed by a dynamic load: the store becomes a
   per-cell conditional update, the load a select chain over the updated
   cells; the constant reload of cell 0 keeps the whole array observed *)
let mem_swizzle =
  let b = B.create () in
  let out, fb, main, x, y, a =
    mem_prologue b ~len:3 ~init:[ 0.2; 0.5; 0.8 ]
  in
  let j = clamped_index b fb ~n:3 (B.f_to_s fb y) in
  B.store fb (B.access_chain fb a [ j ]) x;
  let r = B.load fb (B.access_chain fb a [ j ]) in
  let g = B.load fb (B.access_chain fb a [ B.cint b 0 ]) in
  ("mem_swizzle", mem_epilogue b fb main ~out (r, g, B.cfloat b 0.25))

(* M3. constant-index load past a may-aliasing dynamic store — the exact
   shape [bug_forward_aliased_store] miscompiles: a buggy store-to-load
   forwarder that keys on the syntactic chain forwards the cell-0 init
   over the dynamic store even though the dynamic index may be 0 *)
let mem_mask =
  let b = B.create () in
  let out, fb, main, x, y, a =
    mem_prologue b ~len:2 ~init:[ 0.0; 0.9 ]
  in
  B.store fb (B.access_chain fb a [ B.cint b 0 ]) x;
  let j = clamped_index b fb ~n:2 (B.f_to_s fb y) in
  B.store fb (B.access_chain fb a [ j ]) (B.fmul fb y (B.cfloat b 0.5)) ;
  let r = B.load fb (B.access_chain fb a [ B.cint b 0 ]) in
  let g = B.load fb (B.access_chain fb a [ j ]) in
  ("mem_mask", mem_epilogue b fb main ~out (r, g, B.cfloat b 0.75))

(* M4. table lookup indexed by a uniform: the index is symbolic on every
   pixel yet the clamp proves it in-bounds, so TV still covers the
   module *)
let mem_gate =
  let b = B.create () in
  let out, fb, main, x, y, a =
    mem_prologue b ~len:4 ~init:[ 0.15; 0.4; 0.65; 0.9 ]
  in
  let int_ty = B.int_ty b in
  let u_mode = B.uniform b ~pointee:int_ty ~name:"u_mode" in
  let k = clamped_index b fb ~n:4 (B.load fb u_mode) in
  let r = B.load fb (B.access_chain fb a [ k ]) in
  let g = B.fmul fb r x in
  ("mem_gate", mem_epilogue b fb main ~out (r, g, B.fmul fb y (B.cfloat b 0.35)))

(** Builder-built modules (already IR — no lowering step).  Paired with
    [default_input] they validate, interpret deterministically, stay
    lint-clean under the memory rules, and pass translation validation
    with zero dynamic-index abstentions. *)
let memory_references =
  [ mem_rotate; mem_swizzle; mem_mask; mem_gate ]

let memory_reference_names = List.map fst memory_references
