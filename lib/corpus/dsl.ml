(** Small combinators for writing MiniGLSL corpus programs legibly. *)

open Glsl_like

let fl x = Ast.Float_lit x
let il n = Ast.Int_lit n
let bl b = Ast.Bool_lit b
let v x = Ast.Var x

let add a b = Ast.Binop (Ast.Add, a, b)
let sub a b = Ast.Binop (Ast.Sub, a, b)
let mul a b = Ast.Binop (Ast.Mul, a, b)
let dvd a b = Ast.Binop (Ast.Div, a, b)
let md a b = Ast.Binop (Ast.Mod, a, b)
let lt a b = Ast.Binop (Ast.Lt, a, b)
let le a b = Ast.Binop (Ast.Le, a, b)
let gt a b = Ast.Binop (Ast.Gt, a, b)
let ge a b = Ast.Binop (Ast.Ge, a, b)
let eq a b = Ast.Binop (Ast.Eq, a, b)
let ne a b = Ast.Binop (Ast.Ne, a, b)
let and_ a b = Ast.Binop (Ast.And, a, b)
let or_ a b = Ast.Binop (Ast.Or, a, b)
let neg a = Ast.Unop (Ast.Neg, a)
let not_ a = Ast.Unop (Ast.Not, a)
let i2f a = Ast.Unop (Ast.Int_to_float, a)
let f2i a = Ast.Unop (Ast.Float_to_int, a)
let call name args = Ast.Call (name, args)
let vec parts = Ast.Vec parts
let mat cols = Ast.Mat cols
let comp e i = Ast.Component (e, i)
let col e i = Ast.Column (e, i)
let matvec m v = Ast.Mat_vec (m, v)

let decl ty x e = Ast.Declare (ty, x, e)
let dfloat x e = decl Ast.TFloat x e
let dint x e = decl Ast.TInt x e
let dbool x e = decl Ast.TBool x e
let set x e = Ast.Assign (x, e)
let if_ c t e = Ast.If (c, t, e)
let for_ i lo hi body = Ast.For (i, lo, hi, body)
let for_to i lo bound body = Ast.For_to (i, lo, bound, body)
let color r g b = Ast.Set_color (r, g, b)
let ret e = Ast.Return e

let fn name params ~ret:fn_ret body =
  { Ast.fn_name = name; Ast.fn_params = params; Ast.fn_ret; Ast.fn_body = body }

let program ?(uniforms = []) ?(functions = []) main =
  { Ast.uniforms; Ast.functions; Ast.main = main }

(** gl_x and gl_y normalized to roughly [0, 1) on the default 8x8 grid. *)
let nx = dvd (v "gl_x") (fl 8.0)
let ny = dvd (v "gl_y") (fl 8.0)
