(** A digest-keyed content-addressed object store on disk — the persistent
    half of the execution engine's run cache, and the artifact store for
    optimized modules and reduced tests.

    Objects live under [root/objects/] in sharded two-level directories
    ([ab/cdef…]: first two hex characters of the key name the shard).
    Writes are atomic (unique temp file + [rename]), so a store is never
    observed torn, even when a campaign is killed mid-write or several
    domains/processes write concurrently; [fsync] is off by default because
    cached objects are recomputable.

    Recency for the LRU eviction policy is kept both in an in-memory index
    and persistently as file mtimes (bumped on every hit), so eviction
    order is meaningful across restarts.  With [max_bytes] configured, the
    bound is enforced on every {!put}; {!gc} enforces it on demand. *)

type t

type stats = {
  objects : int;    (** objects currently indexed *)
  bytes : int;      (** their total payload size *)
  puts : int;
  gets : int;
  hits : int;       (** gets that found the object *)
  misses : int;
  evictions : int;  (** objects deleted by the size bound *)
}

val open_ : ?fsync:bool -> ?max_bytes:int -> root:string -> unit -> t
(** Open (creating directories as needed) a store rooted at [root].  The
    existing object tree is scanned into the index, so [stats] and eviction
    order account for objects written by earlier runs. *)

val key_of_string : string -> string
(** Digest an arbitrary string (e.g. a namespaced cache key like
    ["run:<target>:<module digest>:<input digest>"]) into a well-formed
    store key (lowercase hex). *)

val put : t -> key:string -> string -> unit
(** Store an object.  Re-putting an existing key only refreshes its
    recency — content-addressing guarantees the bytes are identical.
    Enforces [max_bytes] (when configured) by evicting least-recently-used
    objects.  @raise Invalid_argument on a malformed (non-hex) key. *)

val get : t -> key:string -> string option
(** Fetch an object and mark it recently used.  Falls through to the
    filesystem on an index miss, so objects written by a concurrent
    process sharing the store are found. *)

val mem : t -> key:string -> bool

val gc : ?max_bytes:int -> t -> int
(** Resynchronize the index with the object tree, then evict
    least-recently-used objects until the total size fits under
    [max_bytes] (defaulting to the bound configured at {!open_}; no bound
    configured anywhere means no eviction).  Returns the number of objects
    evicted by this call. *)

val stats : t -> stats
val root : t -> string
val pp_stats : Format.formatter -> stats -> unit
val stats_to_string : stats -> string
