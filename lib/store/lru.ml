(** A capacity-bounded LRU map: Hashtbl for lookup, intrusive doubly-linked
    list for recency order.  All operations are O(1); eviction removes the
    least-recently-used binding and bumps a counter.

    This is the explicit eviction policy behind both the engine's in-memory
    memo tables (previously unbounded — a long-running service would grow
    without limit) and the bookkeeping of {!Cas}.  Not thread-safe: callers
    (the engine, the CAS) already serialize access under their own mutex. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;  (** towards MRU *)
  mutable next : ('k, 'v) node option;  (** towards LRU *)
}

type ('k, 'v) t = {
  capacity : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;  (** most recently used *)
  mutable tail : ('k, 'v) node option;  (** least recently used *)
  mutable evictions : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Lru.create: capacity must be positive";
  {
    capacity;
    table = Hashtbl.create (min capacity 1024);
    head = None;
    tail = None;
    evictions = 0;
  }

let capacity t = t.capacity
let length t = Hashtbl.length t.table
let evictions t = t.evictions
let mem t k = Hashtbl.mem t.table k

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let find t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some node ->
      unlink t node;
      push_front t node;
      Some node.value

let remove t k =
  match Hashtbl.find_opt t.table k with
  | None -> ()
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table k

let evict_lru t =
  match t.tail with
  | None -> None
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table node.key;
      t.evictions <- t.evictions + 1;
      Some (node.key, node.value)

let set t k v =
  (match Hashtbl.find_opt t.table k with
  | Some node ->
      node.value <- v;
      unlink t node;
      push_front t node
  | None ->
      let node = { key = k; value = v; prev = None; next = None } in
      Hashtbl.replace t.table k node;
      push_front t node);
  while Hashtbl.length t.table > t.capacity do
    ignore (evict_lru t)
  done

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None

(** Keys from most- to least-recently used (for tests). *)
let keys_mru_first t =
  let rec go acc = function
    | None -> List.rev acc
    | Some node -> go (node.key :: acc) node.next
  in
  go [] t.head
