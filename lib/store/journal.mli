(** An append-only, checksummed journal: the campaign's crash-recovery log.

    Each {!append} writes one self-checking record ([md5 payload] per
    line) with a single [write(2)], so records from concurrent domains
    interleave only at record granularity.  {!replay} returns the longest
    valid prefix of records, dropping a truncated or corrupted suffix —
    the state a campaign killed at an arbitrary point leaves behind.
    Payloads must be single lines; callers quote structured fields. *)

type t

val open_append : ?fsync:bool -> path:string -> unit -> t
(** Open [path] for appending, creating it (and parent directories) if
    missing.  With [fsync] every record is forced to disk before {!append}
    returns. *)

val append : t -> string -> unit
(** Append one record.  Thread-safe.  @raise Invalid_argument if the
    payload contains a newline. *)

val appended : t -> int
(** Records appended through this handle. *)

val close : t -> unit

type replay = {
  records : string list;  (** valid payloads, in append order *)
  dropped : bool;         (** true if a bad suffix was discarded *)
  valid_bytes : int;      (** byte length of the valid prefix *)
}

val replay : path:string -> replay
(** Read the longest valid prefix of the journal at [path] (missing file =
    empty journal). *)

val truncate : path:string -> bytes:int -> unit
(** Cut the journal down to [bytes] (its replay's [valid_bytes]) — a
    resuming writer must do this before {!open_append}, or its first record
    is glued onto the torn half-written line and lost to the next replay. *)
