(** Persistent job records for the campaign service (see the interface).
    One checksummed journal record per submission and per state
    transition; replay reconstructs the queue after any crash. *)

type state = Queued | Running | Done | Cancelled

let state_to_string = function
  | Queued -> "queued"
  | Running -> "running"
  | Done -> "done"
  | Cancelled -> "cancelled"

let state_of_string = function
  | "queued" -> Some Queued
  | "running" -> Some Running
  | "done" -> Some Done
  | "cancelled" -> Some Cancelled
  | _ -> None

type record = {
  id : string;
  tool : string;
  seeds : int;
  targets : string list;
  weights : string;
  tv : bool;
}

type t = {
  journal : Journal.t;
  (* submission order is the scheduler's round-robin order; the table
     holds the latest state *)
  mutable order : string list;  (* reversed: newest first *)
  jobs : (string, record * state) Hashtbl.t;
  (* latest per-job named counters (tv-abstain buckets); absent for jobs
     that never recorded any *)
  job_counters : (string, (string * int) list) Hashtbl.t;
}

let log_path dir = Filename.concat dir "jobs.log"
let version = "v1"

(* Every variable-content field is %S-quoted so records stay single
   lines — the same discipline as the campaign journal's codec. *)
let encode_job (r : record) =
  String.concat "\t"
    [
      "job"; version;
      Printf.sprintf "%S" r.id;
      Printf.sprintf "%S" r.tool;
      string_of_int r.seeds;
      Printf.sprintf "%S" (String.concat "," r.targets);
      Printf.sprintf "%S" r.weights;
      (if r.tv then "1" else "0");
    ]

let encode_state ~id st =
  String.concat "\t"
    [ "state"; version; Printf.sprintf "%S" id; state_to_string st ]

(* counters records carry "name=value,..." pairs; replayers that predate
   them skip the unknown record type (the journal is checksummed, so an
   unparseable-but-valid record is a future shape, not corruption) *)
let encode_counters ~id kvs =
  let body =
    String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) kvs)
  in
  String.concat "\t"
    [ "counters"; version; Printf.sprintf "%S" id; Printf.sprintf "%S" body ]

let decode_counter_body body =
  List.filter_map
    (fun item ->
      match String.index_opt item '=' with
      | Some i -> (
          let k = String.sub item 0 i in
          let v = String.sub item (i + 1) (String.length item - i - 1) in
          match int_of_string_opt v with
          | Some n when k <> "" -> Some (k, n)
          | _ -> None)
      | None -> None)
    (List.filter
       (fun s -> s <> "")
       (String.split_on_char ',' body))

let unquote s = try Some (Scanf.sscanf s "%S%!" Fun.id) with _ -> None

let decode record =
  match String.split_on_char '\t' record with
  | [ "job"; v; id; tool; seeds; targets; weights; tv ]
    when String.equal v version -> (
      match
        (unquote id, unquote tool, int_of_string_opt seeds, unquote targets,
         unquote weights, tv)
      with
      | Some id, Some tool, Some seeds, Some targets, Some weights,
        (("0" | "1") as tv) ->
          Some
            (`Job
              {
                id;
                tool;
                seeds;
                targets =
                  (if String.equal targets "" then []
                   else String.split_on_char ',' targets);
                weights;
                tv = String.equal tv "1";
              })
      | _ -> None)
  | [ "state"; v; id; st ] when String.equal v version -> (
      match (unquote id, state_of_string st) with
      | Some id, Some st -> Some (`State (id, st))
      | _ -> None)
  | [ "counters"; v; id; body ] when String.equal v version -> (
      match (unquote id, unquote body) with
      | Some id, Some body -> Some (`Counters (id, decode_counter_body body))
      | _ -> None)
  | _ -> None

let open_ ?(fsync = false) ~dir () : t =
  let path = log_path dir in
  let replay = Journal.replay ~path in
  let jobs = Hashtbl.create 16 in
  let job_counters = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun record ->
      match decode record with
      | Some (`Job r) ->
          if not (Hashtbl.mem jobs r.id) then begin
            Hashtbl.replace jobs r.id (r, Queued);
            order := r.id :: !order
          end
      | Some (`State (id, st)) -> (
          match Hashtbl.find_opt jobs id with
          | Some (r, _) -> Hashtbl.replace jobs id (r, st)
          | None -> ())
      | Some (`Counters (id, kvs)) ->
          if Hashtbl.mem jobs id then Hashtbl.replace job_counters id kvs
      | None -> () (* checksummed but unparseable: a future record shape *))
    replay.Journal.records;
  (* cut off a torn suffix before appending, or the first new record is
     glued onto the half-written line and lost to the next replay *)
  if replay.Journal.dropped then
    Journal.truncate ~path ~bytes:replay.Journal.valid_bytes;
  { journal = Journal.open_append ~fsync ~path (); order = !order; jobs;
    job_counters }

let add t (r : record) =
  if Hashtbl.mem t.jobs r.id then
    invalid_arg (Printf.sprintf "Jobs.add: duplicate job id %s" r.id);
  Journal.append t.journal (encode_job r);
  Hashtbl.replace t.jobs r.id (r, Queued);
  t.order <- r.id :: t.order

let set_state t ~id st =
  match Hashtbl.find_opt t.jobs id with
  | None -> ()
  | Some (r, prev) ->
      if prev <> st then begin
        Journal.append t.journal (encode_state ~id st);
        Hashtbl.replace t.jobs id (r, st)
      end

let set_counters t ~id kvs =
  if Hashtbl.mem t.jobs id then begin
    let kvs = List.sort (fun (a, _) (b, _) -> String.compare a b) kvs in
    if Hashtbl.find_opt t.job_counters id <> Some kvs then begin
      Journal.append t.journal (encode_counters ~id kvs);
      Hashtbl.replace t.job_counters id kvs
    end
  end

let counters t ~id =
  Option.value ~default:[] (Hashtbl.find_opt t.job_counters id)

let entries t =
  List.rev_map (fun id -> Hashtbl.find t.jobs id) t.order

let find t ~id = Hashtbl.find_opt t.jobs id

let fresh_id t =
  (* monotonic across restarts: one past the highest numeric suffix ever
     recorded, so a restarted daemon never reuses a dead job's id *)
  let high =
    Hashtbl.fold
      (fun id _ acc ->
        match String.index_opt id '-' with
        | Some i -> (
            match
              int_of_string_opt
                (String.sub id (i + 1) (String.length id - i - 1))
            with
            | Some n -> max acc n
            | None -> acc)
        | None -> acc)
      t.jobs 0
  in
  Printf.sprintf "job-%d" (high + 1)

let close t = Journal.close t.journal
