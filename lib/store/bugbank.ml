(** The cross-campaign bug bank (see the interface). *)

type entry = {
  key : string;
  target : string;
  bug_id : string;
  types : string list;
  mutable count : int;
}

type t = {
  dir : string;
  lock : Mutex.t;
  entries : (string, entry) Hashtbl.t;
  mutable dirty : bool;
}

let file_of_dir dir = Filename.concat dir "bugbank.txt"
let magic = "tbct-bugbank 1"

let signature_key ~target ~types =
  let types = List.sort_uniq String.compare types in
  target ^ "|" ^ String.concat "+" types

(* ------------------------------------------------------------------ *)
(* Serialization: one header line, then one tab-separated line per entry
   with %S-quoted fields (signatures and type ids never contain raw tabs
   once quoted). *)

let entry_to_line e =
  Printf.sprintf "%d\t%S\t%S\t%S" e.count e.target e.bug_id
    (String.concat "," e.types)

let unquote s = try Some (Scanf.sscanf s "%S%!" Fun.id) with _ -> None

let entry_of_line line =
  match String.split_on_char '\t' line with
  | [ count; target; bug_id; types ] -> (
      match
        (int_of_string_opt count, unquote target, unquote bug_id, unquote types)
      with
      | Some count, Some target, Some bug_id, Some types ->
          let types =
            if String.equal types "" then []
            else String.split_on_char ',' types
          in
          Some
            {
              key = signature_key ~target ~types;
              target;
              bug_id;
              types;
              count;
            }
      | _ -> None)
  | _ -> None

let to_string t =
  let b = Buffer.create 256 in
  Buffer.add_string b (magic ^ "\n");
  Hashtbl.fold (fun _ e acc -> e :: acc) t.entries []
  |> List.sort (fun a b -> String.compare a.key b.key)
  |> List.iter (fun e -> Buffer.add_string b (entry_to_line e ^ "\n"));
  Buffer.contents b

(* ------------------------------------------------------------------ *)

let load ~dir =
  let t =
    { dir; lock = Mutex.create (); entries = Hashtbl.create 64; dirty = false }
  in
  (match Fsio.read_file (file_of_dir dir) with
  | None -> ()
  | Some text ->
      List.iteri
        (fun i line ->
          if i > 0 && line <> "" then
            match entry_of_line line with
            | Some e -> Hashtbl.replace t.entries e.key e
            | None -> () (* skip corrupt lines; the rest of the bank survives *))
        (String.split_on_char '\n' text));
  t

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let record t ~target ~bug_id ~types =
  let types = List.sort_uniq String.compare types in
  let key = signature_key ~target ~types in
  locked t (fun () ->
      t.dirty <- true;
      match Hashtbl.find_opt t.entries key with
      | Some e ->
          e.count <- e.count + 1;
          `Known
      | None ->
          Hashtbl.replace t.entries key { key; target; bug_id; types; count = 1 };
          `New)

let mem t ~target ~types =
  locked t (fun () ->
      Hashtbl.mem t.entries (signature_key ~target ~types))

let size t = locked t (fun () -> Hashtbl.length t.entries)

let entries t =
  locked t (fun () ->
      Hashtbl.fold (fun _ e acc -> e :: acc) t.entries []
      |> List.sort (fun a b -> String.compare a.key b.key))

let import t text =
  let fresh = ref 0 in
  List.iteri
    (fun i line ->
      if i > 0 && line <> "" then
        match entry_of_line line with
        | Some e ->
            locked t (fun () ->
                t.dirty <- true;
                match Hashtbl.find_opt t.entries e.key with
                | Some mine -> mine.count <- mine.count + e.count
                | None ->
                    Hashtbl.replace t.entries e.key e;
                    incr fresh)
        | None -> ())
    (String.split_on_char '\n' text);
  !fresh

let save ?(fsync = false) t =
  locked t (fun () ->
      if t.dirty then begin
        Fsio.write_atomic ~fsync ~path:(file_of_dir t.dir) (to_string t);
        t.dirty <- false
      end)
