(** The append-only, checksummed campaign journal (see the interface).

    One record per line: [<md5-hex-of-payload> <payload>].  Replay accepts
    the longest valid prefix and discards everything from the first
    truncated or corrupted record on — exactly the records a killed writer
    may have left half-written.  Payloads are restricted to single lines;
    callers encode structured data (the harness quotes fields with
    [%S]). *)

type t = {
  path : string;
  fd : Unix.file_descr;
  fsync : bool;
  lock : Mutex.t;
  mutable appended : int;
}

let checksum payload = Stdlib.Digest.to_hex (Stdlib.Digest.string payload)

let open_append ?(fsync = false) ~path () =
  Fsio.ensure_dir (Filename.dirname path);
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  { path; fd; fsync; lock = Mutex.create (); appended = 0 }

let append t payload =
  if String.contains payload '\n' then
    invalid_arg "Journal.append: payload must be a single line";
  let line = checksum payload ^ " " ^ payload ^ "\n" in
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      (* a single write(2) of the whole line: appends from concurrent
         domains interleave at record granularity, never within one *)
      let n = String.length line in
      let written = ref 0 in
      while !written < n do
        written :=
          !written + Unix.write_substring t.fd line !written (n - !written)
      done;
      if t.fsync then Unix.fsync t.fd;
      t.appended <- t.appended + 1)

let appended t = t.appended

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Replay *)

type replay = {
  records : string list;  (** valid payloads, in append order *)
  dropped : bool;  (** a truncated/corrupted suffix was discarded *)
  valid_bytes : int;  (** byte length of the valid prefix *)
}

let parse_line line =
  (* "<32 hex> <payload>" *)
  if String.length line < 33 || line.[32] <> ' ' then None
  else
    let sum = String.sub line 0 32 in
    let payload = String.sub line 33 (String.length line - 33) in
    if String.equal sum (checksum payload) then Some payload else None

let replay ~path : replay =
  match Fsio.read_file path with
  | None -> { records = []; dropped = false; valid_bytes = 0 }
  | Some text ->
      let n = String.length text in
      let rec go acc pos =
        if pos >= n then { records = List.rev acc; dropped = false; valid_bytes = pos }
        else
          match String.index_from_opt text pos '\n' with
          | None ->
              (* no trailing newline: the writer died mid-record *)
              { records = List.rev acc; dropped = true; valid_bytes = pos }
          | Some nl -> (
              match parse_line (String.sub text pos (nl - pos)) with
              | Some payload -> go (payload :: acc) (nl + 1)
              | None ->
                  (* first bad record: discard it and everything after —
                     append-only means nothing beyond it can be trusted *)
                  { records = List.rev acc; dropped = true; valid_bytes = pos })
      in
      go [] 0

let truncate ~path ~bytes =
  (* drop a torn suffix before re-opening for append, so fresh records are
     not glued onto a half-written line *)
  if Sys.file_exists path then Unix.truncate path bytes
