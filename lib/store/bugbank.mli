(** A persistent bank of reduced bugs, keyed by transformation-type
    signature — the cross-campaign half of the paper's deduplication story.

    Each reduced spirv-fuzz test is characterised by the set of
    (non-ignored) transformation types in its minimized sequence; the bank
    remembers every [(target, type-set)] signature ever seen, so [tbct
    dedup --bank DIR] can report which of today's bugs are {e new} versus
    already banked by an earlier campaign — possibly on another machine:
    the bank file is plain text and mergeable via {!import}.

    Saving rewrites the whole bank atomically (tmp+rename); the format is
    line-oriented with quoted fields, and corrupt lines are skipped on
    load so a damaged bank degrades to a smaller one rather than failing. *)

type entry = {
  key : string;            (** [target ^ "|" ^ sorted types joined by "+"] *)
  target : string;
  bug_id : string;         (** ground-truth id of the first recorded test *)
  types : string list;     (** sorted, duplicate-free transformation types *)
  mutable count : int;     (** tests recorded under this signature *)
}

type t

val load : dir:string -> t
(** Load [dir/bugbank.txt]; a missing file yields an empty bank bound to
    [dir]. *)

val signature_key : target:string -> types:string list -> string

val record :
  t -> target:string -> bug_id:string -> types:string list -> [ `New | `Known ]
(** Record one reduced test; [`New] iff its signature was not yet banked. *)

val mem : t -> target:string -> types:string list -> bool
val size : t -> int
val entries : t -> entry list  (** sorted by key *)

val to_string : t -> string
(** Portable serialization (what {!save} writes and [tbct store export]
    emits). *)

val import : t -> string -> int
(** Merge a {!to_string} dump from another bank; returns the number of
    signatures that were new to this bank. *)

val save : ?fsync:bool -> t -> unit
(** Atomically rewrite [dir/bugbank.txt] if anything changed. *)
