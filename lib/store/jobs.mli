(** Persistent job records for the campaign service.

    The fleet daemon keeps its job queue durable in [dir/jobs.log], an
    append-only checksummed {!Journal}: one [job] record per submission
    and one [state] record per transition.  Replaying the valid prefix
    reconstructs the queue a killed daemon left behind — a job whose last
    recorded state was [Running] was interrupted mid-campaign and is
    rescheduled by the daemon (its own campaign journal under
    [dir/<id>/] supplies the bit-identical resume).

    Records survive [kill -9] at record granularity: a torn trailing
    record is dropped on replay exactly like a campaign journal's, so the
    worst a crash loses is the very last state transition — never a whole
    job, and never the ability to resume. *)

type state = Queued | Running | Done | Cancelled

val state_to_string : state -> string
val state_of_string : string -> state option

(** Immutable submission parameters, as recorded at [submit] time. *)
type record = {
  id : string;        (** ["job-<n>"], unique within the store *)
  tool : string;      (** {!Harness.Pipeline.tool_name} form *)
  seeds : int;
  targets : string list;  (** target names; [[]] means every target *)
  weights : string;   (** CLI [FAMILY=N,...] syntax; [""] = uniform *)
  tv : bool;
}

type t

val open_ : ?fsync:bool -> dir:string -> unit -> t
(** Replay [dir/jobs.log] (created, with its parents, if missing) and
    open it for appending.  A torn trailing record is truncated away
    before the first append, as the journal contract requires. *)

val add : t -> record -> unit
(** Persist a new submission (its initial state is {!Queued}).
    @raise Invalid_argument on a duplicate id. *)

val set_state : t -> id:string -> state -> unit
(** Append a state transition for an existing job (unknown ids are
    ignored — the daemon validates first). *)

val set_counters : t -> id:string -> (string * int) list -> unit
(** Persist the job's latest named-counter snapshot (the scheduler's
    accumulated [tv-abstain:<reason>] buckets) as a ["counters"] record.
    The pairs are canonicalized by name and only appended when they
    differ from the last recorded snapshot; unknown ids are ignored.
    Replayers that predate counters records skip them (the journal is
    checksummed, so an unparseable-but-valid record is a future shape,
    not corruption) — the format stays forward- and backward-compatible. *)

val counters : t -> id:string -> (string * int) list
(** The job's latest recorded counter snapshot, sorted by name ([[]] if
    none was ever recorded). *)

val entries : t -> (record * state) list
(** Every known job with its latest recorded state, in submission order. *)

val find : t -> id:string -> (record * state) option

val fresh_id : t -> string
(** The next unused ["job-<n>"] id (monotonic across restarts: derived
    from the highest id ever recorded, not from the live count). *)

val close : t -> unit
