(** The on-disk content-addressed object store (see the interface).

    Layout: [root/objects/ab/cdef...] — two hex characters of the key name
    the shard directory, the rest names the file, so directory fan-out stays
    bounded at 256 shards however many objects accumulate.  Writes are
    atomic (tmp+rename via {!Fsio}); recency is persisted as file mtime
    (bumped on every hit), so LRU eviction order survives restarts and is
    meaningful across processes sharing a store. *)

type entry = { mutable size : int; mutable stamp : float }

type t = {
  root : string;
  fsync : bool;
  max_bytes : int option;
  lock : Mutex.t;
  index : (string, entry) Hashtbl.t;  (** key -> size & recency *)
  mutable bytes : int;
  mutable puts : int;
  mutable gets : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = {
  objects : int;
  bytes : int;
  puts : int;
  gets : int;
  hits : int;
  misses : int;
  evictions : int;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let objects_dir root = Filename.concat root "objects"

let valid_key key =
  String.length key >= 8
  && String.for_all
       (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
       key

let path_of t key =
  if not (valid_key key) then
    invalid_arg (Printf.sprintf "Cas: malformed key %S (want lowercase hex)" key);
  Filename.concat
    (Filename.concat (objects_dir t.root) (String.sub key 0 2))
    (String.sub key 2 (String.length key - 2))

let key_of_path ~shard file = shard ^ file

(** Digest an arbitrary (e.g. namespaced) string into a well-formed key. *)
let key_of_string s = Stdlib.Digest.to_hex (Stdlib.Digest.string s)

(* scan the object tree into the index; also used by [gc] to resynchronize
   with writers in other processes *)
let rescan_locked t =
  Hashtbl.reset t.index;
  t.bytes <- 0;
  List.iter
    (fun shard ->
      if String.length shard = 2 then
        let dir = Filename.concat (objects_dir t.root) shard in
        List.iter
          (fun file ->
            let path = Filename.concat dir file in
            match (Fsio.file_size path, Fsio.mtime path) with
            | Some size, Some stamp ->
                Hashtbl.replace t.index (key_of_path ~shard file) { size; stamp };
                t.bytes <- t.bytes + size
            | _ -> ())
          (Fsio.list_dir dir))
    (Fsio.list_dir (objects_dir t.root))

let open_ ?(fsync = false) ?max_bytes ~root () =
  Fsio.ensure_dir (objects_dir root);
  let t =
    {
      root;
      fsync;
      max_bytes;
      lock = Mutex.create ();
      index = Hashtbl.create 1024;
      bytes = 0;
      puts = 0;
      gets = 0;
      hits = 0;
      misses = 0;
      evictions = 0;
    }
  in
  locked t (fun () -> rescan_locked t);
  t

(* evict least-recently-used objects until total size fits; the caller
   holds the lock *)
let evict_until_locked (t : t) ~max_bytes =
  if t.bytes > max_bytes then begin
    let by_age =
      Hashtbl.fold (fun k e acc -> (k, e) :: acc) t.index []
      |> List.sort (fun (_, a) (_, b) -> Float.compare a.stamp b.stamp)
    in
    List.iter
      (fun (key, e) ->
        if t.bytes > max_bytes then begin
          Fsio.remove_if_exists (path_of t key);
          Hashtbl.remove t.index key;
          t.bytes <- t.bytes - e.size;
          t.evictions <- t.evictions + 1
        end)
      by_age
  end

let put t ~key data =
  let path = path_of t key in
  locked t (fun () ->
      t.puts <- t.puts + 1;
      (match Hashtbl.find_opt t.index key with
      | Some e when Sys.file_exists path ->
          (* content-addressed: same key, same bytes — just refresh recency *)
          e.stamp <- Unix.gettimeofday ();
          Fsio.touch path
      | _ ->
          Fsio.write_atomic ~fsync:t.fsync ~path data;
          let size = String.length data in
          (match Hashtbl.find_opt t.index key with
          | Some e -> t.bytes <- t.bytes - e.size
          | None -> ());
          Hashtbl.replace t.index key
            { size; stamp = Unix.gettimeofday () };
          t.bytes <- t.bytes + size);
      match t.max_bytes with
      | Some max_bytes -> evict_until_locked t ~max_bytes
      | None -> ())

let get t ~key =
  let path = path_of t key in
  locked t (fun () ->
      t.gets <- t.gets + 1;
      (* read the file even on an index miss: another process sharing the
         store may have written it after our last scan *)
      match Fsio.read_file path with
      | Some data ->
          t.hits <- t.hits + 1;
          (match Hashtbl.find_opt t.index key with
          | Some e -> e.stamp <- Unix.gettimeofday ()
          | None ->
              Hashtbl.replace t.index key
                { size = String.length data; stamp = Unix.gettimeofday () };
              t.bytes <- t.bytes + String.length data);
          Fsio.touch path;
          Some data
      | None ->
          t.misses <- t.misses + 1;
          None)

let mem t ~key =
  locked t (fun () ->
      Hashtbl.mem t.index key || Sys.file_exists (path_of t key))

let gc ?max_bytes t =
  locked t (fun () ->
      (* resync with the filesystem (and any concurrent writers), keeping
         the fresher of on-disk mtime and in-memory recency *)
      let remembered =
        Hashtbl.fold (fun k e acc -> (k, e.stamp) :: acc) t.index []
      in
      rescan_locked t;
      List.iter
        (fun (k, stamp) ->
          match Hashtbl.find_opt t.index k with
          | Some e when stamp > e.stamp -> e.stamp <- stamp
          | _ -> ())
        remembered;
      let before = t.evictions in
      (match (max_bytes, t.max_bytes) with
      | Some m, _ | None, Some m -> evict_until_locked t ~max_bytes:m
      | None, None -> ());
      t.evictions - before)

let stats t : stats =
  locked t (fun () ->
      {
        objects = Hashtbl.length t.index;
        bytes = t.bytes;
        puts = t.puts;
        gets = t.gets;
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
      })

let root t = t.root

let pp_stats fmt (s : stats) =
  Format.fprintf fmt
    "cas: %d objects, %d bytes; %d puts, %d gets (%d hits, %d misses), %d \
     evictions"
    s.objects s.bytes s.puts s.gets s.hits s.misses s.evictions

let stats_to_string s = Format.asprintf "%a" pp_stats s
