(** Exact textual codecs for store artifacts.

    Round-tripping is lossless by construction (floats in hexadecimal
    notation, modules via the invertible Disasm/Asm pair): a decoded run
    result is structurally equal to the encoded one, which is what lets
    the engine substitute disk-cached results inside interestingness tests
    without affecting what ddmin keeps (DESIGN.md §7). *)

open Spirv_ir

val encode_run : Compilers.Backend.run_result -> string
val decode_run : string -> Compilers.Backend.run_result option
(** [None] on a corrupt or truncated object — callers treat that as a
    cache miss and recompute. *)

val encode_module : Module_ir.t -> string
val decode_module : string -> Module_ir.t option

val encode_verdict : Compilers.Tv.verdict -> string
val decode_verdict : string -> Compilers.Tv.verdict option
(** Translation-validation verdicts, persisted by the engine keyed on the
    (before, after) module digest pair. *)

val value_to_string : Value.t -> string
(** Exposed for property tests. *)

val value_of_string : string -> Value.t option
