(** Exact codecs for store artifacts.

    Round-tripping is lossless by construction: a decoded run result is
    structurally equal to the encoded one, which is what lets the engine
    substitute disk-cached results inside interestingness tests without
    affecting what ddmin keeps (DESIGN.md §7 and §14).

    Run results use a compact length-prefixed binary format (floats as
    [Int64.bits_of_float], exact on every NaN payload); a leading version
    byte distinguishes it from the legacy text format, which {!decode_run}
    still reads so existing stores stay usable.  The text codec prints
    floats in [%h] hexadecimal notation with an explicit [#<bits>] escape
    for the NaN payloads [%h] cannot round-trip.  Modules reuse the
    invertible Disasm/Asm pair, whose exactness the digest layer already
    depends on. *)

open Spirv_ir

val encode_run : Compilers.Backend.run_result -> string
(** Binary encoding (version-prefixed). *)

val decode_run : string -> Compilers.Backend.run_result option
(** Decodes both the binary format and the legacy text format (version
    sniffing on the first byte).  [None] on a corrupt or truncated
    object — callers treat that as a cache miss and recompute. *)

val encode_run_text : Compilers.Backend.run_result -> string
(** The legacy text encoding — kept for old-store read-back tests and
    cross-format tooling. *)

val decode_run_text : string -> Compilers.Backend.run_result option

val encode_module : Module_ir.t -> string
val decode_module : string -> Module_ir.t option

val encode_verdict : Compilers.Tv.verdict -> string
val decode_verdict : string -> Compilers.Tv.verdict option
(** Translation-validation verdicts, persisted by the engine keyed on the
    (before, after) module digest pair. *)

val value_to_string : Value.t -> string
(** Exposed for property tests. *)

val value_of_string : string -> Value.t option
