(** Textual codecs for the artifacts the store persists: backend run
    results (images, crash signatures) and optimized modules.

    The encoding must round-trip {e exactly} — a disk-cached run result is
    substituted for a recomputed one inside §3.4 interestingness tests, so
    any lossiness would change what ddmin keeps.  Floats are therefore
    printed in hexadecimal notation ([%h], precisely invertible by
    [float_of_string]), mirroring what {!Spirv_ir.Disasm} does for module
    listings; modules themselves reuse the Disasm/Asm pair, whose exact
    invertibility the digest layer already depends on. *)

open Spirv_ir

(* ------------------------------------------------------------------ *)
(* Values and pixels *)

let rec encode_value buf (v : Value.t) =
  match v with
  | Value.VBool b -> Buffer.add_string buf (if b then "b1" else "b0")
  | Value.VInt i ->
      Buffer.add_char buf 'i';
      Buffer.add_string buf (Int32.to_string i)
  | Value.VFloat f ->
      Buffer.add_char buf 'f';
      (* [%h] round-trips every float except NaNs, whose payload bits
         [float_of_string] does not restore (every textual NaN parses to
         the default quiet NaN).  Such values fall back to an explicit
         bit-pattern escape, [f#<hex bits>], so the codec is exact on all
         2^64 payloads. *)
      let hex = Printf.sprintf "%h" f in
      let bits = Int64.bits_of_float f in
      let survives =
        match float_of_string_opt hex with
        | Some g -> Int64.equal bits (Int64.bits_of_float g)
        | None -> false
      in
      if survives then Buffer.add_string buf hex
      else Buffer.add_string buf (Printf.sprintf "#%Lx" bits)
  | Value.VComposite elems ->
      Buffer.add_char buf '(';
      Array.iteri
        (fun i e ->
          if i > 0 then Buffer.add_char buf ';';
          encode_value buf e)
        elems;
      Buffer.add_char buf ')'

exception Bad of string

(* recursive-descent parser over (string, cursor); scalars end at ';', ')'
   or end of input *)
let rec parse_value s pos =
  let n = String.length s in
  if !pos >= n then raise (Bad "value: unexpected end");
  match s.[!pos] with
  | '(' ->
      incr pos;
      let elems = ref [] in
      if !pos < n && s.[!pos] = ')' then incr pos
      else begin
        let continue = ref true in
        while !continue do
          elems := parse_value s pos :: !elems;
          if !pos >= n then raise (Bad "composite: unexpected end")
          else if s.[!pos] = ';' then incr pos
          else if s.[!pos] = ')' then begin
            incr pos;
            continue := false
          end
          else raise (Bad "composite: expected ';' or ')'")
        done
      end;
      Value.VComposite (Array.of_list (List.rev !elems))
  | ('b' | 'i' | 'f') as tag ->
      incr pos;
      let start = !pos in
      while !pos < n && s.[!pos] <> ';' && s.[!pos] <> ')' do
        incr pos
      done;
      let tok = String.sub s start (!pos - start) in
      (match tag with
      | 'b' ->
          if String.equal tok "1" then Value.VBool true
          else if String.equal tok "0" then Value.VBool false
          else raise (Bad ("bool: " ^ tok))
      | 'i' -> (
          match Int32.of_string_opt tok with
          | Some i -> Value.VInt i
          | None -> raise (Bad ("int: " ^ tok)))
      | _ ->
          if String.length tok > 0 && tok.[0] = '#' then
            match
              Int64.of_string_opt ("0x" ^ String.sub tok 1 (String.length tok - 1))
            with
            | Some bits -> Value.VFloat (Int64.float_of_bits bits)
            | None -> raise (Bad ("float bits: " ^ tok))
          else (
            match float_of_string_opt tok with
            | Some f -> Value.VFloat f
            | None -> raise (Bad ("float: " ^ tok))))
  | c -> raise (Bad (Printf.sprintf "value: unexpected %C" c))

let value_to_string v =
  let buf = Buffer.create 32 in
  encode_value buf v;
  Buffer.contents buf

let value_of_string s =
  let pos = ref 0 in
  match parse_value s pos with
  | v when !pos = String.length s -> Some v
  | _ -> None
  | exception Bad _ -> None

(* ------------------------------------------------------------------ *)
(* Run results: text codec (the legacy store format, still read) *)

let encode_run_text (r : Compilers.Backend.run_result) : string =
  match r with
  | Compilers.Backend.Compiled_ok -> "ok"
  | Compilers.Backend.Crashed s -> Printf.sprintf "crash %S" s
  | Compilers.Backend.Rendered img ->
      let buf = Buffer.create (64 * img.Image.width * img.Image.height) in
      Buffer.add_string buf
        (Printf.sprintf "image %d %d\n" img.Image.width img.Image.height);
      Array.iter
        (fun (p : Image.pixel) ->
          (match p with
          | Image.Killed -> Buffer.add_char buf 'K'
          | Image.Color v ->
              Buffer.add_string buf "C ";
              encode_value buf v);
          Buffer.add_char buf '\n')
        img.Image.pixels;
      Buffer.contents buf

let decode_run_text (s : string) : Compilers.Backend.run_result option =
  if String.equal s "ok" then Some Compilers.Backend.Compiled_ok
  else if String.length s >= 6 && String.equal (String.sub s 0 6) "crash " then
    match Scanf.sscanf (String.sub s 6 (String.length s - 6)) "%S%!" Fun.id with
    | sig_ -> Some (Compilers.Backend.Crashed sig_)
    | exception _ -> None
  else
    match String.split_on_char '\n' s with
    | header :: rest -> (
        match Scanf.sscanf header "image %d %d%!" (fun w h -> (w, h)) with
        | exception _ -> None
        | w, h when w > 0 && h > 0 -> (
            let pixels =
              List.filter_map
                (fun line ->
                  if String.equal line "" then None
                  else if String.equal line "K" then Some (Some Image.Killed)
                  else if String.length line > 2 && line.[0] = 'C' && line.[1] = ' '
                  then
                    match
                      value_of_string (String.sub line 2 (String.length line - 2))
                    with
                    | Some v -> Some (Some (Image.Color v))
                    | None -> Some None
                  else Some None)
                rest
            in
            if List.exists (fun p -> p = None) pixels then None
            else
              let pixels =
                Array.of_list (List.filter_map Fun.id pixels)
              in
              if Array.length pixels <> w * h then None
              else
                Some
                  (Compilers.Backend.Rendered
                     { Image.width = w; Image.height = h; Image.pixels }))
        | _ -> None)
    | [] -> None

(* ------------------------------------------------------------------ *)
(* Run results: binary codec (the current store format)

   Layout: a leading version byte 0x01 (no legacy text object starts with
   it: they begin with 'o', 'c' or 'i'), then a tag byte — 0 Compiled_ok,
   1 Crashed (u32 length + bytes), 2 Rendered (u32 width, u32 height,
   then width*height pixels: 0 = Killed, 1 = Color + value).  Values are
   tag-prefixed: 0/1 VBool, 2 VInt (int32 LE), 3 VFloat
   (Int64.bits_of_float, LE — exact on every payload by construction),
   4 VComposite (u32 count + elements).  All integers little-endian. *)

let binary_version = '\001'

let rec add_value_bin buf (v : Value.t) =
  match v with
  | Value.VBool false -> Buffer.add_char buf '\000'
  | Value.VBool true -> Buffer.add_char buf '\001'
  | Value.VInt i ->
      Buffer.add_char buf '\002';
      Buffer.add_int32_le buf i
  | Value.VFloat f ->
      Buffer.add_char buf '\003';
      Buffer.add_int64_le buf (Int64.bits_of_float f)
  | Value.VComposite elems ->
      Buffer.add_char buf '\004';
      Buffer.add_int32_le buf (Int32.of_int (Array.length elems));
      Array.iter (add_value_bin buf) elems

let rd_byte s pos =
  if !pos >= String.length s then raise (Bad "eof");
  let c = s.[!pos] in
  incr pos;
  c

let rd_int32 s pos =
  if !pos + 4 > String.length s then raise (Bad "eof");
  let v = String.get_int32_le s !pos in
  pos := !pos + 4;
  v

let rd_int64 s pos =
  if !pos + 8 > String.length s then raise (Bad "eof");
  let v = String.get_int64_le s !pos in
  pos := !pos + 8;
  v

let rd_len s pos =
  let n = Int32.to_int (rd_int32 s pos) in
  (* every encoded element occupies at least one byte, so a count beyond
     the remaining bytes is corruption, not a huge allocation request *)
  if n < 0 || n > String.length s - !pos then raise (Bad "length");
  n

let rec rd_value s pos =
  match rd_byte s pos with
  | '\000' -> Value.VBool false
  | '\001' -> Value.VBool true
  | '\002' -> Value.VInt (rd_int32 s pos)
  | '\003' -> Value.VFloat (Int64.float_of_bits (rd_int64 s pos))
  | '\004' ->
      let n = rd_len s pos in
      Value.VComposite (Array.init n (fun _ -> rd_value s pos))
  | c -> raise (Bad (Printf.sprintf "value tag %C" c))

let encode_run (r : Compilers.Backend.run_result) : string =
  let buf = Buffer.create 256 in
  Buffer.add_char buf binary_version;
  (match r with
  | Compilers.Backend.Compiled_ok -> Buffer.add_char buf '\000'
  | Compilers.Backend.Crashed sg ->
      Buffer.add_char buf '\001';
      Buffer.add_int32_le buf (Int32.of_int (String.length sg));
      Buffer.add_string buf sg
  | Compilers.Backend.Rendered img ->
      Buffer.add_char buf '\002';
      Buffer.add_int32_le buf (Int32.of_int img.Image.width);
      Buffer.add_int32_le buf (Int32.of_int img.Image.height);
      Array.iter
        (fun (p : Image.pixel) ->
          match p with
          | Image.Killed -> Buffer.add_char buf '\000'
          | Image.Color v ->
              Buffer.add_char buf '\001';
              add_value_bin buf v)
        img.Image.pixels);
  Buffer.contents buf

let decode_run_binary (s : string) : Compilers.Backend.run_result option =
  let pos = ref 1 (* past the version byte *) in
  match
    let r =
      match rd_byte s pos with
      | '\000' -> Compilers.Backend.Compiled_ok
      | '\001' ->
          let n = rd_len s pos in
          let sg = String.sub s !pos n in
          pos := !pos + n;
          Compilers.Backend.Crashed sg
      | '\002' ->
          let w = Int32.to_int (rd_int32 s pos) in
          let h = Int32.to_int (rd_int32 s pos) in
          if w <= 0 || h <= 0 || w * h > String.length s - !pos then
            raise (Bad "dimensions");
          let pixels =
            Array.init (w * h) (fun _ ->
                match rd_byte s pos with
                | '\000' -> Image.Killed
                | '\001' -> Image.Color (rd_value s pos)
                | c -> raise (Bad (Printf.sprintf "pixel tag %C" c)))
          in
          Compilers.Backend.Rendered
            { Image.width = w; Image.height = h; Image.pixels }
      | c -> raise (Bad (Printf.sprintf "run tag %C" c))
    in
    if !pos <> String.length s then raise (Bad "trailing bytes");
    r
  with
  | r -> Some r
  | exception Bad _ -> None

(* Version sniffing keeps existing stores readable: objects written by the
   text codec never begin with the binary version byte. *)
let decode_run (s : string) : Compilers.Backend.run_result option =
  if String.length s > 0 && s.[0] = binary_version then decode_run_binary s
  else decode_run_text s

(* ------------------------------------------------------------------ *)
(* Translation-validation verdicts *)

let encode_verdict (v : Compilers.Tv.verdict) : string =
  match v with
  | Compilers.Tv.Equivalent -> "equivalent"
  | Compilers.Tv.Mismatch w ->
      Printf.sprintf "mismatch %S %S %S" w.Compilers.Tv.w_slot
        w.Compilers.Tv.w_before w.Compilers.Tv.w_after
  | Compilers.Tv.Abstained r -> Printf.sprintf "abstained %S" r

let decode_verdict (s : string) : Compilers.Tv.verdict option =
  if String.equal s "equivalent" then Some Compilers.Tv.Equivalent
  else if String.length s >= 9 && String.equal (String.sub s 0 9) "mismatch " then
    match
      Scanf.sscanf
        (String.sub s 9 (String.length s - 9))
        "%S %S %S%!"
        (fun slot before after -> (slot, before, after))
    with
    | slot, before, after ->
        Some
          (Compilers.Tv.Mismatch
             {
               Compilers.Tv.w_slot = slot;
               Compilers.Tv.w_before = before;
               Compilers.Tv.w_after = after;
             })
    | exception _ -> None
  else if String.length s >= 10 && String.equal (String.sub s 0 10) "abstained "
  then
    match
      Scanf.sscanf (String.sub s 10 (String.length s - 10)) "%S%!" Fun.id
    with
    | r -> Some (Compilers.Tv.Abstained r)
    | exception _ -> None
  else None

(* ------------------------------------------------------------------ *)
(* Modules *)

let encode_module (m : Module_ir.t) : string = Disasm.to_string m

let decode_module (s : string) : Module_ir.t option =
  match Asm.of_string_result s with Ok m -> Some m | Error _ -> None
