(** Textual codecs for the artifacts the store persists: backend run
    results (images, crash signatures) and optimized modules.

    The encoding must round-trip {e exactly} — a disk-cached run result is
    substituted for a recomputed one inside §3.4 interestingness tests, so
    any lossiness would change what ddmin keeps.  Floats are therefore
    printed in hexadecimal notation ([%h], precisely invertible by
    [float_of_string]), mirroring what {!Spirv_ir.Disasm} does for module
    listings; modules themselves reuse the Disasm/Asm pair, whose exact
    invertibility the digest layer already depends on. *)

open Spirv_ir

(* ------------------------------------------------------------------ *)
(* Values and pixels *)

let rec encode_value buf (v : Value.t) =
  match v with
  | Value.VBool b -> Buffer.add_string buf (if b then "b1" else "b0")
  | Value.VInt i ->
      Buffer.add_char buf 'i';
      Buffer.add_string buf (Int32.to_string i)
  | Value.VFloat f ->
      Buffer.add_char buf 'f';
      Buffer.add_string buf (Printf.sprintf "%h" f)
  | Value.VComposite elems ->
      Buffer.add_char buf '(';
      Array.iteri
        (fun i e ->
          if i > 0 then Buffer.add_char buf ';';
          encode_value buf e)
        elems;
      Buffer.add_char buf ')'

exception Bad of string

(* recursive-descent parser over (string, cursor); scalars end at ';', ')'
   or end of input *)
let rec parse_value s pos =
  let n = String.length s in
  if !pos >= n then raise (Bad "value: unexpected end");
  match s.[!pos] with
  | '(' ->
      incr pos;
      let elems = ref [] in
      if !pos < n && s.[!pos] = ')' then incr pos
      else begin
        let continue = ref true in
        while !continue do
          elems := parse_value s pos :: !elems;
          if !pos >= n then raise (Bad "composite: unexpected end")
          else if s.[!pos] = ';' then incr pos
          else if s.[!pos] = ')' then begin
            incr pos;
            continue := false
          end
          else raise (Bad "composite: expected ';' or ')'")
        done
      end;
      Value.VComposite (Array.of_list (List.rev !elems))
  | ('b' | 'i' | 'f') as tag ->
      incr pos;
      let start = !pos in
      while !pos < n && s.[!pos] <> ';' && s.[!pos] <> ')' do
        incr pos
      done;
      let tok = String.sub s start (!pos - start) in
      (match tag with
      | 'b' ->
          if String.equal tok "1" then Value.VBool true
          else if String.equal tok "0" then Value.VBool false
          else raise (Bad ("bool: " ^ tok))
      | 'i' -> (
          match Int32.of_string_opt tok with
          | Some i -> Value.VInt i
          | None -> raise (Bad ("int: " ^ tok)))
      | _ -> (
          match float_of_string_opt tok with
          | Some f -> Value.VFloat f
          | None -> raise (Bad ("float: " ^ tok))))
  | c -> raise (Bad (Printf.sprintf "value: unexpected %C" c))

let value_to_string v =
  let buf = Buffer.create 32 in
  encode_value buf v;
  Buffer.contents buf

let value_of_string s =
  let pos = ref 0 in
  match parse_value s pos with
  | v when !pos = String.length s -> Some v
  | _ -> None
  | exception Bad _ -> None

(* ------------------------------------------------------------------ *)
(* Run results *)

let encode_run (r : Compilers.Backend.run_result) : string =
  match r with
  | Compilers.Backend.Compiled_ok -> "ok"
  | Compilers.Backend.Crashed s -> Printf.sprintf "crash %S" s
  | Compilers.Backend.Rendered img ->
      let buf = Buffer.create (64 * img.Image.width * img.Image.height) in
      Buffer.add_string buf
        (Printf.sprintf "image %d %d\n" img.Image.width img.Image.height);
      Array.iter
        (fun (p : Image.pixel) ->
          (match p with
          | Image.Killed -> Buffer.add_char buf 'K'
          | Image.Color v ->
              Buffer.add_string buf "C ";
              encode_value buf v);
          Buffer.add_char buf '\n')
        img.Image.pixels;
      Buffer.contents buf

let decode_run (s : string) : Compilers.Backend.run_result option =
  if String.equal s "ok" then Some Compilers.Backend.Compiled_ok
  else if String.length s >= 6 && String.equal (String.sub s 0 6) "crash " then
    match Scanf.sscanf (String.sub s 6 (String.length s - 6)) "%S%!" Fun.id with
    | sig_ -> Some (Compilers.Backend.Crashed sig_)
    | exception _ -> None
  else
    match String.split_on_char '\n' s with
    | header :: rest -> (
        match Scanf.sscanf header "image %d %d%!" (fun w h -> (w, h)) with
        | exception _ -> None
        | w, h when w > 0 && h > 0 -> (
            let pixels =
              List.filter_map
                (fun line ->
                  if String.equal line "" then None
                  else if String.equal line "K" then Some (Some Image.Killed)
                  else if String.length line > 2 && line.[0] = 'C' && line.[1] = ' '
                  then
                    match
                      value_of_string (String.sub line 2 (String.length line - 2))
                    with
                    | Some v -> Some (Some (Image.Color v))
                    | None -> Some None
                  else Some None)
                rest
            in
            if List.exists (fun p -> p = None) pixels then None
            else
              let pixels =
                Array.of_list (List.filter_map Fun.id pixels)
              in
              if Array.length pixels <> w * h then None
              else
                Some
                  (Compilers.Backend.Rendered
                     { Image.width = w; Image.height = h; Image.pixels }))
        | _ -> None)
    | [] -> None

(* ------------------------------------------------------------------ *)
(* Translation-validation verdicts *)

let encode_verdict (v : Compilers.Tv.verdict) : string =
  match v with
  | Compilers.Tv.Equivalent -> "equivalent"
  | Compilers.Tv.Mismatch w ->
      Printf.sprintf "mismatch %S %S %S" w.Compilers.Tv.w_slot
        w.Compilers.Tv.w_before w.Compilers.Tv.w_after
  | Compilers.Tv.Abstained r -> Printf.sprintf "abstained %S" r

let decode_verdict (s : string) : Compilers.Tv.verdict option =
  if String.equal s "equivalent" then Some Compilers.Tv.Equivalent
  else if String.length s >= 9 && String.equal (String.sub s 0 9) "mismatch " then
    match
      Scanf.sscanf
        (String.sub s 9 (String.length s - 9))
        "%S %S %S%!"
        (fun slot before after -> (slot, before, after))
    with
    | slot, before, after ->
        Some
          (Compilers.Tv.Mismatch
             {
               Compilers.Tv.w_slot = slot;
               Compilers.Tv.w_before = before;
               Compilers.Tv.w_after = after;
             })
    | exception _ -> None
  else if String.length s >= 10 && String.equal (String.sub s 0 10) "abstained "
  then
    match
      Scanf.sscanf (String.sub s 10 (String.length s - 10)) "%S%!" Fun.id
    with
    | r -> Some (Compilers.Tv.Abstained r)
    | exception _ -> None
  else None

(* ------------------------------------------------------------------ *)
(* Modules *)

let encode_module (m : Module_ir.t) : string = Disasm.to_string m

let decode_module (s : string) : Module_ir.t option =
  match Asm.of_string_result s with Ok m -> Some m | Error _ -> None
