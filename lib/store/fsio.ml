(** Filesystem primitives shared by the store: mkdir -p, whole-file reads,
    and the atomic tmp+rename write every durable artifact goes through.

    Atomicity matters because campaigns are killable at any point: a reader
    (or a resumed campaign) must only ever observe a fully-written object or
    no object at all, never a torn one.  POSIX [rename] within a directory
    gives exactly that.  [fsync] is optional — content-addressed objects can
    always be recomputed, so the default trades durability of the last few
    writes for speed; pass [~fsync:true] for journals that must survive
    power loss rather than mere process death. *)

let tmp_counter = Atomic.make 0

let ensure_dir path =
  let rec go p =
    if p <> "" && p <> "/" && p <> "." && not (Sys.file_exists p) then begin
      go (Filename.dirname p);
      try Unix.mkdir p 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
      (* a concurrent domain/process won the race: fine *)
    end
  in
  go path

let read_file path : string option =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let n = in_channel_length ic in
          Some (really_input_string ic n))

(** Write [data] to [path] atomically: a uniquely-named temp file in the
    same directory (same filesystem, so [rename] cannot degrade to a copy),
    then rename over the destination.  Concurrent writers of the same path
    race benignly — last rename wins, and every rename installs a complete
    file. *)
let write_atomic ?(fsync = false) ~path data =
  ensure_dir (Filename.dirname path);
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
      (Atomic.fetch_and_add tmp_counter 1)
  in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let n = String.length data in
      let written = ref 0 in
      while !written < n do
        written :=
          !written + Unix.write_substring fd data !written (n - !written)
      done;
      if fsync then Unix.fsync fd);
  Unix.rename tmp path

let remove_if_exists path = try Sys.remove path with Sys_error _ -> ()

let file_size path : int option =
  match Unix.stat path with
  | { Unix.st_kind = Unix.S_REG; st_size; _ } -> Some st_size
  | _ -> None
  | exception Unix.Unix_error _ -> None

let mtime path : float option =
  match Unix.stat path with
  | st -> Some st.Unix.st_mtime
  | exception Unix.Unix_error _ -> None

(** Bump a file's access/modification time to now — the persistent
    approximation of LRU recency that survives process restarts. *)
let touch path = try Unix.utimes path 0.0 0.0 with Unix.Unix_error _ -> ()

let list_dir path : string list =
  match Sys.readdir path with
  | exception Sys_error _ -> []
  | entries -> Array.to_list entries
