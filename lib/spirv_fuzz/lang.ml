(** Instantiation of the generic framework (Definition 2.5's [Apply]) for
    the SPIR-V-like IR. *)

module Language = struct
  type context = Context.t
  type transformation = Transformation.t

  let type_id = Transformation.type_id
  let precondition = Registry.precondition
  let apply = Registry.apply
end

module Apply = Tbct.Spec.Apply (Language)

(** Apply a recorded sequence to an original context, skipping
    transformations whose preconditions fail — the reducer's workhorse. *)
let replay ctx ts = Apply.sequence_ctx ctx ts
