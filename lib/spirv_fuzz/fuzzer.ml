(** The fuzzer main loop (section 3.2).

    The module and facts are repeatedly modified by running fuzzer passes.
    After each pass the tool probabilistically decides whether to stop,
    definitely stopping once the transformation limit is exceeded.  The
    next pass is sampled by registry weight — with the default (uniform)
    weights this is exactly the historical uniform draw, bit-for-bit.  When
    the recommendations strategy is enabled, the draw is taken either at
    random or from a queue of follow-on passes pushed after each pass run;
    disabling it yields the "spirv-fuzz-simple" configuration evaluated in
    section 4.1. *)

open Spirv_ir

type config = {
  max_transformations : int;   (** hard cap; the paper uses 2000 *)
  max_passes : int;            (** safety cap on pass executions *)
  continue_probability : int;  (** percent chance to run another pass *)
  use_recommendations : bool;
  donors : Module_ir.t list;
  check_contracts : bool;      (** debug mode: {!Contract} after every emit *)
  weights : (Registry.family * int) list;
      (** per-family sampling-weight multipliers; [[]] (the default) leaves
          every pass at registry weight 1, i.e. the uniform draw *)
}

let default_config =
  {
    max_transformations = 250;
    max_passes = 60;
    continue_probability = 95;
    use_recommendations = true;
    donors = [];
    check_contracts = false;
    weights = [];
  }

type result = {
  final : Context.t;
  transformations : Transformation.t list;
  passes_run : string list;
  counters : (string * int * int) list;
      (** per-type (type_id, proposed, applied) tallies *)
}

let run ?(config = default_config) ~seed (ctx : Context.t) : result =
  let rng = Tbct.Rng.make seed in
  (* the checker is created before any RNG draw and never consumes one, so
     seeds produce the same transformation stream with checking on or off *)
  let contracts = if config.check_contracts then Some (Contract.create ctx) else None in
  let em = Pass.make_emitter ~donors:config.donors ?contracts ~rng ctx in
  (* Weighted sampling over the registry-derived pass list.  With every
     effective weight equal to 1 the total equals the pass count and the
     cumulative index is the raw draw — the same single [Rng.int] call and
     index arithmetic as [Rng.choose Pass.all], so default-weight campaigns
     reproduce the pre-registry streams exactly. *)
  let weighted =
    List.map
      (fun (p : Pass.t) ->
        (p, Registry.pass_weight ~weights:config.weights p.Pass.name))
      Pass.all
  in
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 weighted in
  let draw_pass () =
    if total <= 0 then Tbct.Rng.choose rng Pass.all
    else begin
      let k = Tbct.Rng.int rng total in
      let rec pick acc = function
        | [] -> Tbct.Rng.choose rng Pass.all (* unreachable: k < total *)
        | (p, w) :: rest -> if k < acc + w then p else pick (acc + w) rest
      in
      pick 0 weighted
    end
  in
  let queue : string Queue.t = Queue.create () in
  let passes_run = ref [] in
  let rec loop n =
    if n >= config.max_passes then ()
    else if List.length em.Pass.emitted >= config.max_transformations then ()
    else begin
      let pass =
        let from_queue =
          config.use_recommendations
          && (not (Queue.is_empty queue))
          && Tbct.Rng.bool rng
        in
        if from_queue then
          match Pass.find (Queue.pop queue) with
          | Some p -> p
          | None -> draw_pass ()
        else draw_pass ()
      in
      let before = List.length em.Pass.emitted in
      pass.Pass.run em;
      Log.debug (fun k ->
          k "pass %s applied %d transformation(s)" pass.Pass.name
            (List.length em.Pass.emitted - before));
      passes_run := pass.Pass.name :: !passes_run;
      if config.use_recommendations then begin
        let follow = Registry.follow_ons pass.Pass.name in
        let chosen = List.filter (fun _ -> Tbct.Rng.bool rng) follow in
        List.iter (fun p -> Queue.push p queue) chosen
      end;
      if Tbct.Rng.chance rng ~num:config.continue_probability ~den:100 then loop (n + 1)
    end
  in
  loop 0;
  Log.info (fun k ->
      k "seed %d: %d transformations over %d passes" seed
        (List.length em.Pass.emitted) (List.length !passes_run));
  {
    final = em.Pass.ctx;
    transformations = List.rev em.Pass.emitted;
    passes_run = List.rev !passes_run;
    counters = Pass.counters_list em;
  }
