(** Test-case deduplication for spirv-fuzz (section 3.5): the Figure 6
    algorithm over reduced transformation sequences, ignoring a fixed list
    of supporting/enabler transformation types. *)

module String_set = Tbct.Dedup.String_set

(** The ignore list fixed before the controlled experiments — derived from
    the [dedup_relevant] flags in the {!Registry}: supporting
    transformations for adding types and constants, SplitBlock and
    AddFunction (enablers for other transformations), and
    ReplaceIdWithSynonym (which reaps the benefits of prior transformations
    but is not interesting in isolation). *)
let default_ignored = Registry.dedup_ignored

type 'a test_case = {
  label : 'a;  (** caller-supplied payload (e.g. a seed or file name) *)
  transformations : Transformation.t list;  (** the minimized sequence *)
}

let types_of t =
  List.fold_left
    (fun acc tr -> String_set.add (Transformation.type_id tr) acc)
    String_set.empty t.transformations

let config ?(ignored = default_ignored) () =
  { Tbct.Dedup.types_of; Tbct.Dedup.ignored }

(** Select the subset of reduced test cases to recommend for manual
    investigation. *)
let select ?ignored tests = Tbct.Dedup.select (config ?ignored ()) tests
