(** The transformation catalogue (sections 3.2–3.3).

    Every transformation is a record of explicit parameters — including
    every fresh id it will introduce — so that re-applying a recorded
    transformation during reduction is deterministic and independent of
    which other transformations survived (the "maximizing independence"
    principle of section 3.3; see InlineFunction's explicit id map).
    Positions inside blocks are expressed as insertion points anchored to
    instruction result ids rather than numeric offsets, the fix section 2.3
    prescribes for SplitBlock.

    Each transformation has a [type_id] (used by deduplication), a
    [precondition] over contexts and an [apply] function that must preserve
    the module's rendered image when the precondition holds — the contract
    of Definition 2.4, tested exhaustively by the property suites. *)

open Spirv_ir

(* ------------------------------------------------------------------ *)
(* Insertion points                                                    *)

(** Where to insert a new non-φ instruction within a block. *)
type point =
  | Before of Id.t  (** before the (non-φ) instruction with this result id *)
  | At_end          (** after the last instruction, before the terminator *)
[@@deriving show { with_path = false }, eq]

(** Resolve a point to an instruction offset, or [None] if invalid. *)
let resolve_point (b : Block.t) = function
  | At_end -> Some (List.length b.Block.instrs)
  | Before anchor ->
      let rec go idx = function
        | [] -> None
        | (i : Instr.t) :: rest -> (
            match i.Instr.result with
            | Some r when Id.equal r anchor ->
                if Instr.is_phi i then None else Some idx
            | _ -> go (idx + 1) rest)
      in
      go 0 b.Block.instrs

(* ------------------------------------------------------------------ *)
(* Use sites                                                           *)

(** How to find the instruction containing a use. *)
type use_anchor =
  | Result_id of Id.t  (** the instruction producing this result *)
  | Nth_instr of int   (** for result-less instructions (stores) *)
  | Terminator
[@@deriving show { with_path = false }, eq]

type use_site = {
  us_fn : Id.t;
  us_block : Id.t;
  us_anchor : use_anchor;
  us_operand : int;  (** position within {!Instr.used_ids} *)
}
[@@deriving show { with_path = false }, eq]

(* ------------------------------------------------------------------ *)
(* The catalogue                                                       *)

type arith_kind =
  | Add_zero_int   (** x + 0 *)
  | Mul_one_int    (** x * 1 *)
  | Mul_one_float  (** x * 1.0 *)
  | Sub_zero_float (** x - 0.0 *)
  | Or_false       (** x || false *)
  | And_true       (** x && true *)
[@@deriving show { with_path = false }, eq]

type add_function_payload = {
  af_function : Func.t;
  af_types : (Id.t * Ty.t) list;           (** fresh type decls, topological *)
  af_constants : (Id.t * Id.t * Constant.t) list;  (** (id, type id, value) *)
  af_live_safe : bool;
}

type t =
  (* supporting transformations (ignored by deduplication, section 3.5) *)
  | Add_type of { fresh : Id.t; ty : Ty.t }
  | Add_constant of { fresh : Id.t; ty : Id.t; value : Constant.t }
  | Add_global_variable of { fresh : Id.t; fresh_ptr_ty : Id.t; pointee : Id.t }
  | Add_uniform of {
      fresh : Id.t;
      fresh_ptr_ty : Id.t;
      pointee : Id.t;
      name : string;
      value : Value.t;
    }
      (** The section 7 future-work extension: a transformation that
          modifies the module {e and its input} in sync — a new uniform is
          declared and the input is extended with its value.  Obfuscation
          transformations (ReplaceConstantWithUniform) then gain targets. *)
  | Add_local_variable of { fresh : Id.t; fresh_ptr_ty : Id.t; fn : Id.t; pointee : Id.t }
  | Add_nop of { fn : Id.t; block : Id.t; point : point }
  (* control flow *)
  | Split_block of { fn : Id.t; block : Id.t; point : point; fresh : Id.t }
  | Add_dead_block of { fn : Id.t; existing : Id.t; fresh : Id.t; cond : Id.t }
  | Replace_branch_with_kill of { fn : Id.t; block : Id.t }
  | Move_block_down of { fn : Id.t; block : Id.t }
  | Wrap_region_in_selection of {
      fn : Id.t;
      block : Id.t;
      fresh_header : Id.t;
      fresh_merge : Id.t;
      cond : Id.t;
      branch_on_true : bool;
    }
  | Invert_branch_condition of { fn : Id.t; block : Id.t; fresh : Id.t }
  | Propagate_instruction_up of { fn : Id.t; block : Id.t; fresh_per_pred : (Id.t * Id.t) list }
  | Permute_phi_entries of { fn : Id.t; block : Id.t; phi : Id.t; rotation : int }
  | Swap_commutative_operands of { fn : Id.t; block : Id.t; instr : Id.t }
      (** swap the operands of a commutative operation ([x+y] to [y+x]); for
          comparisons the operator is mirrored as well *)
  (* data *)
  | Add_load of { fn : Id.t; block : Id.t; point : point; fresh : Id.t; pointer : Id.t }
  | Add_store of { fn : Id.t; block : Id.t; point : point; pointer : Id.t; value : Id.t }
  | Add_copy_object of { fn : Id.t; block : Id.t; point : point; fresh : Id.t; operand : Id.t }
  | Add_arithmetic_synonym of {
      fn : Id.t;
      block : Id.t;
      point : point;
      fresh : Id.t;
      operand : Id.t;
      kind : arith_kind;
      identity : Id.t;  (** the id of the 0/1/false/true constant used *)
    }
  | Add_select_synonym of {
      fn : Id.t;
      block : Id.t;
      point : point;
      fresh : Id.t;
      cond : Id.t;  (** any available boolean id *)
      operand : Id.t;
    }  (** [fresh = OpSelect cond operand operand]: a synonym of [operand] *)
  | Replace_id_with_synonym of { site : use_site; synonym : Id.t }
  | Replace_bool_constant_with_binary of { site : use_site; fresh : Id.t; operand : Id.t }
      (** replace a use of a boolean constant with a freshly inserted
          tautological/contradictory integer comparison ([a == a] for true,
          [a != a] for false) — obfuscation that needs no uniform, the
          spirv-fuzz TransformationReplaceBooleanConstantWithConstantBinary *)
  | Replace_irrelevant_id of { site : use_site; replacement : Id.t }
  | Replace_constant_with_uniform of { site : use_site; fresh_load : Id.t; uniform : Id.t }
  | Composite_construct of {
      fn : Id.t;
      block : Id.t;
      point : point;
      fresh : Id.t;
      ty : Id.t;
      parts : Id.t list;
    }
  | Composite_extract of {
      fn : Id.t;
      block : Id.t;
      point : point;
      fresh : Id.t;
      composite : Id.t;
      path : int list;
    }
  (* functions *)
  | Set_function_control of { fn : Id.t; control : Func.control }
  | Function_call of {
      fn : Id.t;
      block : Id.t;
      point : point;
      fresh : Id.t;
      callee : Id.t;
      args : Id.t list;
    }
  | Add_parameter of { fn : Id.t; fresh_param : Id.t; fresh_fn_ty : Id.t; default : Id.t }
  | Add_function of add_function_payload
  | Inline_function of { fn : Id.t; block : Id.t; call_id : Id.t; id_map : (Id.t * Id.t) list }

let type_id = function
  | Add_type _ -> "AddType"
  | Add_constant _ -> "AddConstant"
  | Add_global_variable _ -> "AddGlobalVariable"
  | Add_uniform _ -> "AddUniform"
  | Add_local_variable _ -> "AddLocalVariable"
  | Add_nop _ -> "AddNop"
  | Split_block _ -> "SplitBlock"
  | Add_dead_block _ -> "AddDeadBlock"
  | Replace_branch_with_kill _ -> "ReplaceBranchWithKill"
  | Move_block_down _ -> "MoveBlockDown"
  | Wrap_region_in_selection _ -> "WrapRegionInSelection"
  | Invert_branch_condition _ -> "InvertBranchCondition"
  | Propagate_instruction_up _ -> "PropagateInstructionUp"
  | Permute_phi_entries _ -> "PermutePhiEntries"
  | Swap_commutative_operands _ -> "SwapCommutativeOperands"
  | Add_load _ -> "AddLoad"
  | Add_store _ -> "AddStore"
  | Add_copy_object _ -> "AddCopyObject"
  | Add_arithmetic_synonym _ -> "AddArithmeticSynonym"
  | Add_select_synonym _ -> "AddSelectSynonym"
  | Replace_id_with_synonym _ -> "ReplaceIdWithSynonym"
  | Replace_bool_constant_with_binary _ -> "ReplaceBooleanConstantWithBinary"
  | Replace_irrelevant_id _ -> "ReplaceIrrelevantId"
  | Replace_constant_with_uniform _ -> "ReplaceConstantWithUniform"
  | Composite_construct _ -> "CompositeConstruct"
  | Composite_extract _ -> "CompositeExtract"
  | Set_function_control _ -> "SetFunctionControl"
  | Function_call _ -> "FunctionCall"
  | Add_parameter _ -> "AddParameter"
  | Add_function _ -> "AddFunction"
  | Inline_function _ -> "InlineFunction"

(** Every [type_id] in the catalogue, in variant-declaration order — the
    ground truth the registry completeness check compares against. *)
let catalogue =
  [
    "AddType";
    "AddConstant";
    "AddGlobalVariable";
    "AddUniform";
    "AddLocalVariable";
    "AddNop";
    "SplitBlock";
    "AddDeadBlock";
    "ReplaceBranchWithKill";
    "MoveBlockDown";
    "WrapRegionInSelection";
    "InvertBranchCondition";
    "PropagateInstructionUp";
    "PermutePhiEntries";
    "SwapCommutativeOperands";
    "AddLoad";
    "AddStore";
    "AddCopyObject";
    "AddArithmeticSynonym";
    "AddSelectSynonym";
    "ReplaceIdWithSynonym";
    "ReplaceBooleanConstantWithBinary";
    "ReplaceIrrelevantId";
    "ReplaceConstantWithUniform";
    "CompositeConstruct";
    "CompositeExtract";
    "SetFunctionControl";
    "FunctionCall";
    "AddParameter";
    "AddFunction";
    "InlineFunction";
  ]

(** All the fresh ids a transformation introduces (for tests and audits). *)
let fresh_ids = function
  | Add_type { fresh; _ } | Add_constant { fresh; _ } -> [ fresh ]
  | Add_global_variable { fresh; fresh_ptr_ty; _ }
  | Add_uniform { fresh; fresh_ptr_ty; _ }
  | Add_local_variable { fresh; fresh_ptr_ty; _ } ->
      [ fresh; fresh_ptr_ty ]
  | Add_nop _ -> []
  | Split_block { fresh; _ } -> [ fresh ]
  | Add_dead_block { fresh; _ } -> [ fresh ]
  | Replace_branch_with_kill _ | Move_block_down _ -> []
  | Wrap_region_in_selection { fresh_header; fresh_merge; _ } -> [ fresh_header; fresh_merge ]
  | Invert_branch_condition { fresh; _ } -> [ fresh ]
  | Propagate_instruction_up { fresh_per_pred; _ } -> List.map snd fresh_per_pred
  | Permute_phi_entries _ | Swap_commutative_operands _ -> []
  | Add_load { fresh; _ } -> [ fresh ]
  | Add_store _ -> []
  | Add_copy_object { fresh; _ } -> [ fresh ]
  | Add_arithmetic_synonym { fresh; _ } -> [ fresh ]
  | Add_select_synonym { fresh; _ } -> [ fresh ]
  | Replace_id_with_synonym _ | Replace_irrelevant_id _ -> []
  | Replace_bool_constant_with_binary { fresh; _ } -> [ fresh ]
  | Replace_constant_with_uniform { fresh_load; _ } -> [ fresh_load ]
  | Composite_construct { fresh; _ } -> [ fresh ]
  | Composite_extract { fresh; _ } -> [ fresh ]
  | Set_function_control _ -> []
  | Function_call { fresh; _ } -> [ fresh ]
  | Add_parameter { fresh_param; fresh_fn_ty; _ } -> [ fresh_param; fresh_fn_ty ]
  | Add_function p ->
      List.map fst p.af_types
      @ List.map (fun (id, _, _) -> id) p.af_constants
      @ p.af_function.Func.id
        :: List.map (fun (pa : Func.param) -> pa.Func.param_id) p.af_function.Func.params
      @ List.concat_map
          (fun (b : Block.t) ->
            b.Block.label
            :: List.filter_map (fun (i : Instr.t) -> i.Instr.result) b.Block.instrs)
          p.af_function.Func.blocks
  | Inline_function { id_map; _ } -> List.map snd id_map
