(** Fuzzer passes (section 3.2): each pass sweeps the module looking for
    opportunities to apply one kind of transformation, probabilistically
    deciding which opportunities to take.

    Passes work propose-and-filter: they construct candidate transformations
    from the current context and submit them through {!emit}, which applies
    a candidate only when its precondition holds.  This keeps every pass
    simple while guaranteeing that the recorded sequence replays exactly. *)

open Spirv_ir

type emitter = {
  mutable ctx : Context.t;
  mutable emitted : Transformation.t list;  (* reversed *)
  rng : Tbct.Rng.t;
  donors : Module_ir.t list;
  contracts : Contract.t option;
      (* debug mode: check the transformation contract after every emit.
         The checker consumes no randomness, so the recorded stream is
         identical with or without it. *)
  counters : (string, int * int) Hashtbl.t;
      (* per-type (proposed, applied) tallies; bookkeeping only, consumes
         no randomness *)
}

let make_emitter ?(donors = []) ?contracts ~rng ctx =
  { ctx; emitted = []; rng; donors; contracts; counters = Hashtbl.create 64 }

let bump_counter em t ~applied =
  let id = Transformation.type_id t in
  let p, a = Option.value ~default:(0, 0) (Hashtbl.find_opt em.counters id) in
  Hashtbl.replace em.counters id (p + 1, if applied then a + 1 else a)

(** Per-type (type_id, proposed, applied) tallies, sorted by type_id. *)
let counters_list em =
  List.sort compare
    (Hashtbl.fold (fun id (p, a) acc -> (id, p, a) :: acc) em.counters [])

let emit em t =
  if Registry.precondition em.ctx t then begin
    let before = em.ctx in
    em.ctx <- Registry.apply em.ctx t;
    (match em.contracts with
    | Some checker -> Contract.check checker ~before t ~after:em.ctx
    | None -> ());
    em.emitted <- t :: em.emitted;
    bump_counter em t ~applied:true;
    true
  end
  else begin
    bump_counter em t ~applied:false;
    false
  end

let fresh em =
  let m, id = Module_ir.fresh em.ctx.Context.m in
  em.ctx <- { em.ctx with Context.m = m };
  id

let chance em ~num ~den = Tbct.Rng.chance em.rng ~num ~den

(* ------------------------------------------------------------------ *)
(* Context queries shared by passes                                    *)

let functions em = em.ctx.Context.m.Module_ir.functions

let random_block em (f : Func.t) =
  Tbct.Rng.choose_opt em.rng f.Func.blocks

(* a random insertion point within a block *)
let random_point em (b : Block.t) =
  let anchors =
    List.filter_map
      (fun (i : Instr.t) -> if Instr.is_phi i then None else i.Instr.result)
      b.Block.instrs
  in
  match anchors with
  | [] -> Transformation.At_end
  | _ ->
      if Tbct.Rng.chance em.rng ~num:1 ~den:4 then Transformation.At_end
      else Transformation.Before (Tbct.Rng.choose em.rng anchors)

(* ids with their type ids that are plausibly available near [point]; the
   precondition re-checks real availability, so over-approximation is fine *)
let candidate_values em (f : Func.t) =
  let m = em.ctx.Context.m in
  let consts =
    List.map (fun (d : Module_ir.const_decl) -> (d.Module_ir.cd_id, d.Module_ir.cd_ty)) m.Module_ir.constants
  in
  let params = List.map (fun (p : Func.param) -> (p.Func.param_id, p.Func.param_ty)) f.Func.params in
  let results =
    List.filter_map
      (fun (i : Instr.t) ->
        match (i.Instr.result, i.Instr.ty) with Some r, Some t -> Some (r, t) | _ -> None)
      (Func.all_instrs f)
  in
  consts @ params @ results

let candidate_pointers em (f : Func.t) =
  let m = em.ctx.Context.m in
  let is_ptr ty = match Module_ir.find_type m ty with Some (Ty.Pointer _) -> true | _ -> false in
  let globals = List.map (fun (g : Module_ir.global_decl) -> (g.Module_ir.gd_id, g.Module_ir.gd_ty)) m.Module_ir.globals in
  List.filter (fun (_, ty) -> is_ptr ty) (globals @ candidate_values em f)

let ensure_bool_constant em value =
  match Edit.find_bool_constant em.ctx.Context.m value with
  | Some id -> Some id
  | None -> (
      if Module_ir.find_type_id em.ctx.Context.m Ty.Bool = None then begin
        let t = fresh em in
        ignore (emit em (Transformation.Add_type { fresh = t; ty = Ty.Bool }))
      end;
      match Module_ir.find_type_id em.ctx.Context.m Ty.Bool with
      | None -> None
      | Some ty ->
          let c = fresh em in
          if emit em (Transformation.Add_constant { fresh = c; ty; value = Constant.Bool value })
          then Some c
          else None)

let ensure_constant em ty value =
  match Module_ir.find_constant_id em.ctx.Context.m ~ty ~value with
  | Some id -> Some id
  | None ->
      let c = fresh em in
      if emit em (Transformation.Add_constant { fresh = c; ty; value }) then Some c
      else None

(* ------------------------------------------------------------------ *)
(* The passes                                                          *)

type t = { name : string; run : emitter -> unit }

let for_random_blocks em ~num ~den f_block =
  List.iter
    (fun (f : Func.t) ->
      List.iter
        (fun (b : Block.t) -> if chance em ~num ~den then f_block f b)
        f.Func.blocks)
    (functions em)

let pass_split_blocks =
  {
    name = "split_blocks";
    run =
      (fun em ->
        for_random_blocks em ~num:1 ~den:8 (fun f b ->
            ignore f;
            let point = random_point em b in
            ignore
              (emit em
                 (Transformation.Split_block
                    { fn = f.Func.id; block = b.Block.label; point; fresh = fresh em }))));
  }

let pass_add_dead_blocks =
  {
    name = "add_dead_blocks";
    run =
      (fun em ->
        for_random_blocks em ~num:1 ~den:8 (fun f b ->
            match ensure_bool_constant em true with
            | None -> ()
            | Some cond ->
                ignore
                  (emit em
                     (Transformation.Add_dead_block
                        { fn = f.Func.id; existing = b.Block.label; fresh = fresh em; cond }))));
  }

let pass_add_loads =
  {
    name = "add_loads";
    run =
      (fun em ->
        for_random_blocks em ~num:1 ~den:8 (fun f b ->
            match Tbct.Rng.choose_opt em.rng (candidate_pointers em f) with
            | None -> ()
            | Some (pointer, _) ->
                ignore
                  (emit em
                     (Transformation.Add_load
                        {
                          fn = f.Func.id;
                          block = b.Block.label;
                          point = random_point em b;
                          fresh = fresh em;
                          pointer;
                        }))));
  }

let pass_add_stores =
  {
    name = "add_stores";
    run =
      (fun em ->
        for_random_blocks em ~num:1 ~den:6 (fun f b ->
            match Tbct.Rng.choose_opt em.rng (candidate_pointers em f) with
            | None -> ()
            | Some (pointer, ptr_ty) -> (
                let m = em.ctx.Context.m in
                match Module_ir.find_type m ptr_ty with
                | Some (Ty.Pointer (_, pointee)) -> (
                    let values =
                      List.filter (fun (_, ty) -> Id.equal ty pointee) (candidate_values em f)
                    in
                    match Tbct.Rng.choose_opt em.rng values with
                    | None -> ()
                    | Some (value, _) ->
                        ignore
                          (emit em
                             (Transformation.Add_store
                                {
                                  fn = f.Func.id;
                                  block = b.Block.label;
                                  point = random_point em b;
                                  pointer;
                                  value;
                                })))
                | Some _ | None -> ())));
  }

let pass_add_copy_objects =
  {
    name = "add_copy_objects";
    run =
      (fun em ->
        for_random_blocks em ~num:1 ~den:8 (fun f b ->
            match Tbct.Rng.choose_opt em.rng (candidate_values em f) with
            | None -> ()
            | Some (operand, _) ->
                ignore
                  (emit em
                     (Transformation.Add_copy_object
                        {
                          fn = f.Func.id;
                          block = b.Block.label;
                          point = random_point em b;
                          fresh = fresh em;
                          operand;
                        }))));
  }

let pass_add_arithmetic_synonyms =
  {
    name = "add_arithmetic_synonyms";
    run =
      (fun em ->
        for_random_blocks em ~num:1 ~den:8 (fun f b ->
            let m = em.ctx.Context.m in
            match Tbct.Rng.choose_opt em.rng (candidate_values em f) with
            | None -> ()
            | Some (operand, ty) -> (
                let with_kind kind id_ty id_value =
                  match Module_ir.find_type_id m id_ty with
                  | None -> ()
                  | Some tid -> (
                      match ensure_constant em tid id_value with
                      | None -> ()
                      | Some identity ->
                          ignore
                            (emit em
                               (Transformation.Add_arithmetic_synonym
                                  {
                                    fn = f.Func.id;
                                    block = b.Block.label;
                                    point = random_point em b;
                                    fresh = fresh em;
                                    operand;
                                    kind;
                                    identity;
                                  })))
                in
                match Module_ir.find_type m ty with
                | Some Ty.Int ->
                    if Tbct.Rng.bool em.rng then
                      with_kind Transformation.Add_zero_int Ty.Int (Constant.Int 0l)
                    else with_kind Transformation.Mul_one_int Ty.Int (Constant.Int 1l)
                | Some Ty.Float ->
                    if Tbct.Rng.bool em.rng then
                      with_kind Transformation.Mul_one_float Ty.Float (Constant.Float 1.0)
                    else with_kind Transformation.Sub_zero_float Ty.Float (Constant.Float 0.0)
                | Some Ty.Bool ->
                    if Tbct.Rng.bool em.rng then
                      with_kind Transformation.Or_false Ty.Bool (Constant.Bool false)
                    else with_kind Transformation.And_true Ty.Bool (Constant.Bool true)
                | Some _ | None -> ())));
  }

let pass_add_select_synonyms =
  {
    name = "add_select_synonyms";
    run =
      (fun em ->
        for_random_blocks em ~num:1 ~den:8 (fun f b ->
            let m = em.ctx.Context.m in
            let bools =
              List.filter
                (fun (_, ty) -> Module_ir.find_type m ty = Some Ty.Bool)
                (candidate_values em f)
            in
            match
              (Tbct.Rng.choose_opt em.rng bools, Tbct.Rng.choose_opt em.rng (candidate_values em f))
            with
            | Some (cond, _), Some (operand, _) ->
                ignore
                  (emit em
                     (Transformation.Add_select_synonym
                        {
                          fn = f.Func.id;
                          block = b.Block.label;
                          point = random_point em b;
                          fresh = fresh em;
                          cond;
                          operand;
                        }))
            | _ -> ()));
  }

(* enumerate use sites of an id in a function *)
let use_sites_of em (f : Func.t) id =
  let sites = ref [] in
  List.iter
    (fun (b : Block.t) ->
      List.iteri
        (fun idx (i : Instr.t) ->
          List.iteri
            (fun op_idx u ->
              if Id.equal u id then
                let anchor =
                  match i.Instr.result with
                  | Some r -> Transformation.Result_id r
                  | None -> Transformation.Nth_instr idx
                in
                sites :=
                  {
                    Transformation.us_fn = f.Func.id;
                    us_block = b.Block.label;
                    us_anchor = anchor;
                    us_operand = op_idx;
                  }
                  :: !sites)
            (Instr.used_ids i))
        b.Block.instrs;
      List.iteri
        (fun op_idx u ->
          if Id.equal u id then
            sites :=
              {
                Transformation.us_fn = f.Func.id;
                us_block = b.Block.label;
                us_anchor = Transformation.Terminator;
                us_operand = op_idx;
              }
              :: !sites)
        (Block.terminator_used_ids b.Block.terminator))
    f.Func.blocks;
  ignore em;
  !sites

let pass_apply_synonyms =
  {
    name = "apply_synonyms";
    run =
      (fun em ->
        let facts = em.ctx.Context.facts in
        List.iter
          (fun (f : Func.t) ->
            let values = candidate_values em f in
            List.iter
              (fun (id, _) ->
                match Fact_manager.id_synonyms facts id with
                | [] -> ()
                | syns ->
                    if chance em ~num:1 ~den:3 then begin
                      let synonym = Tbct.Rng.choose em.rng syns in
                      match Tbct.Rng.choose_opt em.rng (use_sites_of em f id) with
                      | Some site ->
                          ignore
                            (emit em (Transformation.Replace_id_with_synonym { site; synonym }))
                      | None -> ()
                    end)
              values)
          (functions em));
  }

let pass_obfuscate_constants =
  {
    name = "obfuscate_constants";
    run =
      (fun em ->
        let uniforms = Context.known_uniforms em.ctx in
        List.iter
          (fun (f : Func.t) ->
            List.iter
              (fun (gid, pointee, uv) ->
                (* constants equal to this uniform's value *)
                let matching =
                  List.filter_map
                    (fun (d : Module_ir.const_decl) ->
                      if
                        Id.equal d.Module_ir.cd_ty pointee
                        && Value.equal (Module_ir.const_value em.ctx.Context.m d.Module_ir.cd_id) uv
                      then Some d.Module_ir.cd_id
                      else None)
                    em.ctx.Context.m.Module_ir.constants
                in
                List.iter
                  (fun c ->
                    List.iter
                      (fun site ->
                        if chance em ~num:1 ~den:3 then
                          ignore
                            (emit em
                               (Transformation.Replace_constant_with_uniform
                                  { site; fresh_load = fresh em; uniform = gid })))
                      (use_sites_of em f c))
                  matching)
              uniforms)
          (functions em));
  }

let pass_add_composites =
  {
    name = "add_composites";
    run =
      (fun em ->
        for_random_blocks em ~num:1 ~den:8 (fun f b ->
            let m = em.ctx.Context.m in
            let values = candidate_values em f in
            (* pick a composite type we can build from available scalars *)
            let composite_tys =
              List.filter_map
                (fun (d : Module_ir.type_decl) ->
                  match d.Module_ir.td_ty with
                  | Ty.Vector _ | Ty.Struct _ | Ty.Array _ -> Some d.Module_ir.td_id
                  | _ -> None)
                m.Module_ir.types
            in
            match Tbct.Rng.choose_opt em.rng composite_tys with
            | None -> ()
            | Some ty -> (
                match Module_ir.composite_arity m ty with
                | None -> ()
                | Some n -> (
                    let parts =
                      List.init n (fun idx ->
                          match Module_ir.component_ty m ty idx with
                          | None -> None
                          | Some want ->
                              Tbct.Rng.choose_opt em.rng
                                (List.filter (fun (_, t) -> Id.equal t want) values)
                              |> Option.map fst)
                    in
                    if List.for_all Option.is_some parts then begin
                      let parts = List.map Option.get parts in
                      let point = random_point em b in
                      let cc = fresh em in
                      if
                        emit em
                          (Transformation.Composite_construct
                             { fn = f.Func.id; block = b.Block.label; point; fresh = cc; ty; parts })
                      then begin
                        (* follow up with an extraction that creates a
                           whole-object synonym *)
                        let idx = Tbct.Rng.int em.rng (List.length parts) in
                        ignore
                          (emit em
                             (Transformation.Composite_extract
                                {
                                  fn = f.Func.id;
                                  block = b.Block.label;
                                  point = Transformation.At_end;
                                  fresh = fresh em;
                                  composite = cc;
                                  path = [ idx ];
                                }));
                        (* occasionally nest the fresh composite in a struct
                           and extract through both levels *)
                        if chance em ~num:1 ~den:6 then begin
                          let m = em.ctx.Context.m in
                          let struct_ty = Ty.Struct [ ty ] in
                          (match Module_ir.find_type_id m struct_ty with
                          | Some _ -> ()
                          | None ->
                              ignore
                                (emit em
                                   (Transformation.Add_type
                                      { fresh = fresh em; ty = struct_ty })));
                          match Module_ir.find_type_id em.ctx.Context.m struct_ty with
                          | None -> ()
                          | Some sty ->
                              let sc = fresh em in
                              if
                                emit em
                                  (Transformation.Composite_construct
                                     {
                                       fn = f.Func.id;
                                       block = b.Block.label;
                                       point = Transformation.At_end;
                                       fresh = sc;
                                       ty = sty;
                                       parts = [ cc ];
                                     })
                              then
                                ignore
                                  (emit em
                                     (Transformation.Composite_extract
                                        {
                                          fn = f.Func.id;
                                          block = b.Block.label;
                                          point = Transformation.At_end;
                                          fresh = fresh em;
                                          composite = sc;
                                          path = [ 0; Tbct.Rng.int em.rng (List.length parts) ];
                                        }))
                        end
                      end
                    end))));
  }

let pass_add_functions =
  {
    name = "add_functions";
    run =
      (fun em ->
        match em.donors with
        | [] -> ()
        | donors ->
            if chance em ~num:1 ~den:2 then begin
              let donor = Tbct.Rng.choose em.rng donors in
              match Tbct.Rng.choose_opt em.rng (Donor.eligible_functions donor) with
              | None -> ()
              | Some f -> (
                  match Donor.encode em.ctx donor f with
                  | None -> ()
                  | Some (ctx, payload) ->
                      em.ctx <- ctx;
                      ignore (emit em (Transformation.Add_function payload)))
            end);
  }

let pass_function_calls =
  {
    name = "function_calls";
    run =
      (fun em ->
        for_random_blocks em ~num:1 ~den:8 (fun f b ->
            let m = em.ctx.Context.m in
            let callees =
              List.filter
                (fun (g : Func.t) ->
                  Fact_manager.is_live_safe em.ctx.Context.facts g.Func.id
                  || Fact_manager.is_dead_block em.ctx.Context.facts b.Block.label)
                m.Module_ir.functions
            in
            match Tbct.Rng.choose_opt em.rng callees with
            | None -> ()
            | Some g -> (
                match Module_ir.find_type m g.Func.fn_ty with
                | Some (Ty.Func (_, param_tys)) -> (
                    let values = candidate_values em f in
                    let args =
                      List.map
                        (fun pty ->
                          Tbct.Rng.choose_opt em.rng
                            (List.filter (fun (_, t) -> Id.equal t pty) values)
                          |> Option.map fst)
                        param_tys
                    in
                    if List.for_all Option.is_some args then
                      ignore
                        (emit em
                           (Transformation.Function_call
                              {
                                fn = f.Func.id;
                                block = b.Block.label;
                                point = random_point em b;
                                fresh = fresh em;
                                callee = g.Func.id;
                                args = List.map Option.get args;
                              })))
                | Some _ | None -> ())));
  }

let pass_inline_functions =
  {
    name = "inline_functions";
    run =
      (fun em ->
        List.iter
          (fun (f : Func.t) ->
            List.iter
              (fun (b : Block.t) ->
                List.iter
                  (fun (i : Instr.t) ->
                    match (i.Instr.result, i.Instr.op) with
                    | Some call_id, Instr.FunctionCall (callee, _) when chance em ~num:1 ~den:3
                      -> (
                        match Module_ir.find_function em.ctx.Context.m callee with
                        | Some { Func.blocks = [ body ]; _ } ->
                            let result_ids =
                              List.filter_map
                                (fun (j : Instr.t) -> j.Instr.result)
                                body.Block.instrs
                            in
                            let id_map = List.map (fun r -> (r, fresh em)) result_ids in
                            ignore
                              (emit em
                                 (Transformation.Inline_function
                                    { fn = f.Func.id; block = b.Block.label; call_id; id_map }))
                        | Some _ | None -> ())
                    | _ -> ())
                  b.Block.instrs)
              f.Func.blocks)
          (functions em));
  }

let pass_add_parameters =
  {
    name = "add_parameters";
    run =
      (fun em ->
        List.iter
          (fun (f : Func.t) ->
            if chance em ~num:1 ~den:3 then begin
              let m = em.ctx.Context.m in
              match Tbct.Rng.choose_opt em.rng m.Module_ir.constants with
              | None -> ()
              | Some d ->
                  ignore
                    (emit em
                       (Transformation.Add_parameter
                          {
                            fn = f.Func.id;
                            fresh_param = fresh em;
                            fresh_fn_ty = fresh em;
                            default = d.Module_ir.cd_id;
                          }))
            end)
          (functions em));
  }

let pass_replace_irrelevant_ids =
  {
    name = "replace_irrelevant_ids";
    run =
      (fun em ->
        List.iter
          (fun (f : Func.t) ->
            let m = em.ctx.Context.m in
            (* call sites whose argument slots feed irrelevant parameters *)
            List.iter
              (fun (b : Block.t) ->
                List.iteri
                  (fun idx (i : Instr.t) ->
                    match i.Instr.op with
                    | Instr.FunctionCall (callee, args) -> (
                        match Module_ir.find_function m callee with
                        | None -> ()
                        | Some g ->
                            List.iteri
                              (fun k _arg ->
                                match List.nth_opt g.Func.params k with
                                | Some pa
                                  when Fact_manager.is_irrelevant em.ctx.Context.facts
                                         pa.Func.param_id
                                       && chance em ~num:1 ~den:2 -> (
                                    let anchor =
                                      match i.Instr.result with
                                      | Some r -> Transformation.Result_id r
                                      | None -> Transformation.Nth_instr idx
                                    in
                                    let site =
                                      {
                                        Transformation.us_fn = f.Func.id;
                                        us_block = b.Block.label;
                                        us_anchor = anchor;
                                        us_operand = k + 1;
                                      }
                                    in
                                    let values =
                                      List.filter
                                        (fun (_, t) -> Id.equal t pa.Func.param_ty)
                                        (candidate_values em f)
                                    in
                                    match Tbct.Rng.choose_opt em.rng values with
                                    | Some (replacement, _) ->
                                        ignore
                                          (emit em
                                             (Transformation.Replace_irrelevant_id
                                                { site; replacement }))
                                    | None -> ())
                                | _ -> ())
                              args)
                    | _ -> ())
                  b.Block.instrs)
              f.Func.blocks)
          (functions em));
  }

let pass_swap_commutative_operands =
  {
    name = "swap_commutative_operands";
    run =
      (fun em ->
        for_random_blocks em ~num:1 ~den:8 (fun f b ->
            let candidates =
              List.filter_map
                (fun (i : Instr.t) ->
                  match (i.Instr.result, i.Instr.op) with
                  | Some r, Instr.Binop (_, _, _) -> Some r
                  | _ -> None)
                b.Block.instrs
            in
            match Tbct.Rng.choose_opt em.rng candidates with
            | None -> ()
            | Some instr ->
                ignore
                  (emit em
                     (Transformation.Swap_commutative_operands
                        { fn = f.Func.id; block = b.Block.label; instr }))));
  }

let pass_obfuscate_bool_constants =
  {
    name = "obfuscate_bool_constants";
    run =
      (fun em ->
        let m = em.ctx.Context.m in
        let bool_constants =
          List.filter_map
            (fun (d : Module_ir.const_decl) ->
              match d.Module_ir.cd_value with
              | Constant.Bool _ -> Some d.Module_ir.cd_id
              | _ -> None)
            m.Module_ir.constants
        in
        List.iter
          (fun (f : Func.t) ->
            let ints =
              List.filter
                (fun (_, ty) -> Module_ir.find_type m ty = Some Ty.Int)
                (candidate_values em f)
            in
            List.iter
              (fun c ->
                List.iter
                  (fun site ->
                    if chance em ~num:1 ~den:3 then begin
                      match Tbct.Rng.choose_opt em.rng ints with
                      | Some (operand, _) ->
                          ignore
                            (emit em
                               (Transformation.Replace_bool_constant_with_binary
                                  { site; fresh = fresh em; operand }))
                      | None -> ()
                    end)
                  (use_sites_of em f c))
              bool_constants)
          (functions em));
  }

let pass_move_blocks_down =
  {
    name = "move_blocks_down";
    run =
      (fun em ->
        for_random_blocks em ~num:1 ~den:6 (fun f b ->
            ignore
              (emit em (Transformation.Move_block_down { fn = f.Func.id; block = b.Block.label }))));
  }

let pass_wrap_regions =
  {
    name = "wrap_regions";
    run =
      (fun em ->
        for_random_blocks em ~num:1 ~den:10 (fun f b ->
            let branch_on_true = Tbct.Rng.bool em.rng in
            match ensure_bool_constant em branch_on_true with
            | None -> ()
            | Some cond ->
                ignore
                  (emit em
                     (Transformation.Wrap_region_in_selection
                        {
                          fn = f.Func.id;
                          block = b.Block.label;
                          fresh_header = fresh em;
                          fresh_merge = fresh em;
                          cond;
                          branch_on_true;
                        }))));
  }

let pass_invert_conditions =
  {
    name = "invert_conditions";
    run =
      (fun em ->
        for_random_blocks em ~num:1 ~den:6 (fun f b ->
            ignore
              (emit em
                 (Transformation.Invert_branch_condition
                    { fn = f.Func.id; block = b.Block.label; fresh = fresh em }))));
  }

let pass_propagate_instructions_up =
  {
    name = "propagate_instructions_up";
    run =
      (fun em ->
        for_random_blocks em ~num:1 ~den:8 (fun f b ->
            let cfg = Cfg.of_func f in
            let preds = Cfg.predecessors cfg b.Block.label in
            if preds <> [] then begin
              let fresh_per_pred = List.map (fun p -> (p, fresh em)) preds in
              ignore
                (emit em
                   (Transformation.Propagate_instruction_up
                      { fn = f.Func.id; block = b.Block.label; fresh_per_pred }))
            end));
  }

let pass_replace_branches_with_kill =
  {
    name = "replace_branches_with_kill";
    run =
      (fun em ->
        (* only in the entry-point's call-free reachable world does OpKill
           make sense; the precondition restricts to dead blocks *)
        for_random_blocks em ~num:1 ~den:6 (fun f b ->
            if Fact_manager.is_dead_block em.ctx.Context.facts b.Block.label then
              ignore
                (emit em
                   (Transformation.Replace_branch_with_kill
                      { fn = f.Func.id; block = b.Block.label }))));
  }

let pass_set_function_controls =
  {
    name = "set_function_controls";
    run =
      (fun em ->
        (* functions with call sites are the interesting targets: inlining
           attributes only matter where calls exist *)
        let called =
          List.concat_map
            (fun (f : Func.t) ->
              List.filter_map
                (fun (i : Instr.t) ->
                  match i.Instr.op with
                  | Instr.FunctionCall (callee, _) -> Some callee
                  | _ -> None)
                (Func.all_instrs f))
            (functions em)
        in
        List.iter
          (fun (f : Func.t) ->
            let is_called = List.mem f.Func.id called in
            let den = if is_called then 2 else 6 in
            if chance em ~num:1 ~den then begin
              let control =
                Tbct.Rng.choose em.rng
                  (if is_called then
                     [ Func.DontInline; Func.DontInline; Func.CNone; Func.AlwaysInline ]
                   else [ Func.CNone; Func.DontInline; Func.AlwaysInline ])
              in
              ignore (emit em (Transformation.Set_function_control { fn = f.Func.id; control }))
            end)
          (functions em));
  }

let pass_permute_phis =
  {
    name = "permute_phis";
    run =
      (fun em ->
        List.iter
          (fun (f : Func.t) ->
            List.iter
              (fun (b : Block.t) ->
                List.iter
                  (fun (i : Instr.t) ->
                    match (i.Instr.result, i.Instr.op) with
                    | Some phi, Instr.Phi inc
                      when List.length inc >= 2 && chance em ~num:1 ~den:2 ->
                        ignore
                          (emit em
                             (Transformation.Permute_phi_entries
                                {
                                  fn = f.Func.id;
                                  block = b.Block.label;
                                  phi;
                                  rotation = 1 + Tbct.Rng.int em.rng (List.length inc - 1);
                                }))
                    | _ -> ())
                  b.Block.instrs)
              f.Func.blocks)
          (functions em));
  }

let pass_add_uniforms =
  {
    name = "add_uniforms";
    run =
      (fun em ->
        (* declare fresh uniforms whose recorded input values equal existing
           scalar constants, creating obfuscation targets *)
        let m = em.ctx.Context.m in
        let scalar_constants =
          List.filter_map
            (fun (d : Module_ir.const_decl) ->
              match d.Module_ir.cd_value with
              | Constant.Bool b -> Some (d.Module_ir.cd_ty, Value.VBool b)
              | Constant.Int i -> Some (d.Module_ir.cd_ty, Value.VInt i)
              | Constant.Float f -> Some (d.Module_ir.cd_ty, Value.VFloat f)
              | Constant.Composite _ | Constant.Null -> None)
            m.Module_ir.constants
        in
        match Tbct.Rng.choose_opt em.rng scalar_constants with
        | None -> ()
        | Some (pointee, value) ->
            if chance em ~num:1 ~den:2 then begin
              let fresh_id = fresh em in
              let ptr = fresh em in
              ignore
                (emit em
                   (Transformation.Add_uniform
                      {
                        fresh = fresh_id;
                        fresh_ptr_ty = ptr;
                        pointee;
                        name = Printf.sprintf "_u%d" fresh_id;
                        value;
                      }))
            end);
  }

let pass_add_variables =
  {
    name = "add_variables";
    run =
      (fun em ->
        let m = em.ctx.Context.m in
        let scalar_tys =
          List.filter_map
            (fun (d : Module_ir.type_decl) ->
              match d.Module_ir.td_ty with
              | Ty.Int | Ty.Float | Ty.Bool -> Some d.Module_ir.td_id
              | _ -> None)
            m.Module_ir.types
        in
        match Tbct.Rng.choose_opt em.rng scalar_tys with
        | None -> ()
        | Some pointee ->
            if Tbct.Rng.bool em.rng then
              ignore
                (emit em
                   (Transformation.Add_global_variable
                      { fresh = fresh em; fresh_ptr_ty = fresh em; pointee }))
            else begin
              match Tbct.Rng.choose_opt em.rng (functions em) with
              | None -> ()
              | Some f ->
                  ignore
                    (emit em
                       (Transformation.Add_local_variable
                          { fresh = fresh em; fresh_ptr_ty = fresh em; fn = f.Func.id; pointee }))
            end);
  }

(* ------------------------------------------------------------------ *)
(* The sweep list, derived from the registry                           *)

let implementations : t list =
  [
    pass_split_blocks;
    pass_add_dead_blocks;
    pass_add_loads;
    pass_add_stores;
    pass_add_copy_objects;
    pass_add_arithmetic_synonyms;
    pass_add_select_synonyms;
    pass_apply_synonyms;
    pass_obfuscate_constants;
    pass_add_composites;
    pass_add_functions;
    pass_function_calls;
    pass_inline_functions;
    pass_add_parameters;
    pass_replace_irrelevant_ids;
    pass_swap_commutative_operands;
    pass_obfuscate_bool_constants;
    pass_move_blocks_down;
    pass_wrap_regions;
    pass_invert_conditions;
    pass_propagate_instructions_up;
    pass_replace_branches_with_kill;
    pass_set_function_controls;
    pass_permute_phis;
    pass_add_variables;
    pass_add_uniforms;
  ]

(** The sweep order is the registry's: every pass the table names must have
    an implementation here, and passes the table does not name never run. *)
let all : t list =
  List.map
    (fun name ->
      match
        List.find_opt (fun p -> String.equal p.name name) implementations
      with
      | Some p -> p
      | None -> invalid_arg ("Pass.all: registry names unknown pass " ^ name))
    Registry.pass_names

let find name = List.find_opt (fun p -> String.equal p.name name) all
